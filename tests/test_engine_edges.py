"""Edge-case battery for both engines (things benchmarks never hit)."""

import pytest

from repro.engines.js import run_js
from repro.engines.lua import run_lua
from repro.engines.lua.runtime import LuaError


def lua(source):
    return run_lua(source, max_instructions=20_000_000).output


def js(source):
    return run_js(source, max_instructions=20_000_000).output


# -- Lua ----------------------------------------------------------------------

def test_lua_unknown_global_is_nil():
    assert lua("print(undefined_thing)") == "nil\n"


def test_lua_assign_global_then_read_in_function():
    assert lua("""
    counter = 0
    function bump() counter = counter + 1 return counter end
    bump() bump()
    print(bump())
    """) == "3\n"


def test_lua_nested_loops_with_breaks():
    assert lua("""
    local hits = 0
    for i = 1, 5 do
      local j = 0
      while true do
        j = j + 1
        if j >= i then break end
      end
      hits = hits + j
      if hits > 9 then break end
    end
    print(hits)
    """) == "10\n"


def test_lua_concat_chain_right_assoc():
    assert lua("print(1 .. 2 .. 3)") == "123\n"


def test_lua_comparison_chains_parenthesised():
    assert lua("print((1 < 2) == true)") == "true\n"


def test_lua_table_value_overwrite_in_place():
    assert lua("""
    local t = {1, 2, 3}
    t[2] = t[2] * 100
    print(t[1], t[2], t[3], #t)
    """) == "1\t200\t3\t3\n"


def test_lua_boolean_stored_in_table():
    assert lua("""
    local t = {}
    t[1] = true
    t[2] = false
    print(t[1], t[2], t[1] == true)
    """) == "true\tfalse\ttrue\n"


def test_lua_float_key_indexes_like_int():
    assert lua("local t = {} t[2.0] = 7 print(t[2])") == "7\n"


def test_lua_long_string_building():
    assert lua("""
    local s = ""
    for i = 1, 30 do s = s .. "ab" end
    print(#s)
    """) == "60\n"


def test_lua_negative_numeric_for():
    assert lua("""
    local out = ""
    for i = 3, 1, -1 do out = out .. i end
    print(out)
    """) == "321\n"


def test_lua_function_argument_shadowing():
    assert lua("""
    x = 10
    function f(x) return x * 2 end
    print(f(3), x)
    """) == "6\t10\n"


def test_lua_deep_expression_nesting():
    expr = "1"
    for _ in range(30):
        expr = "(%s + 1)" % expr
    assert lua("print(%s)" % expr) == "31\n"


def test_lua_error_message_mentions_arith():
    with pytest.raises(LuaError, match="arithmetic"):
        lua("local t = {} print(t + 1)")


def test_lua_string_number_comparison_errors():
    with pytest.raises(LuaError, match="compare"):
        lua("print('a' < 1)")


# -- JS -----------------------------------------------------------------------

def test_js_chained_calls():
    assert js("""
    function g(x) { return x + 1; }
    function f(x) { return x * 2; }
    print(f(g(f(3))));
    """) == "14\n"


def test_js_assignment_inside_condition_shapes():
    assert js("""
    var i = 0;
    var s = 0;
    while (i < 3 && s < 100) { s += 10; i++; }
    print(s, i);
    """) == "30 3\n"


def test_js_array_of_objects():
    assert js("""
    var people = [{name: 'a', age: 2}, {name: 'b', age: 3}];
    var total = 0;
    for (var i = 0; i < people.length; i++) total += people[i].age;
    print(total, people[1].name);
    """) == "5 b\n"


def test_js_string_plus_everything():
    assert js("print('' + 1 + true + null + undefined);") \
        == "1truenullundefined\n"


def test_js_numeric_string_comparisons_are_string_compares():
    assert js("print('10' < '9', 10 < 9);") == "true false\n"


def test_js_nested_ternary_in_call():
    assert js("print(Math.max(1 > 2 ? 10 : 20, 5));") == "20\n"


def test_js_empty_function_body_loop():
    assert js("""
    function noop() {}
    for (var i = 0; i < 10; i++) noop();
    print('done');
    """) == "done\n"


def test_js_global_mutation_across_functions():
    assert js("""
    var total = 0;
    function add(n) { total += n; }
    add(1); add(2); add(3);
    print(total);
    """) == "6\n"


def test_js_negative_and_fractional_results():
    assert js("print(-7 / 2, 7 / -2, -0.5 * 4);") == "-3.5 -3.5 -2\n"


def test_js_deep_expression_nesting():
    expr = "1"
    for _ in range(30):
        expr = "(%s + 1)" % expr
    assert js("print(%s);" % expr) == "31\n"


def test_js_sparse_then_dense_migration():
    assert js("""
    var a = [];
    a[3] = 30;          // sparse (hash part)
    a[0] = 0; a[1] = 10; a[2] = 20;   // dense fills in; 3 migrates
    print(a[3], a.length);
    """) == "30 4\n"


def test_js_boolean_arithmetic_coerces():
    assert js("var t = true; print(t + t);") == "2\n"


# -- cross-engine sanity ---------------------------------------------------------

def test_both_engines_agree_on_shared_kernel():
    kernel_lua = """
    local s = 0
    for i = 1, 50 do
      if i % 3 == 0 then s = s + i end
    end
    print(s)
    """
    kernel_js = """
    var s = 0;
    for (var i = 1; i <= 50; i++) {
      if (i % 3 == 0) s = s + i;
    }
    print(s);
    """
    assert lua(kernel_lua).strip() == js(kernel_js).strip() == "408"
