"""N-config sweeps through the registry: figures, campaigns, smoke.

Covers the registry-driven figure pipeline (figures 5 and 9 rendering
an arbitrary number of registered configs), the figure 9 denominator
regression (chklb rates normalised by the chklb run's own bytecode
count) and the fault-campaign guarantee that every config — including
``selftag`` — faces the identical seeded fault sequence.
"""

from types import SimpleNamespace

import pytest

from repro.bench import experiments
from repro.bench.runner import RunRecord, clear_cache, run_matrix
from repro.engines import (
    BASELINE,
    CHECKED_LOAD,
    SELF_TAG,
    TYPED,
    TYPED_LOWBIT,
    TYPED_WIDE,
    all_configs,
)

SMOKE_CONFIGS = (BASELINE, CHECKED_LOAD, TYPED, SELF_TAG,
                 TYPED_LOWBIT, TYPED_WIDE)


@pytest.fixture(scope="module")
def records():
    clear_cache()
    return run_matrix(engines=("lua",), benchmarks=("fibo",),
                      configs=SMOKE_CONFIGS, scales={"fibo": 6})


# -- N-config figures --------------------------------------------------------

def test_figure5_renders_all_registered_configs(records):
    data = experiments.figure5(records)
    assert set(data["lua"]["geomean"]) == set(SMOKE_CONFIGS)
    assert data["lua"]["geomean"][BASELINE] == pytest.approx(1.0)
    for config in (TYPED, SELF_TAG, TYPED_LOWBIT, TYPED_WIDE):
        assert data["lua"]["geomean"][config] > 1.0
    text = experiments.render_figure5(data)
    for config in SMOKE_CONFIGS:
        assert config in text


def test_figure9_renders_all_hardware_check_configs(records):
    data = experiments.figure9(records)
    entry = data["lua"]["fibo"]
    # Paper key names for the original triple, derived names beyond it.
    assert {"typed_hit", "typed_miss", "overflow",
            "chklb_hit", "chklb_miss"} <= set(entry)
    for config in (SELF_TAG, TYPED_LOWBIT, TYPED_WIDE):
        assert entry["%s_hit" % config] == entry["typed_hit"]
    assert BASELINE not in {key.split("_")[0] for key in entry}
    text = experiments.render_figure9(data)
    assert "selftag_hit" in text and "chklb_hit" in text


def test_selftag_matches_typed_except_tag_plane_traffic():
    # n-body is float-heavy; fibo (integer-only) would elide nothing.
    clear_cache()
    pair = run_matrix(engines=("lua",), benchmarks=("n-body",),
                      configs=(TYPED, SELF_TAG), scales={"n-body": 3})
    clear_cache()
    typed = pair[("lua", "n-body", TYPED)]
    selftag = pair[("lua", "n-body", SELF_TAG)]
    assert selftag.output == typed.output
    assert selftag.counters.instructions == typed.counters.instructions
    # Float Self-Tagging elides the tag-plane probe for FP values.
    assert selftag.counters.dcache_accesses \
        < typed.counters.dcache_accesses


def _record(config, chk_hits, chk_misses, type_hits, type_misses,
            overflow, bytecodes):
    counters = SimpleNamespace(
        chk_hits=chk_hits, chk_misses=chk_misses,
        type_hits=type_hits, type_misses=type_misses,
        overflow_traps=overflow,
        bytecode_counts={"ADD": bytecodes})
    return RunRecord(engine="lua", benchmark="fibo", config=config,
                     scale=1, output="", counters=counters)


def test_figure9_uses_each_configs_own_denominator():
    """Regression: chklb rates were normalised by the *typed* run's
    bytecode count even though the two configs execute different
    dynamic bytecode streams."""
    records = {
        ("lua", "fibo", TYPED): _record(TYPED, 0, 0, 80, 20, 4, 200),
        ("lua", "fibo", CHECKED_LOAD): _record(CHECKED_LOAD, 30, 10,
                                               0, 0, 0, 50),
    }
    entry = experiments.figure9(records)["lua"]["fibo"]
    assert entry["typed_hit"] == pytest.approx(80 / 200)
    assert entry["typed_miss"] == pytest.approx(20 / 200)
    assert entry["overflow"] == pytest.approx(4 / 200)
    # The old bug divided these by 200 (typed's total) instead of 50.
    assert entry["chklb_hit"] == pytest.approx(30 / 50)
    assert entry["chklb_miss"] == pytest.approx(10 / 50)


# -- fault-campaign parity ---------------------------------------------------

def test_campaign_covers_registry_with_identical_fault_sequence():
    """Every registered config — selftag included — faces the same
    abstract seeded fault sequence as the paper's triple; only the
    resolved instruction index differs (it scales with each config's
    golden instruction count)."""
    from repro.faults import run_campaign
    clear_cache()
    configs = (BASELINE, CHECKED_LOAD, TYPED, SELF_TAG)
    report = run_campaign(seed=7, count=5, engines=("lua",),
                          benchmarks=("fibo",), configs=configs,
                          scales={"fibo": 2}, max_workers=1)
    clear_cache()
    cells = {cell["config"]: cell for cell in report["cells"]}
    assert set(cells) == set(configs)

    def abstract_sequence(config):
        return [{key: value
                 for key, value in injection["spec"].items()
                 if key != "index"}
                for injection in cells[config]["injections"]]

    reference = abstract_sequence(TYPED)
    assert len(reference) == 5
    for config in configs:
        assert abstract_sequence(config) == reference
    assert set(report["coverage"]) == set(configs)


def test_sweep_default_covers_registry():
    assert set(SMOKE_CONFIGS) <= set(all_configs())
