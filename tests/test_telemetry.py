"""Tests for the telemetry layer: the zero-overhead-when-disabled
contract, the differential no-counter-change guarantee, sink output
well-formedness and the exact profile reconciliation."""

import json

import pytest

from repro.engines.lua import vm as lua_vm
from repro.sim.trace import InstructionTracer
from repro.telemetry import (
    PROFILE_CATEGORIES,
    ChromeTraceSink,
    CollectorSink,
    JsonlSink,
    Telemetry,
    attach_cpu,
    detach_cpu,
    run_profile,
)
from repro.uarch.pipeline import Machine

SOURCE = "local s = 0 for i = 1, 20 do s = s + i * 2 end print(s)"


# -- disabled path -------------------------------------------------------------

def test_disabled_path_leaves_cpu_untouched():
    """With no telemetry (or no relevant categories) the CPU runs the
    plain class methods: no wrapper, no reference, no events."""
    cpu, _runtime, _program = lua_vm.prepare(SOURCE, config="typed")
    assert cpu.telemetry is None
    assert "step" not in cpu.__dict__          # class method, not wrapper
    assert "lookup" not in cpu.trt.__dict__

    attach_cpu(None, cpu)
    assert cpu.telemetry is None
    assert "step" not in cpu.__dict__

    empty = Telemetry(categories=())
    attach_cpu(empty, cpu)
    assert cpu.telemetry is None               # nothing wanted, no hook
    assert "step" not in cpu.__dict__
    assert "lookup" not in cpu.trt.__dict__

    machine = Machine(cpu)
    machine.run()
    assert empty.events_emitted == 0
    assert machine.icache.on_miss is None      # cache hook never installed
    assert machine.dcache.on_miss is None


def test_attach_detach_roundtrip():
    cpu, _runtime, _program = lua_vm.prepare(SOURCE, config="typed")
    telemetry = Telemetry(categories=PROFILE_CATEGORIES | {"retire"})
    attach_cpu(telemetry, cpu)
    assert "step" in cpu.__dict__
    assert "lookup" in cpu.trt.__dict__
    detach_cpu(cpu)
    assert "step" not in cpu.__dict__
    assert "lookup" not in cpu.trt.__dict__
    assert cpu.telemetry is None


# -- differential: telemetry observes, never perturbs --------------------------

@pytest.mark.parametrize("config", ["baseline", "typed", "chklb"])
def test_telemetry_changes_no_counters(config):
    """Every simulated counter is bit-identical with telemetry on/off."""
    plain = lua_vm.run_lua(SOURCE, config=config)
    collector = CollectorSink()
    telemetry = Telemetry(sinks=[collector],
                          categories=PROFILE_CATEGORIES | {"retire"})
    observed = lua_vm.run_lua(SOURCE, config=config, telemetry=telemetry)
    assert observed.output == plain.output
    assert observed.counters.as_dict() == plain.counters.as_dict()
    assert telemetry.events_emitted > 0
    # The retire stream saw exactly what the counters counted.
    retires = len(collector.by_category("retire"))
    assert retires == plain.counters.core_instructions


def test_telemetry_changes_no_counters_js():
    from repro.engines.js import vm as js_vm
    source = "var s = 0; for (var i = 0; i < 9; i = i + 1) " \
             "{ s = s + i; } print(s);"
    plain = js_vm.run_js(source, config="typed")
    telemetry = Telemetry(categories=PROFILE_CATEGORIES)
    observed = js_vm.run_js(source, config="typed", telemetry=telemetry)
    assert observed.counters.as_dict() == plain.counters.as_dict()


# -- reconciliation ------------------------------------------------------------

def test_flat_profile_reconciles_exactly():
    """Per-opcode flat instruction/cycle totals sum to the counters'
    totals with zero residue — startup included."""
    result = run_profile("fibo", config="typed", scale=6)
    counters = result.counters
    assert result.total_profiled_instructions == \
        counters.core_instructions
    assert result.total_profiled_cycles == counters.cycles
    assert sum(counters.bytecode_flat_instructions.values()) == \
        counters.core_instructions
    assert sum(counters.bytecode_flat_cycles.values()) == counters.cycles
    assert "(startup)" in counters.bytecode_flat_cycles


def test_flat_profile_matches_plain_run():
    """The flat attribution is identical with telemetry off (it lives
    in the timing loop, not the event stream)."""
    plain = lua_vm.run_lua(SOURCE, config="typed")
    counters = plain.counters
    assert sum(counters.bytecode_flat_instructions.values()) == \
        counters.core_instructions
    assert sum(counters.bytecode_flat_cycles.values()) == counters.cycles


def test_tracer_agrees_with_retire_counts():
    """The instruction tracer consumes the same retire events the
    profiler counts, so entry count == instret by construction."""
    cpu, _runtime, _program = lua_vm.prepare(SOURCE, config="baseline")
    tracer = InstructionTracer(cpu, limit=None)
    tracer.run()
    assert len(tracer.entries) == cpu.instret
    assert tracer.entries[-1].index == cpu.instret


def test_trt_attribution_sums_to_type_misses():
    source = "var a = 2000000000; for (var i = 0; i < 5; i = i + 1) " \
             "{ a = a + 2000000000; } print(a);"
    result = run_profile(source_path(source, ".js"), config="typed")
    counters = result.counters
    assert sum(result.trt_misses.values()) == counters.type_misses
    assert sum(result.trt_hits.values()) == counters.type_hits
    for key in list(result.trt_misses) + list(result.trt_hits):
        opcode, t1, t2 = key.split("/")
        assert opcode and int(t1) >= 0 and int(t2) >= 0


def source_path(source, suffix, _dir=[]):
    import tempfile
    if not _dir:
        _dir.append(tempfile.mkdtemp(prefix="telemetry-test-"))
    path = "%s/snippet%s" % (_dir[0], suffix)
    with open(path, "w") as handle:
        handle.write(source)
    return path


# -- sinks ---------------------------------------------------------------------

def test_chrome_trace_is_valid_and_monotonic(tmp_path):
    trace_path = tmp_path / "trace.json"
    run_profile("fibo", config="typed", scale=6,
                chrome_trace=str(trace_path))
    payload = json.loads(trace_path.read_text())
    events = payload["traceEvents"]
    assert events, "empty trace"
    spans = [e for e in events if e["ph"] in ("B", "E")]
    assert spans, "no bytecode spans in trace"
    timestamps = [e["ts"] for e in events if e["ph"] != "M"]
    assert timestamps == sorted(timestamps), "non-monotonic ts"
    # Span opens/closes balance (final E emitted at run end).
    assert sum(1 for e in spans if e["ph"] == "B") == \
        sum(1 for e in spans if e["ph"] == "E")
    assert payload["displayTimeUnit"] == "ms"


def test_chrome_trace_sink_idempotent_close(tmp_path):
    path = tmp_path / "t.json"
    sink = ChromeTraceSink(str(path))
    sink.handle({"cat": "trap", "name": "overflow", "ts": 3, "pc": 16})
    sink.close()
    sink.close()
    payload = json.loads(path.read_text())
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["args"]["pc"] == 16


def test_jsonl_sink_streams_valid_lines(tmp_path):
    events_path = tmp_path / "events.jsonl"
    run_profile("fibo", config="typed", scale=6,
                events_path=str(events_path))
    lines = events_path.read_text().splitlines()
    assert lines
    categories = set()
    for line in lines:
        event = json.loads(line)
        assert "cat" in event and "ts" in event
        categories.add(event["cat"])
    assert "bytecode" in categories


def test_collector_sink_filters():
    sink = CollectorSink(categories={"trap"})
    sink.handle({"cat": "trap", "name": "overflow"})
    sink.handle({"cat": "trt", "name": "trt_miss"})
    assert len(sink) == 1
    assert sink.by_category("trap")[0]["name"] == "overflow"


def test_jsonl_sink_degrades_unserialisable_fields(tmp_path):
    path = tmp_path / "x.jsonl"
    sink = JsonlSink(str(path))
    sink.handle({"cat": "retire", "name": "add", "ts": 0,
                 "instr": object()})
    sink.close()
    event = json.loads(path.read_text())
    assert event["instr"].startswith("<object object")


# -- run record / cache integration --------------------------------------------

def test_run_record_carries_telemetry_through_disk_cache(tmp_path):
    from repro.bench import cache as result_cache
    from repro.bench.runner import clear_cache, run_benchmark

    with result_cache.temporary(tmp_path):
        clear_cache()
        telemetry = Telemetry(categories=PROFILE_CATEGORIES)
        record = run_benchmark("lua", "fibo", "typed", scale=6,
                               telemetry=telemetry)
        assert record.telemetry["events"] == telemetry.events_emitted
        assert record.telemetry["by_category"]
        clear_cache()
        cached = result_cache.active_cache().load("lua", "fibo", "typed",
                                                  6)
        assert cached is not None
        assert cached.telemetry == record.telemetry
        assert cached.counters.bytecode_flat_cycles == \
            record.counters.bytecode_flat_cycles
        assert cached.counters.trt_miss_keys == \
            record.counters.trt_miss_keys
    clear_cache()


def test_profile_events_summary_counts():
    collector = CollectorSink()
    telemetry = Telemetry(sinks=[collector])
    telemetry.emit({"cat": "trap", "name": "overflow"})
    telemetry.emit({"cat": "trap", "name": "overflow"})
    telemetry.emit({"cat": "stall", "name": "load_use"})
    summary = telemetry.summary()
    assert summary["events"] == 3
    assert summary["by_category"] == {"trap": 2, "stall": 1}
    assert len(collector) == 3
