"""Tests for the tagging-scheme registry (repro.engines.configs)."""

import pytest

from repro.engines import (
    BASELINE,
    CHECKED_LOAD,
    GATE_CONFIGS,
    SELF_TAG,
    TYPED,
    TYPED_LOWBIT,
    TYPED_WIDE,
    all_configs,
    all_schemes,
    get_scheme,
    hardware_check_configs,
    is_registered,
    register,
    unregister,
)
from repro.engines.configs import (
    FAMILY_SOFTWARE,
    FAMILY_TYPED,
    TaggingScheme,
    transformed_rules,
)
from repro.engines.js import layout as js_layout
from repro.engines.lua import layout as lua_layout
from repro.isa.extension import OFFSET_SELF_TAG, SprSettings
from repro.sim import nanbox
from repro.sim.tagio import TagCodec


def _scheme(name, **kwargs):
    kwargs.setdefault("description", "test scheme")
    kwargs.setdefault("family", FAMILY_TYPED)
    kwargs.setdefault("hardware_checks", True)
    return TaggingScheme(name=name, **kwargs)


# -- registry mechanics ------------------------------------------------------

def test_builtins_registered_in_order():
    configs = all_configs()
    assert configs[:3] == GATE_CONFIGS == (BASELINE, CHECKED_LOAD, TYPED)
    assert set(configs) >= {SELF_TAG, TYPED_LOWBIT, TYPED_WIDE}
    assert [s.name for s in all_schemes()] == list(configs)


def test_gate_configs_pinned_to_paper_triple():
    for config in GATE_CONFIGS:
        assert get_scheme(config).gate_pinned
    for config in (SELF_TAG, TYPED_LOWBIT, TYPED_WIDE):
        assert not get_scheme(config).gate_pinned


def test_hardware_check_configs_excludes_baseline():
    hw = hardware_check_configs()
    assert BASELINE not in hw
    assert set(hw) >= {TYPED, CHECKED_LOAD, SELF_TAG, TYPED_LOWBIT,
                       TYPED_WIDE}


def test_register_and_unregister():
    scheme = _scheme("unit-test-scheme")
    register(scheme)
    try:
        assert is_registered("unit-test-scheme")
        assert get_scheme("unit-test-scheme") is scheme
        assert all_configs()[-1] == "unit-test-scheme"
    finally:
        unregister("unit-test-scheme")
    assert not is_registered("unit-test-scheme")


def test_duplicate_name_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register(_scheme(TYPED))


def test_register_requires_tagging_scheme():
    with pytest.raises(TypeError):
        register("typed-2")


def test_get_scheme_unknown_name():
    with pytest.raises(ValueError, match="unknown config"):
        get_scheme("no-such-config")


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown scheme family"):
        _scheme("bad-family", family="quantum")


# -- family policies ---------------------------------------------------------

def test_duplicate_family_rejected():
    from repro.engines.configs import HandlerPolicy, register_family
    with pytest.raises(ValueError, match="already registered"):
        register_family(HandlerPolicy(family=FAMILY_SOFTWARE,
                                      description="duplicate"))


def test_family_registry_contents():
    from repro.engines.configs import (
        FAMILY_CHECKED,
        FAMILY_ELIDED,
        all_families,
        family_policy,
    )
    assert set(all_families()) == {FAMILY_SOFTWARE, FAMILY_TYPED,
                                   FAMILY_CHECKED, FAMILY_ELIDED}
    with pytest.raises(ValueError, match="unknown scheme family"):
        family_policy("quantum")
    # The elided family is the software interpreter plus the quickening
    # hooks; every other built-in family leaves them unset.
    elided = family_policy(FAMILY_ELIDED)
    assert elided.check_mode == FAMILY_SOFTWARE
    assert callable(elided.quicken)
    assert callable(elided.quickened_ops)
    assert callable(elided.extra_handlers)
    for family in (FAMILY_SOFTWARE, FAMILY_TYPED, FAMILY_CHECKED):
        assert family_policy(family).quicken is None


def test_elided_scheme_registered_and_gate_exempt():
    from repro.engines.configs import ELIDED, FAMILY_ELIDED
    scheme = get_scheme(ELIDED)
    assert scheme.family == FAMILY_ELIDED
    assert not scheme.hardware_checks
    assert not scheme.gate_pinned
    assert ELIDED not in GATE_CONFIGS
    assert ELIDED in all_configs()
    assert ELIDED not in hardware_check_configs()


def test_register_family_requires_policy_type():
    from repro.engines.configs import register_family
    with pytest.raises(TypeError):
        register_family("elided-2")


def test_live_configs_view_through_engines_module():
    import repro.engines as engines
    before = engines.CONFIGS
    register(_scheme("late-view-scheme"))
    try:
        assert "late-view-scheme" in engines.CONFIGS
        assert "late-view-scheme" not in before
    finally:
        unregister("late-view-scheme")


# -- extractor geometry ------------------------------------------------------

def test_default_scheme_uses_table4_geometry():
    typed = get_scheme(TYPED)
    assert typed.spr("lua", lua_layout.SPR_SETTINGS) \
        == lua_layout.SPR_SETTINGS
    assert typed.spr("js", js_layout.SPR_SETTINGS) \
        == js_layout.SPR_SETTINGS


def test_selftag_sets_offset_bit_only():
    spr = get_scheme(SELF_TAG).spr("lua", lua_layout.SPR_SETTINGS)
    default = lua_layout.SPR_SETTINGS
    assert spr.offset == default.offset | OFFSET_SELF_TAG
    assert spr.self_tag
    assert (spr.shift, spr.mask) == (default.shift, default.mask)
    # The tag transform is the identity: same window, extra offset bit.
    for tag in range(20):
        assert get_scheme(SELF_TAG).extracted_tag(
            "lua", default, tag) == tag & default.mask


def test_lowbit_windows_extract_layout_tags_unchanged():
    lowbit = get_scheme(TYPED_LOWBIT)
    for tag in (lua_layout.TNUMFLT, lua_layout.TNUMINT):
        assert lowbit.extracted_tag(
            "lua", lua_layout.SPR_SETTINGS, tag) == tag
    for tag in (js_layout.TAG_DOUBLE, js_layout.TAG_INT32):
        assert lowbit.extracted_tag(
            "js", js_layout.SPR_SETTINGS, tag) == tag


def test_wide_js_window_folds_nan_prefix_bits():
    wide = get_scheme(TYPED_WIDE)
    default = js_layout.SPR_SETTINGS
    # The 8-bit window at shift 47 spans the NaN-box tag plus the low
    # four bits of the NaN prefix: extracted = 0xF0 | tag.
    for tag in range(8):
        expected = (nanbox.box(tag, 0) >> 47) & 0xFF
        assert expected == 0xF0 | tag
        assert wide.extracted_tag("js", default, tag) == expected


def test_geometry_may_not_move_the_dword_select():
    scheme = _scheme("bad-offset", geometry={
        "lua": SprSettings(offset=0b011, shift=0, mask=0xFF)})
    with pytest.raises(ValueError, match="dword"):
        scheme.spr("lua", lua_layout.SPR_SETTINGS)


def test_geometry_round_trip_through_tagio():
    """Programming a codec with a scheme's SPR values reproduces
    TaggingScheme.extracted_tag for every layout tag."""
    for engine, layout, tags in (
            ("lua", lua_layout, range(20)),
            ("js", js_layout, range(8))):
        default = layout.SPR_SETTINGS
        for config in (TYPED, SELF_TAG, TYPED_LOWBIT, TYPED_WIDE):
            scheme = get_scheme(config)
            spr = scheme.spr(engine, default)
            codec = TagCodec()
            codec.set_offset(spr.offset)
            codec.set_shift(spr.shift)
            codec.set_mask(spr.mask)
            assert codec.self_tag == scheme.self_tag
            for tag in tags:
                if default.nan_detect:
                    bits = nanbox.box(tag, 0)
                else:
                    bits = (tag & default.mask) << default.shift
                assert (bits >> codec.shift) & codec.mask \
                    == scheme.extracted_tag(engine, default, tag)


def test_transformed_rules_remap_every_tag_field():
    wide = get_scheme(TYPED_WIDE)
    default = js_layout.SPR_SETTINGS
    rules = transformed_rules(wide, "js", default, js_layout.TYPE_RULES)
    assert len(rules) == len(js_layout.TYPE_RULES)
    for original, transformed in zip(js_layout.TYPE_RULES, rules):
        assert transformed.opcode == original.opcode
        assert transformed.type_in1 == 0xF0 | original.type_in1
        assert transformed.type_in2 == 0xF0 | original.type_in2
        assert transformed.type_out == 0xF0 | original.type_out
    # Identity transform for the default scheme.
    assert transformed_rules(get_scheme(TYPED), "js", default,
                             js_layout.TYPE_RULES) \
        == tuple(js_layout.TYPE_RULES)


# -- downstream validation ---------------------------------------------------

def test_api_validation_tracks_registry():
    from repro import api
    from repro.schema import SchemaError
    request = api.ExecutionRequest(op="run", engine="lua",
                                   source="print(1)",
                                   config="late-api-scheme")
    with pytest.raises(SchemaError, match="unknown config"):
        request.validate()
    register(_scheme("late-api-scheme", family=FAMILY_SOFTWARE,
                     hardware_checks=False))
    try:
        request.validate()
    finally:
        unregister("late-api-scheme")


def test_cli_config_choices_resolve_at_parse_time():
    """Regression: ``--config`` used ``choices=CONFIGS`` captured at
    import time, so schemes registered later were rejected."""
    from repro.cli import build_parser
    parser = build_parser()   # built *before* the scheme exists
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "fibo", "--config", "late-cli-scheme"])
    register(_scheme("late-cli-scheme"))
    try:
        args = parser.parse_args(["run", "fibo", "--config",
                                  "late-cli-scheme"])
        assert args.config == "late-cli-scheme"
    finally:
        unregister("late-cli-scheme")
