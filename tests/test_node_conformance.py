"""Conformance against a real JavaScript engine (Node.js).

MiniJS is a JavaScript subset, so every program it runs must behave
identically under Node.  These tests execute the benchmark programs and
randomly generated expressions on both engines and compare outputs
token-by-token (numerically, to absorb float-formatting differences).

Skipped automatically when ``node`` is unavailable.
"""

import shutil
import subprocess

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import BENCHMARK_ORDER, WORKLOADS
from repro.engines.js import run_js
from tests.test_differential import _float_exprs, _int_exprs, _render_js

NODE = shutil.which("node")

pytestmark = pytest.mark.skipif(NODE is None, reason="node not installed")

# Shims for the MiniJS globals, with Node's own formatting.
PRELUDE = """
'use strict';
function print() {
  console.log(Array.prototype.map.call(arguments, String).join(' '));
}
function write() {
  process.stdout.write(Array.prototype.map.call(arguments, String)
                       .join(''));
}
function substring(s, i, j) { return s.substring(i, j); }
function charCodeAt(s, i) { return s.charCodeAt(i); }
"""


def run_node(source):
    result = subprocess.run([NODE, "-e", PRELUDE + source],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr[:500]
    return result.stdout


def assert_outputs_agree(ours, nodes, context=""):
    our_tokens = ours.split()
    node_tokens = nodes.split()
    assert len(our_tokens) == len(node_tokens), \
        "%s\nours: %r\nnode: %r" % (context, ours, nodes)
    for our_token, node_token in zip(our_tokens, node_tokens):
        try:
            our_value = float(our_token)
            node_value = float(node_token)
        except ValueError:
            assert our_token == node_token, context
            continue
        if our_value != our_value:  # NaN
            assert node_value != node_value, context
        else:
            assert our_value == pytest.approx(node_value, rel=1e-12,
                                              abs=1e-12), context


# Scales small enough that node and the simulator both finish instantly.
CONFORMANCE_SCALES = {
    "ackermann": 2, "binary-trees": 4, "fannkuch-redux": 5, "fibo": 12,
    "k-nucleotide": 50, "mandelbrot": 6, "n-body": 5, "n-sieve": 200,
    "pidigits": 8, "random": 100, "spectral-norm": 4,
}


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_benchmark_matches_node(name):
    source = WORKLOADS[name].js_source(CONFORMANCE_SCALES[name])
    ours = run_js(source, config="baseline", attribute=False).output
    nodes = run_node(source)
    assert_outputs_agree(ours, nodes, context=name)


@settings(max_examples=5, deadline=None)
@given(exprs=st.lists(_int_exprs(3), min_size=4, max_size=10))
def test_random_int_expressions_match_node(exprs):
    source = "\n".join("print(%s);" % _render_js(e) for e in exprs)
    ours = run_js(source, config="typed", attribute=False).output
    assert_outputs_agree(ours, run_node(source), context=source)


@settings(max_examples=5, deadline=None)
@given(exprs=st.lists(_float_exprs(3), min_size=4, max_size=10))
def test_random_float_expressions_match_node(exprs):
    source = "\n".join("print(%s);" % _render_js(e) for e in exprs)
    ours = run_js(source, config="typed", attribute=False).output
    assert_outputs_agree(ours, run_node(source), context=source)


LANGUAGE_PROGRAMS = [
    # closures excluded; everything else in the subset gets a workout.
    """
    var a = [3, 1, 2];
    for (var i = 0; i < a.length; i++) a[i] = a[i] * 10;
    print(a[0], a[1], a[2], a.length);
    """,
    """
    function gcd(a, b) { while (b != 0) { var t = b; b = a %% b; a = t; }
      return a; }
    print(gcd(1071, 462), gcd(17, 5));
    """.replace("%%", "%"),
    """
    var o = {count: 0};
    function bump(obj, n) { obj.count = obj.count + n; return obj.count; }
    print(bump(o, 3), bump(o, 4), o.count);
    """,
    """
    var s = '';
    for (var i = 0; i < 5; i++) { if (i == 2) continue; s = s + i; }
    print(s, typeof s, typeof 0, !!s);
    """,
    """
    var n = 0;
    do { n = n * 2 + 1; } while (n < 20);
    print(n, n > 10 ? 'big' : 'small');
    """,
    """
    print(0.1 + 0.2, 1 / 3, Math.floor(-2.5), Math.pow(2, 31));
    print(2147483647 + 1, -2147483648 - 1);
    """,
    """
    var grid = [];
    for (var i = 0; i < 3; i++) { grid[i] = [i, i * i]; }
    print(grid[2][1], grid.length, grid[0].length);
    """,
]


@pytest.mark.parametrize("index", range(len(LANGUAGE_PROGRAMS)))
def test_language_feature_matches_node(index):
    source = LANGUAGE_PROGRAMS[index]
    ours = run_js(source, config="baseline", attribute=False).output
    assert_outputs_agree(ours, run_node(source),
                         context="program %d" % index)
    # And the typed machine agrees with itself.
    typed = run_js(source, config="typed", attribute=False).output
    assert typed == ours
