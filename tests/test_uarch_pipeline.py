"""Timing model tests: cycle accounting invariants and attribution."""

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.hostcall import HostInterface
from repro.sim.memory import Memory
from repro.uarch.config import DEFAULT_CONFIG
from repro.uarch.dram import Dram
from repro.uarch.pipeline import Attribution, Machine


def timed_run(text, setup=None, attribution_spec=None):
    program = assemble(text)
    cpu = Cpu(program, Memory(size=1 << 16))
    if setup:
        setup(cpu)
    attribution = None
    if attribution_spec:
        ranges, entries = attribution_spec(program)
        attribution = Attribution(program, ranges, entries)
    machine = Machine(cpu, attribution=attribution)
    counters = machine.run(max_instructions=1_000_000)
    return machine, counters


def test_cycles_at_least_instructions():
    _, counters = timed_run("""
        li a0, 100
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    """)
    assert counters.cycles >= counters.instructions
    assert counters.core_instructions == 1 + 100 * 2 + 1


def test_loop_branch_becomes_predicted():
    _, counters = timed_run("""
        li a0, 1000
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    """)
    # A monotone loop branch should mispredict only a handful of times.
    assert counters.branches == 1000
    assert counters.branch_mispredicts < 20


def test_icache_miss_charged_once_per_line():
    _, counters = timed_run("li a0, 1\nebreak")
    assert counters.icache_misses == 1  # everything fits one 64B line
    _, counters = timed_run("\n".join(["addi a0, a0, 1"] * 64) + "\nebreak")
    # 65 instructions = 260 bytes = 5 lines.
    assert counters.icache_misses == 5


def test_dcache_locality():
    machine, counters = timed_run("""
        li a0, 0x1000
        li a1, 64
    loop:
        ld a2, 0(a0)
        ld a3, 8(a0)
        addi a0, a0, 16
        addi a1, a1, -1
        bnez a1, loop
        ebreak
    """)
    assert counters.dcache_accesses == 128
    # 64 iterations x 16B = 1KB = 16 lines -> 16 cold misses.
    assert counters.dcache_misses == 16


def test_load_use_stall_charged():
    _, fast = timed_run("""
        li a0, 0x1000
        ld a1, 0(a0)
        nop
        add a2, a1, a1
        ebreak
    """)
    _, slow = timed_run("""
        li a0, 0x1000
        ld a1, 0(a0)
        add a2, a1, a1
        ebreak
    """)
    assert slow.load_use_stalls == 1
    assert fast.load_use_stalls == 0


def test_div_slower_than_add():
    base = "li a0, 100\nli a1, 7\n%s\nebreak"
    _, add_counters = timed_run(base % "add a2, a0, a1")
    _, div_counters = timed_run(base % "div a2, a0, a1")
    assert div_counters.cycles > add_counters.cycles + 20


def test_host_call_charges_instructions_and_cycles():
    program_text = """
        li a7, 7
        ecall
        ebreak
    """
    program = assemble(program_text)
    cpu = Cpu(program, Memory(size=1 << 16))
    host = HostInterface()
    host.register(7, "stub", lambda cpu_, *args: 0, cost=500)
    cpu.host = host
    machine = Machine(cpu)
    counters = machine.run()
    assert counters.host_instructions == 500
    assert counters.host_calls == 1
    assert counters.cycles >= 500  # host cycles charged
    assert counters.instructions == counters.core_instructions + 500


def test_type_redirect_penalty():
    """A type misprediction pays the same redirect penalty as a branch."""
    from repro.isa.extension import arithmetic_rules
    from repro.sim.tagio import TagCodec

    def build(rules):
        program = assemble("""
            li a0, 0x1000
            tld t0, 0(a0)
            tld t1, 16(a0)
            thdl slow
            xadd t2, t0, t1
            ebreak
        slow:
            ebreak
        """)
        codec = TagCodec(fp_tags={3})
        codec.set_offset(0b001)
        cpu = Cpu(program, Memory(size=1 << 16), tag_codec=codec)
        cpu.mem.store_u64(0x1000, 1)
        cpu.mem.store_u64(0x1008, 19)
        cpu.mem.store_u64(0x1010, 2)
        cpu.mem.store_u64(0x1018, 19)
        cpu.trt.load_rules(rules)
        return Machine(cpu)

    hit = build(arithmetic_rules(19, 3)).run()
    miss = build([]).run()
    assert miss.type_misses == 1
    assert hit.type_hits == 1
    # The miss run executes fewer instructions (skips nothing here but
    # redirects) yet pays the redirect penalty.
    assert miss.cycles >= hit.cycles - 2


def test_attribution_buckets_and_entries():
    def spec(program):
        ranges = [("handler", program.labels["handler"],
                   program.labels["end"])]
        entries = {program.labels["handler"]: "ADD"}
        return ranges, entries

    _, counters = timed_run("""
        li a0, 3
    loop:
        call handler
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    handler:
        addi a1, a1, 1
        addi a1, a1, 1
        ret
    end:
    """, attribution_spec=spec)
    assert counters.bytecode_counts == {"ADD": 3}
    assert counters.bucket_instructions == {"handler": 9}  # 3 instrs x 3


def test_dram_open_row_faster():
    dram = Dram(DEFAULT_CONFIG.dram)
    first = dram.access(0x10000)
    second = dram.access(0x10000 + 64 * DEFAULT_CONFIG.dram.banks)
    # Same row, same bank on the second access -> open-row latency.
    assert first == DEFAULT_CONFIG.dram.closed_row_latency
    assert second == DEFAULT_CONFIG.dram.open_row_latency


def test_counters_mpki_math():
    _, counters = timed_run("""
        li a0, 10
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    """)
    expected = 1000.0 * counters.branch_mispredicts / counters.instructions
    assert abs(counters.branch_mpki - expected) < 1e-9
    assert 0.0 < counters.ipc <= 1.0


def test_legacy_code_runs_identically_on_typed_machine():
    """Section 5, legacy code execution: a program using no typed
    instructions behaves and times identically whether or not the
    extension is present (the extension is pay-for-use)."""
    from repro.isa.extension import arithmetic_rules
    from repro.sim.tagio import TagCodec

    text = """
        li a0, 200
        li a1, 0
    loop:
        add a1, a1, a0
        ld t0, 0x100(zero)
        sd t0, 0x108(zero)
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    """
    def run(with_extension):
        program = assemble(text)
        cpu = Cpu(program, Memory(size=1 << 16))
        if with_extension:
            cpu.codec = TagCodec(fp_tags={3})
            cpu.trt.load_rules(arithmetic_rules(19, 3))
        machine = Machine(cpu)
        return machine.run(), cpu

    base_counters, base_cpu = run(False)
    typed_counters, typed_cpu = run(True)
    assert base_counters.cycles == typed_counters.cycles
    assert base_counters.as_dict() == typed_counters.as_dict()
    assert typed_cpu.regs.value == base_cpu.regs.value
    assert typed_counters.type_hits == typed_counters.type_misses == 0
