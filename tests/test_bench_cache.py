"""The persistent result cache: hit/miss/invalidation semantics, the
Counters dict round-trip it relies on, and the runner integration."""

import json

import pytest

from repro.bench import cache as result_cache
from repro.bench.cache import FORMAT_VERSION, ResultCache, source_tree_hash
from repro.bench.runner import clear_cache, run_benchmark
from repro.engines import BASELINE
from repro.uarch.counters import Counters


@pytest.fixture(scope="module")
def record():
    clear_cache()
    return run_benchmark("lua", "fibo", BASELINE, scale=6, use_cache=False)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path, tree_hash="tree-a")


def test_store_load_roundtrip(cache, record):
    cache.store(record)
    loaded = cache.load("lua", "fibo", BASELINE, 6)
    assert loaded is not record
    assert loaded == record  # dataclass equality covers the counters
    assert loaded.counters.cycles == record.counters.cycles
    assert loaded.counters.bytecode_counts == record.counters.bytecode_counts
    assert loaded.counters.ipc == pytest.approx(record.counters.ipc)
    assert (cache.hits, cache.misses, cache.stores) == (1, 0, 1)


def test_loaded_record_is_byte_identical(cache, record):
    cache.store(record)
    loaded = cache.load("lua", "fibo", BASELINE, 6)
    assert json.dumps(loaded.counters.as_dict(), sort_keys=True) \
        == json.dumps(record.counters.as_dict(), sort_keys=True)
    assert loaded.output == record.output


def test_absent_cell_is_a_miss(cache):
    assert cache.load("lua", "fibo", BASELINE, 6) is None
    assert (cache.hits, cache.misses) == (0, 1)


def test_invalidated_by_source_change(tmp_path, record):
    ResultCache(tmp_path, tree_hash="tree-a").store(record)
    changed = ResultCache(tmp_path, tree_hash="tree-b")
    assert changed.load("lua", "fibo", BASELINE, 6) is None
    # ...but the original tree still hits: old results are kept, not
    # clobbered, until prune().
    assert ResultCache(tmp_path, tree_hash="tree-a") \
        .load("lua", "fibo", BASELINE, 6) == record


def test_corrupt_payload_is_a_miss(cache, record):
    cache.store(record)
    path = cache.path_for("lua", "fibo", BASELINE, 6)
    path.write_text("{not json")
    assert cache.load("lua", "fibo", BASELINE, 6) is None


def test_version_mismatch_is_a_miss(cache, record):
    cache.store(record)
    path = cache.path_for("lua", "fibo", BASELINE, 6)
    payload = json.loads(path.read_text())
    payload["version"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(payload))
    assert cache.load("lua", "fibo", BASELINE, 6) is None


def test_clear_and_len_and_prune(tmp_path, cache, record):
    cache.store(record)
    assert len(cache) == 1
    stale = ResultCache(tmp_path, tree_hash="tree-old")
    stale.store(record)
    assert cache.prune() == 1  # tree-old removed, tree-a kept
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_source_tree_hash_tracks_content(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    first = source_tree_hash(tmp_path)
    assert first == source_tree_hash(tmp_path)  # memoised and stable
    other = tmp_path / "other"
    other.mkdir()
    (other / "a.py").write_text("x = 2\n")
    assert source_tree_hash(other) != first


def test_runner_reads_through_disk_cache(tmp_path, record, monkeypatch):
    """After a warm disk cache, run_benchmark never simulates."""
    with result_cache.temporary(tmp_path):
        clear_cache()
        first = run_benchmark("lua", "fibo", BASELINE, scale=6)
        clear_cache()  # drop the per-process memoisation

        def boom(*_args, **_kwargs):
            raise AssertionError("simulated despite a warm disk cache")

        from repro import api
        monkeypatch.setattr(api, "_engine_run", boom)
        again = run_benchmark("lua", "fibo", BASELINE, scale=6)
    clear_cache()
    assert again == first
    assert again is not first


def test_use_cache_false_bypasses_disk(tmp_path, record):
    with result_cache.temporary(tmp_path) as cache:
        clear_cache()
        run_benchmark("lua", "fibo", BASELINE, scale=6, use_cache=False)
        assert cache.stores == 0
        assert len(cache) == 0
    clear_cache()


# -- quarantine + verify -----------------------------------------------------

def test_corrupt_payload_is_quarantined(cache, record):
    cache.store(record)
    path = cache.path_for("lua", "fibo", BASELINE, 6)
    path.write_text("{not json")
    assert cache.load("lua", "fibo", BASELINE, 6) is None
    # The damaged file is parked under corrupt/, not deleted, and can
    # never be served again.
    assert not path.exists()
    parked = cache.root / "corrupt" / ("tree-a-" + path.name)
    assert parked.read_text() == "{not json"
    assert cache.quarantined == 1
    # A fresh store of the same cell works normally afterwards.
    cache.store(record)
    assert cache.load("lua", "fibo", BASELINE, 6) == record


def test_truncated_payload_is_quarantined(cache, record):
    cache.store(record)
    path = cache.path_for("lua", "fibo", BASELINE, 6)
    payload = json.loads(path.read_text())
    del payload["counters"]
    path.write_text(json.dumps(payload))
    assert cache.load("lua", "fibo", BASELINE, 6) is None
    assert cache.quarantined == 1


def _damage(cache, record, scale, text):
    path = cache.path_for(record.engine, record.benchmark,
                          record.config, scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def test_verify_classifies_valid_stale_and_damaged(tmp_path, record):
    current = ResultCache(tmp_path, tree_hash="tree-a")
    current.store(record)
    stale = ResultCache(tmp_path, tree_hash="tree-old")
    stale.store(record)
    bad = _damage(current, record, 7, "garbage")
    (current.tree_dir / "weird.json").write_text("{}")  # unparseable name

    report = current.verify()
    assert report["scanned"] == 4
    assert report["valid"] == 1
    assert report["stale"] == 1
    assert len(report["damaged"]) == 2
    assert report["quarantined"] == 2
    assert not bad.exists()
    assert sorted(p.name for p in (tmp_path / "corrupt").iterdir()) \
        == ["tree-a-weird.json", "tree-a-" + bad.name] \
        or len(list((tmp_path / "corrupt").iterdir())) == 2
    # A second scan finds a clean cache (damaged entries are gone).
    again = current.verify()
    assert again["damaged"] == []
    assert again["scanned"] == 2


def test_verify_without_quarantine_leaves_files(tmp_path, record):
    current = ResultCache(tmp_path, tree_hash="tree-a")
    bad = _damage(current, record, 7, "garbage")
    report = current.verify(quarantine=False)
    assert len(report["damaged"]) == 1
    assert report["quarantined"] == 0
    assert bad.exists()


def test_verify_empty_root(tmp_path):
    report = ResultCache(tmp_path / "absent", tree_hash="t").verify()
    assert report == {"scanned": 0, "valid": 0, "stale": 0,
                      "damaged": [], "quarantined": 0}


def test_prune_keeps_quarantine_directory(tmp_path, record):
    current = ResultCache(tmp_path, tree_hash="tree-a")
    _damage(current, record, 7, "garbage")
    current.verify()
    stale = ResultCache(tmp_path, tree_hash="tree-old")
    stale.store(record)
    assert current.prune() == 1  # tree-old removed...
    assert (tmp_path / "corrupt").is_dir()  # ...post-mortem evidence kept


def test_parse_name_roundtrip():
    parse = ResultCache._parse_name
    assert parse("lua-fibo-baseline-s8") == ("lua", "fibo", "baseline", 8)
    assert parse("js-n-sieve-typed-s400") == ("js", "n-sieve", "typed", 400)
    for name in ("weird", "lua-fibo-baseline", "lua-fibo-baseline-sX"):
        with pytest.raises(ValueError):
            parse(name)


# -- Counters round-trip (regression: as_dict omitted cpi,
# overflow_traps, load_use_stalls and type_hit_rate) ------------------------------

def test_counters_as_dict_is_complete():
    counters = Counters(core_instructions=900, host_instructions=100,
                        cycles=2000, load_use_stalls=7, overflow_traps=3,
                        type_hits=30, type_misses=10)
    view = counters.as_dict()
    assert view["cpi"] == pytest.approx(2.0)
    assert view["overflow_traps"] == 3
    assert view["load_use_stalls"] == 7
    assert view["type_hit_rate"] == pytest.approx(0.75)
    assert view["instructions"] == 1000
    assert view["ipc"] == pytest.approx(0.5)


def test_counters_dict_roundtrip(record):
    counters = record.counters
    rebuilt = Counters.from_dict(counters.as_dict())
    assert rebuilt == counters
    assert rebuilt.as_dict() == counters.as_dict()
    # derived keys must not leak into constructor arguments
    assert Counters.from_dict(Counters().as_dict()) == Counters()


def test_counters_roundtrip_survives_json(record):
    encoded = json.dumps(record.counters.as_dict(), sort_keys=True)
    rebuilt = Counters.from_dict(json.loads(encoded))
    assert rebuilt == record.counters
