"""Tests for report rendering and the disassembler's textual output."""

from repro.bench.report import format_bars, format_series, format_table
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.instructions import Instruction


# -- disassembler ----------------------------------------------------------------

def _disasm(text):
    (instr,) = assemble(text).instructions
    return disassemble(instr)


def test_disassemble_canonical_forms():
    assert _disasm("add a0, a1, a2") == "add a0, a1, a2"
    assert _disasm("ld t0, 8(sp)") == "ld t0, 8(sp)"
    assert _disasm("sd t0, -16(s0)") == "sd t0, -16(s0)"
    assert _disasm("fadd.d f1, f2, f3") == "fadd.d f1, f2, f3"
    assert _disasm("tld t0, 0(a0)") == "tld t0, 0(a0)"
    assert _disasm("tsd t0, 0(a0)") == "tsd t0, 0(a0)"
    assert _disasm("xadd t0, t1, t2") == "xadd t0, t1, t2"
    assert _disasm("tchk t1, t2") == "tchk t1, t2"
    assert _disasm("setoffset a0") == "setoffset a0"
    assert _disasm("flush_trt") == "flush_trt"
    assert _disasm("ecall") == "ecall"
    assert _disasm("chklb t0, 8(a1)") == "chklb t0, 8(a1)"


def test_disassemble_branch_keeps_label():
    program = assemble("loop:\nbeq a0, a1, loop")
    assert disassemble(program.instructions[0]) == "beq a0, a1, loop"


def test_disassemble_branch_without_label_shows_displacement():
    assert disassemble(Instruction("beq", rs1=10, rs2=11, imm=-8)) \
        == "beq a0, a1, . + -8"


def test_disassemble_jal_and_thdl():
    assert disassemble(Instruction("jal", rd=1, imm=16)) \
        == "jal ra, . + 16"
    assert disassemble(Instruction("thdl", imm=32)) == "thdl . + 32"


def test_disassemble_csr_style_u_format():
    assert disassemble(Instruction("lui", rd=10, imm=0x12345)) \
        == "lui a0, 0x12345"


# -- report ----------------------------------------------------------------------

def test_format_table_with_title_and_floats():
    text = format_table(["k", "v"], [("x", 0.5)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.500" in text


def test_format_bars_scaling_and_baseline():
    text = format_bars("chart", {"a": 1.0, "b": 2.0}, width=10,
                       baseline=1.0)
    lines = text.splitlines()
    assert lines[0] == "chart"
    bar_a = lines[1]
    bar_b = lines[2]
    assert bar_b.count("#") > bar_a.count("#")
    assert "|" in bar_a or "|" in bar_b  # baseline tick drawn
    assert "2.000" in bar_b


def test_format_bars_handles_empty_and_zero():
    assert format_bars("empty", {}) == "empty"
    text = format_bars("zeros", {"a": 0.0})
    assert "0.000" in text


def test_format_series():
    text = format_series("S", {"row": {"c1": 1, "c2": 2}})
    assert "c1" in text and "c2" in text and "row" in text
