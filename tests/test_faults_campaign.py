"""Campaign end-to-end: determinism across worker counts, the outcome
taxonomy, and the report shape."""

import json

import pytest

from repro.bench import cache as result_cache
from repro.bench.runner import clear_cache
from repro.faults import CLASSES, classify, run_campaign, watchdog_budget
from repro.faults.classify import DETECTED, HANG, MASKED, SDC
from repro.sim.errors import ExecutionLimitExceeded, IllegalInstruction

TINY = dict(seed=321, count=6, engines=("lua",), benchmarks=("fibo",),
            scales={"fibo": 8})


@pytest.fixture(autouse=True)
def fresh_caches():
    result_cache.disable()
    clear_cache()
    yield
    clear_cache()


# -- classify ----------------------------------------------------------------

GOLDEN = ("out\n", (3, 0, 0))


def test_classify_priority_order():
    output, golden_detect = GOLDEN
    limit = ExecutionLimitExceeded("budget")
    trap = IllegalInstruction("bad")
    guest = RuntimeError("lua error")  # stand-in for a guest abort
    assert classify(limit, output, output, golden_detect,
                    golden_detect) == HANG
    assert classify(trap, output, output, golden_detect,
                    golden_detect) == DETECTED
    # Extra TRT misses are detection evidence even when a guest error
    # follows (the hardware fired first).
    assert classify(guest, "x", output, (4, 0, 0),
                    golden_detect) == DETECTED
    # A guest-level abort with silent hardware is SDC, even with
    # golden-identical output text.
    assert classify(guest, output, output, golden_detect,
                    golden_detect) == SDC
    assert classify(None, output, output, golden_detect,
                    golden_detect) == MASKED
    assert classify(None, "wrong\n", output, golden_detect,
                    golden_detect) == SDC


def test_classify_counters_each_kind():
    output, golden = GOLDEN
    for position in range(3):
        faulty = list(golden)
        faulty[position] += 1
        assert classify(None, output, output, tuple(faulty),
                        golden) == DETECTED


def test_watchdog_budget():
    assert watchdog_budget(100) == 10_000  # floor dominates tiny runs
    assert watchdog_budget(1_000_000) == 2_000_000
    assert watchdog_budget(1_000_000, factor=3) == 3_000_000


# -- campaign ----------------------------------------------------------------

def test_campaign_deterministic_across_worker_counts():
    serial = run_campaign(max_workers=1, **TINY)
    clear_cache()
    parallel = run_campaign(max_workers=2, **TINY)
    assert json.dumps(serial, sort_keys=True) \
        == json.dumps(parallel, sort_keys=True)


def test_campaign_report_shape():
    from repro.engines import all_configs
    report = run_campaign(max_workers=1, **TINY)
    assert report["seed"] == TINY["seed"]
    assert report["count_per_cell"] == TINY["count"]
    # The campaign covers every registered config by default.
    assert sum(report["classes"].values()) \
        == len(all_configs()) * TINY["count"]
    assert set(report["classes"]) == set(CLASSES)
    assert set(report["coverage"]) == set(all_configs())
    for cell in report["cells"]:
        assert len(cell["injections"]) == TINY["count"]
        assert sum(cell["outcomes"].values()) == TINY["count"]
        assert cell["golden_instret"] > 0
        for injection in cell["injections"]:
            assert injection["class"] in CLASSES
            assert injection["spec"]["target"] in report["targets"]
    # The report must be JSON-serialisable as-is (the CLI dumps it).
    json.dumps(report)


def test_campaign_report_identical_with_compiled_engines_fenced(
        monkeypatch):
    """Every injected run must execute on the per-instruction loop
    (the fault hook's rebound ``step`` forces the deopt): with the
    trace and block engines made to explode on entry, the campaign
    still runs — and its report is byte-identical to the unfenced
    one, so the engines were never what produced the numbers."""
    from repro.uarch.pipeline import Machine

    reference = run_campaign(max_workers=1, **TINY)
    clear_cache()

    def boom(self, *_args, **_kwargs):  # pragma: no cover - must not run
        raise AssertionError("compiled engine entered during a "
                             "fault-injection run")

    monkeypatch.setattr(Machine, "_run_traces", boom)
    monkeypatch.setattr(Machine, "_run_blocks", boom)
    fenced = run_campaign(max_workers=1, **TINY)
    assert json.dumps(fenced, sort_keys=True) \
        == json.dumps(reference, sort_keys=True)


def test_campaign_same_plan_across_configs():
    report = run_campaign(max_workers=1, **TINY)
    sequences = {}
    for cell in report["cells"]:
        sequence = tuple((injection["spec"]["target"],
                          tuple(injection["spec"]["bits"]))
                         for injection in cell["injections"])
        sequences[cell["config"]] = sequence
    # All three configs face the same fault sequence (indices differ
    # because golden instruction counts differ, targets/bits do not).
    assert len(set(sequences.values())) == 1
