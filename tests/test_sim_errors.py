"""The error hierarchy: location context and the exact-point watchdog."""

import pytest

from repro.faults.inject import FaultSession
from repro.faults.plan import FaultSpec
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.errors import (
    ExecutionLimitExceeded,
    HostCallError,
    IllegalInstruction,
    MemoryError_,
    SimulationError,
)
from repro.sim.memory import Memory

SUBCLASSES = (MemoryError_, IllegalInstruction, HostCallError,
              ExecutionLimitExceeded)


def make_cpu(text, size=1 << 16):
    return Cpu(assemble(text), Memory(size=size))


LOOP = """
    li a0, 0
loop:
    addi a0, a0, 1
    beq x0, x0, loop
    ebreak
"""


@pytest.mark.parametrize("cls", SUBCLASSES)
def test_every_subclass_carries_context(cls):
    err = cls("boom", pc=0x1040, mnemonic="xadd")
    assert isinstance(err, SimulationError)
    assert err.pc == 0x1040
    assert err.mnemonic == "xadd"
    assert "pc=0x1040" in str(err)
    assert "op=xadd" in str(err)


def test_with_context_fills_only_missing_fields():
    err = SimulationError("boom", pc=0x10)
    err.with_context(pc=0x999, mnemonic="ld")
    assert err.pc == 0x10  # original raise site wins
    assert err.mnemonic == "ld"
    assert err.with_context(mnemonic="sd") is err  # chainable
    assert err.mnemonic == "ld"


def test_str_without_context_is_plain():
    assert str(SimulationError("boom")) == "boom"


def test_watchdog_fires_at_exact_instruction():
    cpu = make_cpu(LOOP)
    with pytest.raises(ExecutionLimitExceeded) as excinfo:
        cpu.run(max_instructions=500)
    assert cpu.instret == 500
    assert excinfo.value.pc is not None
    assert excinfo.value.mnemonic in ("addi", "beq")


def test_watchdog_exact_with_fault_hook_attached():
    """The fault hook must not skew the watchdog: the budget trips at
    the same exact instruction with a (no-op) injection attached."""
    cpu = make_cpu(LOOP)
    spec = FaultSpec(target="reg_value", index=100, bits=(40,), reg=20)
    FaultSession(cpu, [spec]).attach()
    with pytest.raises(ExecutionLimitExceeded):
        cpu.run(max_instructions=500)
    assert cpu.instret == 500


def test_watchdog_exact_under_machine_with_hook():
    from repro.uarch.pipeline import Machine

    cpu = make_cpu(LOOP)
    FaultSession(cpu, [FaultSpec(target="reg_value", index=7,
                                 bits=(1,), reg=20)]).attach()
    machine = Machine(cpu, use_blocks=True)  # hook forces deopt anyway
    with pytest.raises(ExecutionLimitExceeded) as excinfo:
        machine.run(max_instructions=333)
    assert cpu.instret == 333
    assert excinfo.value.pc is not None


def test_memory_fault_gains_pc_and_mnemonic():
    cpu = make_cpu("""
        li a0, 0x100000
        ld a1, 0(a0)
        ebreak
    """, size=1 << 12)
    with pytest.raises(MemoryError_) as excinfo:
        cpu.run(max_instructions=100)
    assert excinfo.value.pc == cpu.pc
    assert excinfo.value.mnemonic == "ld"
    assert "op=ld" in str(excinfo.value)


def test_illegal_instruction_carries_pc():
    cpu = make_cpu("""
        li a0, 0x7000
        jalr x0, 0(a0)
        ebreak
    """)
    with pytest.raises(IllegalInstruction) as excinfo:
        cpu.run(max_instructions=100)
    assert excinfo.value.pc == 0x7000
