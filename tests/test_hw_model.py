"""Area/power model tests against the paper's Table 8 anchors."""

import pytest

from repro.hw.synthesis import (
    area_overhead,
    edp_improvement,
    power_overhead,
    synthesize,
)


@pytest.fixture(scope="module")
def baseline():
    return synthesize(typed=False)


@pytest.fixture(scope="module")
def typed():
    return synthesize(typed=True)


def test_baseline_totals_near_paper(baseline):
    # Paper: 0.684 mm^2, 18.72 mW.  A structural model lands within 10%.
    assert abs(baseline.total_area - 0.684) / 0.684 < 0.10
    assert abs(baseline.total_power - 18.72) / 18.72 < 0.10


def test_baseline_module_breakdown_near_paper(baseline):
    anchors = {  # Table 8 baseline column
        "Core": (0.038, 2.22),
        "CSR": (0.008, 0.57),
        "Div": (0.006, 0.17),
        "FPU": (0.089, 3.18),
        "ICache": (0.251, 3.49),
        "DCache": (0.249, 3.71),
        "Uncore": (0.046, 4.75),
        "Wrapping": (0.011, 1.38),
    }
    for name, (area, power) in anchors.items():
        module = baseline.find(name)
        assert abs(module.area_mm2 - area) / area < 0.15, name
        assert abs(module.power_mw - power) / power < 0.15, name


def test_typed_overhead_is_small_and_core_concentrated(baseline, typed):
    # Paper: +1.6% area, +3.7% power, concentrated in the core module.
    assert 0.010 < area_overhead() < 0.025
    assert 0.02 < power_overhead() < 0.06
    core_delta = typed.find("Core").area_mm2 - baseline.find("Core").area_mm2
    total_delta = typed.total_area - baseline.total_area
    assert core_delta / total_delta > 0.85


def test_typed_core_near_paper(typed):
    # Paper typed column: Core 0.047 mm^2 / 2.74 mW.
    core = typed.find("Core")
    assert abs(core.area_mm2 - 0.047) / 0.047 < 0.15
    assert abs(core.power_mw - 2.74) / 2.74 < 0.15


def test_caches_unchanged_by_extension(baseline, typed):
    for name in ("ICache", "FPU", "Uncore", "Wrapping"):
        assert typed.find(name).area_mm2 == \
            pytest.approx(baseline.find(name).area_mm2)


def test_rows_cover_hierarchy(baseline):
    names = [row[0].strip() for row in baseline.rows()]
    assert names[0] == "Top"
    for name in ("Tile", "Core", "FPU", "ICache", "DCache", "Uncore"):
        assert name in names


def test_row_percentages_sum_consistently(baseline):
    rows = {name.strip(): (area_pct, power_pct)
            for name, _, area_pct, _, power_pct in baseline.rows()}
    assert rows["Top"] == (1.0, 1.0)
    tile_like = rows["Tile"][0] + rows["Uncore"][0] + rows["Wrapping"][0]
    assert tile_like == pytest.approx(1.0)


def test_edp_improvement_formula():
    # No speedup, no extra power: no improvement.
    assert edp_improvement(1.0, power_ratio=1.0) == pytest.approx(0.0)
    # 10% speedup at equal power improves EDP by 1 - 1/1.21.
    assert edp_improvement(1.1, power_ratio=1.0) == \
        pytest.approx(1 - 1 / 1.21)
    # Extra power eats into the gain.
    assert edp_improvement(1.1, power_ratio=1.05) < \
        edp_improvement(1.1, power_ratio=1.0)


def test_edp_with_paper_speedups_lands_near_paper():
    # Paper: 16.5% (Lua, 9.9% speedup) and 19.3% (JS, 11.2% speedup).
    lua = edp_improvement(1.099)
    js = edp_improvement(1.112)
    assert 0.10 < lua < 0.20
    assert 0.12 < js < 0.22
    assert js > lua
