"""Tests for the instruction- and bytecode-level tracers."""

from repro.engines.lua import vm as lua_vm
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.trace import BytecodeTracer, InstructionTracer


def test_instruction_tracer_records_effects():
    program = assemble("""
        li a0, 5
        li a1, 7
        add a2, a0, a1
        ebreak
    """)
    cpu = Cpu(program, Memory(size=4096))
    tracer = InstructionTracer(cpu, limit=None)
    tracer.run()
    text = tracer.format()
    assert "add a2, a0, a1" in text
    assert "a2=0xc" in text
    assert len(tracer.entries) == 4


def test_instruction_tracer_ring_buffer():
    program = assemble("""
        li a0, 100
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ebreak
    """)
    cpu = Cpu(program, Memory(size=4096))
    tracer = InstructionTracer(cpu, limit=10)
    tracer.run()
    assert len(tracer.entries) == 10  # only the tail is kept
    assert tracer.entries[-1].text == "ebreak"


def test_instruction_tracer_marks_typed_effects():
    from repro.isa.extension import arithmetic_rules
    from repro.sim.tagio import TagCodec
    memory = Memory(size=1 << 16)
    memory.store_u64(0x100, 4)
    memory.store_u64(0x108, 19)
    program = assemble("""
        li a0, 0b001
        setoffset a0
        li a0, 0x100
        tld t0, 0(a0)
        thdl slow
        xadd t1, t0, t0
        ebreak
    slow:
        ebreak
    """)
    codec = TagCodec(fp_tags={3})
    cpu = Cpu(program, memory, tag_codec=codec)
    cpu.trt.load_rules(arithmetic_rules(19, 3))
    tracer = InstructionTracer(cpu, limit=None)
    tracer.run()
    text = tracer.format()
    assert "[tag=19]" in text  # tagged load/ALU effects are visible


def test_instruction_tracer_marks_mispredict():
    memory = Memory(size=1 << 16)
    memory.store_u64(0x100, 4)
    memory.store_u64(0x108, 19)
    program = assemble("""
        li a0, 0b001
        setoffset a0
        li a0, 0x100
        tld t0, 0(a0)
        thdl slow
        xadd t1, t0, t0
        ebreak
    slow:
        ebreak
    """)
    from repro.sim.tagio import TagCodec
    cpu = Cpu(program, memory, tag_codec=TagCodec(fp_tags={3}))
    # Empty TRT: the xadd must mispredict.
    tracer = InstructionTracer(cpu, limit=None)
    tracer.run()
    assert "!type-mispredict" in tracer.format()


def test_bytecode_tracer_on_minilua():
    cpu, _runtime, program = lua_vm.prepare(
        "local s = 0 for i = 1, 3 do s = s + i end print(s)",
        config="baseline")
    _program, attribution = lua_vm.interpreter_program("baseline")
    entry_points = {}
    for index, entry_id in enumerate(attribution.entry_of):
        if entry_id >= 0:
            entry_points[program.base + 4 * index] = \
                attribution.entry_names[entry_id]
    tracer = BytecodeTracer(cpu, entry_points)
    tracer.run()
    assert tracer.counts["FORLOOP"] == 4  # 3 iterations + exit check
    assert tracer.counts["ADD"] == 3
    assert tracer.counts["CALL"] == 1  # print
    stream = list(tracer.trace)
    assert stream[-1] in ("RETURN0", "RETURN")
    assert "ADD" in tracer.format()
