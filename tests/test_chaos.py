"""Chaos harness: seed-deterministic fault schedules, MTTR
measurement from ring-membership samples, the chaos SLO gate's
violation matrix, cache-corruption quarantine, and one compact
end-to-end campaign against real shard subprocesses."""

import random

import pytest

from repro.bench import cache as result_cache
from repro.bench.gate import check_chaos
from repro.bench.runner import clear_cache, run_benchmark
from repro.serve.chaos import (ChaosSpec, build_fault_schedule,
                               corrupt_cache_entry, make_chaos_report,
                               measure_mttr, render_report, run_chaos)
from repro.serve.loadgen import LoadSpec


# -- fault schedule ----------------------------------------------------------

def test_schedule_is_seed_deterministic():
    spec = ChaosSpec(seed=99, shards=4, fault_count=6)
    assert build_fault_schedule(spec) == build_fault_schedule(spec)


def test_schedule_differs_across_seeds():
    schedules = [build_fault_schedule(
        ChaosSpec(seed=seed, shards=64, fault_count=4))
        for seed in (1, 2)]
    assert schedules[0] != schedules[1]          # shard draws differ
    # ... but only in the shard draws: kinds and offsets are fixed.
    strip = [[{k: v for k, v in e.items() if k != "shard"}
              for e in schedule] for schedule in schedules]
    assert strip[0] == strip[1]


def test_schedule_shape():
    spec = ChaosSpec(faults=("kill", "stall", "blackhole"),
                     fault_count=5, shards=3)
    events = build_fault_schedule(spec)
    assert [e["kind"] for e in events] \
        == ["kill", "stall", "blackhole", "kill", "stall"]  # cycle
    lo, hi = spec.window
    duration = spec.load.duration
    for event in events:
        assert duration * lo <= event["at"] <= duration * hi
        assert 0 <= event["shard"] < spec.shards
    offsets = [e["at"] for e in events]
    assert offsets == sorted(offsets)            # evenly spaced, ordered
    by_kind = {e["kind"]: e["duration"] for e in events}
    assert by_kind["kill"] == 0.0
    assert by_kind["stall"] == spec.stall_seconds
    assert by_kind["blackhole"] == spec.blackhole_seconds


def test_default_schedule_is_pinned():
    # The CI smoke run's schedule — kill then stall, evenly spaced
    # inside the default window. Changing any default that moves these
    # events silently changes what CI exercises; fail loudly instead.
    events = build_fault_schedule(ChaosSpec())
    assert [e["kind"] for e in events] == ["kill", "stall"]
    assert [e["at"] for e in events] == [1.6, 5.2]


def test_schedule_rejects_unknown_fault_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        build_fault_schedule(ChaosSpec(faults=("kill", "meteor")))


# -- MTTR --------------------------------------------------------------------

A, B = "unix:/a.sock", "unix:/b.sock"


def test_mttr_zero_when_shard_never_left_the_ring():
    samples = [(1.0, frozenset({A, B})), (2.0, frozenset({A, B}))]
    assert measure_mttr(samples, A, 0.5) == 0.0


def test_mttr_is_injection_to_readmission_delta():
    samples = [(1.2, frozenset({B})), (2.5, frozenset({A, B}))]
    assert measure_mttr(samples, A, 1.0) == 1.5


def test_mttr_none_when_shard_never_returned():
    samples = [(1.0, frozenset({B})), (2.0, frozenset({B}))]
    assert measure_mttr(samples, A, 0.5) is None


def test_mttr_ignores_samples_before_injection():
    # A pre-injection absence (e.g. the previous fault's tail) must
    # not be billed to this fault.
    samples = [(0.5, frozenset({B})), (1.5, frozenset({A, B}))]
    assert measure_mttr(samples, A, 1.0) == 0.0


# -- the chaos SLO gate ------------------------------------------------------

def _report(**overrides):
    report = {
        "traffic": {"offered": 12, "classified": 12, "served": 10,
                    "retried": 2, "shed": 0, "busy": 0, "lost": 0,
                    "duplicated": 0, "lost_samples": []},
        "latency_ms": {"p50": 5.0, "p95": 9.0, "p99": 9.5,
                       "max": 10.0},
        "faults": [{"kind": "kill", "shard": 1, "shard_id": A,
                    "at": 1.6, "duration": 0.0, "mttr_seconds": 0.5,
                    "recovered": True}],
        "recovery": {"ring_full": True, "expected": [A, B],
                     "max_mttr_seconds": 0.5, "unrecovered": []},
    }
    for key, value in overrides.items():
        section, _, field = key.partition(".")
        if field:
            report[section][field] = value
        else:
            report[section] = value
    return make_chaos_report(report)


def test_gate_passes_a_clean_report():
    violations, text = check_chaos(_report())
    assert violations == []
    assert text.startswith("CHAOS GATE: ok")


def test_gate_fails_on_lost_requests():
    violations, _ = check_chaos(_report(**{"traffic.lost": 1}))
    assert any("LOST" in v for v in violations)


def test_gate_fails_on_duplicated_terminals():
    violations, _ = check_chaos(_report(**{"traffic.duplicated": 1}))
    assert any("exactly-once" in v for v in violations)


def test_gate_fails_when_a_fault_never_recovers():
    report = _report()
    report["faults"][0]["mttr_seconds"] = None
    violations, _ = check_chaos(report)
    assert any("never recovered" in v for v in violations)


def test_gate_bounds_mttr():
    report = _report()
    report["faults"][0]["mttr_seconds"] = 2.0
    assert check_chaos(report)[0] == []          # inside default bound
    violations, _ = check_chaos(report, max_mttr_seconds=1.0)
    assert any("took 2.00s" in v for v in violations)


def test_gate_fails_on_a_degraded_ring():
    violations, _ = check_chaos(
        _report(**{"recovery.ring_full": False,
                   "recovery.unrecovered": [A]}))
    assert any("full strength" in v for v in violations)


def test_gate_requires_some_traffic_served():
    violations, _ = check_chaos(
        _report(**{"traffic.served": 0, "traffic.retried": 0}))
    assert any("served under faults" in v for v in violations)


def test_gate_rejects_unknown_overrides():
    with pytest.raises(ValueError, match="unknown chaos SLO"):
        check_chaos(_report(), max_typos=1)


def test_gate_rejects_an_unstamped_payload():
    violations, text = check_chaos({"traffic": {}})
    assert violations and "unreadable artifact" in text


# -- cache corruption --------------------------------------------------------

def test_corrupt_entry_is_quarantined_and_recomputed(tmp_path):
    cache_root = tmp_path / "cache"
    clear_cache()
    with result_cache.temporary(cache_root):
        golden = run_benchmark("lua", "fibo", "baseline", scale=8)
        victim = corrupt_cache_entry(cache_root, random.Random(0))
        assert victim is not None
        clear_cache()                            # drop the memo layer
        again = run_benchmark("lua", "fibo", "baseline", scale=8)
        # The corrupt entry was a miss, never a served wrong answer.
        assert again.output == golden.output
        assert again.counters.as_dict() == golden.counters.as_dict()
        quarantined = list(cache_root.rglob("corrupt/*"))
        assert len(quarantined) == 1
    clear_cache()


def test_corrupt_entry_on_an_empty_cache_is_a_noop(tmp_path):
    assert corrupt_cache_entry(tmp_path, random.Random(0)) is None


# -- end to end --------------------------------------------------------------

def test_chaos_campaign_end_to_end(tmp_path):
    """A compact kill-only campaign against two real shard processes:
    no request lost or duplicated, the killed shard rejoins the ring,
    and the stamped artifact clears the gate."""
    spec = ChaosSpec(
        load=LoadSpec(qps=4.0, duration=3.0, keys=4, threads=4,
                      configs=("baseline",)),
        shards=2, faults=("kill",), window=(0.3, 0.5),
        recovery_timeout=20.0)
    clear_cache()
    with result_cache.temporary(tmp_path / "cache"):
        report = run_chaos(spec, cache_dir=str(tmp_path / "cache"),
                           log_dir=str(tmp_path))
    clear_cache()
    traffic = report["traffic"]
    assert traffic["classified"] == traffic["offered"]
    assert traffic["lost"] == 0
    assert traffic["duplicated"] == 0
    assert traffic["served"] + traffic["retried"] >= 1
    assert report["recovery"]["ring_full"]
    (fault,) = report["faults"]
    assert fault["kind"] == "kill" and fault["recovered"]
    assert report["supervisor"]["respawns"] >= 1
    violations, text = check_chaos(make_chaos_report(report))
    assert violations == [], text
    render_report(report)                        # must not raise
