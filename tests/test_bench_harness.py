"""Tests for the benchmark runner, experiment aggregation and reports."""

import pytest

from repro.bench import experiments
from repro.bench.report import format_percent, format_table
from repro.bench.runner import (
    clear_cache,
    run_benchmark,
    run_matrix,
    verify_outputs_match,
)
from repro.cli import build_parser
from repro.engines import BASELINE, CHECKED_LOAD, CONFIGS, TYPED

SMALL = ("fibo", "n-sieve")
SCALES = {"fibo": 8, "n-sieve": 60}


@pytest.fixture(scope="module")
def records():
    clear_cache()
    return run_matrix(benchmarks=SMALL, scales=SCALES)


def test_matrix_covers_all_cells(records):
    assert len(records) == 2 * len(SMALL) * len(CONFIGS)
    for (engine, benchmark, config), record in records.items():
        assert record.engine == engine
        assert record.benchmark == benchmark
        assert record.counters.cycles > 0


def test_run_benchmark_caches(records):
    first = run_benchmark("lua", "fibo", BASELINE, scale=SCALES["fibo"])
    second = run_benchmark("lua", "fibo", BASELINE, scale=SCALES["fibo"])
    assert first is second
    fresh = run_benchmark("lua", "fibo", BASELINE, scale=SCALES["fibo"],
                          use_cache=False)
    assert fresh is not first
    assert fresh.output == first.output


def test_verify_outputs_match_detects_divergence(records):
    assert verify_outputs_match(records) == []
    poisoned = dict(records)
    key = ("lua", "fibo", TYPED)
    import copy
    bad = copy.copy(poisoned[key])
    bad.output = "divergent!"
    poisoned[key] = bad
    assert ("lua", "fibo") in verify_outputs_match(poisoned)


def test_figure5_structure(records):
    speedups = experiments.figure5.__globals__  # noqa: F841 sanity import
    data = _figure_subset(experiments.figure5, records)
    for engine in ("lua", "js"):
        assert data[engine]["geomean"][BASELINE] == pytest.approx(1.0)
        assert data[engine]["geomean"][TYPED] > 1.0


def _figure_subset(figure_fn, records):
    """Run a figure over the reduced benchmark set."""
    import repro.bench.experiments as exp
    original = exp.BENCHMARK_ORDER
    exp.BENCHMARK_ORDER = SMALL
    try:
        return figure_fn(records)
    finally:
        exp.BENCHMARK_ORDER = original


def test_figure6_reduction_positive(records):
    data = _figure_subset(experiments.figure6, records)
    for engine in ("lua", "js"):
        for name in SMALL:
            assert data[engine][name][TYPED] > 0
            assert data[engine][name][BASELINE] == 0.0


def test_figure9_normalisation(records):
    data = _figure_subset(experiments.figure9, records)
    for engine in ("lua", "js"):
        for name in SMALL:
            values = data[engine][name]
            assert values["typed_hit"] > 0
            assert values["typed_miss"] == 0  # monomorphic kernels
            assert values["chklb_hit"] > 0


def test_figure2a_fractions_sum_to_one(records):
    data = _figure_subset(experiments.figure2a, records)
    for name in SMALL:
        assert sum(data[name].values()) == pytest.approx(1.0)


def test_figure2b_dispatch_share_included(records):
    data = _figure_subset(experiments.figure2b, records)
    add = data["ADD"]
    assert add["executions"] > 0
    assert add["per_bytecode"] > 7  # at least the dispatch sequence


def test_table8_uses_measured_speedups(records):
    data = _figure_subset(experiments.figure5, records)
    speedups = {engine: data[engine]["geomean"][TYPED]
                for engine in ("lua", "js")}
    summary, text = experiments.table8(speedups=speedups)
    assert summary["speedups"] == speedups
    assert "Core" in text
    assert summary["edp_improvement"]["lua"] == pytest.approx(
        1 - (1 + summary["power_overhead"]) / speedups["lua"] ** 2)


def test_geomean():
    assert experiments.geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert experiments.geomean([]) == 0.0


# -- report formatting -----------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["name", "value"], [("a", 1.5), ("long-name", 22)])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert all(len(line) <= len(max(lines, key=len)) for line in lines)
    assert "1.500" in text


def test_format_percent():
    assert format_percent(0.125) == "12.5%"
    assert format_percent(0.05, signed=True) == "+5.0%"
    assert format_percent(-0.05, signed=True) == "-5.0%"


# -- CLI -------------------------------------------------------------------------

def test_cli_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["run", "fibo", "--config", "typed",
                              "--scale", "6"])
    assert args.benchmark == "fibo"
    assert args.config == "typed"
    args = parser.parse_args(["sweep", "--quick"])
    assert args.quick
    args = parser.parse_args(["tables"])
    assert args.command == "tables"


def test_cli_run_executes(capsys):
    from repro.cli import main
    assert main(["run", "fibo", "--scale", "6", "--config",
                 CHECKED_LOAD]) == 0
    captured = capsys.readouterr().out
    assert captured.startswith("8\n")  # fib(6)
    assert "cycles" in captured


def test_cli_tables(capsys):
    from repro.cli import main
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 8" in out


def test_figure9_detail_per_bytecode(records):
    data = _figure_subset(experiments.figure9_detail, records)
    assert "ADD" in data
    assert data["ADD"]["executions"] > 0
    assert data["ADD"]["hit_rate"] > 0.9
    assert data["ADD"]["miss_rate"] == 0.0
    text = experiments.render_figure9_detail(data)
    assert "ADD" in text


def test_to_json_snapshot_is_serialisable(records):
    import json
    snapshot = _figure_subset(experiments.to_json, records)
    encoded = json.dumps(snapshot, sort_keys=True)
    decoded = json.loads(encoded)
    assert decoded["geomeans"]["lua"]["typed"] > 1.0
    assert set(decoded) >= {"figure2a", "figure5", "figure6", "figure7",
                            "figure8", "figure9", "table8"}


def test_cli_profile(capsys):
    from repro.cli import main
    assert main(["profile", "fibo", "--scale", "6", "--top", "5",
                 "--buckets"]) == 0
    out = capsys.readouterr().out
    assert "Per-opcode flat profile" in out
    assert "Type Rule Table attribution" in out
    assert "CALL" in out          # the hot table names bytecodes
    assert "dispatch" in out      # --buckets keeps the handler view


def test_cli_sweep_parser_cache_flags():
    parser = build_parser()
    args = parser.parse_args(["sweep", "--jobs", "4", "--no-disk-cache",
                              "--cache-dir", "/tmp/x"])
    assert args.jobs == 4
    assert args.no_disk_cache
    assert args.cache_dir == "/tmp/x"
    args = parser.parse_args(["sweep", "--smoke"])
    assert args.smoke and args.jobs is None


def test_cli_sweep_smoke(capsys):
    """The ``make sweep`` smoke target: one benchmark across every
    registered config, cold then warm, against a throwaway disk
    cache, with the N-config figure 5/9 tables rendered."""
    from repro.cli import main
    from repro.engines import all_configs
    cells = len(all_configs())
    assert main(["sweep", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "warm hits %d/%d" % (cells, cells) in out
    assert "records identical" in out
    assert "sweep smoke: OK" in out
    assert "Figure 5" in out and "Figure 9" in out
    assert "selftag" in out and "typed-lowbit" in out


def test_cli_trace_parser():
    parser = build_parser()
    args = parser.parse_args(["trace", "fibo", "--bytecodes",
                              "--limit", "10"])
    assert args.bytecodes and args.limit == 10
    args = parser.parse_args(["run", "fibo", "--model", "scoreboard"])
    assert args.model == "scoreboard"
