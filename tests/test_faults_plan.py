"""Injection plans: determinism, target balance, spec round-trips."""

import random

from repro.faults.plan import TARGETS, FaultSpec, InjectionPlan, derive_seed


def test_same_seed_same_plan():
    a = InjectionPlan(seed=99, count=30).resolve(10_000)
    b = InjectionPlan(seed=99, count=30).resolve(10_000)
    assert a == b


def test_different_seeds_differ():
    a = InjectionPlan(seed=1, count=30).resolve(10_000)
    b = InjectionPlan(seed=2, count=30).resolve(10_000)
    assert a != b


def test_round_robin_covers_every_target():
    specs = InjectionPlan(seed=5, count=len(TARGETS) * 4).resolve(1000)
    per_target = {target: 0 for target in TARGETS}
    for spec in specs:
        per_target[spec.target] += 1
    assert all(count == 4 for count in per_target.values()), per_target


def test_resolve_bounds_and_scaling():
    plan = InjectionPlan(seed=7, count=50)
    for length in (2, 10, 1_000, 5_000_000):
        for spec in plan.resolve(length):
            assert 1 <= spec.index < max(2, length)
    # The same schedule lands at the same *relative* point in runs of
    # different lengths (the cross-config fairness property).
    short = plan.resolve(1_000)
    long = plan.resolve(100_000)
    for a, b in zip(short, long):
        assert abs(a.index / 1_000 - b.index / 100_000) < 0.01
        assert (a.target, a.bits, a.reg, a.slot, a.kind) \
            == (b.target, b.bits, b.reg, b.slot, b.kind)


def test_spec_mask_and_roundtrip():
    spec = FaultSpec(target="reg_value", index=17, bits=(0, 5),
                     reg=9, kind="value")
    assert spec.mask == 0b100001
    assert FaultSpec.from_dict(spec.as_dict()) == spec
    # Frozen + tuple fields => hashable (rides in executor task tuples).
    assert hash(spec) == hash(FaultSpec.from_dict(spec.as_dict()))


def test_spec_fields_in_valid_ranges():
    specs = InjectionPlan(seed=11, count=200).resolve(10_000)
    for spec in specs:
        if spec.target in ("reg_value", "reg_tag"):
            assert 1 <= spec.reg < 32
        if spec.target == "reg_value":
            assert all(0 <= bit < 64 for bit in spec.bits)
        if spec.target == "reg_tag":
            assert spec.kind in ("tag", "fbit")
            if spec.kind == "fbit":
                assert spec.bits == ()
            else:
                assert all(0 <= bit < 8 for bit in spec.bits)
        if spec.target == "trt":
            assert spec.kind in ("out", "key")
            assert 0 <= spec.slot < 64
        if spec.target == "extractor":
            assert spec.kind in ("offset", "shift", "mask")
        assert 1 <= len(spec.bits) <= 2 or spec.kind == "fbit"


def test_derive_seed_is_stable_and_avalanching():
    assert derive_seed(1, "lua", "fibo") == derive_seed(1, "lua", "fibo")
    assert derive_seed(1, "lua", "fibo") != derive_seed(2, "lua", "fibo")
    assert derive_seed(1, "lua", "fibo") != derive_seed(1, "js", "fibo")


def test_plan_does_not_disturb_global_rng():
    random.seed(123)
    expected = random.random()
    random.seed(123)
    InjectionPlan(seed=4, count=20).resolve(100)
    assert random.random() == expected
