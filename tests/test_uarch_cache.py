"""Cache model tests: mapping, associativity, LRU."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uarch.cache import Cache
from repro.uarch.config import CacheConfig


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheConfig(size_bytes=ways * sets * line, ways=ways,
                             line_bytes=line))


def test_rejects_non_power_of_two_geometry():
    """Regression: a 48B line used to silently truncate line_shift
    (mapping two addresses of one line to different sets) instead of
    being rejected like a non-power-of-two set count."""
    with pytest.raises(ValueError, match="line size"):
        small_cache(ways=2, sets=4, line=48)
    with pytest.raises(ValueError, match="line size"):
        Cache(CacheConfig(size_bytes=768, ways=2, line_bytes=0))
    with pytest.raises(ValueError, match="set count"):
        small_cache(ways=2, sets=3, line=64)


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True
    assert cache.access(0x1008) is True  # same 64B line
    assert cache.misses == 1
    assert cache.accesses == 3


def test_set_mapping_no_conflict_across_sets():
    cache = small_cache(ways=1, sets=4)
    assert cache.access(0 * 64) is False
    assert cache.access(1 * 64) is False
    assert cache.access(2 * 64) is False
    assert cache.access(0 * 64) is True  # different sets, no eviction


def test_conflict_eviction_direct_mapped():
    cache = small_cache(ways=1, sets=4)
    stride = 4 * 64  # same set
    assert cache.access(0) is False
    assert cache.access(stride) is False  # evicts line 0
    assert cache.access(0) is False        # miss again


def test_lru_replacement_order():
    cache = small_cache(ways=2, sets=1)
    cache.access(0 * 64)   # A
    cache.access(1 * 64)   # B
    cache.access(0 * 64)   # touch A -> B is LRU
    cache.access(2 * 64)   # C evicts B
    assert cache.access(0 * 64) is True   # A survived
    assert cache.access(1 * 64) is False  # B evicted


def test_flush_invalidates():
    cache = small_cache()
    cache.access(0x40)
    cache.flush()
    assert cache.access(0x40) is False


def test_contains_is_non_intrusive():
    cache = small_cache()
    cache.access(0x40)
    accesses = cache.accesses
    assert cache.contains(0x40)
    assert not cache.contains(0x4000)
    assert cache.accesses == accesses


def test_default_16kb_geometry():
    config = CacheConfig()
    assert config.sets == 64
    cache = Cache(config)
    # 64 sets x 4 ways x 64B: 256 distinct lines fit without eviction.
    for i in range(256):
        cache.access(i * 64)
    assert cache.misses == 256
    for i in range(256):
        assert cache.access(i * 64) is True


@given(addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
def test_working_set_within_capacity_always_hits_second_pass(addresses):
    """Property: any set of <= ways distinct lines per set re-hits."""
    cache = small_cache(ways=4, sets=8)
    lines = {addr >> 6 for addr in addresses}
    per_set = {}
    for line in lines:
        per_set.setdefault(line % 8, []).append(line)
    if any(len(v) > 4 for v in per_set.values()):
        return  # exceeds associativity; no guarantee
    for addr in addresses:
        cache.access(addr)
    for addr in addresses:
        assert cache.access(addr) is True


def test_miss_rate_property():
    cache = small_cache()
    assert cache.miss_rate == 0.0
    cache.access(0)
    assert cache.miss_rate == 1.0
    cache.access(0)
    assert cache.miss_rate == 0.5
