"""Differential and behavioural tests across machine configs (MiniJS)."""

import pytest

from repro.engines import CONFIGS
from repro.engines.js import run_js

PROGRAMS = {
    "int_arith": """
        var s = 0;
        for (var i = 1; i <= 300; i++) s = s + i * 2 - 1;
        print(s);
    """,
    "float_arith": """
        var s = 0.5;
        for (var i = 0; i < 300; i++) s = s * 1.01 + 0.25;
        print(s);
    """,
    "arrays": """
        var a = [];
        for (var i = 0; i < 200; i++) a[i] = i;
        var s = 0;
        for (i = 0; i < 200; i++) s += a[i];
        print(s);
    """,
    "overflow": """
        var x = 2000000000;
        var s = 0;
        for (var i = 0; i < 20; i++) s = s + x;
        print(s);
    """,
    "properties": """
        var o = {a: 1, b: 2};
        var s = 0;
        for (var i = 0; i < 40; i++) s += o.a + o.b;
        print(s);
    """,
}


@pytest.fixture(scope="module")
def results():
    return {name: {config: run_js(source, config=config)
                   for config in CONFIGS}
            for name, source in PROGRAMS.items()}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_outputs_identical_across_configs(results, name):
    outputs = {cfg: r.output for cfg, r in results[name].items()}
    assert len(set(outputs.values())) == 1, outputs


@pytest.mark.parametrize("name", ["int_arith", "arrays"])
def test_typed_fastest(results, name):
    cycles = {cfg: r.counters.cycles for cfg, r in results[name].items()}
    assert cycles["typed"] < cycles["chklb"] < cycles["baseline"]


def test_typed_handles_doubles_without_misses(results):
    counters = results["float_arith"]["typed"].counters
    assert counters.type_hits > 0
    assert counters.type_misses == 0


def test_chklb_falls_off_fast_path_on_doubles(results):
    counters = results["float_arith"]["chklb"].counters
    assert counters.chk_misses > 0


def test_overflow_triggers_hardware_misprediction(results):
    counters = results["overflow"]["typed"].counters
    assert counters.overflow_traps > 0
    # And the result is still numerically correct (double conversion).
    assert results["overflow"]["typed"].output == "40000000000\n"


def test_property_access_misses_tchk(results):
    counters = results["properties"]["typed"].counters
    assert counters.type_misses > 0  # string keys leave the fast path


def test_bytecode_counts_identical(results):
    counts = [r.counters.bytecode_counts
              for r in results["arrays"].values()]
    assert counts[0] == counts[1] == counts[2]
    assert counts[0]["GETELEM"] >= 200
    assert counts[0]["SETELEM"] >= 200


def test_host_costs_identical(results):
    hosts = {cfg: r.counters.host_instructions
             for cfg, r in results["properties"].items()}
    assert len(set(hosts.values())) == 1
