"""Block compile failure is a degradation, not a crash: the entry PC
falls back to an interpreted step with identical accounting, and the
failure lands on the telemetry degradation ledger."""

import pytest

from repro.isa.assembler import assemble
from repro.sim import blocks
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.telemetry.core import clear_degradations, degradations
from repro.uarch.pipeline import DEFAULT_CONFIG, Machine


@pytest.fixture(autouse=True)
def fresh_ledger():
    clear_degradations()
    yield
    clear_degradations()


def _machine(text, **kwargs):
    cpu = Cpu(assemble(text), Memory(size=1 << 16))
    return cpu, Machine(cpu, **kwargs)


PROGRAM = """
    li a0, 0
    li a1, 10
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    ebreak
"""


def _boom(*_args, **_kwargs):
    raise RuntimeError("codegen exploded")


def test_compile_failure_degrades_to_interpreted_step(monkeypatch):
    cpu_ref, machine_ref = _machine(PROGRAM, use_blocks=False)
    ref = machine_ref.run(max_instructions=10_000)

    monkeypatch.setattr(blocks, "_compile_block", _boom)
    cpu_deg, machine_deg = _machine(PROGRAM, use_blocks=True)
    deg = machine_deg.run(max_instructions=10_000)

    # Bit-identical counters and architectural state despite every
    # single block compile failing.
    assert deg.as_dict() == ref.as_dict()
    assert cpu_deg.regs.value == cpu_ref.regs.value
    assert cpu_deg.pc == cpu_ref.pc


def test_compile_failure_recorded_on_ledger(monkeypatch):
    monkeypatch.setattr(blocks, "_compile_block", _boom)
    _cpu, machine = _machine(PROGRAM, use_blocks=True)
    machine.run(max_instructions=10_000)

    events = [e for e in degradations()
              if e["name"] == "block_compile_failed"]
    assert events, "degradation ledger is empty"
    for event in events:
        assert event["cat"] == "degradation"
        assert "RuntimeError: codegen exploded" in event["error"]
        assert isinstance(event["pc"], int)
        assert event["mnemonic"]


def test_fallback_is_permanent_for_that_pc(monkeypatch):
    program = assemble(PROGRAM)
    table = blocks.BlockTable(program, DEFAULT_CONFIG)
    monkeypatch.setattr(blocks, "_compile_block", _boom)
    degraded = table.block_at(0)
    assert table.compile_failures == 1
    monkeypatch.undo()
    # Compilation works again, but the degraded entry must stay pinned:
    # a flapping PC would re-pay the failure path on every visit.
    assert table.block_at(0) is degraded
    assert table.compile_failures == 1
    assert len(degradations()) == 1


def test_partial_failure_only_degrades_failing_entry(monkeypatch):
    program = assemble(PROGRAM)
    table = blocks.BlockTable(program, DEFAULT_CONFIG)
    real_compile = blocks._compile_block

    def fail_entry_zero(table_, index, max_len):
        if index == 0:
            raise RuntimeError("codegen exploded")
        return real_compile(table_, index, max_len)

    monkeypatch.setattr(blocks, "_compile_block", fail_entry_zero)
    table.block_at(0)
    table.block_at(2)
    assert table.compile_failures == 1
    assert table.compiled == 1
    assert table.block_at(0)[1] == 1  # degraded: single-step entry
    assert table.block_at(2)[1] > 1   # healthy block still fuses


def test_degraded_single_at_keeps_budget_exact(monkeypatch):
    from repro.sim.errors import ExecutionLimitExceeded

    monkeypatch.setattr(blocks, "_compile_block", _boom)
    cpu, machine = _machine(PROGRAM, use_blocks=True)
    with pytest.raises(ExecutionLimitExceeded):
        machine.run(max_instructions=7)
    assert cpu.instret == 7
