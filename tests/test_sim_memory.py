"""Unit and property tests for the flat memory model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.errors import MemoryError_
from repro.sim.memory import Memory


def test_zero_initialised():
    mem = Memory(size=4096)
    assert mem.load(0, 8) == 0
    assert mem.load_u8(4095) == 0


def test_store_load_widths():
    mem = Memory(size=4096)
    mem.store(0, 1, 0xAB)
    mem.store(8, 2, 0xBEEF)
    mem.store(16, 4, 0xDEADBEEF)
    mem.store(24, 8, 0x0123456789ABCDEF)
    assert mem.load(0, 1) == 0xAB
    assert mem.load(8, 2) == 0xBEEF
    assert mem.load(16, 4) == 0xDEADBEEF
    assert mem.load(24, 8) == 0x0123456789ABCDEF


def test_little_endian_layout():
    mem = Memory(size=64)
    mem.store(0, 8, 0x0102030405060708)
    assert mem.load_u8(0) == 0x08
    assert mem.load_u8(7) == 0x01


def test_signed_loads():
    mem = Memory(size=64)
    mem.store(0, 1, 0xFF)
    assert mem.load(0, 1, signed=True) == -1
    assert mem.load(0, 1, signed=False) == 0xFF
    mem.store(8, 4, 0x80000000)
    assert mem.load(8, 4, signed=True) == -(1 << 31)


def test_store_truncates_to_width():
    mem = Memory(size=64)
    mem.store(0, 1, 0x1FF)
    assert mem.load(0, 1) == 0xFF
    assert mem.load(1, 1) == 0


def test_out_of_range_raises():
    mem = Memory(size=64)
    with pytest.raises(MemoryError_):
        mem.load(64, 1)
    with pytest.raises(MemoryError_):
        mem.load(60, 8)
    with pytest.raises(MemoryError_):
        mem.store(-1, 1, 0)


def test_bulk_read_write():
    mem = Memory(size=64)
    mem.write_bytes(8, b"hello")
    assert mem.read_bytes(8, 5) == b"hello"


@given(addr=st.integers(min_value=0, max_value=1016),
       value=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_u64_roundtrip(addr, value):
    mem = Memory(size=1024)
    mem.store_u64(addr, value)
    assert mem.load_u64(addr) == value


@given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_signed_u64_roundtrip(value):
    mem = Memory(size=64)
    mem.store(0, 8, value)
    assert mem.load(0, 8, signed=True) == value
