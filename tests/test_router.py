"""The consistent-hash router: deterministic placement/affinity,
failover on shard loss, the router-side shared-cache probe, graceful
drain with zero dropped forwards, and aggregated status.

Shards are in-process :class:`tests.test_serve.Harness` daemons
(inline pool — deterministic), fronted by a real
:class:`RouterServer` on its own thread."""

import asyncio
import json
import threading
import time

import pytest

from repro import api
from repro.bench import cache as result_cache
from repro.bench.runner import clear_cache
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.hashring import HashRing
from repro.serve.router import Router, RouterServer, ShardSpec
from tests.test_serve import Harness, gated_harness


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path / "cache"):
        yield
    clear_cache()


class RouterHarness:
    """A router thread over already-started shard harnesses."""

    def __init__(self, tmp_path, shards, **router_kwargs):
        router_kwargs.setdefault("health_interval", 0.2)
        router_kwargs.setdefault("backoff", 0.05)
        self.socket_path = str(tmp_path / "router.sock")
        self.specs = [ShardSpec(socket_path=shard.socket_path)
                      for shard in shards]
        self.router = Router(self.specs, **router_kwargs)
        self._ready = threading.Event()
        self.exited = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            server = RouterServer(self.router,
                                  socket_path=self.socket_path)
            await server.start()
            self._ready.set()
            await server.serve_until_stopped()
        asyncio.run(main())
        self.exited.set()

    def start(self):
        self._thread.start()
        assert self._ready.wait(10), "router never came up"
        return self

    def client(self, timeout=120.0):
        return ServeClient(socket_path=self.socket_path, timeout=timeout)

    def stop(self):
        if not self.exited.is_set():
            try:
                with self.client(10) as client:
                    client.drain()
            except (OSError, ServeError):
                pass
        assert self.exited.wait(30), "router never drained"


@pytest.fixture
def tier(tmp_path):
    shard_dirs = [tmp_path / ("shard-%d" % i) for i in range(2)]
    for directory in shard_dirs:
        directory.mkdir()
    shards = [Harness(directory).start() for directory in shard_dirs]
    router = RouterHarness(tmp_path, shards).start()
    yield router, shards
    router.stop()
    for shard in shards:
        shard.stop()


def _routed_shards(client, source, repeats=1):
    """Submit ``source`` ``repeats`` times; return the shard ids from
    the streamed ``routed`` events."""
    shards = []

    def on_event(frame):
        if frame.get("event") == "routed":
            shards.append(frame["shard"])

    for _ in range(repeats):
        result = client.run("lua", source, config="baseline",
                            on_event=on_event)
        assert result.ok
    return shards


def test_routed_submit_matches_in_process(tier):
    router, _shards = tier
    source = "local s = 0\nfor i = 1, 64 do s = s + i end\nprint(s)\n"
    expected = api.run("lua", source, config="baseline")
    with router.client() as client:
        served = client.run("lua", source, config="baseline")
    assert served.ok and served.output == expected.output
    assert json.dumps(served.counters.as_dict(), sort_keys=True) \
        == json.dumps(expected.counters.as_dict(), sort_keys=True)


def test_placement_is_deterministic_and_matches_the_ring(tier):
    router, _shards = tier
    sources = ["print(%d)\n" % value for value in range(8)]
    ring = HashRing([spec.shard_id for spec in router.specs])
    with router.client() as client:
        for source in sources:
            request = api.ExecutionRequest(op="run", engine="lua",
                                           source=source,
                                           config="baseline")
            seen = _routed_shards(client, source, repeats=2)
            # Same key -> same shard, and exactly the ring's owner.
            assert seen == [ring.node_for(request.key())] * 2


def test_both_shards_participate(tier):
    router, _shards = tier
    sources = ["print(%d)\n" % value for value in range(16)]
    with router.client() as client:
        seen = {shard for source in sources
                for shard in _routed_shards(client, source)}
    assert seen == {spec.shard_id for spec in router.specs}


def test_failover_on_shard_loss_and_ring_eviction(tier):
    router, shards = tier
    # Kill shard 0 abruptly: connection errors must fail over to the
    # survivor immediately, without waiting for the health loop.
    shards[0].stop()
    survivor = router.specs[1].shard_id
    with router.client() as client:
        for value in range(8):
            seen = _routed_shards(client, "print(%d)\n" % value)
            assert seen[-1] == survivor
        stats = client.status()
    assert stats["jobs"]["completed"] == 8
    assert not stats["shards"][router.specs[0].shard_id]["healthy"]
    assert stats["ring"]["nodes"] == [survivor]


def test_health_loop_restores_a_returning_shard(tmp_path):
    shard_dir = tmp_path / "shard-0"
    shard_dir.mkdir()
    shard = Harness(shard_dir).start()
    router = RouterHarness(tmp_path, [shard],
                           fail_threshold=1).start()
    shard_id = router.specs[0].shard_id
    try:
        shard.stop()
        deadline = time.monotonic() + 10
        while router.router.shards[shard_id].healthy:
            assert time.monotonic() < deadline, "never evicted"
            time.sleep(0.05)
        # Same socket path, fresh daemon: the probe loop must re-add it.
        shard = Harness(shard_dir).start()
        while not router.router.shards[shard_id].healthy:
            assert time.monotonic() < deadline, "never restored"
            time.sleep(0.05)
        with router.client() as client:
            assert client.run("lua", "print(7)\n").ok
    finally:
        router.stop()
        shard.stop()


def test_router_cache_probe_answers_without_forwarding(tier):
    router, _shards = tier
    # A bench cell computed by *anyone* on the shared root (here: this
    # process) is a router-side hit; no shard sees the request.
    seeded = api.run("lua", "fibo", scale=4, config="typed")
    with router.client() as client:
        result = client.run("lua", "fibo", scale=4, config="typed")
        stats = client.status()
    assert result.ok and result.cached
    assert result.counters.as_dict() == seeded.counters.as_dict()
    assert stats["jobs"]["router_cache_hits"] == 1
    assert stats["jobs"]["forwarded"] == 0


def test_status_aggregates_shards_and_cache_tier(tier):
    router, _shards = tier
    deadline = time.monotonic() + 10
    while True:  # wait for one health-probe cycle to gather stats
        with router.client() as client:
            stats = client.status()
        if all(view["stats"] is not None
               for view in stats["shards"].values()):
            break
        assert time.monotonic() < deadline, "no shard stats gathered"
        time.sleep(0.05)
    assert stats["role"] == "router"
    assert stats["cache_tier"]["coherent"]
    members = stats["cache_tier"]["members"]
    assert set(members) == {"router"} \
        | {spec.shard_id for spec in router.specs}
    roots = {member["root"] for member in members.values()}
    assert len(roots) == 1


def test_drain_finishes_inflight_and_rejects_new(tmp_path):
    release, calls = threading.Event(), []
    shard_dir = tmp_path / "shard-0"
    shard_dir.mkdir()
    shard = gated_harness(shard_dir, release, calls)
    router = RouterHarness(tmp_path, [shard]).start()
    routed = threading.Event()
    box = {}

    def inflight():
        def on_event(frame):
            if frame.get("event") == "routed":
                routed.set()
        try:
            with router.client() as client:
                box["result"] = client.run("lua", "print(11)\n",
                                           on_event=on_event)
        except ServeError as err:
            box["error"] = err

    thread = threading.Thread(target=inflight, daemon=True)
    thread.start()
    assert routed.wait(10)
    while not calls:  # forwarded request has reached the shard
        time.sleep(0.01)
    try:
        with router.client() as control:
            stats = control.drain()
        assert stats["draining"] and stats["inflight"] == 1
        # New work is refused while the in-flight forward drains.
        with pytest.raises(ServeError) as excinfo:
            with router.client() as late:
                late.run("lua", "print(12)\n")
        assert excinfo.value.code == "draining"
    finally:
        release.set()
    thread.join(30)
    assert "error" not in box and box["result"].ok
    assert router.exited.wait(30), "router kept running after drain"
    router.stop()
    shard.stop()


def test_saturated_single_shard_surfaces_busy_with_retry_after(tmp_path):
    release, calls = threading.Event(), []
    shard_dir = tmp_path / "shard-0"
    shard_dir.mkdir()
    shard = gated_harness(shard_dir, release, calls, queue_depth=1)
    router = RouterHarness(tmp_path, [shard], busy_retries=0).start()
    outcomes = []

    def submit(index):
        try:
            with router.client() as client:
                outcomes.append(client.run(
                    "lua", "print(%d)\n" % index))
        except ServeBusy as err:
            outcomes.append(err)

    threads = []
    try:
        # One executing + one queued fills the shard; the next submit
        # must come back as a busy frame with a retry hint.
        thread = threading.Thread(target=submit, args=(0,), daemon=True)
        thread.start()
        threads.append(thread)
        deadline = time.monotonic() + 30
        while not calls:
            assert time.monotonic() < deadline, "first never started"
            time.sleep(0.01)
        thread = threading.Thread(target=submit, args=(1,), daemon=True)
        thread.start()
        threads.append(thread)
        while shard.service.stats()["queued"] < 1:
            assert time.monotonic() < deadline, "second never queued"
            time.sleep(0.01)
        with pytest.raises(ServeBusy) as excinfo:
            with router.client() as client:
                client.run("lua", "print(99)\n")
        assert excinfo.value.retry_after is not None
    finally:
        release.set()
    for thread in threads:
        thread.join(30)
    assert all(not isinstance(outcome, Exception)
               for outcome in outcomes)
    router.stop()
    shard.stop()
