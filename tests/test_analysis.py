"""Unit tests for the static tag-inference pass (repro.analysis).

Covers the lattice algebra, the per-engine inference/decision passes
(including the JS main-exclusive global promotion and the soundness
fallbacks), and the quickening rewrite mechanics.  End-to-end
behavioural equivalence of the elided configuration lives in
tests/test_elided_differential.py.
"""

import pytest

from repro import analysis
from repro.analysis import js as js_pass
from repro.analysis import lua as lua_pass
from repro.analysis import quickening
from repro.analysis.lattice import (
    AV,
    BOT,
    NATIVE,
    TOP,
    func_av,
    join,
    tag_av,
)
from repro.engines.js import layout as js_layout
from repro.engines.js.compiler import compile_source as compile_js
from repro.engines.lua import layout as lua_layout
from repro.engines.lua.compiler import compile_source as compile_lua


# -- lattice ---------------------------------------------------------------------

def test_join_is_commutative_and_associative():
    a = tag_av(lua_layout.TNUMINT)
    b = tag_av(lua_layout.TNUMFLT)
    c = tag_av(lua_layout.TSTR)
    assert join(a, b) == join(b, a)
    assert join(join(a, b), c) == join(a, join(b, c))


def test_join_identities():
    a = tag_av(lua_layout.TNUMINT)
    assert join(a, BOT) == a
    assert join(BOT, a) == a
    assert join(a, a) == a
    assert join(a, TOP).top
    assert join(TOP, BOT).top


def test_join_unions_tags_and_funcs():
    a = AV(tags=(1,), funcs=(0,))
    b = AV(tags=(2,), funcs=(1, NATIVE))
    merged = join(a, b)
    assert merged.tags == frozenset((1, 2))
    assert merged.funcs == frozenset((0, 1, NATIVE))
    assert merged.has_native
    assert merged.protos() == frozenset((0, 1))


def test_av_queries():
    a = tag_av(lua_layout.TNUMINT)
    assert a.is_only(lua_layout.TNUMINT)
    assert a.may(lua_layout.TNUMINT)
    assert not a.may(lua_layout.TNUMFLT)
    assert TOP.may(lua_layout.TNUMFLT)
    assert not TOP.is_only(lua_layout.TNUMFLT)
    assert BOT.is_bot
    f = func_av(js_layout.TAG_OBJECT, 3)
    assert f.protos() == frozenset((3,))


# -- Lua inference ---------------------------------------------------------------

def _lua_decisions(source):
    chunk = compile_lua(source)
    return lua_pass.infer(chunk).decide(), chunk


def test_lua_int_loop_elides():
    decisions, chunk = _lua_decisions(
        "local acc = 0\n"
        "for i = 1, 10 do acc = acc + i end\n"
        "print(acc)\n")
    variants = set(decisions.get(0, {}).values())
    assert "ADD_II" in variants
    assert "FORLOOP_I" in variants


def test_lua_float_kernel_elides():
    decisions, _ = _lua_decisions(
        "local x = 0.5\n"
        "for i = 1, 8 do x = x * 1.5 - 0.25 end\n"
        "print(x)\n")
    variants = set(decisions.get(0, {}).values())
    assert "MUL_FF" in variants
    assert "SUB_FF" in variants


def test_lua_unstable_tag_keeps_guards():
    # `v` holds an int on one path and a string on the other, so the
    # ADD below the merge must keep its guard chain (the slow path
    # coerces the string).
    decisions, chunk = _lua_decisions(
        "local v = 1\n"
        "local n = 4\n"
        "if n > 2 then v = \"3\" end\n"
        "local r = v + 1\n"
        "print(r)\n")
    view = lua_pass.LuaInference(chunk).run().views[0]
    add_sites = [i for i in decisions.get(0, {})
                 if view.instrs[i].name.startswith("ADD")]
    assert add_sites == []


def test_lua_table_load_is_top():
    # Values out of a table are unknown: arithmetic on them keeps its
    # guards even though only ints were ever stored.
    decisions, _ = _lua_decisions(
        "local t = {}\n"
        "t[1] = 2\n"
        "local s = t[1] + 1\n"
        "print(s)\n")
    assert decisions.get(0, {}) == {}


def test_lua_interprocedural_params():
    # Both call sites pass ints, the callee does not escape: its body
    # may elide on the parameter.
    decisions, chunk = _lua_decisions(
        "local function f(a, b) return a + b end\n"
        "print(f(1, 2) + f(3, 4))\n")
    all_variants = [v for per in decisions.values() for v in per.values()]
    assert "ADD_II" in all_variants


def test_lua_escaped_function_params_are_top():
    # Storing the function in a table escapes it: its parameters must
    # be assumed TOP and the body keeps guards.
    decisions, chunk = _lua_decisions(
        "local function f(a) return a + 1 end\n"
        "local t = {}\n"
        "t[1] = f\n"
        "print(f(2))\n")
    callee = 1 if len(chunk.protos) > 1 else 0
    assert decisions.get(callee, {}) == {}


# -- JS inference ----------------------------------------------------------------

def _js_decisions(source):
    chunk = compile_js(source)
    return js_pass.infer(chunk).decide(), chunk


def test_js_local_double_kernel_elides():
    decisions, _ = _js_decisions(
        "function kernel() {\n"
        "  var x = 0.5;\n"
        "  for (var i = 0; i < 8; i++) { x = x * 1.5 - 0.25; }\n"
        "  return x;\n"
        "}\n"
        "print(kernel());\n")
    all_variants = [v for per in decisions.values() for v in per.values()]
    assert "MUL_DD" in all_variants
    assert "SUB_DD" in all_variants


def test_js_int_overflow_promotion_blocks_int_chains():
    # int32 arithmetic may promote to double, so the result of an ADD
    # feeding another ADD is only "numeric" — the honest JS result.
    decisions, _ = _js_decisions(
        "function f(n) { return (n + n) + n; }\n"
        "print(f(3));\n")
    all_variants = [v for per in decisions.values() for v in per.values()]
    assert all_variants.count("ADD_II") <= 1


def test_js_main_exclusive_globals_are_promoted():
    # Top-level vars compile to globals; nothing but main touches them,
    # so they are tracked flow-sensitively and the double kernel elides.
    decisions, chunk = _js_decisions(
        "var x = 0.5;\n"
        "var y = 2.5;\n"
        "var z = x * y - 0.25;\n"
        "print(z);\n")
    variants = set(decisions.get(0, {}).values())
    assert "MUL_DD" in variants
    assert "SUB_DD" in variants


def test_js_shared_global_is_not_promoted():
    # `x` is also written by f: its summary joins undefined with every
    # store, so main cannot elide arithmetic on it.
    decisions, _ = _js_decisions(
        "var x = 0.5;\n"
        "function f() { x = 1.5; }\n"
        "f();\n"
        "var z = x * 2.0;\n"
        "print(z);\n")
    assert "MUL_DD" not in set(decisions.get(0, {}).values())


def test_js_mixed_int_double_forces_double():
    # One proven-double operand forces a raw-double result whatever the
    # other numeric side is (the runtime computes float(result) unless
    # both operands are ints).
    decisions, _ = _js_decisions(
        "var i = 3;\n"
        "var x = i * 2.0;\n"
        "var y = x * 4.0;\n"
        "print(y);\n")
    assert "MUL_DD" in set(decisions.get(0, {}).values())


def test_js_string_add_is_top():
    decisions, _ = _js_decisions(
        "var s = \"a\";\n"
        "var t = s + 1;\n"
        "var u = t + 2;\n"
        "print(u);\n")
    assert "ADD_II" not in set(decisions.get(0, {}).values())
    assert "ADD_DD" not in set(decisions.get(0, {}).values())


def test_js_div_always_double():
    decisions, _ = _js_decisions(
        "var a = 7;\n"
        "var b = a / 2;\n"
        "var c = b * 2.0;\n"
        "print(c);\n")
    assert "MUL_DD" in set(decisions.get(0, {}).values())


# -- quickening mechanics --------------------------------------------------------

def test_quickened_maps_are_disjoint_from_base_opcodes():
    from repro.engines.js.opcodes import NUM_OPCODES as JS_N
    from repro.engines.lua.opcodes import NUM_OPCODES as LUA_N
    assert min(quickening.LUA_QUICKENED) >= LUA_N
    assert all(34 <= op < JS_N for op in quickening.JS_QUICKENED)


def test_base_name_folds_variants():
    assert quickening.base_name("ADD_II") == "ADD"
    assert quickening.base_name("FORLOOP_F") == "FORLOOP"
    assert quickening.base_name("DIV_DD") == "DIV"


def test_rewrite_replaces_opcode_byte_only():
    code = [0x11223347, 0x99887705]
    count = quickening.rewrite(code, {0: "ADD_II"},
                               {"ADD_II": 0x2F})
    assert count == 1
    assert code[0] == 0x1122332F
    assert code[1] == 0x99887705


def test_quicken_chunk_reports_sites():
    chunk = compile_lua(
        "local acc = 0\n"
        "for i = 1, 10 do acc = acc + i end\n"
        "print(acc)\n")
    stats = analysis.quicken_chunk("lua", chunk)
    assert stats["sites"] > 0
    assert sum(stats["per_op"].values()) == stats["sites"]
    names = set(quickening.LUA_BY_NAME)
    assert set(stats["per_op"]) <= names
    # The rewrite really landed in the code words.
    ops = {word & 0xFF for proto in chunk.protos for word in proto.code}
    assert ops & set(quickening.LUA_QUICKENED)


def test_quicken_chunk_unknown_engine():
    with pytest.raises(ValueError):
        analysis.quicken_chunk("forth", None)
