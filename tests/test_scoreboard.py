"""Cross-validation: scoreboard pipeline vs. the fast timing model.

The two models make different simplifications, so they will not agree
cycle-for-cycle; the claims are (a) basic stage behaviour is exact on
hand-analysable programs and (b) on real interpreter workloads the
models agree within a modest band and always agree on the *ordering* of
the three machine configurations — the quantity every figure rests on.
"""

import pytest

from repro.engines.lua import vm as lua_vm
from repro.engines.js import vm as js_vm
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.uarch.pipeline import Machine
from repro.uarch.scoreboard import ScoreboardMachine


def scoreboard_run(text, setup=None):
    cpu = Cpu(assemble(text), Memory(size=1 << 16))
    if setup:
        setup(cpu)
    machine = ScoreboardMachine(cpu)
    return machine.run(max_instructions=1_000_000)


def test_straight_line_alu_is_one_ipc_after_warmup():
    body = "\n".join("addi a0, a0, 1" for _ in range(100))
    counters = scoreboard_run("li a0, 0\n%s\nebreak" % body)
    # 102 instructions: sustained 1 IPC plus pipeline fill and the cold
    # I-cache misses (7 lines at DRAM latency).
    cold_fills = counters.icache_misses * \
        (25 + 1)  # closed-row DRAM latency bound
    assert counters.cycles < counters.instructions + cold_fills + 10
    assert counters.cycles > counters.instructions


def test_load_use_interlock_emerges_from_bypassing():
    dependent = scoreboard_run("""
        li a0, 0x1000
        ld a1, 0(a0)
        add a2, a1, a1
        ebreak
    """)
    independent = scoreboard_run("""
        li a0, 0x1000
        ld a1, 0(a0)
        add a2, a0, a0
        ebreak
    """)
    assert dependent.cycles == independent.cycles + 1


def test_div_occupies_execute_stage():
    fast = scoreboard_run("li a0, 9\nli a1, 3\nadd a2, a0, a1\nebreak")
    slow = scoreboard_run("li a0, 9\nli a1, 3\ndiv a2, a0, a1\nebreak")
    assert slow.cycles - fast.cycles >= 25


def test_branch_mispredict_restarts_fetch():
    taken = scoreboard_run("""
        li a0, 1
        beq a0, a0, target
        addi a1, a1, 1
    target:
        ebreak
    """)
    not_taken = scoreboard_run("""
        li a0, 1
        bne a0, a0, target
        addi a1, a1, 1
    target:
        ebreak
    """)
    # The cold taken branch mispredicts (predictor initialises not-taken).
    assert taken.branch_mispredicts == 1
    assert not_taken.branch_mispredicts == 0


@pytest.mark.parametrize("engine_vm,source", [
    (lua_vm, """
        local t = {}
        for i = 1, 150 do t[i] = i end
        local s = 0
        for i = 1, 150 do s = s + t[i] end
        print(s)
     """),
    (js_vm, """
        var a = [];
        for (var i = 0; i < 150; i++) a[i] = i;
        var s = 0;
        for (i = 0; i < 150; i++) s += a[i];
        print(s);
     """),
])
def test_models_agree_on_config_ordering(engine_vm, source):
    fast_cycles = {}
    scoreboard_cycles = {}
    for config in ("baseline", "chklb", "typed"):
        cpu, _runtime, _ = engine_vm.prepare(source, config=config)
        fast_cycles[config] = Machine(cpu).run().cycles
        cpu, _runtime, _ = engine_vm.prepare(source, config=config)
        scoreboard_cycles[config] = ScoreboardMachine(cpu).run().cycles
    for cycles in (fast_cycles, scoreboard_cycles):
        assert cycles["typed"] < cycles["chklb"] < cycles["baseline"]
    # And the models agree within a modest band on every config.
    for config in fast_cycles:
        ratio = fast_cycles[config] / scoreboard_cycles[config]
        assert 0.8 < ratio < 1.25, (config, ratio)


def test_models_agree_on_typed_speedup_magnitude():
    source = """
    local s = 0
    for i = 1, 400 do s = s + i * 2 end
    print(s)
    """
    speedups = {}
    for model_name, machine_cls in (("fast", Machine),
                                    ("scoreboard", ScoreboardMachine)):
        cycles = {}
        for config in ("baseline", "typed"):
            cpu, _r, _ = lua_vm.prepare(source, config=config)
            cycles[config] = machine_cls(cpu).run().cycles
        speedups[model_name] = cycles["baseline"] / cycles["typed"]
    assert speedups["fast"] == pytest.approx(speedups["scoreboard"],
                                             rel=0.10)
