"""One SCHEMA_VERSION across every versioned artefact: the result
cache, the perf-gate baseline, fault-campaign reports and the wire
protocol all advance together and reject mismatches."""

import json
import os

import pytest

import repro
from repro.api import run
from repro.bench import cache as result_cache
from repro.bench import gate
from repro.bench.runner import clear_cache
from repro.faults import load_report
from repro.schema import (
    SCHEMA_VERSION,
    SchemaError,
    check,
    mismatch,
    require,
    stamp,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "benchmarks", "results",
                             "baseline.json")


def test_one_version_everywhere():
    assert result_cache.FORMAT_VERSION == SCHEMA_VERSION
    assert gate.BASELINE_VERSION == SCHEMA_VERSION
    assert repro.SCHEMA_VERSION == SCHEMA_VERSION  # package export


def test_stamp_and_require():
    payload = stamp({"data": 1})
    assert payload["version"] == SCHEMA_VERSION
    assert mismatch(payload) is None
    assert check(payload)
    require(payload, "thing")  # no raise

    payload["version"] = SCHEMA_VERSION + 1
    assert mismatch(payload) is not None
    with pytest.raises(SchemaError) as excinfo:
        require(payload, "stale thing")
    assert "stale thing" in str(excinfo.value)


def test_committed_baseline_speaks_current_schema():
    with open(BASELINE_PATH) as handle:
        payload = json.load(handle)
    assert payload["version"] == SCHEMA_VERSION
    loaded = gate.load_baseline(BASELINE_PATH)
    assert loaded["metrics"]


def test_gate_rejects_foreign_baseline(tmp_path):
    stale = tmp_path / "baseline.json"
    stale.write_text(json.dumps({"version": SCHEMA_VERSION - 1,
                                 "metrics": {}}))
    with pytest.raises(ValueError) as excinfo:
        gate.load_baseline(str(stale))
    assert "regenerate" in str(excinfo.value)


def test_campaign_report_round_trip(tmp_path):
    report = stamp({"seed": 7, "count_per_cell": 1, "classes": {},
                    "targets": [], "coverage": {}})
    assert load_report(dict(report))["seed"] == 7
    assert load_report(json.dumps(report))["seed"] == 7
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    assert load_report(str(path))["seed"] == 7

    report["version"] = SCHEMA_VERSION + 3
    with pytest.raises(SchemaError):
        load_report(dict(report))


def test_cache_rejects_other_format_version(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path):
        cold = run("lua", "fibo", scale=5, config="baseline")
        assert not cold.cached
        cache = result_cache.active_cache()
        path = cache.path_for("lua", "fibo", "baseline", 5)
        payload = json.loads(path.read_text()) if hasattr(path, "read_text") \
            else json.load(open(path))
        assert payload["version"] == SCHEMA_VERSION

        # A version bump must read as a miss, not a wrong answer.
        payload["version"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        clear_cache()  # drop the in-memory copy; force the disk path
        rerun = run("lua", "fibo", scale=5, config="baseline")
        assert not rerun.cached
        assert rerun.counters.as_dict() == cold.counters.as_dict()
    clear_cache()
