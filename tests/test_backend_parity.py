"""The optional compiled block backend (:mod:`repro.sim.backend`).

Contract: the backend only changes *how* a generated unit becomes a
callable — never the unit's source — so every counter is bit-identical
with and without it, and a missing or broken build degrades to pure
Python instead of failing anything.
"""

import importlib.util
import os

import pytest

from repro.bench.runner import run_benchmark
from repro.engines.lua import vm as lua_vm
from repro.sim import backend

_TOOL = os.path.join(os.path.dirname(__file__), os.pardir, "tools",
                     "build_backend.py")


def _build_tool():
    spec = importlib.util.spec_from_file_location("build_backend", _TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def _pristine_backend(monkeypatch):
    monkeypatch.delenv(backend.BACKEND_ENV, raising=False)
    backend.reset()
    yield
    backend.record_units(None)
    backend.reset()


def _run_cell():
    return run_benchmark("lua", "fibo", "baseline", scale=10,
                         use_cache=False, attribute=False)


def _fresh_tables():
    """Drop the cached interpreter program so the next run predecodes
    and compiles its units from scratch (through the active backend)."""
    lua_vm._PROGRAM_CACHE.clear()


def test_pure_python_is_the_default():
    assert backend.active() is None
    assert backend.describe() == "block backend: pure python"


def test_marshal_backend_bit_identical(tmp_path, monkeypatch):
    reference = _run_cell()

    units = {}
    backend.record_units(units)
    try:
        _fresh_tables()
        _run_cell()
    finally:
        backend.record_units(None)
    assert units  # blocks (and traces) really went through the funnel

    tool = _build_tool()
    manifest = tool.build(units, str(tmp_path), "marshal")
    assert manifest["backend"] == "marshal"
    assert set(manifest["units"]) == set(units)

    monkeypatch.setenv(backend.BACKEND_ENV, str(tmp_path))
    backend.reset()
    _fresh_tables()
    served = _run_cell()

    active = backend.active()
    assert active is not None and active.kind == "marshal"
    assert active.hits > 0
    assert served.output == reference.output
    assert served.counters.as_dict() == reference.counters.as_dict()
    assert str(tmp_path) in backend.describe()


def test_partial_build_serves_what_it_has(tmp_path, monkeypatch):
    units = {}
    backend.record_units(units)
    try:
        _fresh_tables()
        reference = _run_cell()
    finally:
        backend.record_units(None)

    # Build only half the captured units: the rest must fall back to
    # compile-from-source within the same run, bit for bit.
    half = dict(sorted(units.items())[:max(1, len(units) // 2)])
    _build_tool().build(half, str(tmp_path), "marshal")

    monkeypatch.setenv(backend.BACKEND_ENV, str(tmp_path))
    backend.reset()
    _fresh_tables()
    served = _run_cell()

    active = backend.active()
    assert active.hits > 0 and active.misses > 0
    assert served.counters.as_dict() == reference.counters.as_dict()


def test_missing_explicit_path_degrades_to_pure(tmp_path, monkeypatch):
    reference = _run_cell()
    monkeypatch.setenv(backend.BACKEND_ENV, str(tmp_path / "nope"))
    backend.reset()
    assert backend.active() is None
    _fresh_tables()
    record = _run_cell()
    assert record.counters.as_dict() == reference.counters.as_dict()
    assert "unavailable" in backend.describe()


def test_auto_without_build_is_silent(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no build/block_backend here
    monkeypatch.setenv(backend.BACKEND_ENV, "auto")
    backend.reset()
    assert backend.active() is None
    assert backend.describe() == "block backend: pure python"


def test_wrong_magic_is_refused(tmp_path, monkeypatch):
    units = {}
    backend.record_units(units)
    try:
        _fresh_tables()
        _run_cell()
    finally:
        backend.record_units(None)
    _build_tool().build(units, str(tmp_path), "marshal")

    manifest_path = tmp_path / "manifest.json"
    import json
    manifest = json.loads(manifest_path.read_text())
    manifest["magic"] = manifest["magic"] + 1
    manifest_path.write_text(json.dumps(manifest))

    with pytest.raises(backend.BackendUnavailable):
        backend.CompiledBackend(str(tmp_path))
    # And through the env path it degrades rather than raises.
    monkeypatch.setenv(backend.BACKEND_ENV, str(tmp_path))
    backend.reset()
    assert backend.active() is None
    _fresh_tables()
    _run_cell()
