"""The consistent-hash ring: placement balance, minimal remapping on
shard join/leave, and determinism across processes (placement must not
depend on ``PYTHONHASHSEED``)."""

import subprocess
import sys

from repro.serve.hashring import HashRing, stable_hash

NODES = ["unix:/tmp/shard-0.sock", "unix:/tmp/shard-1.sock",
         "unix:/tmp/shard-2.sock", "unix:/tmp/shard-3.sock"]
KEYS = ["key-%04d" % index for index in range(2000)]


def owners(ring, keys=KEYS):
    return {key: ring.node_for(key) for key in keys}


def test_stable_hash_is_sha_derived_not_builtin_hash():
    # Known value: pinning it catches any accidental switch to the
    # per-process-salted builtin ``hash()``.
    assert stable_hash("key-0000") == stable_hash("key-0000")
    assert stable_hash("key-0000") != stable_hash("key-0001")
    assert 0 <= stable_hash("anything") < 2 ** 64
    assert stable_hash("") == 0xE3B0C44298FC1C14


def test_every_key_gets_a_node_and_empty_ring_gets_none():
    ring = HashRing(NODES)
    placement = owners(ring)
    assert all(node in NODES for node in placement.values())
    assert HashRing([]).node_for("anything") is None


def test_distribution_is_balanced():
    ring = HashRing(NODES)
    counts = {node: 0 for node in NODES}
    for node in owners(ring).values():
        counts[node] += 1
    expected = len(KEYS) / len(NODES)
    # With 128 virtual nodes each shard should land well within a
    # factor of two of the fair share.
    for node, count in counts.items():
        assert expected / 2 < count < expected * 2, \
            "unbalanced ring: %s" % counts


def test_join_remaps_only_a_minority_of_keys():
    ring = HashRing(NODES)
    before = owners(ring)
    ring.add("unix:/tmp/shard-4.sock")
    after = owners(ring)
    moved = [key for key in KEYS if before[key] != after[key]]
    # ~1/5 of the key space should move to the new node, and every
    # moved key must have moved *to* it (never between old nodes).
    assert 0 < len(moved) < len(KEYS) * 2 / len(NODES) + len(NODES)
    assert all(after[key] == "unix:/tmp/shard-4.sock" for key in moved)


def test_leave_moves_only_the_lost_nodes_keys():
    ring = HashRing(NODES)
    before = owners(ring)
    ring.remove(NODES[1])
    after = owners(ring)
    for key in KEYS:
        if before[key] == NODES[1]:
            assert after[key] != NODES[1]
        else:
            assert after[key] == before[key]


def test_rejoin_restores_the_original_placement():
    ring = HashRing(NODES)
    before = owners(ring)
    ring.remove(NODES[2])
    ring.add(NODES[2])
    assert owners(ring) == before


def test_preference_order_is_distinct_and_complete():
    ring = HashRing(NODES)
    for key in KEYS[:50]:
        order = list(ring.preference(key))
        assert sorted(order) == sorted(NODES)
        assert order[0] == ring.node_for(key)
        assert ring.node_for(key, exclude={order[0]}) == order[1]


def test_replica_count_is_respected():
    ring = HashRing(NODES[:2], replicas=8)
    assert ring.replicas == 8
    assert len(ring._points) == 2 * 8


def _placement_script():
    return (
        "from repro.serve.hashring import HashRing, stable_hash\n"
        "nodes = %r\n"
        "ring = HashRing(nodes)\n"
        "keys = ['key-%%04d' %% i for i in range(200)]\n"
        "print('|'.join(ring.node_for(key) for key in keys))\n"
        "print(stable_hash('key-0042'))\n" % NODES)


def test_placement_is_identical_across_hash_seeds(tmp_path):
    """Two subprocesses with different PYTHONHASHSEED values must
    compute byte-identical placements — the ring may never lean on the
    salted builtin ``hash()``."""
    import os
    outputs = []
    for seed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = os.pathsep.join(sys.path)
        result = subprocess.run(
            [sys.executable, "-c", _placement_script()],
            env=env, capture_output=True, text=True, timeout=60)
        assert result.returncode == 0, result.stderr
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]
    # ... and in-process placement agrees with the subprocesses.
    ring = HashRing(NODES)
    local = "|".join(ring.node_for("key-%04d" % i) for i in range(200))
    assert outputs[0].splitlines()[0] == local
