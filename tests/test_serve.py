"""The execution service: protocol conformance, concurrent clients,
dedup/coalescing, backpressure, deadlines and graceful drain.

Most tests run the daemon in-process on a background thread with the
pool in inline mode (``workers=0``) so execution is deterministic and
gateable; one test exercises a real forked worker pool.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro import api
from repro.bench import cache as result_cache
from repro.bench.runner import clear_cache
from repro.schema import SCHEMA_VERSION
from repro.serve import protocol
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.server import ExecutionServer, ExecutionService


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path / "cache"):
        yield
    clear_cache()


class Harness:
    """An in-process daemon on a background thread."""

    def __init__(self, tmp_path, **service_kwargs):
        service_kwargs.setdefault("workers", 0)
        self.socket_path = str(tmp_path / "serve.sock")
        self.service = ExecutionService(**service_kwargs)
        self._ready = threading.Event()
        self.exited = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            server = ExecutionServer(self.service,
                                     socket_path=self.socket_path)
            await server.start()
            self._ready.set()
            await server.serve_until_stopped()
        asyncio.run(main())
        self.exited.set()

    def start(self):
        self._thread.start()
        assert self._ready.wait(10), "server never came up"
        return self

    def client(self, timeout=120.0):
        return ServeClient(socket_path=self.socket_path, timeout=timeout)

    def stop(self):
        if not self.exited.is_set():
            try:
                with self.client(10) as client:
                    client.drain()
            except (OSError, ServeError):
                pass
        assert self.exited.wait(30), "server never drained"


@pytest.fixture
def harness(tmp_path):
    instance = Harness(tmp_path)
    yield instance.start()
    instance.stop()


def gated_harness(tmp_path, release, calls, **kwargs):
    """A harness whose inline executor blocks until ``release`` is set,
    so tests can observe queued/in-flight states deterministically."""
    def gated(payload):
        calls.append(payload)
        assert release.wait(60), "test never released the executor"
        return api.execute_payload(payload)
    return Harness(tmp_path, inline_fn=gated, **kwargs).start()


# -- basics ------------------------------------------------------------------

def test_ping_and_status(harness):
    with harness.client() as client:
        assert client.ping()
        stats = client.status()
    assert stats["schema_version"] == SCHEMA_VERSION
    assert not stats["draining"]
    assert stats["pool"]["mode"] == "inline"


def test_served_run_matches_in_process(harness):
    source = "local s = 0\nfor i = 1, 100 do s = s + i end\nprint(s)\n"
    expected = api.run("lua", source, config="typed")
    with harness.client() as client:
        served = client.run("lua", source, config="typed")
    assert served.ok and served.output == expected.output == "5050\n"
    assert json.dumps(served.counters.as_dict(), sort_keys=True) \
        == json.dumps(expected.counters.as_dict(), sort_keys=True)


def test_three_concurrent_clients_identical_counters(harness):
    source = "print(6 * 7)\n"
    expected = json.dumps(
        api.run("lua", source, config="typed").counters.as_dict(),
        sort_keys=True)
    results, errors = [None] * 3, []

    def one(index):
        try:
            with harness.client() as client:
                results[index] = client.run("lua", source, config="typed")
        except Exception as err:  # noqa: BLE001 - surfaced in assert
            errors.append(err)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not errors
    assert all(r is not None and r.ok for r in results)
    assert all(json.dumps(r.counters.as_dict(), sort_keys=True)
               == expected for r in results)


def test_streaming_events_arrive_in_order(harness):
    events = []
    with harness.client() as client:
        result = client.run("lua", "print(1)", config="typed",
                            on_event=lambda f: events.append(f["event"]))
    assert result.ok
    assert events[0] == "queued"
    assert "started" in events


def test_invalid_request_rejected(harness):
    with harness.client() as client:
        with pytest.raises(ServeError) as excinfo:
            client.submit({"op": "teleport", "version": SCHEMA_VERSION})
    assert excinfo.value.code == protocol.ERR_INVALID


# -- raw-socket protocol edges -----------------------------------------------

def _raw_exchange(path, line):
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30)
    sock.connect(path)
    sock.sendall(line)
    reply = sock.makefile("rb").readline()
    sock.close()
    return json.loads(reply)


def test_version_mismatch_answered_not_dropped(harness):
    frame = {"kind": "ping", "id": 9, "version": SCHEMA_VERSION + 1}
    reply = _raw_exchange(harness.socket_path,
                          json.dumps(frame).encode() + b"\n")
    assert reply["kind"] == "error"
    assert reply["code"] == protocol.ERR_VERSION
    assert reply["id"] == 9


def test_malformed_frame_answered(harness):
    reply = _raw_exchange(harness.socket_path, b"this is not json\n")
    assert reply["kind"] == "error"
    assert reply["code"] == protocol.ERR_MALFORMED


# -- dedup / coalescing ------------------------------------------------------

def test_identical_inflight_requests_coalesce(tmp_path):
    release, calls = threading.Event(), []
    harness = gated_harness(tmp_path, release, calls)
    try:
        source = "print('coalesce me')\n"
        results, errors = [None] * 2, []

        def one(index):
            try:
                with harness.client() as client:
                    results[index] = client.run("lua", source,
                                                config="typed")
            except Exception as err:  # noqa: BLE001
                errors.append(err)

        first = threading.Thread(target=one, args=(0,))
        first.start()
        deadline = time.monotonic() + 30
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        assert calls, "first request never reached the executor"

        second = threading.Thread(target=one, args=(1,))
        second.start()
        deadline = time.monotonic() + 30
        while harness.service.stats_counters["deduped"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        first.join(60)
        second.join(60)

        assert not errors
        assert len(calls) == 1, "identical request executed twice"
        assert all(r is not None and r.ok for r in results)
        assert sorted(r.coalesced for r in results) == [False, True]
        assert results[0].counters.as_dict() \
            == results[1].counters.as_dict()
    finally:
        release.set()
        harness.stop()


# -- backpressure and deadlines ----------------------------------------------

def test_full_queue_rejects_busy_with_retry_after(tmp_path):
    release, calls = threading.Event(), []
    harness = gated_harness(tmp_path, release, calls, queue_depth=1)
    try:
        box = {}

        def blocker():
            with harness.client() as client:
                box["a"] = client.run("lua", "print('A')", config="typed")

        def queued():
            with harness.client() as client:
                box["b"] = client.run("lua", "print('B')", config="typed")

        thread_a = threading.Thread(target=blocker)
        thread_a.start()
        deadline = time.monotonic() + 30
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        assert calls, "first request never started"

        thread_b = threading.Thread(target=queued)
        thread_b.start()
        deadline = time.monotonic() + 30
        while harness.service.stats()["queued"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.01)

        with harness.client() as client:
            with pytest.raises(ServeBusy) as excinfo:
                client.run("lua", "print('C')", config="typed")
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 0

        release.set()
        thread_a.join(60)
        thread_b.join(60)
        assert box["a"].ok and box["b"].ok
    finally:
        release.set()
        harness.stop()


def test_expired_deadline_rejected_before_execution(tmp_path):
    release, calls = threading.Event(), []
    harness = gated_harness(tmp_path, release, calls)
    try:
        def blocker():
            with harness.client() as client:
                client.run("lua", "print('slow')", config="typed")

        blocking = threading.Thread(target=blocker)
        blocking.start()
        deadline = time.monotonic() + 30
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)

        box = {}

        def hurried():
            try:
                with harness.client() as client:
                    box["result"] = client.run(
                        "lua", "print('too late')", config="typed",
                        deadline=0.05)
            except ServeError as err:
                box["error"] = err

        hurry = threading.Thread(target=hurried)
        hurry.start()
        time.sleep(0.3)  # let the tiny deadline lapse while queued
        release.set()
        blocking.join(60)
        hurry.join(60)

        assert "error" in box, "expired request was executed anyway"
        assert box["error"].code == protocol.ERR_DEADLINE
        executed = {json.loads(json.dumps(p))["source"] for p in calls}
        assert "print('too late')" not in executed
    finally:
        release.set()
        harness.stop()


# -- the cache path ----------------------------------------------------------

def test_bench_cache_hit_skips_the_pool(tmp_path, harness):
    seeded = api.run("lua", "fibo", scale=5, config="typed")
    assert not seeded.cached
    with harness.client() as client:
        hit = client.run("lua", "fibo", scale=5, config="typed")
        stats = client.status()
    assert hit.ok and hit.cached
    assert hit.counters.as_dict() == seeded.counters.as_dict()
    assert stats["jobs"]["cache_hits"] == 1
    assert stats["pool"]["executed"] == 0
    assert not stats["pool"]["warm"], "cache hit built the pool"


def test_bench_miss_executes_then_populates_cache(harness):
    with harness.client() as client:
        cold = client.run("lua", "fibo", scale=4, config="baseline")
        warm = client.run("lua", "fibo", scale=4, config="baseline")
    assert cold.ok and not cold.cached
    assert warm.ok and warm.cached
    assert warm.counters.as_dict() == cold.counters.as_dict()


# -- graceful drain ----------------------------------------------------------

def test_drain_finishes_inflight_and_rejects_new(tmp_path):
    release, calls = threading.Event(), []
    harness = gated_harness(tmp_path, release, calls)
    try:
        box = {}

        def inflight():
            with harness.client() as client:
                box["result"] = client.run("lua", "print('drain me')",
                                           config="typed")

        thread = threading.Thread(target=inflight)
        thread.start()
        deadline = time.monotonic() + 30
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        assert calls, "request never started"

        with harness.client() as client:
            stats = client.drain()
        assert stats["draining"]

        with harness.client() as client:
            with pytest.raises(ServeError) as excinfo:
                client.run("lua", "print('rejected')", config="typed")
        assert excinfo.value.code == protocol.ERR_DRAINING

        release.set()
        thread.join(60)
        assert box["result"].ok, "in-flight request lost during drain"
        assert box["result"].output == "drain me\n"
        assert harness.exited.wait(30), "server never exited after drain"
    finally:
        release.set()
        harness.stop()


# -- a real forked pool ------------------------------------------------------

def test_process_pool_round_trip(tmp_path):
    harness = Harness(tmp_path, workers=1, warm_engines=("lua",),
                      warm_configs=("typed",))
    harness.start()
    try:
        expected = api.run("lua", "print(16 * 16)", config="typed")
        with harness.client() as client:
            served = client.run("lua", "print(16 * 16)", config="typed")
            stats = client.status()
        assert served.ok and served.output == expected.output
        assert served.counters.as_dict() == expected.counters.as_dict()
        if stats["pool"]["mode"] == "process":  # sandboxes may fall back
            assert stats["pool"]["builds"] == 1
        assert stats["pool"]["executed"] == 1
    finally:
        harness.stop()


# -- client busy-retry (the router's per-shard backoff machinery) ------------

class FlakyBusyServer:
    """Protocol-speaking fake: rejects the first ``busy_count`` submit
    frames with ``busy`` + a ``retry_after`` hint, then answers with a
    canned result.  Exercises :meth:`ServeClient.submit` retries
    without any real execution service."""

    def __init__(self, tmp_path, busy_count, result_payload,
                 retry_after=0.02):
        self.socket_path = str(tmp_path / "flaky.sock")
        self.busy_count = busy_count
        self.result_payload = result_payload
        self.retry_after = retry_after
        self.attempts = 0
        self.attempt_times = []
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(4)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _handle(self, conn):
        with conn, conn.makefile("rb") as reader:
            for line in reader:
                frame = protocol.decode(line)
                if frame.get("kind") != "submit":
                    continue
                self.attempts += 1
                self.attempt_times.append(time.monotonic())
                if self.attempts <= self.busy_count:
                    reply = protocol.error_frame(
                        frame.get("id"), protocol.ERR_BUSY,
                        "queue full", retry_after=self.retry_after)
                else:
                    reply = protocol.result_frame(
                        frame.get("id"), self.result_payload)
                try:
                    conn.sendall(protocol.encode(reply))
                except OSError:
                    return

    def close(self):
        self._sock.close()


@pytest.fixture
def canned_result():
    return api.run("lua", "print(3)\n", config="baseline").as_dict()


def test_submit_without_retries_raises_busy(tmp_path, canned_result):
    server = FlakyBusyServer(tmp_path, busy_count=99,
                             result_payload=canned_result)
    try:
        with ServeClient(socket_path=server.socket_path) as client:
            with pytest.raises(ServeBusy) as excinfo:
                client.run("lua", "print(3)\n")
        assert excinfo.value.retry_after == server.retry_after
        assert server.attempts == 1
    finally:
        server.close()


def test_submit_retries_until_the_queue_frees(tmp_path, canned_result):
    server = FlakyBusyServer(tmp_path, busy_count=2,
                             result_payload=canned_result)
    try:
        with ServeClient(socket_path=server.socket_path) as client:
            result = client.run("lua", "print(3)\n", retries=2)
        assert result.ok and result.output == "3\n"
        assert server.attempts == 3
    finally:
        server.close()


def test_submit_retry_budget_is_bounded(tmp_path, canned_result):
    server = FlakyBusyServer(tmp_path, busy_count=99,
                             result_payload=canned_result)
    try:
        with ServeClient(socket_path=server.socket_path) as client:
            with pytest.raises(ServeBusy):
                client.run("lua", "print(3)\n", retries=3)
        assert server.attempts == 4  # first attempt + 3 retries
    finally:
        server.close()


def test_submit_retry_honours_server_retry_after(tmp_path,
                                                 canned_result):
    # backoff would be 10s/attempt; the 0.02s server hint must win.
    server = FlakyBusyServer(tmp_path, busy_count=2,
                             result_payload=canned_result)
    try:
        start = time.monotonic()
        with ServeClient(socket_path=server.socket_path) as client:
            result = client.submit(
                {"op": "run", "engine": "lua", "source": "print(3)\n"},
                retries=2, backoff=10.0)
        elapsed = time.monotonic() - start
        assert result.ok
        assert elapsed < 5.0, "retry ignored retry_after"
        gaps = [b - a for a, b in zip(server.attempt_times,
                                      server.attempt_times[1:])]
        assert all(gap >= server.retry_after * 0.5 for gap in gaps)
    finally:
        server.close()


class RecordingRng:
    """``random``-module stand-in: records each ``uniform`` call's
    bounds and returns the upper bound (worst-case draw)."""

    def __init__(self):
        self.calls = []

    def uniform(self, lo, hi):
        self.calls.append((lo, hi))
        return hi


def _always_busy_client(monkeypatch, sleeps, retry_after=None):
    """A client whose transport always answers busy; sleeps are
    captured instead of taken."""
    client = ServeClient(socket_path="/nonexistent.sock")
    monkeypatch.setattr(
        client, "_transact",
        lambda *a, **k: (_ for _ in ()).throw(
            ServeBusy("busy", "queue full", retry_after=retry_after)))
    monkeypatch.setattr("repro.serve.client.time.sleep", sleeps.append)
    return client


def test_retry_backoff_uses_decorrelated_jitter(monkeypatch):
    # Retry delays are drawn uniform(backoff, 3 * previous), not
    # computed as deterministic backoff * 2**attempt lockstep.
    sleeps, rng = [], RecordingRng()
    client = _always_busy_client(monkeypatch, sleeps)
    with pytest.raises(ServeBusy):
        client.submit({"op": "run", "engine": "lua", "source": "x"},
                      retries=3, backoff=0.25, rng=rng)
    assert rng.calls == [(0.25, 0.75), (0.25, 2.25), (0.25, 6.75)]
    assert sleeps == [0.75, 2.25, 6.75]


def test_retry_backoff_is_clamped_to_max_backoff(monkeypatch):
    sleeps, rng = [], RecordingRng()
    client = _always_busy_client(monkeypatch, sleeps)
    with pytest.raises(ServeBusy):
        client.submit({"op": "run", "engine": "lua", "source": "x"},
                      retries=3, backoff=0.25, max_backoff=1.0, rng=rng)
    assert sleeps == [0.75, 1.0, 1.0]          # ceiling holds
    # The jitter window keeps widening off the *clamped* delay.
    assert rng.calls == [(0.25, 0.75), (0.25, 2.25), (0.25, 3.0)]


def test_retry_after_hint_bypasses_the_jitter(monkeypatch):
    sleeps, rng = [], RecordingRng()
    client = _always_busy_client(monkeypatch, sleeps, retry_after=0.02)
    with pytest.raises(ServeBusy):
        client.submit({"op": "run", "engine": "lua", "source": "x"},
                      retries=2, backoff=10.0, rng=rng)
    assert sleeps == [0.02, 0.02]   # the server's hint wins
    assert rng.calls == []          # jitter never consulted


def test_retry_jitter_spreads_two_clients(monkeypatch):
    # The point of the jitter: two clients bouncing off the same
    # saturated shard do not march back in lockstep.
    import random
    schedules = []
    for seed in (1, 2):
        sleeps = []
        client = _always_busy_client(monkeypatch, sleeps)
        with pytest.raises(ServeBusy):
            client.submit({"op": "run", "engine": "lua", "source": "x"},
                          retries=3, backoff=0.25,
                          rng=random.Random(seed))
        schedules.append(tuple(sleeps))
    assert schedules[0] != schedules[1]


# -- atomic socket-path pick (parallel CI jobs must not collide) -------------

def test_free_socket_path_is_collision_free_across_threads():
    from repro.serve.server import free_socket_path
    paths, errors = [], []
    lock = threading.Lock()

    def grab():
        try:
            path = free_socket_path()
            with lock:
                paths.append(path)
        except Exception as err:  # noqa: BLE001 - collected below
            errors.append(err)

    threads = [threading.Thread(target=grab) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)
    assert not errors
    assert len(set(paths)) == 16


def test_two_concurrent_servers_bind_without_colliding(tmp_path):
    """Two daemons booted at the same instant (as parallel CI jobs
    do) must each get their own socket and both answer pings."""
    from repro.serve.server import ExecutionServer, free_socket_path

    servers, errors = [], []
    ready = threading.Barrier(3, timeout=30)

    def boot():
        async def main():
            service = ExecutionService(workers=0)
            server = ExecutionServer(service,
                                     socket_path=free_socket_path())
            await server.start()
            stop = asyncio.Event()
            servers.append((server.socket_path, stop,
                            asyncio.get_running_loop()))
            ready.wait()
            await stop.wait()
            await server.close()
        try:
            asyncio.run(main())
        except Exception as err:  # noqa: BLE001 - collected below
            errors.append(err)

    threads = [threading.Thread(target=boot, daemon=True)
               for _ in range(2)]
    for thread in threads:
        thread.start()
    ready.wait()
    try:
        assert not errors
        paths = [path for path, _stop, _loop in servers]
        assert len(set(paths)) == 2
        for path in paths:
            with ServeClient(socket_path=path, timeout=30) as client:
                assert client.ping()
    finally:
        for _path, stop, loop in servers:
            loop.call_soon_threadsafe(stop.set)
        for thread in threads:
            thread.join(30)
