"""Tests for the unified register file and the Type Rule Table."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.extension import (
    TYPE_UNTYPED,
    TypeRule,
    arithmetic_rules,
    table_access_rules,
)
from repro.sim.regfile import UnifiedRegisterFile
from repro.sim.trt import TRT_OPCODES, TypeRuleTable, pack_rule, unpack_rule


def test_x0_hardwired_zero():
    regs = UnifiedRegisterFile()
    regs.write(0, 123)
    regs.write_typed(0, 5, 3, 1)
    assert regs.value[0] == 0
    assert regs.type[0] == TYPE_UNTYPED


def test_untyped_write_clears_tag():
    regs = UnifiedRegisterFile()
    regs.write_typed(5, 7, 19, 0)
    assert regs.type[5] == 19
    regs.write(5, 8)
    assert regs.type[5] == TYPE_UNTYPED
    assert regs.fbit[5] == 0


def test_typed_write_sets_all_fields():
    regs = UnifiedRegisterFile()
    regs.write_typed(3, (1 << 64) + 5, 3, 1)
    assert regs.value[3] == 5  # 64-bit wrap
    assert regs.type[3] == 3
    assert regs.fbit[3] == 1


def test_set_tag_only():
    regs = UnifiedRegisterFile()
    regs.write(4, 99)
    regs.set_tag(4, 19, 0)
    assert regs.value[4] == 99
    assert regs.type[4] == 19


def test_snapshot_restore_roundtrip():
    regs = UnifiedRegisterFile()
    regs.write_typed(6, 42, 3, 1)
    state = regs.snapshot()
    regs.write(6, 0)
    regs.restore(state)
    assert (regs.value[6], regs.type[6], regs.fbit[6]) == (42, 3, 1)


# -- TRT ---------------------------------------------------------------------

@given(opcode=st.sampled_from(["xadd", "xsub", "xmul", "tchk"]),
       t1=st.integers(0, 255), t2=st.integers(0, 255), out=st.integers(0, 255))
def test_pack_unpack_roundtrip(opcode, t1, t2, out):
    rule = TypeRule(opcode, t1, t2, out)
    assert unpack_rule(pack_rule(rule)) == rule


def test_lookup_hit_and_miss_counters():
    trt = TypeRuleTable()
    trt.load_rules(arithmetic_rules(int_tag=19, float_tag=3))
    assert trt.lookup(TRT_OPCODES["xadd"], 19, 19) == 19
    assert trt.lookup(TRT_OPCODES["xadd"], 3, 3) == 3
    assert trt.lookup(TRT_OPCODES["xadd"], 19, 3) is None
    assert trt.hits == 2
    assert trt.misses == 1


def test_capacity_evicts_fifo():
    trt = TypeRuleTable(capacity=2)
    trt.load_rules([TypeRule("xadd", 1, 1, 1), TypeRule("xadd", 2, 2, 2),
                    TypeRule("xadd", 3, 3, 3)])
    assert len(trt) == 2
    assert trt.lookup(0, 1, 1) is None  # evicted
    assert trt.lookup(0, 3, 3) == 3


def test_duplicate_push_updates_in_place():
    trt = TypeRuleTable(capacity=2)
    trt.load_rules([TypeRule("xadd", 1, 1, 1), TypeRule("xadd", 1, 1, 7)])
    assert len(trt) == 1
    assert trt.lookup(0, 1, 1) == 7


def test_flush_clears_table():
    trt = TypeRuleTable()
    trt.load_rules(arithmetic_rules(19, 3))
    trt.flush()
    assert len(trt) == 0
    assert trt.lookup(0, 19, 19) is None


def test_paper_table5_contents():
    """Table 5: six arithmetic rules plus two tchk table-access rules."""
    rules = arithmetic_rules(19, 3) + table_access_rules(table_tag=5,
                                                         int_tag=19)
    assert len(rules) == 8  # exactly fills the 8-entry TRT
    trt = TypeRuleTable()
    trt.load_rules(rules)
    assert len(trt) == 8
    assert trt.lookup(TRT_OPCODES["tchk"], 5, 19) == 5
    assert trt.lookup(TRT_OPCODES["tchk"], 19, 5) == 5


def test_snapshot_restore():
    trt = TypeRuleTable()
    trt.load_rules(arithmetic_rules(19, 3))
    state = trt.snapshot()
    trt.flush()
    trt.restore(state)
    assert trt.lookup(TRT_OPCODES["xmul"], 3, 3) == 3


def test_snapshot_restore_preserves_statistics():
    """Regression: a context switch must not corrupt the hit/miss
    counters that back every type-hit-rate figure."""
    trt = TypeRuleTable()
    trt.load_rules(arithmetic_rules(19, 3))
    trt.lookup(TRT_OPCODES["xadd"], 19, 19)   # hit
    trt.lookup(TRT_OPCODES["xadd"], 19, 99)   # miss
    state = trt.snapshot()
    # Another process runs: flush + its own traffic skews the counters.
    trt.flush()
    trt.lookup(TRT_OPCODES["xadd"], 1, 1)
    trt.lookup(TRT_OPCODES["xadd"], 2, 2)
    trt.restore(state)
    assert (trt.hits, trt.misses) == (1, 1)
    assert trt.lookup(TRT_OPCODES["xadd"], 19, 19) == 19
    assert (trt.hits, trt.misses) == (2, 1)
