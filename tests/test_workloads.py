"""Workload correctness: known answers and Lua/JS agreement.

The benchmark kernels run at reduced scales here; numeric answers are
checked against independently computed references.
"""

import pytest

from repro.bench.workloads import BENCHMARK_ORDER, WORKLOADS, workload
from repro.engines.js import run_js
from repro.engines.lua import run_lua

# Small scales so the full matrix stays fast in CI.
TEST_SCALES = {
    "ackermann": 2,        # ack(3, 2) = 29
    "binary-trees": 4,
    "fannkuch-redux": 4,   # checksum 4, maxflips 4
    "fibo": 10,            # 55
    "k-nucleotide": 40,
    "mandelbrot": 4,
    "n-body": 3,
    "n-sieve": 100,        # 25 primes
    "pidigits": 6,         # 314159
    "random": 60,
    "spectral-norm": 3,
}


@pytest.fixture(scope="module")
def outputs():
    collected = {}
    for name in BENCHMARK_ORDER:
        spec = WORKLOADS[name]
        scale = TEST_SCALES[name]
        collected[name] = {
            "lua": run_lua(spec.lua_source(scale), config="baseline").output,
            "js": run_js(spec.js_source(scale), config="baseline").output,
        }
    return collected


def test_workload_catalogue_matches_table7():
    assert len(WORKLOADS) == 11
    assert set(BENCHMARK_ORDER) == {
        "ackermann", "binary-trees", "fannkuch-redux", "fibo",
        "k-nucleotide", "mandelbrot", "n-body", "n-sieve", "pidigits",
        "random", "spectral-norm"}


def test_workload_lookup():
    assert workload("fibo").name == "fibo"
    with pytest.raises(KeyError):
        workload("nope")


def test_ackermann_value(outputs):
    assert outputs["ackermann"]["lua"] == "29\n"
    assert outputs["ackermann"]["js"] == "29\n"


def test_fibo_value(outputs):
    assert outputs["fibo"]["lua"] == "55\n"
    assert outputs["fibo"]["js"] == "55\n"


def test_nsieve_value(outputs):
    assert outputs["n-sieve"]["lua"] == "25\n"
    assert outputs["n-sieve"]["js"] == "25\n"


def test_fannkuch_value(outputs):
    # fannkuch(4): checksum 4, max flips 4 (known reference values).
    assert outputs["fannkuch-redux"]["lua"] == "4\n4\n"
    assert outputs["fannkuch-redux"]["js"] == "4\n4\n"


def test_pidigits_value(outputs):
    # The spigot buffers one predigit, so n iterations emit n-1 digits.
    assert outputs["pidigits"]["lua"] == "31415\n"
    assert outputs["pidigits"]["js"] == "31415\n"


def test_binary_trees_value(outputs):
    # sum over d=1..4 of nodes(2^(d+1)-1) = 3+7+15+31 = 56
    assert outputs["binary-trees"]["lua"] == "56\n"
    assert outputs["binary-trees"]["js"] == "56\n"


def test_nbody_energy_matches_clbg_reference(outputs):
    initial, final = outputs["n-body"]["lua"].splitlines()
    assert abs(float(initial) - (-0.169075164)) < 1e-8
    assert abs(float(final) - float(initial)) < 1e-4  # near-conserved


def test_knucleotide_counts_sum(outputs):
    for lang in ("lua", "js"):
        lines = outputs["k-nucleotide"][lang].splitlines()
        assert len(lines) == 16
        total = sum(int(line.split()[1]) for line in lines)
        assert total == TEST_SCALES["k-nucleotide"] - 1


def test_mandelbrot_prints_checksum(outputs):
    for lang in ("lua", "js"):
        lines = outputs["mandelbrot"][lang].splitlines()
        assert lines[-1].isdigit()


def test_spectral_norm_approximates_reference(outputs):
    # The power-method estimate approaches 1.274... as n grows; at n=3 it
    # should already be in the right neighbourhood.
    for lang in ("lua", "js"):
        value = float(outputs["spectral-norm"][lang])
        assert 1.1 < value < 1.3


def test_random_matches_lcg_reference(outputs):
    seed = 42
    for _ in range(TEST_SCALES["random"]):
        seed = (seed * 3877 + 29573) % 139968
    expected = 100.0 * seed / 139968
    for lang in ("lua", "js"):
        assert abs(float(outputs["random"][lang]) - expected) < 1e-9


@pytest.mark.parametrize("name", BENCHMARK_ORDER)
def test_lua_js_numeric_agreement(outputs, name):
    """Both language versions compute the same numbers (formatting may
    differ in float precision)."""
    lua_lines = outputs[name]["lua"].split()
    js_lines = outputs[name]["js"].split()
    assert len(lua_lines) == len(js_lines)
    for lua_token, js_token in zip(lua_lines, js_lines):
        try:
            assert abs(float(lua_token) - float(js_token)) < 1e-9
        except ValueError:
            assert lua_token == js_token
