"""The hardened executor: hung workers, dying workers, deterministic
failures, and the serial quarantine path.

Worker-side misbehaviour is keyed on the process id: under the fork
start method the module-global ``_PARENT_PID`` captured here stays the
parent's pid inside every pool worker, so the same (picklable) function
hangs or dies in the pool yet completes instantly when the executor
quarantines it to serial execution in the parent.
"""

import os
import time

import pytest

from repro.bench.parallel import run_hardened

_PARENT_PID = os.getpid()

FAST = dict(timeout=5.0, retries=1, backoff=0.01)


def _square(task):
    return task * task


def _hang_in_worker(task):
    if task == "hang" and os.getpid() != _PARENT_PID:
        time.sleep(3600)
    return ("ok", task)


def _die_in_worker(task):
    if task == "die" and os.getpid() != _PARENT_PID:
        os._exit(13)
    return ("ok", task)


def _always_raises(task):
    raise ValueError("deterministic failure on %r" % (task,))


def test_empty_task_list():
    assert run_hardened(_square, [], max_workers=4) == {}


def test_plain_parallel_map():
    results = run_hardened(_square, [1, 2, 3, 4, 5], max_workers=2,
                           **FAST)
    assert results == {n: n * n for n in (1, 2, 3, 4, 5)}


def test_single_worker_runs_serially_in_parent():
    seen = []
    results = run_hardened(_hang_in_worker, ["hang", "a"], max_workers=1,
                           on_result=lambda t, r: seen.append(t), **FAST)
    # max_workers=1 never builds a pool, so the "hang" task runs in the
    # parent (where it does not hang) in submission order.
    assert results == {"hang": ("ok", "hang"), "a": ("ok", "a")}
    assert seen == ["hang", "a"]


def test_hung_worker_is_killed_and_task_quarantined():
    tasks = ["a", "hang", "b", "c"]
    start = time.monotonic()
    results = run_hardened(_hang_in_worker, tasks, max_workers=2,
                           timeout=1.0, retries=1, backoff=0.01)
    elapsed = time.monotonic() - start
    # Two timed-out attempts, then the parent runs it serially — the
    # sweep completes with every result present and correct.
    assert results == {task: ("ok", task) for task in tasks}
    assert elapsed < 60, "hung worker wedged the executor"


def test_dying_worker_is_retried_then_quarantined():
    tasks = ["a", "die", "b", "c"]
    results = run_hardened(_die_in_worker, tasks, max_workers=2, **FAST)
    assert results == {task: ("ok", task) for task in tasks}


def test_deterministic_failure_raises_cleanly_in_parent():
    # A task that fails identically on every attempt must not be
    # retried forever: after the retry budget it runs serially in the
    # parent, where the real exception finally propagates.
    with pytest.raises(ValueError, match="deterministic failure"):
        run_hardened(_always_raises, ["x"], max_workers=2, **FAST)


def test_on_result_fires_once_per_task():
    seen = []
    results = run_hardened(_square, [3, 4, 5], max_workers=2,
                           on_result=lambda t, r: seen.append((t, r)),
                           **FAST)
    assert sorted(seen) == [(3, 9), (4, 16), (5, 25)]
    assert len(seen) == len(results) == 3
