"""Smoke tests: every shipped example must run cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=300)


def test_examples_present():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    args = ("fibo", "8") if name == "lua_speedup.py" else ()
    result = run_example(name, *args)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_computes_42():
    result = run_example("quickstart.py")
    assert "result value : 42" in result.stdout
    assert "fast path    : yes" in result.stdout


def test_lua_speedup_reports_all_configs():
    result = run_example("lua_speedup.py", "fibo", "8")
    for config in ("baseline", "chklb", "typed"):
        assert config in result.stdout


def test_context_switch_example_shows_misses():
    result = run_example("os_context_switch.py")
    assert "naive OS" in result.stdout
