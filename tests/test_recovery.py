"""In-flight recovery and load shedding at the router: transparent
re-dispatch with a ``retried`` event when a shard dies mid-request,
the request journal's exactly-once accounting, quorum-based shedding
(lowest priority first), and fast typed rejection + clean drain under
total shard loss."""

import socket
import threading

import pytest

from repro import api
from repro.bench import cache as result_cache
from repro.bench.runner import clear_cache
from repro.serve.client import ServeBusy, ServeShed
from repro.serve.hashring import HashRing
from repro.serve.router import ShardSpec
from tests.test_router import RouterHarness
from tests.test_serve import Harness


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path / "cache"):
        yield
    clear_cache()


class AbruptShard:
    """A shard that accepts a connection, reads one frame and slams
    the connection shut — the mid-request death the journal exists
    for."""

    def __init__(self, tmp_path):
        self.socket_path = str(tmp_path / "abrupt.sock")
        self.hits = 0
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(self.socket_path)
        self._sock.listen(4)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            with conn, conn.makefile("rb") as reader:
                reader.readline()
                self.hits += 1

    def close(self):
        self._sock.close()


def _source_owned_by(shard_id, specs):
    """A lua source whose canonical work key the ring places on
    ``shard_id`` (placement is deterministic, so just scan)."""
    ring = HashRing([spec.shard_id for spec in specs])
    for value in range(256):
        source = "print(%d)\n" % value
        request = api.ExecutionRequest(op="run", engine="lua",
                                       source=source, config="baseline")
        if ring.node_for(request.key()) == shard_id:
            return source
    raise AssertionError("no key landed on %s" % shard_id)


def test_midflight_shard_death_redispatches_with_retried_event(tmp_path):
    shard_dir = tmp_path / "shard-real"
    shard_dir.mkdir()
    real = Harness(shard_dir).start()
    abrupt = AbruptShard(tmp_path)
    # Huge health interval: eviction must come from the forward path
    # (mark_down), not from a lucky probe racing the submit.
    router = RouterHarness(tmp_path, [abrupt, real],
                           health_interval=60.0).start()
    abrupt_id = ShardSpec(socket_path=abrupt.socket_path).shard_id
    real_id = ShardSpec(socket_path=real.socket_path).shard_id
    source = _source_owned_by(abrupt_id, router.specs)
    events = []
    try:
        with router.client() as client:
            result = client.run("lua", source, config="baseline",
                                on_event=lambda f: events.append(f))
        assert result.ok              # the client saw recovery, not loss
        assert abrupt.hits >= 1       # the submit (plus startup probes)
        retried = [f for f in events if f.get("event") == "retried"]
        assert len(retried) == 1
        assert retried[0]["from"] == abrupt_id
        assert retried[0]["shard"] == real_id
        assert retried[0]["reason"] == "unreachable"
        routed = [f["shard"] for f in events
                  if f.get("event") == "routed"]
        assert routed == [abrupt_id, real_id]
        with router.client() as client:
            stats = client.status()
        assert stats["jobs"]["retried"] == 1
        journal = stats["journal"]["counters"]
        assert journal["duplicated"] == 0
        assert journal["redispatched"] == 1
        assert journal["opened"] == journal["completed"] == 1
        assert stats["journal"]["recent_retried"][0]["attempts"] \
            == [abrupt_id, real_id]
        assert not stats["shards"][abrupt_id]["healthy"]
    finally:
        router.stop()
        abrupt.close()
        real.stop()


def test_total_shard_loss_sheds_typed_error_and_drains_clean(tmp_path):
    shard_dir = tmp_path / "shard-0"
    shard_dir.mkdir()
    shard = Harness(shard_dir).start()
    router = RouterHarness(tmp_path, [shard], health_interval=0.1,
                           fail_threshold=1).start()
    try:
        with router.client() as client:
            assert client.run("lua", "print(1)\n").ok
        shard.stop()
        _wait_for(lambda: router.router.healthy_count() == 0)
        # New work is rejected fast with a typed error, not a hang.
        with router.client(timeout=10.0) as client:
            with pytest.raises(ServeShed) as excinfo:
                client.run("lua", "print(2)\n")
        assert excinfo.value.code == "shed"
        assert excinfo.value.retry_after is not None
        with router.client() as client:
            stats = client.status()
        assert stats["healthy"] == 0
        assert stats["jobs"]["shed"] == 1
    finally:
        # Drain must still complete with every shard gone.
        router.stop()
        assert router.exited.is_set()


def test_below_quorum_sheds_lowest_priority_first(tmp_path):
    shard_dirs = [tmp_path / ("shard-%d" % i) for i in range(2)]
    for directory in shard_dirs:
        directory.mkdir()
    shards = [Harness(directory).start() for directory in shard_dirs]
    # Majority quorum of 2 shards is 2: one loss puts us below it.
    router = RouterHarness(tmp_path, shards, health_interval=0.1,
                           fail_threshold=1, quorum=2).start()
    try:
        shards[1].stop()
        _wait_for(lambda: router.router.healthy_count() == 1)
        with router.client(timeout=10.0) as client:
            # Least urgent traffic is shed...
            with pytest.raises(ServeShed):
                client.run("lua", "print(9)\n", priority=9)
            # ...while default-priority work still lands on the
            # survivor (shedding order is deterministic, not random).
            assert client.run("lua", "print(5)\n").ok
            stats = client.status()
        assert stats["quorum"] == 2 and stats["healthy"] == 1
        assert stats["jobs"]["shed"] == 1
        assert stats["jobs"]["completed"] >= 1
    finally:
        router.stop()
        shards[0].stop()


def test_shed_is_a_busy_subclass_for_retry_compat():
    # Existing retry/backoff handling written against ServeBusy must
    # treat shed rejections the same way.
    assert issubclass(ServeShed, ServeBusy)


def _wait_for(predicate, timeout=15.0):
    import time
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never held"
        time.sleep(0.02)
