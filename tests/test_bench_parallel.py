"""The parallel sweep: serial equivalence, cache interplay, fallback,
progress metrics, and the run_matrix use_cache regression."""

import json

import pytest

from repro.bench import cache as result_cache
from repro.bench import parallel, runner
from repro.bench.parallel import matrix_cells, run_matrix_parallel
from repro.bench.runner import clear_cache, run_matrix
from repro.engines import CONFIGS

SMALL = dict(engines=("lua",), benchmarks=("fibo", "n-sieve"),
             scales={"fibo": 8, "n-sieve": 60})


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_cache()
    yield
    clear_cache()


def _identical(left, right):
    assert list(left) == list(right)  # same cells, same canonical order
    for key in left:
        assert left[key].output == right[key].output, key
        assert left[key].counters == right[key].counters, key
        assert json.dumps(left[key].counters.as_dict(), sort_keys=True) \
            == json.dumps(right[key].counters.as_dict(), sort_keys=True)


def test_parallel_matches_serial():
    result_cache.disable()
    try:
        serial = run_matrix(**SMALL)
        clear_cache()
        parallel_records = run_matrix_parallel(max_workers=2, **SMALL)
    finally:
        result_cache.disable()
    _identical(serial, parallel_records)


def test_serial_fallback_when_one_worker():
    events = []
    records = run_matrix_parallel(max_workers=1, progress=events.append,
                                  **SMALL)
    total = 2 * len(CONFIGS)
    assert len(records) == total
    assert [event.completed for event in events] == list(range(1, total + 1))
    assert all(event.total == total for event in events)


def test_fallback_when_pool_unavailable(monkeypatch):
    def broken_pool(*_args, **_kwargs):
        raise OSError("no semaphores here")

    monkeypatch.setattr(parallel, "ProcessPoolExecutor", broken_pool)
    serial = run_matrix(**SMALL)
    clear_cache()
    records = run_matrix_parallel(max_workers=4, **SMALL)
    _identical(serial, records)


def test_warm_disk_cache_simulates_nothing(tmp_path, monkeypatch):
    with result_cache.temporary(tmp_path):
        cold = []
        records = run_matrix_parallel(max_workers=2,
                                      progress=cold.append, **SMALL)
        clear_cache()  # memory gone; only the disk knows the results

        def boom(_cell):
            raise AssertionError("simulated despite a warm disk cache")

        monkeypatch.setattr(parallel, "_simulate_cell", boom)
        warm = []
        again = run_matrix_parallel(max_workers=2,
                                    progress=warm.append, **SMALL)
    assert sum(1 for event in cold if event.cached) == 0
    assert all(event.cached for event in warm)
    assert warm[-1].cache_hits == len(warm) == len(records)
    _identical(records, again)


def test_progress_reports_throughput_and_hits():
    events = []
    records = run_matrix_parallel(max_workers=1, progress=events.append,
                                  **SMALL)
    for event in events:
        assert event.key in records
        assert event.instructions > 0
        assert event.scale == SMALL["scales"][event.key[1]]
        if event.cached:
            assert event.seconds == 0.0 and event.throughput == 0.0
        else:
            assert event.seconds > 0.0 and event.throughput > 0.0
    # second pass over a warm memory cache: all hits, counted as such
    warm = []
    run_matrix_parallel(max_workers=1, progress=warm.append, **SMALL)
    assert all(event.cached for event in warm)
    assert [event.cache_hits for event in warm] \
        == list(range(1, len(warm) + 1))


def test_matrix_cells_order_matches_run_matrix():
    cells = matrix_cells(**SMALL)
    assert [cell[:3] for cell in cells] == list(run_matrix(**SMALL))
    assert all(cell[3] == SMALL["scales"][cell[1]] for cell in cells)


def test_use_cache_false_runs_fresh():
    """Parallel path: use_cache=False ignores poisoned caches."""
    seeded = run_matrix_parallel(max_workers=1, **SMALL)
    key = next(iter(seeded))
    poisoned = runner.RunRecord(engine=key[0], benchmark=key[1],
                                config=key[2], scale=8,
                                output="poisoned", counters=None)
    runner._CACHE[key + (8,)] = poisoned
    fresh = run_matrix_parallel(max_workers=1, use_cache=False, **SMALL)
    assert fresh[key].output != "poisoned"


# -- regression: run_matrix never forwarded use_cache -----------------------------

def test_run_matrix_forwards_use_cache(monkeypatch):
    seen = []
    sentinel = runner.RunRecord(engine="lua", benchmark="fibo",
                                config="baseline", scale=1, output="",
                                counters=None)

    def spy(engine, benchmark, config, scale=None, use_cache=True):
        seen.append(use_cache)
        return sentinel

    monkeypatch.setattr(runner, "run_benchmark", spy)
    run_matrix(use_cache=False, **SMALL)
    assert seen and all(flag is False for flag in seen)
    seen.clear()
    run_matrix(**SMALL)
    assert seen and all(flag is True for flag in seen)
