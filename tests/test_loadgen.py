"""The load generator and the SLO gate: deterministic populations,
zipf popularity, percentile math, a real (tiny) load run against an
in-process daemon, and the gate's pass/violation behaviour on stamped
``BENCH_serve.json`` artifacts."""

import threading

import pytest

from repro.bench import cache as result_cache
from repro.bench import gate
from repro.bench.runner import clear_cache
from repro.schema import SCHEMA_VERSION
from repro.serve import loadgen
from tests.test_serve import Harness


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path / "cache"):
        yield
    clear_cache()


def small_spec(**overrides):
    # qps sized to the inline daemon's serial capacity (~40 small
    # requests/s) so the sustained-QPS floor holds without overrides.
    kwargs = dict(qps=20.0, duration=0.6, keys=4, threads=4,
                  mix={"run": 1.0}, configs=("baseline",), sample=2,
                  drain_inflight=2, timeout=60.0)
    kwargs.update(overrides)
    return loadgen.LoadSpec(**kwargs)


# -- the traffic model -------------------------------------------------------

def test_population_is_deterministic_for_a_seed():
    spec = loadgen.LoadSpec(keys=16, seed=7)
    first = loadgen.build_population(spec)
    second = loadgen.build_population(loadgen.LoadSpec(keys=16, seed=7))
    assert first == second
    shifted = loadgen.build_population(loadgen.LoadSpec(keys=16, seed=8))
    assert [e["key"] for e in first] != [e["key"] for e in shifted]


def test_population_op_mix_and_run_key_distinctness():
    population = loadgen.build_population(loadgen.LoadSpec(keys=32))
    ops = {entry["op"] for entry in population}
    assert ops <= {"run", "bench", "sweep"}
    # run sources are distinct per rank, so their keys never collide
    # (bench cells may legitimately repeat when config and scale
    # cycles realign).
    only_runs = loadgen.build_population(
        loadgen.LoadSpec(keys=8, mix={"run": 1.0}))
    assert all(entry["op"] == "run" for entry in only_runs)
    assert len({entry["key"] for entry in only_runs}) == 8


def test_zipf_rank_zero_is_most_popular():
    sampler = loadgen.ZipfSampler(8, s=1.1)
    import random
    rng = random.Random(3)
    counts = [0] * 8
    for _ in range(4000):
        counts[sampler.draw(rng.random())] += 1
    assert counts[0] == max(counts)
    assert counts[0] > counts[-1] * 2
    assert sampler.draw(0.0) == 0
    assert sampler.draw(0.999999) == 7


def test_percentile_edges():
    assert loadgen.percentile([], 0.99) == 0.0
    assert loadgen.percentile([5.0], 0.5) == 5.0
    values = [float(v) for v in range(1, 101)]
    assert loadgen.percentile(values, 0.50) == 50.0
    assert loadgen.percentile(values, 0.99) == 99.0
    assert loadgen.percentile(values, 1.0) == 100.0


# -- a real load run ---------------------------------------------------------

def test_run_load_against_a_daemon_completes_and_gates(tmp_path):
    harness = Harness(tmp_path).start()
    spec = small_spec()
    # drain_check=True is the run's final act: it stops the daemon.
    report = loadgen.run_load(spec, socket_path=harness.socket_path,
                              drain_check=True)
    assert harness.exited.wait(30)

    traffic = report["traffic"]
    assert traffic["offered"] == int(spec.qps * spec.duration)
    assert traffic["completed"] == traffic["offered"]
    assert traffic["errors"] == 0 and traffic["rejected"] == 0
    assert report["latency_ms"]["p99"] >= report["latency_ms"]["p50"] > 0
    assert report["identity"] == {"sampled": 2, "matched": 2,
                                  "mismatched_keys": []}
    assert report["drain"]["checked"]
    assert report["drain"]["dropped"] == 0

    stamped = loadgen.make_report(report)
    assert stamped["version"] == SCHEMA_VERSION
    assert stamped["kind"] == loadgen.ARTIFACT_KIND
    violations, text = gate.check_slo(stamped)
    assert violations == [], text
    assert "SLO GATE: ok" in text


def test_progress_callback_sees_every_outcome(tmp_path):
    harness = Harness(tmp_path).start()
    ticks = []
    lock = threading.Lock()

    def progress(collector):
        with lock:
            ticks.append(collector.completed)

    spec = small_spec(qps=40.0, duration=0.2)
    report = loadgen.run_load(spec, socket_path=harness.socket_path,
                              drain_check=False, progress=progress)
    harness.stop()
    assert len(ticks) == report["traffic"]["offered"]


# -- the SLO gate ------------------------------------------------------------

def passing_report():
    return loadgen.make_report({
        "spec": {"qps": 10.0},
        "traffic": {"offered": 50, "completed": 50, "rejected": 0,
                    "errors": 0, "error_samples": []},
        "sustained_qps": 9.5,
        "latency_ms": {"p99": 120.0},
        "rejection_rate": 0.0,
        "error_rate": 0.0,
        "identity": {"sampled": 3, "matched": 3, "mismatched_keys": []},
        "drain": {"checked": True, "inflight_at_drain": 3, "dropped": 0},
    })


def test_slo_gate_passes_a_healthy_report():
    violations, text = gate.check_slo(passing_report())
    assert violations == []
    assert text.startswith("SLO GATE: ok")


@pytest.mark.parametrize("doctor,needle", [
    (lambda r: r["latency_ms"].__setitem__("p99", 9999.0), "p99"),
    (lambda r: r.__setitem__("sustained_qps", 1.0), "sustained"),
    (lambda r: r.__setitem__("rejection_rate", 0.9), "rejection"),
    (lambda r: (r.__setitem__("error_rate", 0.5),
                r["traffic"].__setitem__("errors", 25)), "error"),
    (lambda r: r["drain"].__setitem__("dropped", 2), "drain"),
    (lambda r: r["drain"].__setitem__("checked", False), "drain"),
    (lambda r: r["identity"].__setitem__("matched", 1), "identity"),
    (lambda r: r["identity"].__setitem__("sampled", 0), "identity"),
])
def test_slo_gate_flags_each_violation(doctor, needle):
    report = passing_report()
    doctor(report)
    violations, text = gate.check_slo(report)
    assert violations, text
    assert any(needle in violation for violation in violations), \
        (needle, violations)
    assert "violation" in text


def test_slo_gate_overrides_loosen_and_tighten():
    report = passing_report()
    report["latency_ms"]["p99"] = 9999.0
    assert gate.check_slo(report)[0]
    assert gate.check_slo(report, p99_ms=10000.0)[0] == []
    assert gate.check_slo(passing_report(), p99_ms=1.0)[0]
    loosened = passing_report()
    loosened["drain"]["dropped"] = 1
    assert gate.check_slo(loosened, max_drain_dropped=1)[0] == []


def test_slo_gate_rejects_unknown_overrides_and_bad_artifacts():
    with pytest.raises(ValueError):
        gate.check_slo(passing_report(), p99=100.0)
    # Unstamped or wrong-kind payloads gate as violations, not crashes.
    violations, text = gate.check_slo({"latency_ms": {"p99": 1.0}})
    assert violations and "artifact" in violations[0]
    assert "unreadable artifact" in text
    from repro.schema import artifact
    violations, _text = gate.check_slo(
        artifact("sweep", {"latency_ms": {"p99": 1.0}}))
    assert violations and "kind" in violations[0]
