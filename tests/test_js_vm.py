"""End-to-end MiniJS VM tests on the baseline machine."""

import pytest

from repro.engines.js import run_js
from repro.engines.js.runtime import JsError


def js(source, config="baseline"):
    return run_js(source, config=config, max_instructions=20_000_000).output


def test_print_numbers():
    assert js("print(42);") == "42\n"
    assert js("print(1.5);") == "1.5\n"
    assert js("print(3.0);") == "3\n"  # integral doubles print as ints


def test_integer_arithmetic():
    assert js("print(7 + 3, 7 - 3, 7 * 3);") == "10 4 21\n"
    assert js("print(7 % 3, -7 % 3);") == "1 -1\n"  # JS truncated modulo


def test_division_always_double():
    assert js("print(7 / 2, 4 / 2, 1 / 0);") == "3.5 2 Infinity\n"


def test_int32_overflow_becomes_double():
    assert js("print(2147483647 + 1);") == "2147483648\n"
    assert js("var x = 100000; print(x * x);") == "10000000000\n"


def test_float_arithmetic_and_mixed():
    assert js("print(1.5 + 2.25, 1 + 0.5, 0.5 + 1);") == "3.75 1.5 1.5\n"


def test_unary_minus_and_negative_zero():
    assert js("print(-5, -2.5);") == "-5 -2.5\n"
    assert js("var z = 0; print(1 / -z);") == "Infinity\n"  # int 0 negation


def test_string_concatenation():
    assert js("print('a' + 'b', 'n=' + 42, 1 + '2');") == "ab n=42 12\n"


def test_comparisons():
    assert js("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4);") \
        == "true true false true\n"
    assert js("print(1 == 1.0, 1 == 2, 'a' == 'a', 'a' != 'b');") \
        == "true false true true\n"


def test_string_ordering_via_slow_path():
    assert js("print('abc' < 'abd', 'b' < 'a');") == "true false\n"


def test_truthiness_and_not():
    assert js("print(!0, !1, !'', !'x', !null, !undefined);") \
        == "true false true false true true\n"


def test_logical_operators_return_operands():
    assert js("print(0 || 5, 3 && 7, null || 'd');") == "5 7 d\n"


def test_while_and_for_loops():
    assert js("""
    var s = 0;
    for (var i = 1; i <= 10; i++) s += i;
    print(s);
    """) == "55\n"
    assert js("""
    var i = 0; var n = 0;
    while (i < 5) { n += 2; i++; }
    print(n);
    """) == "10\n"


def test_break():
    assert js("""
    var s = 0;
    for (var i = 0; i < 100; i++) { if (i == 5) break; s += i; }
    print(s);
    """) == "10\n"


def test_functions_and_recursion():
    assert js("""
    function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
    print(fib(10));
    """) == "55\n"


def test_function_without_return():
    assert js("function f() {} print(f());") == "undefined\n"


def test_forward_function_reference():
    assert js("print(f(4)); function f(x) { return x * x; }") == "16\n"


def test_arrays():
    assert js("""
    var a = [10, 20, 30];
    print(a[0], a[2], a.length);
    """) == "10 30 3\n"


def test_array_growth_and_append():
    assert js("""
    var a = [];
    for (var i = 0; i < 50; i++) a[i] = i;
    print(a[49], a.length);
    """) == "49 50\n"


def test_array_out_of_range_is_undefined():
    assert js("var a = [1]; print(a[5]);") == "undefined\n"


def test_sparse_array():
    assert js("var a = []; a[100] = 7; print(a[100], a.length);") \
        == "7 101\n"


def test_objects_and_properties():
    assert js("""
    var o = {x: 3, y: 4};
    o.z = o.x * o.y;
    print(o.z, o['x']);
    """) == "12 3\n"


def test_missing_property_is_undefined():
    assert js("var o = {}; print(o.missing);") == "undefined\n"


def test_string_indexing_and_length():
    assert js("var s = 'hello'; print(s[1], s.length);") == "e 5\n"


def test_math_builtins():
    assert js("print(Math.sqrt(16), Math.floor(3.7), Math.abs(-4));") \
        == "4 3 4\n"
    assert js("print(Math.max(1, 7, 3), Math.min(2, -1), Math.pow(2, 10));")\
        == "7 -1 1024\n"


def test_string_builtins():
    assert js("print(substring('hello', 1, 3), charCodeAt('A', 0));") \
        == "el 65\n"
    assert js("print(String.fromCharCode(66, 67));") == "BC\n"


def test_write_builtin():
    assert js("write('a'); write('b', 'c');") == "abc"


def test_nested_arrays():
    assert js("""
    var g = [];
    for (var i = 0; i < 3; i++) {
      g[i] = [];
      for (var j = 0; j < 3; j++) g[i][j] = i * 10 + j;
    }
    print(g[2][1]);
    """) == "21\n"


def test_undefined_arithmetic_is_nan():
    assert js("var x; print(x + 1);") == "NaN\n"


def test_runtime_error_on_calling_non_function():
    with pytest.raises(JsError):
        js("var x = 5; x();")


def test_runtime_error_on_property_of_undefined():
    with pytest.raises(JsError):
        js("var x; print(x.foo);")


def test_deep_recursion():
    assert js("""
    function down(n) { if (n == 0) return 0; return down(n - 1) + 1; }
    print(down(400));
    """) == "400\n"


def test_continue_in_for_loop():
    assert js("""
    var s = 0;
    for (var i = 1; i <= 10; i++) {
      if (i % 2 == 0) continue;
      s += i;
    }
    print(s);
    """) == "25\n"


def test_continue_in_while_loop():
    assert js("""
    var i = 0; var s = 0;
    while (i < 10) {
      i++;
      if (i > 5) continue;
      s += i;
    }
    print(s, i);
    """) == "15 10\n"


def test_ternary_operator():
    assert js("print(1 < 2 ? 'yes' : 'no');") == "yes\n"
    assert js("var x = 5; print(x > 3 ? x * 2 : x - 1);") == "10\n"
    assert js("print(false ? 1 : true ? 2 : 3);") == "2\n"  # right-assoc


def test_do_while_runs_body_at_least_once():
    assert js("""
    var n = 0;
    do { n++; } while (false);
    print(n);
    """) == "1\n"
    assert js("""
    var i = 0; var s = 0;
    do { s += i; i++; } while (i < 5);
    print(s, i);
    """) == "10 5\n"


def test_do_while_with_continue_and_break():
    assert js("""
    var i = 0; var s = 0;
    do {
      i++;
      if (i % 2 == 0) continue;
      if (i > 7) break;
      s += i;
    } while (i < 100);
    print(s, i);
    """) == "16 9\n"


def test_typeof_operator():
    assert js("print(typeof 1, typeof 1.5, typeof 'x');") \
        == "number number string\n"
    assert js("print(typeof undefined, typeof null, typeof true);") \
        == "undefined object boolean\n"
    assert js("var a = []; var o = {}; print(typeof a, typeof o);") \
        == "object object\n"
    assert js("function f() {} print(typeof f, typeof print);") \
        == "function function\n"
