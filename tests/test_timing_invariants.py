"""Property tests on timing-model invariants over random programs.

Random straight-line programs (terminating by construction) exercise the
cycle-accounting bookkeeping: the counters must be internally consistent
no matter what instruction mix runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.uarch.pipeline import Machine

# Instruction templates over registers a0-a5 and a scratch memory window.
_TEMPLATES = (
    "addi {rd}, {rs}, {imm}",
    "add {rd}, {rs}, {rt}",
    "sub {rd}, {rs}, {rt}",
    "mul {rd}, {rs}, {rt}",
    "slli {rd}, {rs}, {sh}",
    "xor {rd}, {rs}, {rt}",
    "sd {rs}, {off}(s0)",
    "ld {rd}, {off}(s0)",
    "sltu {rd}, {rs}, {rt}",
)

_REGS = ("a0", "a1", "a2", "a3", "a4", "a5")


@st.composite
def straight_line_programs(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    lines = ["li s0, 0x8000"]
    for _ in range(count):
        template = draw(st.sampled_from(_TEMPLATES))
        lines.append(template.format(
            rd=draw(st.sampled_from(_REGS)),
            rs=draw(st.sampled_from(_REGS)),
            rt=draw(st.sampled_from(_REGS)),
            imm=draw(st.integers(-100, 100)),
            sh=draw(st.integers(0, 31)),
            off=draw(st.integers(0, 15)) * 8,
        ))
    lines.append("ebreak")
    return "\n".join(lines)


def _run(text):
    cpu = Cpu(assemble(text), Memory(size=1 << 16))
    machine = Machine(cpu)
    return machine, machine.run(max_instructions=100_000)


@settings(max_examples=60, deadline=None)
@given(text=straight_line_programs())
def test_cycles_bound_instructions(text):
    _, counters = _run(text)
    assert counters.cycles >= counters.instructions
    # No instruction can cost more than a worst-case stack of penalties.
    assert counters.cycles < counters.instructions * 80 + 200


@settings(max_examples=60, deadline=None)
@given(text=straight_line_programs())
def test_icache_accessed_once_per_instruction(text):
    _, counters = _run(text)
    assert counters.icache_accesses == counters.core_instructions
    assert counters.icache_misses <= counters.icache_accesses


@settings(max_examples=60, deadline=None)
@given(text=straight_line_programs())
def test_dcache_accesses_match_memory_ops(text):
    machine, counters = _run(text)
    loads = text.count("ld ") + text.count("sd ")
    assert counters.dcache_accesses == loads
    assert counters.dcache_misses <= counters.dcache_accesses


@settings(max_examples=30, deadline=None)
@given(text=straight_line_programs())
def test_timing_is_deterministic(text):
    _, first = _run(text)
    _, second = _run(text)
    assert first.cycles == second.cycles
    assert first.as_dict() == second.as_dict()


@settings(max_examples=40, deadline=None)
@given(text=straight_line_programs())
def test_block_engine_matches_interpreter(text):
    """The superinstruction engine is an optimisation, not a model:
    counters, cycles and architectural state must be bit-identical to
    the per-instruction loop on arbitrary instruction mixes."""
    ref_cpu = Cpu(assemble(text), Memory(size=1 << 16))
    ref = Machine(ref_cpu, use_blocks=False).run(max_instructions=100_000)
    blk_cpu = Cpu(assemble(text), Memory(size=1 << 16))
    blk = Machine(blk_cpu).run(max_instructions=100_000)
    assert blk.as_dict() == ref.as_dict()
    assert blk_cpu.regs.value == ref_cpu.regs.value
    assert blk_cpu.mem.data == ref_cpu.mem.data


@settings(max_examples=30, deadline=None)
@given(text=straight_line_programs())
def test_functional_state_independent_of_timing(text):
    """The timing layer must never change architectural results."""
    timed_cpu = Cpu(assemble(text), Memory(size=1 << 16))
    Machine(timed_cpu).run(max_instructions=100_000)
    pure_cpu = Cpu(assemble(text), Memory(size=1 << 16))
    pure_cpu.run(max_instructions=100_000)
    assert timed_cpu.regs.value == pure_cpu.regs.value
    assert timed_cpu.mem.data == pure_cpu.mem.data
