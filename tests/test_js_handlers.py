"""Handler-level tests for the MiniJS stack machine (raw bytecode)."""

import pytest

from repro.engines import CONFIGS
from repro.engines.js.compiler import JsChunk, JsProto
from repro.engines.js.image import build_image, fill_jump_table
from repro.engines.js.layout import MEMORY_SIZE, STACK_BASE, TAG_INT32
from repro.engines.js.opcodes import JsOp, encode
from repro.engines.js.runtime import JsHost, JsRuntime
from repro.engines.js.vm import interpreter_program
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec


def run_chunk(code, constants=(), num_locals=4, config="baseline"):
    proto = JsProto(name="main", num_params=0, num_locals=num_locals,
                    code=list(code), constants=list(constants))
    chunk = JsChunk([proto], ["print", "Math", "String"], {})
    memory = Memory(size=MEMORY_SIZE)
    runtime = JsRuntime(memory)
    image = build_image(chunk, runtime)
    program, _ = interpreter_program(config)
    fill_jump_table(image, program, memory)
    host = JsHost(runtime)
    codec = TagCodec(double_tag=0, int_tag=TAG_INT32)
    cpu = Cpu(program, memory, host=host.interface, tag_codec=codec,
              overflow_bits=32)
    cpu.run(max_instructions=2_000_000)
    return runtime, cpu


def read_local(runtime, slot):
    return runtime.read_slot(STACK_BASE + slot * 8)


@pytest.mark.parametrize("config", CONFIGS)
def test_add_int_fast_path(config):
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0),
        encode(JsOp.PUSHK, 1),
        encode(JsOp.ADD),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[30, 12], config=config)
    assert read_local(runtime, 0) == 42


@pytest.mark.parametrize("config", CONFIGS)
def test_add_double_pair(config):
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0),
        encode(JsOp.PUSHK, 1),
        encode(JsOp.ADD),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[1.25, 0.5], config=config)
    assert read_local(runtime, 0) == 1.75


@pytest.mark.parametrize("config", CONFIGS)
def test_add_mixed_int_double_inline(config):
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0),
        encode(JsOp.PUSHK, 1),
        encode(JsOp.ADD),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[1, 0.5], config=config)
    assert read_local(runtime, 0) == 1.5


@pytest.mark.parametrize("config", CONFIGS)
def test_mul_overflow_promotes(config):
    runtime, cpu = run_chunk([
        encode(JsOp.PUSHK, 0),
        encode(JsOp.PUSHK, 0),
        encode(JsOp.MUL),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[100000], config=config)
    assert read_local(runtime, 0) == 10000000000.0
    if config == "typed":
        assert cpu.overflow_traps == 1


def test_stack_discipline_dup_pop():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0),
        encode(JsOp.DUP),
        encode(JsOp.ADD),
        encode(JsOp.PUSHK, 1),
        encode(JsOp.POP),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[21, 999])
    assert read_local(runtime, 0) == 42


def test_push_constants():
    runtime, _ = run_chunk([
        encode(JsOp.UNDEF), encode(JsOp.SETLOCAL, 0),
        encode(JsOp.NULL), encode(JsOp.SETLOCAL, 1),
        encode(JsOp.PUSHBOOL, 1), encode(JsOp.SETLOCAL, 2),
        encode(JsOp.PUSHBOOL, 0), encode(JsOp.SETLOCAL, 3),
        encode(JsOp.RETURN_UNDEF),
    ])
    from repro.engines.js.runtime import NULL
    assert read_local(runtime, 0) is None
    assert read_local(runtime, 1) is NULL
    assert read_local(runtime, 2) is True
    assert read_local(runtime, 3) is False


@pytest.mark.parametrize("config", CONFIGS)
def test_array_set_get_fast_path(config):
    runtime, _ = run_chunk([
        encode(JsOp.NEWARRAY, 4), encode(JsOp.SETLOCAL, 0),
        encode(JsOp.GETLOCAL, 0), encode(JsOp.PUSHK, 0),
        encode(JsOp.PUSHK, 1), encode(JsOp.SETELEM),
        encode(JsOp.GETLOCAL, 0), encode(JsOp.PUSHK, 0),
        encode(JsOp.GETELEM), encode(JsOp.SETLOCAL, 1),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[0, 77], config=config)
    assert read_local(runtime, 1) == 77


def test_negative_index_goes_slow_and_yields_undefined():
    runtime, _ = run_chunk([
        encode(JsOp.NEWARRAY, 4), encode(JsOp.SETLOCAL, 0),
        encode(JsOp.GETLOCAL, 0), encode(JsOp.PUSHK, 0),
        encode(JsOp.GETELEM), encode(JsOp.SETLOCAL, 1),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[-3])
    assert read_local(runtime, 1) is None


def test_comparisons_all_paths():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0), encode(JsOp.PUSHK, 1),
        encode(JsOp.LT), encode(JsOp.SETLOCAL, 0),     # 1 < 2.5 (mixed)
        encode(JsOp.PUSHK, 1), encode(JsOp.PUSHK, 0),
        encode(JsOp.GT), encode(JsOp.SETLOCAL, 1),     # 2.5 > 1
        encode(JsOp.PUSHK, 0), encode(JsOp.PUSHK, 0),
        encode(JsOp.EQ), encode(JsOp.SETLOCAL, 2),
        encode(JsOp.PUSHK, 0), encode(JsOp.PUSHK, 1),
        encode(JsOp.NE), encode(JsOp.SETLOCAL, 3),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[1, 2.5])
    assert read_local(runtime, 0) is True
    assert read_local(runtime, 1) is True
    assert read_local(runtime, 2) is True
    assert read_local(runtime, 3) is True


def test_nan_not_equal_to_itself():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0), encode(JsOp.PUSHK, 1),
        encode(JsOp.DIV),                    # 0.0 / 0.0 = NaN
        encode(JsOp.DUP),
        encode(JsOp.EQ), encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[0.0, 0.0])
    assert read_local(runtime, 0) is False


def test_jump_and_ifeq():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0),               # 7
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.PUSHBOOL, 0),
        encode(JsOp.IFEQ, 2),                # falsy: skip the next two
        encode(JsOp.PUSHK, 1),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[7, 99])
    assert read_local(runtime, 0) == 7


def test_mod_negative_dividend_slow_path():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0), encode(JsOp.PUSHK, 1),
        encode(JsOp.MOD), encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[-7, 7])
    # JS -7 % 7 is -0 (a double), not integer 0.
    value = read_local(runtime, 0)
    assert value == 0.0
    assert isinstance(value, float)


def test_neg_int_min_promotes_to_double():
    runtime, _ = run_chunk([
        encode(JsOp.PUSHK, 0), encode(JsOp.NEG),
        encode(JsOp.SETLOCAL, 0),
        encode(JsOp.RETURN_UNDEF),
    ], constants=[-2147483648])
    assert read_local(runtime, 0) == 2147483648.0


def test_illegal_opcode_traps():
    from repro.engines.js.runtime import JsError
    with pytest.raises(JsError, match="illegal opcode"):
        run_chunk([encode(63), encode(JsOp.RETURN_UNDEF)])  # unused slot
