"""Differential property tests: random programs vs. reference semantics.

Hypothesis generates random expression trees; each is rendered to MiniLua
and MiniJS source, executed on the simulated machine in all three
configurations, and compared against a Python reference evaluator that
implements the respective language's numeric semantics (Lua 5.3 64-bit
wrapping integers and floor division; JavaScript int32-with-overflow-to-
double).  Any divergence between configurations — or from the reference —
is an architectural bug.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines import CONFIGS
from repro.engines.js import run_js
from repro.engines.lua import run_lua
from repro.engines.lua.runtime import lua_number_string

# -- expression trees ------------------------------------------------------------
# Nodes: ("lit", value) | (op, left, right) | ("neg", operand)

INT_OPS = ("+", "-", "*")
SAFE_DIV_OPS = ("//", "%")  # right operand forced to a positive literal


def _int_exprs(depth):
    literal = st.integers(min_value=0, max_value=99).map(
        lambda v: ("lit", v))
    if depth == 0:
        return literal
    sub = _int_exprs(depth - 1)
    return st.one_of(
        literal,
        st.tuples(st.sampled_from(INT_OPS), sub, sub),
        st.tuples(st.sampled_from(SAFE_DIV_OPS), sub,
                  st.integers(min_value=1, max_value=9).map(
                      lambda v: ("lit", v))),
        st.tuples(st.just("neg"), sub),
    )


def _float_exprs(depth):
    literal = st.integers(min_value=-40, max_value=40).map(
        lambda v: ("lit", v * 0.25))
    if depth == 0:
        return literal
    sub = _float_exprs(depth - 1)
    return st.one_of(
        literal,
        st.tuples(st.sampled_from(("+", "-", "*")), sub, sub),
        st.tuples(st.just("neg"), sub),
    )


def _literal(value):
    """Render a literal; negatives are parenthesised so that a unary
    minus in front can never lex as a Lua comment or JS decrement."""
    if isinstance(value, float):
        text = repr(value)
        if "." not in text and "e" not in text:
            text += ".0"
    else:
        text = str(value)
    return "(%s)" % text if value < 0 else text


def render(node, float_style=False):
    """Render an expression tree to (Lua-and-JS-compatible) source."""
    kind = node[0]
    if kind == "lit":
        return _literal(node[1])
    if kind == "neg":
        return "(-%s)" % render(node[1], float_style)
    op, left, right = node
    return "(%s %s %s)" % (render(left, float_style), op,
                           render(right, float_style))


def eval_lua(node):
    """Reference evaluation with Lua 5.3 integer semantics."""
    kind = node[0]
    if kind == "lit":
        return node[1]
    if kind == "neg":
        return _wrap(-eval_lua(node[1]))
    op, left, right = node
    x, y = eval_lua(left), eval_lua(right)
    if op == "+":
        return _wrap(x + y)
    if op == "-":
        return _wrap(x - y)
    if op == "*":
        return _wrap(x * y)
    if op == "//":
        return _wrap(x // y)
    if op == "%":
        return _wrap(x % y)
    raise AssertionError(op)


def _wrap(value):
    if isinstance(value, int):
        value &= (1 << 64) - 1
        if value >= 1 << 63:
            value -= 1 << 64
    return value


def eval_js(node):
    """Reference evaluation with int32-overflow-to-double semantics."""
    kind = node[0]
    if kind == "lit":
        return node[1]
    if kind == "neg":
        value = eval_js(node[1])
        if isinstance(value, int):
            result = -value
            return result if _fits32(result) and value != 0 \
                else float(result)
        return -value
    op, left, right = node
    x, y = eval_js(left), eval_js(right)
    if op == "+":
        result = x + y
    elif op == "-":
        result = x - y
    elif op == "*":
        result = x * y
    elif op == "//":
        return math.floor(x / y) if not (isinstance(x, int)
                                         and isinstance(y, int)) \
            else _jsify(math.floor(x / y))
    elif op == "%":
        return x % y if isinstance(x, int) and isinstance(y, int) and \
            x >= 0 else math.fmod(x, y)
    else:
        raise AssertionError(op)
    if isinstance(x, int) and isinstance(y, int):
        return _jsify(result)
    return float(result)


def _fits32(value):
    return -(1 << 31) <= value < (1 << 31)


def _jsify(value):
    return value if _fits32(value) else float(value)


def _render_js(node):
    """JS rendering: '//' becomes Math.floor(x / y)."""
    kind = node[0]
    if kind == "lit":
        return _literal(node[1])
    if kind == "neg":
        return "(- %s)" % _render_js(node[1])
    op, left, right = node
    if op == "//":
        return "Math.floor(%s / %s)" % (_render_js(left),
                                        _render_js(right))
    return "(%s %s %s)" % (_render_js(left), op, _render_js(right))


# -- Lua differential --------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(expr=_int_exprs(3))
def test_lua_integer_expressions_match_reference(expr):
    source = "print(%s)" % render(expr)
    expected = lua_number_string(eval_lua(expr)) + "\n"
    outputs = {config: run_lua(source, config=config,
                               attribute=False).output
               for config in CONFIGS}
    assert outputs["baseline"] == expected, source
    assert outputs["typed"] == expected, source
    assert outputs["chklb"] == expected, source


@settings(max_examples=40, deadline=None)
@given(expr=_float_exprs(3))
def test_lua_float_expressions_match_reference(expr):
    source = "print(%s)" % render(expr, float_style=True)
    expected = eval_lua(expr)
    for config in CONFIGS:
        output = run_lua(source, config=config, attribute=False).output
        assert float(output) == pytest.approx(expected, abs=1e-9), source


@settings(max_examples=25, deadline=None)
@given(x=st.integers(-(1 << 40), 1 << 40),
       y=st.integers(-(1 << 40), 1 << 40))
def test_lua_comparisons_match_python(x, y):
    source = "print(%d < %d, %d <= %d, %d == %d)" % (x, y, x, y, x, y)
    expected = "%s\t%s\t%s\n" % (str(x < y).lower(),
                                 str(x <= y).lower(),
                                 str(x == y).lower())
    for config in CONFIGS:
        assert run_lua(source, config=config,
                       attribute=False).output == expected


# -- JS differential ---------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(expr=_int_exprs(3))
def test_js_integer_expressions_match_reference(expr):
    source = "print(%s);" % _render_js(expr)
    expected = eval_js(expr)
    for config in CONFIGS:
        output = run_js(source, config=config, attribute=False).output
        measured = float(output)
        assert measured == pytest.approx(float(expected),
                                         rel=1e-12), source


@settings(max_examples=40, deadline=None)
@given(expr=_float_exprs(3))
def test_js_float_expressions_match_reference(expr):
    source = "print(%s);" % _render_js(expr)
    expected = float(eval_js(expr))
    for config in CONFIGS:
        output = run_js(source, config=config, attribute=False).output
        assert float(output) == pytest.approx(expected, abs=1e-9), source


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
def test_lua_table_roundtrip_random_values(values):
    sets = "\n".join("t[%d] = %d" % (i + 1, v)
                     for i, v in enumerate(values))
    gets = " .. ' ' .. ".join("t[%d]" % (i + 1)
                              for i in range(len(values)))
    source = "local t = {}\n%s\nprint(%s)" % (sets, gets)
    expected = " ".join(str(v) for v in values) + "\n"
    for config in CONFIGS:
        assert run_lua(source, config=config,
                       attribute=False).output == expected


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
def test_js_array_roundtrip_random_values(values):
    sets = "\n".join("a[%d] = %d;" % (i, v) for i, v in enumerate(values))
    gets = " + ' ' + ".join("a[%d]" % i for i in range(len(values)))
    source = "var a = [];\n%s\nprint(%s);" % (sets, gets)
    expected = " ".join(str(v) for v in values) + "\n"
    for config in CONFIGS:
        assert run_js(source, config=config,
                      attribute=False).output == expected
