"""Handler-level tests: hand-assembled bytecode, no compiler involved.

Each test builds a raw :class:`CompiledChunk` and checks one handler's
semantics on the simulated machine — including the paths the compiler
rarely emits (RK constant combinations, float FORLOOP, appends at the
capacity boundary, both EQ mixed paths).
"""

import pytest

from repro.engines import CONFIGS
from repro.engines.lua.compiler import CompiledChunk, Proto
from repro.engines.lua.image import build_image, fill_jump_table
from repro.engines.lua.layout import MEMORY_SIZE
from repro.engines.lua.opcodes import Op, RK_FLAG, encode_abc, encode_jump
from repro.engines.lua.runtime import LuaHost, LuaRuntime
from repro.engines.lua.vm import interpreter_program
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec


def run_chunk(code, constants=(), nregs=8, config="baseline"):
    """Assemble raw main-proto bytecode and run it to completion."""
    from repro.engines.lua import layout
    proto = Proto(name="main", num_params=0, code=list(code),
                  constants=list(constants), nregs=nregs)
    chunk = CompiledChunk([proto], ["print", "io", "math", "string",
                                    "tostring", "type"])
    memory = Memory(size=MEMORY_SIZE)
    runtime = LuaRuntime(memory)
    image = build_image(chunk, runtime)
    program, _ = interpreter_program(config)
    fill_jump_table(image, program, memory)
    host = LuaHost(runtime)
    codec = TagCodec(fp_tags={layout.TNUMFLT})
    cpu = Cpu(program, memory, host=host.interface, tag_codec=codec)
    cpu.run(max_instructions=2_000_000)
    return runtime, cpu


def read_register(runtime, index):
    from repro.engines.lua import layout
    return runtime.read_value(layout.REG_STACK_BASE
                              + index * layout.TVALUE_SIZE)


def K(index):
    return RK_FLAG | index


@pytest.mark.parametrize("config", CONFIGS)
def test_add_register_register(config):
    runtime, _ = run_chunk([
        encode_abc(Op.LOADK, 0, 0),
        encode_abc(Op.LOADK, 1, 1),
        encode_abc(Op.ADD, 2, 0, 1),
        encode_abc(Op.RETURN0, 0),
    ], constants=[30, 12], config=config)
    assert read_register(runtime, 2) == 42


@pytest.mark.parametrize("config", CONFIGS)
def test_add_both_rk_constants(config):
    runtime, _ = run_chunk([
        encode_abc(Op.ADD, 0, K(0), K(1)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[7, 5], config=config)
    assert read_register(runtime, 0) == 12


@pytest.mark.parametrize("config", CONFIGS)
def test_add_float_pair(config):
    runtime, _ = run_chunk([
        encode_abc(Op.ADD, 0, K(0), K(1)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[1.25, 0.5], config=config)
    assert read_register(runtime, 0) == 1.75


@pytest.mark.parametrize("config", CONFIGS)
def test_add_mixed_goes_slow_but_correct(config):
    runtime, cpu = run_chunk([
        encode_abc(Op.ADD, 0, K(0), K(1)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[1, 0.5], config=config)
    assert read_register(runtime, 0) == 1.5


def test_sub_mul_semantics():
    runtime, _ = run_chunk([
        encode_abc(Op.SUB, 0, K(0), K(1)),
        encode_abc(Op.MUL, 1, K(0), K(1)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[6, 7])
    assert read_register(runtime, 0) == -1
    assert read_register(runtime, 1) == 42


def test_move_copies_value_and_tag():
    runtime, _ = run_chunk([
        encode_abc(Op.LOADK, 0, 0),
        encode_abc(Op.MOVE, 3, 0),
        encode_abc(Op.RETURN0, 0),
    ], constants=[2.5])
    assert read_register(runtime, 3) == 2.5


def test_loadbool_and_loadnil():
    runtime, _ = run_chunk([
        encode_abc(Op.LOADBOOL, 0, 1),
        encode_abc(Op.LOADBOOL, 1, 0),
        encode_abc(Op.LOADK, 2, 0),
        encode_abc(Op.LOADNIL, 2),
        encode_abc(Op.RETURN0, 0),
    ], constants=[9])
    assert read_register(runtime, 0) is True
    assert read_register(runtime, 1) is False
    assert read_register(runtime, 2) is None


def test_eq_mixed_int_float_paths():
    runtime, _ = run_chunk([
        encode_abc(Op.EQ, 0, K(0), K(1)),   # 2 == 2.0 (int, float)
        encode_abc(Op.EQ, 1, K(1), K(0)),   # 2.0 == 2 (float, int)
        encode_abc(Op.EQ, 2, K(0), K(2)),   # 2 == 3
        encode_abc(Op.EQ, 3, K(3), K(3)),   # 'x' == 'x' (interned)
        encode_abc(Op.RETURN0, 0),
    ], constants=[2, 2.0, 3, "x"])
    assert read_register(runtime, 0) is True
    assert read_register(runtime, 1) is True
    assert read_register(runtime, 2) is False
    assert read_register(runtime, 3) is True


def test_lt_le_all_numeric_paths():
    runtime, _ = run_chunk([
        encode_abc(Op.LT, 0, K(0), K(1)),   # int < int
        encode_abc(Op.LT, 1, K(2), K(3)),   # float < float
        encode_abc(Op.LT, 2, K(0), K(3)),   # int < float
        encode_abc(Op.LE, 3, K(2), K(1)),   # float <= int
        encode_abc(Op.RETURN0, 0),
    ], constants=[1, 5, 1.5, 2.5])
    assert read_register(runtime, 0) is True
    assert read_register(runtime, 1) is True
    assert read_register(runtime, 2) is True
    assert read_register(runtime, 3) is True


@pytest.mark.parametrize("config", CONFIGS)
def test_settable_append_at_capacity_boundary(config):
    # NEWTABLE gives capacity 4: the fifth append must grow via the host.
    code = [encode_abc(Op.NEWTABLE, 0, 0)]
    for index in range(1, 7):
        code.append(encode_abc(Op.SETTABLE, 0, K(index - 1), K(index - 1)))
    code.append(encode_abc(Op.LEN, 1, 0))
    code.append(encode_abc(Op.GETTABLE, 2, 0, K(5)))
    code.append(encode_abc(Op.RETURN0, 0))
    runtime, _ = run_chunk(code, constants=[1, 2, 3, 4, 5, 6],
                           config=config)
    assert read_register(runtime, 1) == 6
    assert read_register(runtime, 2) == 6


@pytest.mark.parametrize("config", CONFIGS)
def test_gettable_out_of_range_yields_nil(config):
    runtime, _ = run_chunk([
        encode_abc(Op.NEWTABLE, 0, 0),
        encode_abc(Op.GETTABLE, 1, 0, K(0)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[9], config=config)
    assert read_register(runtime, 1) is None


def test_forloop_float_negative_step():
    # for r1 = 2.0, 0.5, -0.5: iterate 4 times accumulating into r0.
    runtime, _ = run_chunk([
        encode_abc(Op.LOADK, 0, 3),        # acc = 0
        encode_abc(Op.LOADK, 1, 0),        # idx = 2.0
        encode_abc(Op.LOADK, 2, 1),        # limit = 0.5
        encode_abc(Op.LOADK, 3, 2),        # step = -0.5
        encode_jump(Op.FORPREP, 1, 1),     # to FORLOOP
        encode_abc(Op.ADD, 0, 0, 4),       # acc += loop var (r4)
        encode_jump(Op.FORLOOP, 1, -2),    # back to the ADD
        encode_abc(Op.RETURN0, 0),
    ], constants=[2.0, 0.5, -0.5, 0.0])
    assert read_register(runtime, 0) == pytest.approx(2.0 + 1.5 + 1.0
                                                      + 0.5)


def test_jmp_and_jmpf_skip():
    runtime, _ = run_chunk([
        encode_abc(Op.LOADK, 0, 0),        # r0 = 1
        encode_abc(Op.LOADBOOL, 1, 0),     # r1 = false
        encode_jump(Op.JMPF, 1, 1),        # taken: skip next
        encode_abc(Op.LOADK, 0, 1),        # (skipped)
        encode_jump(Op.JMPT, 1, 1),        # not taken
        encode_abc(Op.LOADK, 2, 1),        # executed
        encode_abc(Op.RETURN0, 0),
    ], constants=[1, 99])
    assert read_register(runtime, 0) == 1
    assert read_register(runtime, 2) == 99


def test_unm_not_len_concat():
    runtime, _ = run_chunk([
        encode_abc(Op.LOADK, 0, 0),
        encode_abc(Op.UNM, 1, 0),
        encode_abc(Op.NOT, 2, 0),
        encode_abc(Op.LOADK, 3, 1),
        encode_abc(Op.LEN, 4, 3),
        encode_abc(Op.CONCAT, 5, K(1), K(0)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[8, "hey"])
    assert read_register(runtime, 1) == -8
    assert read_register(runtime, 2) is False
    assert read_register(runtime, 4) == 3
    assert read_register(runtime, 5) == "hey8"


def test_div_mod_idiv_pow():
    runtime, _ = run_chunk([
        encode_abc(Op.DIV, 0, K(0), K(1)),
        encode_abc(Op.MOD, 1, K(0), K(1)),
        encode_abc(Op.IDIV, 2, K(0), K(1)),
        encode_abc(Op.POW, 3, K(1), K(1)),
        encode_abc(Op.RETURN0, 0),
    ], constants=[7, 2])
    assert read_register(runtime, 0) == 3.5
    assert read_register(runtime, 1) == 1
    assert read_register(runtime, 2) == 3
    assert read_register(runtime, 3) == 4.0


def test_unimplemented_opcode_traps():
    from repro.engines.lua.runtime import LuaError
    with pytest.raises(LuaError, match="illegal opcode"):
        run_chunk([encode_abc(Op.TAILCALL, 0, 0),
                   encode_abc(Op.RETURN0, 0)])
