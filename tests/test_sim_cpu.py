"""Functional CPU tests: small assembled programs run to completion."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.extension import (
    LUA_SPR,
    SPIDERMONKEY_SPR,
    TYPE_UNTYPED,
    arithmetic_rules,
)
from repro.sim import nanbox
from repro.sim.cpu import Cpu, float_to_bits, to_signed
from repro.sim.errors import ExecutionLimitExceeded, IllegalInstruction
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec


def run(text, memory=None, setup=None, overflow_bits=None, codec=None,
        rules=None):
    program = assemble(text)
    cpu = Cpu(program, memory or Memory(size=1 << 16),
              tag_codec=codec, overflow_bits=overflow_bits)
    if rules:
        cpu.trt.load_rules(rules)
    if setup:
        setup(cpu)
    cpu.run(max_instructions=100_000)
    return cpu


def test_arithmetic_basics():
    cpu = run("""
        li a0, 40
        li a1, 2
        add a2, a0, a1
        sub a3, a0, a1
        mul a4, a0, a1
        ebreak
    """)
    assert cpu.regs.value[12] == 42
    assert cpu.regs.value[13] == 38
    assert cpu.regs.value[14] == 80


def test_64bit_wraparound():
    cpu = run("""
        li a0, -1
        li a1, 1
        add a2, a0, a1
        ebreak
    """)
    assert cpu.regs.value[12] == 0


def test_branch_loop_sums():
    cpu = run("""
        li a0, 0
        li a1, 10
    loop:
        add a0, a0, a1
        addi a1, a1, -1
        bnez a1, loop
        ebreak
    """)
    assert cpu.regs.value[10] == 55


def test_memory_loads_and_stores():
    cpu = run("""
        li a0, 0x100
        li a1, -7
        sd a1, 0(a0)
        ld a2, 0(a0)
        lw a3, 0(a0)
        lbu a4, 0(a0)
        ebreak
    """)
    assert to_signed(cpu.regs.value[12]) == -7
    assert to_signed(cpu.regs.value[13]) == -7
    assert cpu.regs.value[14] == 0xF9


def test_function_call_and_return():
    cpu = run("""
        li a0, 5
        call double_it
        ebreak
    double_it:
        slli a0, a0, 1
        ret
    """)
    assert cpu.regs.value[10] == 10


def test_fp_arithmetic():
    def setup(cpu):
        cpu.fregs.write(1, float_to_bits(1.5))
        cpu.fregs.write(2, float_to_bits(2.25))
    cpu = run("""
        fadd.d f3, f1, f2
        fmul.d f4, f1, f2
        flt.d a0, f1, f2
        ebreak
    """, setup=setup)
    from repro.sim.cpu import bits_to_float
    assert bits_to_float(cpu.fregs.bits[3]) == 3.75
    assert bits_to_float(cpu.fregs.bits[4]) == 3.375
    assert cpu.regs.value[10] == 1


def test_fcvt_round_trip():
    cpu = run("""
        li a0, -9
        fcvt.d.l f1, a0
        fcvt.l.d a1, f1
        ebreak
    """)
    assert to_signed(cpu.regs.value[11]) == -9


def test_division_by_zero_riscv_semantics():
    cpu = run("""
        li a0, 7
        li a1, 0
        div a2, a0, a1
        rem a3, a0, a1
        ebreak
    """)
    assert to_signed(cpu.regs.value[12]) == -1
    assert cpu.regs.value[13] == 7


def test_execution_limit():
    with pytest.raises(ExecutionLimitExceeded):
        run("loop: j loop")


def test_pc_outside_program_raises():
    program = assemble("jr a0")  # a0 = 0x5000, nothing there
    cpu = Cpu(program, Memory(size=1 << 16))
    cpu.regs.write(10, 0x5000)
    with pytest.raises(IllegalInstruction):
        cpu.run(max_instructions=10)


# -- Typed Architecture semantics ---------------------------------------------

def lua_codec():
    codec = TagCodec(fp_tags={3})
    codec.set_offset(LUA_SPR.offset)
    codec.set_shift(LUA_SPR.shift)
    codec.set_mask(LUA_SPR.mask)
    return codec


LUA_RULES = arithmetic_rules(int_tag=19, float_tag=3)


def test_tld_xadd_tsd_fast_path_int():
    """The paper's Figure 3 sequence on Lua-layout values."""
    mem = Memory(size=1 << 16)
    # Two Lua TValues at 0x100 and 0x110: value dword then tag dword.
    mem.store_u64(0x100, 30)
    mem.store_u64(0x108, 19)
    mem.store_u64(0x110, 12)
    mem.store_u64(0x118, 19)
    cpu = run("""
        li s10, 0x100
        li s9, 0x110
        li s11, 0x120
        tld t0, 0(s10)
        tld t1, 0(s9)
        thdl slow
        xadd t0, t0, t1
        tsd t0, 0(s11)
        ebreak
    slow:
        li a7, 99
        ebreak
    """, memory=mem, codec=lua_codec(), rules=LUA_RULES)
    assert cpu.regs.value[17] != 99  # fast path taken
    assert mem.load_u64(0x120) == 42
    assert mem.load_u8(0x128) == 19  # output tag stored
    assert cpu.trt.hits == 1


def test_xadd_float_binding():
    """xadd binds to FP add when the F/I bit says float."""
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, float_to_bits(1.5))
    mem.store_u64(0x108, 3)
    mem.store_u64(0x110, float_to_bits(2.0))
    mem.store_u64(0x118, 3)
    run("""
        li s10, 0x100
        li s9, 0x110
        tld t0, 0(s10)
        tld t1, 0(s9)
        thdl slow
        xadd t2, t0, t1
        tsd t2, 0(s10)
        ebreak
    slow:
        ebreak
    """, memory=mem, codec=lua_codec(), rules=LUA_RULES)
    from repro.sim.cpu import bits_to_float
    assert bits_to_float(mem.load_u64(0x100)) == 3.5
    assert mem.load_u8(0x108) == 3


def test_type_misprediction_redirects_to_handler():
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, 30)
    mem.store_u64(0x108, 19)  # int
    mem.store_u64(0x110, float_to_bits(1.0))
    mem.store_u64(0x118, 3)   # float: (int, float) misses the TRT
    cpu = run("""
        li s10, 0x100
        li s9, 0x110
        tld t0, 0(s10)
        tld t1, 0(s9)
        thdl slow
        xadd t0, t0, t1
        li a6, 1
        ebreak
    slow:
        li a7, 99
        ebreak
    """, memory=mem, codec=lua_codec(), rules=LUA_RULES)
    assert cpu.regs.value[17] == 99  # slow path ran
    assert cpu.regs.value[16] == 0   # fast path tail skipped
    assert cpu.trt.misses == 1


def test_overflow_triggers_misprediction_when_enabled():
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, (1 << 31) - 1)
    mem.store_u64(0x108, 19)
    mem.store_u64(0x110, 1)
    mem.store_u64(0x118, 19)
    text = """
        li s10, 0x100
        li s9, 0x110
        tld t0, 0(s10)
        tld t1, 0(s9)
        thdl slow
        xadd t0, t0, t1
        ebreak
    slow:
        li a7, 99
        ebreak
    """
    cpu = run(text, memory=mem, codec=lua_codec(), rules=LUA_RULES,
              overflow_bits=32)
    assert cpu.regs.value[17] == 99
    assert cpu.overflow_traps == 1
    # Same program with detection off takes the fast path (Section 3.2).
    mem2 = Memory(size=1 << 16)
    for addr, value in ((0x100, (1 << 31) - 1), (0x108, 19), (0x110, 1),
                        (0x118, 19)):
        mem2.store_u64(addr, value)
    cpu = run(text, memory=mem2, codec=lua_codec(), rules=LUA_RULES)
    assert cpu.overflow_traps == 0
    assert cpu.regs.value[17] != 99


def test_tchk_checks_without_calculation():
    from repro.isa.extension import table_access_rules
    rules = table_access_rules(table_tag=5, int_tag=19)
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, 0x2000)
    mem.store_u64(0x108, 5)   # Table
    mem.store_u64(0x110, 4)
    mem.store_u64(0x118, 19)  # Int
    cpu = run("""
        li s10, 0x100
        li s9, 0x110
        tld t0, 0(s10)
        tld t1, 0(s9)
        thdl slow
        tchk t0, t1
        li a6, 1
        ebreak
    slow:
        li a7, 99
        ebreak
    """, memory=mem, codec=lua_codec(), rules=rules)
    assert cpu.regs.value[16] == 1
    assert cpu.regs.value[17] != 99


def test_tget_tset_manipulate_tags():
    cpu = run("""
        li a0, 19
        li a1, 1234
        tset a0, a1
        tget a2, a1
        ebreak
    """, codec=lua_codec())
    assert cpu.regs.value[12] == 19
    assert cpu.regs.type[11] == 19


def test_untyped_write_marks_untyped():
    cpu = run("""
        li a0, 19
        li a1, 5
        tset a0, a1
        addi a1, a1, 0
        ebreak
    """, codec=lua_codec())
    assert cpu.regs.type[11] == TYPE_UNTYPED


def test_config_instructions_set_sprs():
    cpu = run("""
        li a0, 0b001
        setoffset a0
        li a0, 0xFF
        setmask a0
        li a0, 0
        setshift a0
        ebreak
    """)
    assert cpu.codec.offset == 0b001
    assert cpu.codec.mask == 0xFF
    assert cpu.codec.shift == 0


def test_set_trt_and_flush_from_assembly():
    from repro.sim.trt import TRT_OPCODES
    cpu = run("""
        li a0, 0x00131313   # xadd, 19, 19 -> 19
        set_trt a0
        ebreak
    """)
    assert cpu.trt.lookup(TRT_OPCODES["xadd"], 0x13, 0x13) == 0x13
    cpu = run("""
        li a0, 0x00131313
        set_trt a0
        flush_trt
        ebreak
    """)
    assert len(cpu.trt) == 0


def test_nanboxed_tld_tsd():
    codec = TagCodec(double_tag=0, int_tag=1)
    codec.set_offset(SPIDERMONKEY_SPR.offset)
    codec.set_shift(SPIDERMONKEY_SPR.shift)
    codec.set_mask(SPIDERMONKEY_SPR.mask)
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, nanbox.box_int32(1, -3))
    mem.store_u64(0x108, nanbox.box_int32(1, 10))
    run("""
        li s10, 0x100
        tld t0, 0(s10)
        tld t1, 8(s10)
        thdl slow
        xadd t0, t0, t1
        tsd t0, 16(s10)
        ebreak
    slow:
        ebreak
    """, memory=mem, codec=codec,
        rules=arithmetic_rules(int_tag=1, float_tag=0), overflow_bits=32)
    stored = mem.load_u64(0x110)
    assert nanbox.is_boxed(stored)
    assert nanbox.unbox_int32(stored) == 7


def test_checked_load_hit_and_miss():
    mem = Memory(size=1 << 16)
    mem.store_u64(0x100, 42)
    mem.store_u8(0x108, 19)
    cpu = run("""
        li a0, 19
        settype a0
        li s10, 0x100
        thdl slow
        chklb t0, 8(s10)
        ld t1, 0(s10)
        li a6, 1
        ebreak
    slow:
        li a7, 99
        ebreak
    """, memory=mem)
    assert cpu.regs.value[16] == 1
    assert cpu.chk_hits == 1
    # Now a mismatching tag byte.
    mem.store_u8(0x108, 3)
    cpu = run("""
        li a0, 19
        settype a0
        li s10, 0x100
        thdl slow
        chklb t0, 8(s10)
        li a6, 1
        ebreak
    slow:
        li a7, 99
        ebreak
    """, memory=mem)
    assert cpu.regs.value[17] == 99
    assert cpu.chk_misses == 1


def test_context_save_restore():
    codec = lua_codec()
    program = assemble("ebreak")
    cpu = Cpu(program, Memory(size=4096), tag_codec=codec)
    cpu.trt.load_rules(LUA_RULES)
    cpu.regs.write_typed(5, 42, 19, 0)
    cpu.r_hdl = 0x1234
    state = cpu.save_context()
    cpu.regs.write(5, 0)
    cpu.trt.flush()
    cpu.r_hdl = 0
    cpu.restore_context(state)
    assert cpu.regs.value[5] == 42
    assert cpu.regs.type[5] == 19
    assert cpu.r_hdl == 0x1234
    assert len(cpu.trt) == 6
