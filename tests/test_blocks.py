"""The basic-block superinstruction engine (:mod:`repro.sim.blocks`).

The engine's contract is strict: counters, cycles and architectural
state must be bit-identical to the reference per-instruction loop for
every program, and the engine must silently stand aside whenever
something needs per-instruction visibility.  The differential tests
here enforce the contract over the full benchmark matrix (at reduced
input scales); block-shape unit tests pin the discovery rules.
"""

import pytest

from repro.bench.runner import ENGINES, run_benchmark
from repro.bench.workloads import BENCHMARK_ORDER
from repro.engines import CONFIGS
from repro.engines.lua import vm as lua_vm
from repro.isa.assembler import assemble
from repro.sim.blocks import MAX_BLOCK_LEN, block_table
from repro.sim.cpu import Cpu
from repro.sim.errors import ExecutionLimitExceeded
from repro.sim.memory import Memory
from repro.uarch.pipeline import DEFAULT_CONFIG, Machine


def _machine(text, **kwargs):
    cpu = Cpu(assemble(text), Memory(size=1 << 16))
    return cpu, Machine(cpu, **kwargs)


# -- block discovery -------------------------------------------------------------

def test_blocks_end_at_terminators():
    program = assemble("""
        addi a0, zero, 1
        addi a1, zero, 2
        jal ra, after
    after:
        addi a2, zero, 3
        ebreak
    """)
    table = block_table(program, DEFAULT_CONFIG)
    assert len(table.blocks) == 5
    assert table.block_at(0)[1] == 3     # addi, addi, jal
    assert table.block_at(3)[1] == 2     # addi, ebreak
    assert table.block_at(4)[1] == 1     # ebreak alone


def test_blocks_capped_at_max_len():
    text = "\n".join(["addi a0, a0, 1"] * (MAX_BLOCK_LEN + 20)) + "\nebreak"
    table = block_table(assemble(text), DEFAULT_CONFIG)
    assert table.block_at(0)[1] == MAX_BLOCK_LEN
    # A block starting mid-stream still runs to the real terminator.
    assert table.block_at(MAX_BLOCK_LEN)[1] == 21


def test_blocks_compiled_lazily_and_cached():
    program = assemble("addi a0, zero, 7\nebreak")
    table = block_table(program, DEFAULT_CONFIG)
    assert table.compiled == 0
    first = table.block_at(0)
    assert table.compiled == 1
    assert table.block_at(0) is first
    assert table.compiled == 1


def test_block_table_shared_per_program_and_config():
    program = assemble("addi a0, zero, 7\nebreak")
    assert block_table(program, DEFAULT_CONFIG) \
        is block_table(program, DEFAULT_CONFIG)


def test_single_at_is_one_instruction():
    program = assemble("addi a0, zero, 1\naddi a1, zero, 2\nebreak")
    table = block_table(program, DEFAULT_CONFIG)
    assert table.single_at(0)[1] == 1
    assert table.single_at(0) is table.single_at(0)


# -- engine selection ------------------------------------------------------------

_LOOP = """
    addi a0, zero, 50
    addi a1, zero, 0
loop:
    add a1, a1, a0
    addi a0, a0, -1
    bne a0, zero, loop
    ebreak
"""


def test_blocks_used_by_default(monkeypatch):
    _cpu, machine = _machine(_LOOP)
    monkeypatch.setattr(Machine, "_run_interpreted", _boom)
    machine.run(max_instructions=1_000)


def test_use_blocks_false_falls_back(monkeypatch):
    _cpu, machine = _machine(_LOOP, use_blocks=False)
    monkeypatch.setattr(Machine, "_run_blocks", _boom)
    machine.run(max_instructions=1_000)


def test_attribution_forces_interpreter(monkeypatch):
    attribution = lua_vm.interpreter_program("baseline")[1]
    _cpu, machine = _machine(_LOOP, attribution=attribution)
    monkeypatch.setattr(Machine, "_run_blocks", _boom)
    machine.run(max_instructions=1_000)


def test_cpu_step_shadow_forces_interpreter(monkeypatch):
    cpu, machine = _machine(_LOOP)
    cpu.step = cpu.step  # an instance shadow, as tracers install
    monkeypatch.setattr(Machine, "_run_blocks", _boom)
    machine.run(max_instructions=1_000)


def _boom(*_args, **_kwargs):
    raise AssertionError("wrong engine selected")


# -- differential: simple programs ----------------------------------------------

def _run_both(text, max_instructions=1_000_000):
    cpu_ref, machine_ref = _machine(text, use_blocks=False)
    ref = machine_ref.run(max_instructions=max_instructions)
    cpu_blk, machine_blk = _machine(text)
    blk = machine_blk.run(max_instructions=max_instructions)
    return (cpu_ref, ref), (cpu_blk, blk)


def test_differential_loop_program():
    (cpu_ref, ref), (cpu_blk, blk) = _run_both(_LOOP)
    assert blk.as_dict() == ref.as_dict()
    assert cpu_blk.regs.value == cpu_ref.regs.value
    assert cpu_blk.mem.data == cpu_ref.mem.data


def test_execution_limit_trips_identically():
    spin = "spin:\naddi a0, a0, 1\njal zero, spin"
    cpu_ref, machine_ref = _machine(spin, use_blocks=False)
    with pytest.raises(ExecutionLimitExceeded):
        machine_ref.run(max_instructions=777)
    cpu_blk, machine_blk = _machine(spin)
    with pytest.raises(ExecutionLimitExceeded):
        machine_blk.run(max_instructions=777)
    assert cpu_blk.instret == cpu_ref.instret == 777
    assert cpu_blk.pc == cpu_ref.pc
    assert cpu_blk.regs.value == cpu_ref.regs.value


def test_thdl_deopt_differential():
    """The path selector mutates hot-site stats mid-run; the block
    engine must replicate its redirects and counter effects exactly."""
    outputs, counters, cpus = [], [], []
    for use_blocks in (False, True):
        cpu, runtime, _program = lua_vm.prepare(
            "local s = 0\n"
            "local t = {}\n"
            "for i = 1, 60 do\n"
            "  if i % 2 == 0 then t[i] = i else t[i] = i + 0.5 end\n"
            "end\n"
            "for i = 1, 59 do s = s + (t[i] + t[i + 1]) end\n"
            "print(s)\n", config="typed")
        cpu.deopt_threshold = 0.5
        machine = Machine(cpu, use_blocks=use_blocks)
        counters.append(machine.run(max_instructions=20_000_000))
        outputs.append("".join(runtime.output))
        cpus.append(cpu)
    assert outputs[0] == outputs[1]
    assert counters[0].as_dict() == counters[1].as_dict()
    assert cpus[0].deopt_redirects == cpus[1].deopt_redirects
    assert cpus[1].deopt_redirects > 0  # the selector actually fired


# -- differential: the full benchmark matrix -------------------------------------
# Reduced input scales keep the 66-cell sweep tractable in tier-1; the
# full-scale version is tools/perfbench.py (which asserts the same
# counter identity on every cell it measures).

_SCALES = {
    "ackermann": 2,
    "binary-trees": 4,
    "fannkuch-redux": 4,
    "fibo": 8,
    "k-nucleotide": 30,
    "mandelbrot": 4,
    "n-body": 5,
    "n-sieve": 150,
    "pidigits": 5,
    "random": 200,
    "spectral-norm": 3,
}

_CELLS = [(engine, benchmark, config)
          for engine in ENGINES
          for benchmark in BENCHMARK_ORDER
          for config in CONFIGS]


# the arg is named "workload" because pytest-benchmark owns "benchmark"
@pytest.mark.parametrize(("engine", "workload", "config"), _CELLS,
                         ids=["%s-%s-%s" % cell for cell in _CELLS])
def test_differential_benchmark_matrix(engine, workload, config):
    legacy = run_benchmark(engine, workload, config,
                           scale=_SCALES[workload],
                           use_cache=False, attribute=False,
                           use_blocks=False)
    blocks = run_benchmark(engine, workload, config,
                           scale=_SCALES[workload],
                           use_cache=False, attribute=False,
                           use_blocks=True)
    assert blocks.output == legacy.output
    assert blocks.counters.as_dict() == legacy.counters.as_dict()


def test_blocks_do_not_perturb_attribution_runs():
    """An attributed run (which the block engine must refuse) still
    matches an attribution-free blocks run counter for counter."""
    attributed = run_benchmark("lua", "fibo", "typed", scale=8,
                               use_cache=False)
    plain = run_benchmark("lua", "fibo", "typed", scale=8,
                          use_cache=False, attribute=False)
    assert attributed.output == plain.output
    assert attributed.counters.cycles == plain.counters.cycles
    assert attributed.counters.instructions == plain.counters.instructions
