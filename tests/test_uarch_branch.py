"""Branch predictor model tests."""

from repro.uarch.branch import Btb, FrontEnd, Gshare, ReturnAddressStack
from repro.uarch.config import BranchConfig


def test_gshare_learns_always_taken():
    gshare = Gshare(128)
    pc = 0x400
    # History shifts on every update; once it saturates to all-taken the
    # index stabilises and the counter trains.
    for _ in range(20):
        gshare.update(pc, True)
    assert gshare.predict(pc) is True


def test_gshare_counters_saturate():
    gshare = Gshare(128)
    pc = 0x400
    for _ in range(100):
        gshare.update(pc, True)
    gshare.history = 0
    for _ in range(2):
        gshare.update(pc, False)
    gshare.history = 0
    assert gshare.predict(pc) is False  # 2 wrong outcomes flip a 2-bit counter


def test_gshare_history_distinguishes_patterns():
    """Alternating T/NT becomes predictable once history is in the index."""
    gshare = Gshare(128)
    pc = 0x80
    outcomes = [True, False] * 200
    mispredicts = 0
    for taken in outcomes:
        if gshare.predict(pc) != taken:
            mispredicts += 1
        gshare.update(pc, taken)
    # After warm-up the pattern should be near-perfectly predicted.
    assert mispredicts < 30


def test_btb_lru_eviction():
    btb = Btb(entries=2)
    btb.update(0x100, 0x500)
    btb.update(0x200, 0x600)
    assert btb.lookup(0x100) == 0x500  # touch -> 0x200 becomes LRU
    btb.update(0x300, 0x700)           # evicts 0x200
    assert btb.lookup(0x200) is None
    assert btb.lookup(0x100) == 0x500


def test_ras_push_pop():
    ras = ReturnAddressStack(entries=2)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(entries=2)
    ras.push(0x100)
    ras.push(0x200)
    ras.push(0x300)
    assert ras.pop() == 0x300
    assert ras.pop() == 0x200
    assert ras.pop() is None  # 0x100 was dropped


def test_frontend_penalties():
    frontend = FrontEnd(BranchConfig())
    pc, target = 0x400, 0x480
    # Cold conditional taken branch: mispredicted (predictor starts NT).
    assert frontend.conditional_branch(pc, True, target) == 2
    # Train it; once the history saturates the branch is free.
    for _ in range(12):
        frontend.conditional_branch(pc, True, target)
    assert frontend.conditional_branch(pc, True, target) == 0
    assert frontend.mispredicts >= 1


def test_frontend_jal_btb_fill():
    frontend = FrontEnd(BranchConfig())
    assert frontend.direct_jump(0x100, 0x800, False, 0x104) == 1  # cold
    assert frontend.direct_jump(0x100, 0x800, False, 0x104) == 0  # BTB hit


def test_frontend_return_uses_ras():
    frontend = FrontEnd(BranchConfig())
    # A call pushes the return address...
    frontend.direct_jump(0x100, 0x800, True, 0x104)
    # ...so the matching return is free even with a cold BTB.
    assert frontend.indirect_jump(0x880, 0x104, True, False, 0x884) == 0
    # A return with an empty RAS pays the penalty.
    assert frontend.indirect_jump(0x880, 0x104, True, False, 0x884) == 2


def test_frontend_counts_branches():
    frontend = FrontEnd(BranchConfig())
    frontend.conditional_branch(0x10, False, 0x20)
    frontend.indirect_jump(0x30, 0x40, False, False, 0x34)
    assert frontend.branches == 2
