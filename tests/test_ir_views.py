"""Tests for the shared bytecode-IR surface (repro.engines.ir).

The guest views are exercised against real compiler output — not
hand-assembled words — so they stay honest about the encodings the
engines actually emit.  The host-ISA layer is covered indirectly by
the block/trace engine suites; ``block_extent`` gets a direct check
here because analyses call it too.
"""

import pytest

from repro.engines import ir
from repro.engines.ir import JsView, LuaView, view
from repro.engines.js.compiler import compile_source as compile_js
from repro.engines.lua.compiler import compile_source as compile_lua


def _lua_view(source, proto=0):
    return LuaView(compile_lua(source).protos[proto].code)


def _js_view(source, proto=0):
    return JsView(compile_js(source).protos[proto].code)


def _find(bview, name):
    hits = [i.index for i in bview if i.name == name]
    assert hits, name
    return hits[0]


# -- factory -----------------------------------------------------------------------

def test_view_factory_dispatches_by_engine():
    lv = view("lua", compile_lua("print(1)\n").protos[0].code)
    jv = view("js", compile_js("print(1);\n").protos[0].code)
    assert isinstance(lv, LuaView) and lv.engine == "lua"
    assert isinstance(jv, JsView) and jv.engine == "js"
    with pytest.raises(ValueError):
        view("wasm", [])


def test_views_decode_every_word():
    source = "local x = 1\nprint(x + 2)\n"
    chunk = compile_lua(source)
    v = LuaView(chunk.protos[0].code)
    assert len(v) == len(chunk.protos[0].code)
    assert [i.index for i in v] == list(range(len(v)))


# -- LuaView -----------------------------------------------------------------------

def test_lua_loop_control_flow():
    v = _lua_view("local acc = 0\n"
                  "for i = 1, 10 do acc = acc + i end\n"
                  "print(acc)\n")
    prep = _find(v, "FORPREP")
    loop = _find(v, "FORLOOP")
    # FORPREP lands on its FORLOOP; FORLOOP either exits (fallthrough)
    # or jumps back to the body.
    assert v.successors(prep) == (loop,)
    back = v.successors(loop)
    assert loop + 1 in back
    assert any(s <= loop for s in back)
    assert loop in v.targets()


def test_lua_return_has_no_successors():
    v = _lua_view("print(1)\n")
    ret = [i.index for i in v if i.name in ("RETURN", "RETURN0")][-1]
    assert v.successors(ret) == ()


def test_lua_conditional_has_two_successors():
    v = _lua_view("local n = 3\n"
                  "if n > 2 then print(1) else print(2) end\n")
    cond = [i.index for i in v if i.name in ("JMPF", "JMPT")][0]
    succs = v.successors(cond)
    assert len(succs) == 2 and cond + 1 in succs


def test_lua_rk_operand_resolution():
    # acc + i reads two registers; acc + 1 reads a register and a
    # constant — the RK flag must be resolved at the view layer.
    v = _lua_view("local acc = 0\n"
                  "local i = 2\n"
                  "acc = acc + i\n"
                  "acc = acc + 1\n"
                  "print(acc)\n")
    adds = [i.index for i in v if i.name == "ADD"]
    assert len(adds) == 2
    kinds = [tuple(kind for kind, _ in v.reads(a)) for a in adds]
    assert ("reg", "reg") in kinds
    assert ("reg", "const") in kinds
    for a in adds:
        assert len(v.writes(a)) == 1
        assert v.writes(a)[0][0] == "reg"


def test_lua_global_def_use():
    v = _lua_view("g = 4\nprint(g)\n")
    setg = _find(v, "SETGLOBAL")
    getg = _find(v, "GETGLOBAL")
    assert ("global", v.instrs[setg].args[1]) in v.writes(setg)
    assert v.reads(getg) == (("global", v.instrs[getg].args[1]),)


def test_lua_call_reads_callee_and_args():
    v = _lua_view("print(1, 2)\n")
    call = _find(v, "CALL")
    a, b, _c = v.instrs[call].args
    assert v.reads(call) == tuple(("reg", a + k) for k in range(b + 1))


def test_lua_forloop_def_use_discipline():
    v = _lua_view("for i = 1, 4 do print(i) end\n")
    loop = _find(v, "FORLOOP")
    a = v.instrs[loop].args[0]
    assert set(v.writes(loop)) == {("reg", a), ("reg", a + 3)}
    assert set(v.reads(loop)) == {("reg", a), ("reg", a + 1),
                                  ("reg", a + 2)}


# -- JsView ------------------------------------------------------------------------

def test_js_successors_and_targets():
    v = _js_view("var n = 3;\n"
                 "if (n > 2) { print(1); } else { print(2); }\n")
    cond = [i.index for i in v if i.name in ("IFEQ", "IFNE")][0]
    succs = v.successors(cond)
    assert len(succs) == 2 and cond + 1 in succs
    jump = _find(v, "JUMP")
    imm = v.instrs[jump].args[0]
    assert v.successors(jump) == (jump + 1 + imm,)
    assert v.successors(jump)[0] in v.targets()
    ret = [i.index for i in v
           if i.name in ("RETURN", "RETURN_UNDEF")][-1]
    assert v.successors(ret) == ()


def test_js_stack_effects_balance_straight_line_code():
    # Between function entry and the terminator, pushes and pops of a
    # straight-line main must cancel to the operands RETURN_UNDEF needs
    # (zero: every statement leaves the stack clean).
    v = _js_view("var x = 1;\nvar y = x + 2;\nprint(y);\n")
    depth = 0
    for instr in v:
        if instr.name in ("RETURN", "RETURN_UNDEF"):
            break
        pops, pushes = v.stack_effect(instr.index)
        depth -= pops
        assert depth >= -0, instr
        depth += pushes
    assert depth == 0


def test_js_call_stack_effect_folds_arity():
    v = _js_view("print(1, 2, 3);\n")
    call = _find(v, "CALL")
    imm = v.instrs[call].args[0]
    assert imm == 3
    assert v.stack_effect(call) == (4, 1)


def test_js_def_use_descriptors():
    v = _js_view("var x = 2.5;\nvar y = x * 2.0;\nprint(y);\n")
    pushk = _find(v, "PUSHK")
    assert v.reads(pushk) == (("const", v.instrs[pushk].args[0]),)
    getg = _find(v, "GETGLOBAL")
    assert v.reads(getg) == (("global", v.instrs[getg].args[0]),)
    setg = _find(v, "SETGLOBAL")
    assert v.writes(setg) == (("global", v.instrs[setg].args[0]),)
    assert ("stack", -1) in v.reads(setg)
    mul = _find(v, "MUL")
    assert v.reads(mul) == (("stack", -2), ("stack", -1))
    assert v.writes(mul) == (("stack", -1),)


def test_js_local_def_use_inside_function():
    v = _js_view("function f(a) { var b = a + 1; return b; }\n"
                 "print(f(1));\n", proto=1)
    getl = _find(v, "GETLOCAL")
    assert v.reads(getl) == (("local", v.instrs[getl].args[0]),)
    setl = _find(v, "SETLOCAL")
    assert v.writes(setl) == (("local", v.instrs[setl].args[0]),)


# -- host-ISA layer ----------------------------------------------------------------

class _Fake:
    def __init__(self, mnemonic):
        self.mnemonic = mnemonic


def test_block_extent_stops_at_terminator():
    instrs = [_Fake("addi"), _Fake("ld"), _Fake("jalr"), _Fake("addi")]
    assert ir.block_extent(instrs, 0, ir.MAX_BLOCK_LEN) == 3
    assert ir.block_extent(instrs, 3, ir.MAX_BLOCK_LEN) == 4


def test_block_extent_caps_length():
    instrs = [_Fake("addi")] * 100
    assert ir.block_extent(instrs, 0, ir.MAX_BLOCK_LEN) == ir.MAX_BLOCK_LEN


def test_host_metadata_shapes():
    assert ir.TERMINATORS == frozenset(["jal", "jalr", "ecall", "ebreak"])
    assert set(ir.LOAD_ARGS) & {"lw", "ld", "lbu"}
    assert ir.STORE_WIDTH["sd"] == 8
    assert "%(a)d" in ir.BRANCH_COND["beq"]
