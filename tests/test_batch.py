"""The shared-predecode batch executor (:mod:`repro.bench.batch`).

The contract: cells grouped by ``(engine, config)`` share one
assembled interpreter, predecoded program and block/trace tables —
each pair assembles **at most once per process** (audited by the
engine modules' ``assembly_count``), while per-run state (memory,
registers, runtime output) is rebuilt from scratch so cells sharing a
table are fully isolated.
"""

import pytest

from repro.bench import batch
from repro.bench.runner import run_benchmark

_SCALES = {"fibo": 8, "n-sieve": 100}


def _cells(*triples):
    return [(engine, benchmark, config, _SCALES[benchmark])
            for engine, benchmark, config in triples]


def test_group_cells_orders_by_first_appearance():
    cells = _cells(("lua", "fibo", "baseline"),
                   ("js", "fibo", "baseline"),
                   ("lua", "n-sieve", "baseline"),
                   ("lua", "fibo", "typed"))
    groups = batch.group_cells(cells)
    assert list(groups) == [("lua", "baseline"), ("js", "baseline"),
                            ("lua", "typed")]
    assert groups[("lua", "baseline")] == [("fibo", 8), ("n-sieve", 100)]


def test_batch_cells_are_pair_contiguous():
    cells = batch.batch_cells(benchmarks=("fibo", "n-sieve"),
                              configs=("baseline", "typed"))
    groups = batch.group_cells(cells)
    # (engine, config) major: one contiguous group per pair.
    assert len(groups) == 4
    sizes = [len(members) for members in groups.values()]
    assert sizes == [2, 2, 2, 2]


def test_batch_assembles_each_pair_at_most_once():
    cells = _cells(("lua", "fibo", "baseline"),
                   ("lua", "n-sieve", "baseline"),
                   ("lua", "fibo", "typed"),
                   ("js", "fibo", "baseline"))
    records, report = batch.run_batch(cells)
    assert report["cells"] == 4
    assert report["pairs"] == 3
    for group in report["groups"]:
        assert group["assemblies"] <= 1
        assert group["blocks_compiled"] > 0
    # A warm re-batch shares everything: zero assemblies, and the
    # exactly-once process-wide property holds by the counter audit.
    _again, warm_report = batch.run_batch(cells)
    assert warm_report["assemblies_total"] == 0
    for group in warm_report["groups"]:
        assert group["assemblies"] == 0


def test_batch_cells_isolated_despite_shared_tables():
    """The same cell twice in one batch — and against a fresh
    standalone run — must agree bit for bit: per-run state never
    leaks through the shared block/trace tables."""
    cell = ("lua", "fibo", "baseline", 8)
    records, _report = batch.run_batch([cell, cell][:1] + [cell])
    batched = records[cell]
    standalone = run_benchmark("lua", "fibo", "baseline", scale=8,
                               use_cache=False, attribute=False)
    assert batched.output == standalone.output
    assert batched.counters.as_dict() == standalone.counters.as_dict()


def test_batch_invariant_violation_raises(monkeypatch):
    """A (hypothetical) engine that re-assembles per run must trip the
    audit, not silently ship a cold sweep."""
    from repro.engines.lua import vm as lua_vm

    real = lua_vm.interpreter_program

    def cold(config):
        lua_vm._PROGRAM_CACHE.pop(config, None)
        return real(config)

    monkeypatch.setattr(lua_vm, "interpreter_program", cold)
    cells = _cells(("lua", "fibo", "baseline"),
                   ("lua", "n-sieve", "baseline"))
    with pytest.raises(batch.BatchInvariantError):
        batch.run_batch(cells)


def test_batch_report_formats():
    cells = _cells(("lua", "fibo", "baseline"))
    _records, report = batch.run_batch(cells)
    text = batch.format_report(report)
    assert "1 cell(s)" in text
    assert "lua" in text and "baseline" in text
