"""Lexer, parser and compiler tests for the MiniJS front end."""

import pytest

from repro.engines.js import jast as ast
from repro.engines.js.compiler import JsCompileError, compile_source
from repro.engines.js.jparser import parse
from repro.engines.js.lexer import JsSyntaxError, tokenize
from repro.engines.js.opcodes import JsOp, decode, encode


# -- lexer ---------------------------------------------------------------------

def test_number_literals_int32_vs_double():
    tokens = tokenize("1 2.5 3000000000 0x10")
    assert tokens[0].value == 1 and isinstance(tokens[0].value, int)
    assert tokens[1].value == 2.5
    assert isinstance(tokens[2].value, float)  # exceeds int32
    assert tokens[3].value == 16


def test_comments():
    tokens = tokenize("a // line\nb /* block\nstill */ c")
    names = [t.value for t in tokens if t.kind == "name"]
    assert names == ["a", "b", "c"]


def test_operator_longest_match():
    values = [t.value for t in tokenize("a === b !== c <= d && e ++")[:-1]]
    assert "===" in values and "!==" in values and "&&" in values
    assert "++" in values


def test_string_escapes():
    assert tokenize(r'"a\tb"')[0].value == "a\tb"


def test_lexer_error():
    with pytest.raises(JsSyntaxError):
        tokenize("@")


# -- parser --------------------------------------------------------------------

def test_precedence():
    expr = parse("x = 1 + 2 * 3;").statements[0].value
    assert expr.op == "+" and expr.right.op == "*"


def test_for_loop_parts():
    stat = parse("for (var i = 0; i < 10; i++) { x = i; }").statements[0]
    assert isinstance(stat, ast.For)
    assert isinstance(stat.init, ast.VarDecl)
    assert isinstance(stat.step, ast.Assign)
    assert stat.step.op == "+"


def test_compound_assignment_desugars():
    stat = parse("x += 2;").statements[0]
    assert isinstance(stat, ast.Assign)
    assert stat.op == "+"


def test_member_and_index():
    expr = parse("x = a.b[c];").statements[0].value
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.obj, ast.Index)
    assert expr.obj.key.value == "b"


def test_else_if_chain():
    stat = parse("if (a) x=1; else if (b) x=2; else x=3;").statements[0]
    assert isinstance(stat.orelse, ast.If)


def test_array_and_object_literals():
    expr = parse("x = [1, 2, 3];").statements[0].value
    assert isinstance(expr, ast.ArrayLit) and len(expr.items) == 3
    expr = parse("x = {a: 1, 'b': 2};").statements[0].value
    assert isinstance(expr, ast.ObjectLit) and len(expr.fields) == 2


def test_parse_error_on_bad_target():
    with pytest.raises(JsSyntaxError):
        parse("1 = 2;")


# -- compiler ------------------------------------------------------------------

def _ops(proto):
    return [decode(word)[0] for word in proto.code]


def test_encode_decode_roundtrip():
    word = encode(JsOp.JUMP, -5)
    assert decode(word) == (JsOp.JUMP, -5)


def test_var_hoisting_allocates_slots():
    # Inside a function, var declarations hoist to function-scope locals.
    chunk = compile_source(
        "function f(a) { if (a) { var x = 1; } x = 2; return x; } f(1);")
    func = chunk.protos[1]
    assert func.num_locals >= 2  # parameter a plus hoisted x
    assert JsOp.SETLOCAL in _ops(func)


def test_top_level_var_is_global():
    # At the top level, `var` creates a global (visible inside functions).
    chunk = compile_source("var g = 7; function f() { return g; } f();")
    assert "g" in chunk.globals
    assert JsOp.SETGLOBAL in _ops(chunk.main)
    assert JsOp.GETGLOBAL in _ops(chunk.protos[1])


def test_functions_hoisted_to_globals():
    chunk = compile_source("var r = f(1); function f(a) { return a; }")
    assert "f" in chunk.func_globals
    assert len(chunk.protos) == 2


def test_call_emits_call_with_nargs():
    chunk = compile_source("function f(a, b) { return a; } f(1, 2);")
    call = next(word for word in chunk.main.code
                if decode(word)[0] == JsOp.CALL)
    assert decode(call)[1] == 2


def test_logical_and_uses_dup_ifeq():
    ops = _ops(compile_source("x = a && b;").main)
    assert JsOp.DUP in ops and JsOp.IFEQ in ops


def test_while_loop_shape():
    ops = _ops(compile_source("while (a) { b = 1; }").main)
    assert JsOp.IFEQ in ops and JsOp.JUMP in ops


def test_strict_equality_canonicalized():
    ops = _ops(compile_source("x = a === b;").main)
    assert JsOp.EQ in ops


def test_element_assignment():
    ops = _ops(compile_source("a[0] = 1;").main)
    assert JsOp.SETELEM in ops


def test_break_outside_loop_fails():
    with pytest.raises(JsCompileError):
        compile_source("break;")


def test_every_proto_ends_with_return():
    chunk = compile_source("function f() { var x = 1; } var y = 2;")
    for proto in chunk.protos:
        assert decode(proto.code[-1])[0] in (JsOp.RETURN,
                                             JsOp.RETURN_UNDEF)
