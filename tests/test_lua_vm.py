"""End-to-end MiniLua VM tests on the baseline machine.

Each test runs a small script on the simulated core and checks its
printed output (the host-side runtime only formats and stores what the
assembly interpreter computed in simulated memory).
"""

import pytest

from repro.engines.lua import run_lua
from repro.engines.lua.runtime import LuaError


def lua(source, config="baseline"):
    return run_lua(source, config=config,
                   max_instructions=20_000_000).output


def test_print_integers_and_floats():
    assert lua("print(42)") == "42\n"
    assert lua("print(1.5)") == "1.5\n"
    assert lua("print(3.0)") == "3.0\n"  # Lua 5.3 keeps the float mark


def test_integer_arithmetic():
    assert lua("print(7 + 3, 7 - 3, 7 * 3)") == "10\t4\t21\n"
    assert lua("print(7 // 2, -7 // 2)") == "3\t-4\n"
    assert lua("print(7 % 3, -7 % 3, 7 % -3)") == "1\t2\t-2\n"


def test_float_arithmetic():
    assert lua("print(1.5 + 2.25)") == "3.75\n"
    assert lua("print(7 / 2)") == "3.5\n"  # '/' is float division
    assert lua("print(2 ^ 10)") == "1024.0\n"  # '^' is float pow


def test_mixed_arithmetic_promotes_to_float():
    """The paper's Figure 1(a) examples."""
    assert lua("print(1 + 2)") == "3\n"
    assert lua("print(1 + 2.2)") == "3.2\n"
    assert lua("print(1.1 + 2)") == "3.1\n"
    assert lua("print('1' + '2')") == "3\n"  # string coercion


def test_integer_wraparound():
    assert lua("print(9223372036854775807 + 1)") == "-9223372036854775808\n"


def test_unary_minus():
    assert lua("print(-5, -2.5, -(3 - 7))") == "-5\t-2.5\t4\n"


def test_comparisons():
    assert lua("print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4)") \
        == "true\ttrue\tfalse\ttrue\n"
    assert lua("print(1 == 1.0, 1 == 2, 'a' == 'a', 'a' ~= 'b')") \
        == "true\tfalse\ttrue\ttrue\n"
    assert lua("print(1.5 < 2, 2 < 1.5)") == "true\tfalse\n"


def test_string_comparison_via_slow_path():
    assert lua("print('abc' < 'abd', 'b' < 'a')") == "true\tfalse\n"


def test_truthiness():
    assert lua("print(not nil, not false, not 0, not '')") \
        == "true\ttrue\tfalse\tfalse\n"


def test_and_or_short_circuit():
    assert lua("print(nil and 1, nil or 2, 1 and 2, false or nil)") \
        == "nil\t2\t2\tnil\n"


def test_while_loop():
    assert lua("""
    local i = 1
    local n = 0
    while i <= 10 do n = n + i i = i + 1 end
    print(n)
    """) == "55\n"


def test_repeat_until():
    assert lua("""
    local i = 0
    repeat i = i + 1 until i >= 3
    print(i)
    """) == "3\n"


def test_numeric_for_variants():
    assert lua("local s=0 for i=1,5 do s=s+i end print(s)") == "15\n"
    assert lua("local s=0 for i=10,1,-2 do s=s+i end print(s)") == "30\n"
    assert lua("local s=0 for i=1,0 do s=s+1 end print(s)") == "0\n"
    assert lua("local s=0.0 for i=1.0,2.0,0.5 do s=s+i end print(s)") \
        == "4.5\n"


def test_break():
    assert lua("""
    local s = 0
    for i = 1, 100 do
      if i > 5 then break end
      s = s + i
    end
    print(s)
    """) == "15\n"


def test_functions_and_recursion():
    assert lua("""
    local function fib(n)
      if n < 2 then return n end
      return fib(n-1) + fib(n-2)
    end
    print(fib(10))
    """) == "55\n"


def test_global_function_and_args():
    assert lua("""
    function add3(a, b, c) return a + b + c end
    print(add3(1, 2, 3))
    """) == "6\n"


def test_function_without_return_gives_nil():
    assert lua("function f() end print(f())") == "nil\n"


def test_tables_int_keys():
    assert lua("""
    local t = {}
    t[1] = 10 t[2] = 20 t[3] = 30
    print(t[1] + t[2] + t[3], #t)
    """) == "60\t3\n"


def test_table_constructor():
    assert lua("local t = {5, 6, 7} print(t[1], t[3], #t)") == "5\t7\t3\n"


def test_table_growth():
    assert lua("""
    local t = {}
    for i = 1, 100 do t[i] = i end
    print(t[100], #t)
    """) == "100\t100\n"


def test_table_string_keys():
    assert lua("""
    local t = {}
    t['x'] = 1
    t.y = 2
    print(t.x + t['y'])
    """) == "3\n"


def test_table_missing_key_is_nil():
    assert lua("local t = {} print(t[5], t.missing)") == "nil\tnil\n"


def test_table_sparse_int_keys():
    assert lua("local t = {} t[100] = 7 print(t[100], #t)") == "7\t0\n"


def test_nested_tables():
    assert lua("""
    local grid = {}
    for i = 1, 3 do
      grid[i] = {}
      for j = 1, 3 do grid[i][j] = i * 10 + j end
    end
    print(grid[2][3])
    """) == "23\n"


def test_string_concat_and_len():
    assert lua("print('foo' .. 'bar', #'hello', 'n=' .. 42)") \
        == "foobar\t5\tn=42\n"


def test_builtins():
    assert lua("print(math.floor(3.7), math.sqrt(16), math.abs(-4))") \
        == "3\t4.0\t4\n"
    assert lua("print(string.sub('hello', 2, 4))") == "ell\n"
    assert lua("print(string.byte('A'), string.char(66, 67))") == "65\tBC\n"
    assert lua("print(type(1), type('s'), type({}), type(print), type(nil))")\
        == "number\tstring\ttable\tfunction\tnil\n"
    assert lua("print(tostring(1.5) .. '!')") == "1.5!\n"


def test_io_write_no_newline():
    assert lua("io.write('a') io.write('b', 'c')") == "abc"


def test_booleans_roundtrip():
    assert lua("local b = true print(b, not b, b == true)") \
        == "true\tfalse\ttrue\n"


def test_runtime_error_on_nil_arithmetic():
    with pytest.raises(LuaError):
        lua("local x print(x + 1)")


def test_runtime_error_on_calling_non_function():
    with pytest.raises(LuaError):
        lua("local x = 5 x()")


def test_runtime_error_on_indexing_number():
    with pytest.raises(LuaError):
        lua("local x = 5 print(x[1])")


def test_deep_recursion():
    assert lua("""
    local function down(n)
      if n == 0 then return 0 end
      return down(n - 1) + 1
    end
    print(down(500))
    """) == "500\n"


def test_float_for_loop_with_int_start_coerces():
    assert lua("local s=0.0 for i=1,2,0.5 do s=s+i end print(s)") == "4.5\n"


def test_multiple_local_assignment():
    assert lua("local a, b, c = 1, 2 print(a, b, c)") == "1\t2\tnil\n"
    assert lua("local a, b = 1, 2, 3 print(a, b)") == "1\t2\n"


def test_multiple_assignment_swap():
    assert lua("""
    local a = 1
    local b = 2
    a, b = b, a
    print(a, b)
    """) == "2\t1\n"


def test_multiple_assignment_to_table_and_global():
    assert lua("""
    local t = {}
    g, t[1] = 10, 20
    print(g, t[1])
    """) == "10\t20\n"


def test_multiple_assignment_values_evaluated_first():
    assert lua("""
    local t = {}
    t[1] = 1
    t[1], t[2] = t[1] + 10, t[1] + 20
    print(t[1], t[2])
    """) == "11\t21\n"


def test_string_format():
    assert lua("print(string.format('%d + %d = %d', 1, 2, 3))") \
        == "1 + 2 = 3\n"
    assert lua("print(string.format('%5d|%-5d|%05d', 42, 42, 42))") \
        == "   42|42   |00042\n"
    assert lua("print(string.format('%.2f %g', 3.14159, 0.5))") \
        == "3.14 0.5\n"
    assert lua("print(string.format('%s-%s', 'a', 1.5))") == "a-1.5\n"
    assert lua("print(string.format('%x %X %o', 255, 255, 8))") \
        == "ff FF 10\n"
    assert lua("print(string.format('100%%'))") == "100%\n"
    assert lua("print(string.format('%c%c', 72, 105))") == "Hi\n"


def test_string_format_errors():
    with pytest.raises(LuaError):
        lua("print(string.format('%d'))")  # missing argument


def test_ipairs_loop():
    assert lua("""
    local t = {10, 20, 30}
    local s = 0
    for i, v in ipairs(t) do s = s + i * v end
    print(s)
    """) == "140\n"


def test_ipairs_single_variable():
    assert lua("""
    local t = {5, 6}
    local s = 0
    for i in ipairs(t) do s = s + i end
    print(s)
    """) == "3\n"


def test_ipairs_stops_at_nil():
    assert lua("""
    local t = {}
    t[1] = 1 t[2] = 2 t[4] = 4
    local n = 0
    for i, v in ipairs(t) do n = n + 1 end
    print(n)
    """) == "2\n"


def test_ipairs_with_break():
    assert lua("""
    local t = {1, 2, 3, 4, 5}
    local s = 0
    for i, v in ipairs(t) do
      if v > 3 then break end
      s = s + v
    end
    print(s)
    """) == "6\n"


def test_ipairs_empty_table():
    assert lua("""
    local n = 0
    for i, v in ipairs({}) do n = n + 1 end
    print(n)
    """) == "0\n"


def test_bitwise_operators():
    assert lua("print(0xF0 & 0x3C, 0xF0 | 0x0F, 5 ~ 3)") == "48\t255\t6\n"
    assert lua("print(1 << 4, 256 >> 4, ~0)") == "16\t16\t-1\n"
    assert lua("print(~5, ~(-1))") == "-6\t0\n"


def test_bitwise_float_coercion_via_slow_path():
    assert lua("print(6.0 & 3, 1 << 3.0)") == "2\t8\n"


def test_shift_edge_cases():
    assert lua("print(1 << 64, 1 << 100, -1 >> 63)") == "0\t0\t1\n"
    assert lua("print(8 >> -1, 1 << -2)") == "16\t0\n"
    assert lua("print(-1 >> 1)") == "9223372036854775807\n"  # logical


def test_bitwise_error_on_fractional():
    with pytest.raises(LuaError):
        lua("print(1.5 & 2)")


def test_bitwise_precedence():
    # Lua: shifts bind tighter than &, & tighter than ~(xor), | loosest.
    assert lua("print(1 | 2 ~ 3 & 5)") == "3\n"   # 1 | (2 ~ (3 & 5))
    assert lua("print(1 << 2 & 12)") == "4\n"     # (1 << 2) & 12


def test_more_stdlib_builtins():
    assert lua("print(math.ceil(3.2), math.ceil(-3.2))") == "4\t-3\n"
    assert lua("print(string.upper('aBc'), string.lower('aBc'))") \
        == "ABC\tabc\n"
    assert lua("print(string.len('hello'))") == "5\n"
