"""Encode/decode round-trip tests, including property-based coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import INSTRUCTION_SPECS, Instruction


def _roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.mnemonic == instr.mnemonic
    spec = INSTRUCTION_SPECS[instr.mnemonic]
    if spec.fmt not in ("U", "J", "SYS"):
        assert back.rs1 == instr.rs1
    if spec.fmt == "R" and spec.fixed_rs2 is None:
        assert back.rs2 == instr.rs2
    if spec.fmt in ("R", "I", "U", "J"):
        assert back.rd == instr.rd
    if spec.fmt in ("I", "S", "B", "U", "J"):
        assert back.imm == instr.imm
    return back


REGS = st.integers(min_value=0, max_value=31)
IMM12 = st.integers(min_value=-2048, max_value=2047)


@given(rd=REGS, rs1=REGS, rs2=REGS)
def test_r_format_roundtrip(rd, rs1, rs2):
    for mnemonic in ("add", "sub", "mul", "xadd", "xsub", "xmul", "fadd.d"):
        _roundtrip(Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2))


@given(rd=REGS, rs1=REGS, imm=IMM12)
def test_i_format_roundtrip(rd, rs1, imm):
    for mnemonic in ("addi", "ld", "lw", "tld", "chklb", "jalr"):
        _roundtrip(Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm))


@given(rs1=REGS, rs2=REGS, imm=IMM12)
def test_s_format_roundtrip(rs1, rs2, imm):
    for mnemonic in ("sd", "sw", "tsd", "fsd"):
        _roundtrip(Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm))


@given(rs1=REGS, rs2=REGS,
       imm=st.integers(min_value=-2048, max_value=2047).map(lambda v: v * 2))
def test_b_format_roundtrip(rs1, rs2, imm):
    for mnemonic in ("beq", "bne", "blt", "bgeu"):
        _roundtrip(Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm))


@given(rd=REGS, imm=st.integers(min_value=0, max_value=(1 << 20) - 1))
def test_u_format_roundtrip(rd, imm):
    for mnemonic in ("lui", "auipc"):
        _roundtrip(Instruction(mnemonic, rd=rd, imm=imm))


@given(rd=REGS,
       imm=st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)
       .map(lambda v: v * 2))
def test_j_format_roundtrip(rd, imm):
    _roundtrip(Instruction("jal", rd=rd, imm=imm))
    _roundtrip(Instruction("thdl", imm=imm))


@given(rd=REGS, rs1=REGS, shamt=st.integers(min_value=0, max_value=63))
def test_shift_roundtrip(rd, rs1, shamt):
    for mnemonic in ("slli", "srli", "srai"):
        _roundtrip(Instruction(mnemonic, rd=rd, rs1=rs1, imm=shamt))


def test_all_mnemonics_roundtrip_with_zero_operands():
    for mnemonic, spec in INSTRUCTION_SPECS.items():
        imm = 0
        _roundtrip(Instruction(mnemonic, rd=1, rs1=2, rs2=3, imm=imm))


def test_system_instructions_distinct():
    assert encode(Instruction("ecall")) != encode(Instruction("ebreak"))
    assert decode(encode(Instruction("ebreak"))).mnemonic == "ebreak"


def test_fcvt_variants_distinguished_by_rs2_field():
    l_d = encode(Instruction("fcvt.l.d", rd=1, rs1=2))
    w_d = encode(Instruction("fcvt.w.d", rd=1, rs1=2))
    assert l_d != w_d
    assert decode(l_d).mnemonic == "fcvt.l.d"
    assert decode(w_d).mnemonic == "fcvt.w.d"


def test_encode_rejects_out_of_range_immediate():
    with pytest.raises(ValueError):
        encode(Instruction("addi", rd=1, rs1=1, imm=5000))
    with pytest.raises(ValueError):
        encode(Instruction("beq", rs1=1, rs2=2, imm=3))  # odd displacement


@settings(max_examples=50)
@given(rd=REGS, rs1=REGS, rs2=REGS, imm=IMM12)
def test_disassemble_reassemble_fixed_point(rd, rs1, rs2, imm):
    """disassemble . assemble is the identity on label-free instructions."""
    samples = [
        Instruction("add", rd=rd, rs1=rs1, rs2=rs2),
        Instruction("addi", rd=rd, rs1=rs1, imm=imm),
        Instruction("ld", rd=rd, rs1=rs1, imm=imm),
        Instruction("sd", rs1=rs1, rs2=rs2, imm=imm),
        Instruction("xadd", rd=rd, rs1=rs1, rs2=rs2),
        Instruction("tld", rd=rd, rs1=rs1, imm=imm),
        Instruction("tsd", rs1=rs1, rs2=rs2, imm=imm),
        Instruction("tget", rd=rd, rs1=rs1),
        Instruction("setmask", rs1=rs1),
    ]
    for instr in samples:
        text = disassemble(instr)
        program = assemble(text)
        (back,) = program.instructions
        assert back.mnemonic == instr.mnemonic
        assert (back.rd, back.rs1, back.rs2, back.imm) == \
            (instr.rd, instr.rs1, instr.rs2, instr.imm)
