"""Tests for the performance regression gate (``repro bench check``)."""

import copy
import json

import pytest

from repro.bench import gate
from repro.bench.runner import run_matrix


@pytest.fixture(scope="module")
def records():
    return run_matrix(engines=("lua",), benchmarks=("fibo",),
                      scales={"fibo": 6}, use_cache=False)


def test_collect_metrics_shape(records):
    metrics = gate.collect_metrics(records)
    assert set(metrics) == {"lua/fibo"}
    cell = metrics["lua/fibo"]
    assert cell["speedup_typed"] > 1.0
    assert 0.0 <= cell["type_hit_rate"] <= 1.0
    for config in ("baseline", "typed", "chklb"):
        assert cell["instructions/%s" % config] > 0
        assert cell["cycles/%s" % config] > 0
        assert cell["branch_mpki/%s" % config] >= 0.0


def test_baseline_roundtrip_passes(tmp_path, records):
    path = tmp_path / "baseline.json"
    gate.write_baseline(str(path), records)
    violations, report = gate.check(str(path), records)
    assert violations == []
    assert "ok" in report


def test_drift_fails_gate(tmp_path, records):
    path = tmp_path / "baseline.json"
    payload = gate.write_baseline(str(path), records)
    drifted = copy.deepcopy(payload)
    drifted["metrics"]["lua/fibo"]["speedup_typed"] *= 1.10
    path.write_text(json.dumps(drifted))
    violations, report = gate.check(str(path), records)
    assert len(violations) == 1
    assert violations[0].metric == "speedup_typed"
    assert "regenerate" in report


def test_absolute_family_uses_absolute_tolerance(records):
    metrics = gate.collect_metrics(records)
    drifted = copy.deepcopy(metrics)
    drifted["lua/fibo"]["type_hit_rate"] = \
        metrics["lua/fibo"]["type_hit_rate"] - 0.2
    violations = gate.compare(metrics, drifted, abs_tol=0.05)
    assert [v.metric for v in violations] == ["type_hit_rate"]
    assert gate.compare(metrics, drifted, abs_tol=0.5) == []


def test_missing_cell_is_a_violation(records):
    metrics = gate.collect_metrics(records)
    violations = gate.compare(metrics, {})
    assert violations and violations[0].metric == "(missing)"
    violations = gate.compare({}, metrics)
    assert violations and violations[0].metric == "(missing)"


def test_missing_metric_is_a_violation(records):
    metrics = gate.collect_metrics(records)
    shrunk = copy.deepcopy(metrics)
    del shrunk["lua/fibo"]["speedup_chklb"]
    assert [v.metric for v in gate.compare(metrics, shrunk)] \
        == ["speedup_chklb"]


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 999, "metrics": {}}))
    with pytest.raises(ValueError, match="regenerate"):
        gate.load_baseline(str(path))


def test_within_tolerance_drift_passes(records):
    metrics = gate.collect_metrics(records)
    drifted = copy.deepcopy(metrics)
    drifted["lua/fibo"]["cycles/typed"] = \
        int(metrics["lua/fibo"]["cycles/typed"] * 1.01)
    assert gate.compare(metrics, drifted, rel_tol=0.02) == []
