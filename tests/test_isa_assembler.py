"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble


def test_basic_r_type():
    program = assemble("add a0, a1, a2")
    (instr,) = program.instructions
    assert instr.mnemonic == "add"
    assert (instr.rd, instr.rs1, instr.rs2) == (10, 11, 12)


def test_load_store_operands():
    program = assemble("""
        ld a2, 8(s10)
        sd a2, -16(sp)
    """)
    load, store = program.instructions
    assert (load.rd, load.rs1, load.imm) == (12, 26, 8)
    assert (store.rs2, store.rs1, store.imm) == (12, 2, -16)


def test_labels_and_branches():
    program = assemble("""
    loop:
        addi a0, a0, -1
        bnez a0, loop
        ret
    """)
    assert program.labels["loop"] == 0
    branch = program.instructions[1]
    assert branch.mnemonic == "bne"
    assert branch.imm == -4  # back to address 0 from address 4


def test_label_on_same_line_as_instruction():
    program = assemble("top: addi a0, a0, 1\n j top")
    assert program.labels["top"] == 0
    assert program.instructions[1].mnemonic == "jal"
    assert program.instructions[1].imm == -4


def test_li_small_is_single_addi():
    program = assemble("li a0, 42")
    (instr,) = program.instructions
    assert instr.mnemonic == "addi"
    assert instr.imm == 42


def test_li_32bit_uses_lui():
    program = assemble("li a0, 0x12345")
    assert program.instructions[0].mnemonic == "lui"


def test_li_large_expands_multiple():
    program = assemble("li a0, 0x123456789ABC")
    assert len(program.instructions) > 2
    assert any(i.mnemonic == "slli" for i in program.instructions)


def test_equ_constants():
    program = assemble("""
        .equ TNUMINT, 19
        li a4, TNUMINT
    """)
    assert program.instructions[0].imm == 19


def test_pseudo_expansions():
    program = assemble("""
        mv a0, a1
        nop
        not t0, t1
        neg t2, t3
        seqz a2, a3
        j end
        ret
    end:
    """)
    mnemonics = [i.mnemonic for i in program.instructions]
    assert mnemonics == ["addi", "addi", "xori", "sub", "sltiu", "jal", "jalr"]


def test_typed_extension_instructions():
    program = assemble("""
        tld t0, 0(a0)
        thdl slow
        xadd t0, t0, t1
        tsd t0, 0(a1)
        tchk t2, t3
        tget a4, t0
        tset a4, t0
        setoffset a0
        flush_trt
    slow:
        ret
    """)
    mnemonics = [i.mnemonic for i in program.instructions]
    assert "xadd" in mnemonics and "tchk" in mnemonics
    thdl = program.instructions[1]
    assert thdl.imm == program.labels["slow"] - 4


def test_checked_load_instructions():
    program = assemble("""
        settype a0
        chklb t0, 8(a1)
    """)
    chk = program.instructions[1]
    assert chk.mnemonic == "chklb"
    assert (chk.rd, chk.rs1, chk.imm) == (5, 11, 8)


def test_la_resolves_external_labels():
    program = assemble("la a0, table", extra_labels={"table": 0x4000})
    lui, addiw = program.instructions
    assert lui.imm == 0x4
    assert addiw.imm == 0


def test_base_address_offsets_labels():
    program = assemble("entry: nop", base=0x1000)
    assert program.labels["entry"] == 0x1000
    assert program.instructions[0].addr == 0x1000
    assert program.instr_index(0x1000) == 0


def test_undefined_label_raises():
    with pytest.raises(AssemblerError, match="undefined label"):
        assemble("j nowhere")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a:\na:\nnop")


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate a0, a1")


def test_bad_operand_count_raises():
    with pytest.raises(AssemblerError):
        assemble("add a0, a1")


def test_comments_ignored():
    program = assemble("""
        # full-line comment
        addi a0, a0, 1  # trailing comment
    """)
    assert len(program.instructions) == 1


def test_fp_register_operands():
    program = assemble("fadd.d f5, f5, f2")
    (instr,) = program.instructions
    assert (instr.rd, instr.rs1, instr.rs2) == (5, 5, 2)


def test_program_instr_index_rejects_outside_pc():
    program = assemble("nop")
    with pytest.raises(ValueError):
        program.instr_index(0x100)
    with pytest.raises(ValueError):
        program.instr_index(2)


def test_branch_out_of_range_raises():
    body = "target:\n" + "nop\n" * 2000 + "beqz a0, target"
    with pytest.raises(AssemblerError, match="out of range"):
        assemble(body)


def test_li_64bit_materialisation_property():
    """Property: li loads any 64-bit constant exactly (checked by
    executing the expansion on the simulator)."""
    from hypothesis import given, settings
    from hypothesis import strategies as st
    from repro.sim.cpu import Cpu
    from repro.sim.memory import Memory

    @settings(max_examples=80, deadline=None)
    @given(value=st.one_of(
        st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
        st.sampled_from([0, 1, -1, 2047, 2048, -2048, -2049,
                         (1 << 31) - 1, 1 << 31, -(1 << 31),
                         (1 << 63) - 1, -(1 << 63), 0x5555555555555555])))
    def check(value):
        program = assemble("li a0, %d\nebreak" % value)
        cpu = Cpu(program, Memory(size=4096))
        cpu.run()
        assert cpu.regs.value[10] == value & ((1 << 64) - 1)

    check()
