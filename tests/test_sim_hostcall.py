"""Tests for the host-call interface (native-library stand-in)."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.errors import HostCallError
from repro.sim.hostcall import HostInterface
from repro.sim.memory import Memory


def make_cpu(host, a_values=()):
    program = assemble("ecall\nebreak")
    cpu = Cpu(program, Memory(size=4096), host=host)
    for index, value in enumerate(a_values):
        cpu.regs.write(10 + index, value)  # a0...
    return cpu


def test_dispatch_passes_args_and_returns_result():
    host = HostInterface()
    seen = {}

    def handler(cpu, *args):
        seen["args"] = args
        return 99

    host.register(7, "svc", handler, cost=10)
    cpu = make_cpu(host, a_values=(1, 2, 3, 4, 5, 6, 7))
    cpu.regs.write(17, 7)  # a7 = service id
    cpu.run()
    assert seen["args"] == (1, 2, 3, 4, 5, 6, 7)
    assert cpu.regs.value[10] == 99  # a0 carries the result
    assert cpu.pending_host_cost == 10


def test_none_result_preserves_a0():
    host = HostInterface()
    host.register(1, "noop", lambda cpu, *args: None, cost=5)
    cpu = make_cpu(host, a_values=(42,))
    cpu.regs.write(17, 1)
    cpu.run()
    assert cpu.regs.value[10] == 42


def test_unknown_service_raises():
    host = HostInterface()
    cpu = make_cpu(host)
    cpu.regs.write(17, 123)
    with pytest.raises(HostCallError):
        cpu.run()


def test_duplicate_registration_rejected():
    host = HostInterface()
    host.register(1, "a", lambda cpu: None, cost=1)
    with pytest.raises(ValueError):
        host.register(1, "b", lambda cpu: None, cost=1)


def test_callable_cost_sees_args():
    host = HostInterface()
    host.register(2, "scaled", lambda cpu, *args: None,
                  cost=lambda args: args[0] * 3)
    cpu = make_cpu(host, a_values=(7,))
    cpu.regs.write(17, 2)
    cpu.run()
    assert cpu.pending_host_cost == 21
    assert host.charged_instructions == 21


def test_call_statistics():
    host = HostInterface()
    host.register(1, "first", lambda cpu, *args: None, cost=3)
    host.register(2, "second", lambda cpu, *args: None, cost=4)
    program = assemble("""
        li a7, 1
        ecall
        li a7, 2
        ecall
        li a7, 1
        ecall
        ebreak
    """)
    cpu = Cpu(program, Memory(size=4096), host=host)
    cpu.run()
    assert host.calls == 3
    assert host.calls_by_service == {"first": 2, "second": 1}
    assert host.charged_instructions == 10
