"""Behavioural equivalence of the guard-elided configuration.

The ``elided`` scheme runs the baseline software interpreter with
statically-proven guard chains removed (quickened handlers).  The
contract is strict: for every guest program — proven or not — outputs
are byte-identical to ``baseline``, guest-visible bytecode execution
histograms are identical once quickened variants are folded back onto
their base opcodes, and host instret never increases (elision only
ever removes host work).  Hypothesis hunts for counterexamples over
random expression programs; a workload subset pins the real kernels;
a cross-engine check asserts the reference loop, the basic-block
engine and the trace engine agree bit-for-bit on elided builds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import quickening
from repro.bench.workloads import workload
from repro.engines.configs import BASELINE, ELIDED
from repro.engines.js import run_js
from repro.engines.lua import run_lua

_RUN = {"lua": run_lua, "js": run_js}
_BY_NAME = {"lua": quickening.LUA_BY_NAME, "js": quickening.JS_BY_NAME}


def folded_counts(counts, engine):
    """Fold quickened-handler counts (ADD_II, FORLOOP_F, ...) back onto
    their base opcode names; every other key passes through untouched
    (so e.g. RETURN_UNDEF is *not* split at an underscore)."""
    by_name = _BY_NAME[engine]
    out = {}
    for name, value in counts.items():
        base = quickening.base_name(name) if name in by_name else name
        out[base] = out.get(base, 0) + value
    return out


def assert_equivalent(engine, source, max_instructions=20_000_000):
    base = _RUN[engine](source, config=BASELINE,
                        max_instructions=max_instructions)
    elided = _RUN[engine](source, config=ELIDED,
                          max_instructions=max_instructions)
    assert elided.output == base.output, source
    assert (elided.counters.core_instructions
            <= base.counters.core_instructions), source
    assert (folded_counts(elided.counters.bytecode_counts, engine)
            == folded_counts(base.counters.bytecode_counts, engine)), \
        source
    return base, elided


# -- hypothesis: random straight-line and loop programs ---------------------------

_INT_OPS = ("+", "-", "*")


def _exprs(depth, float_style):
    if float_style:
        literal = st.integers(min_value=-40, max_value=40).map(
            lambda v: ("lit", v * 0.25))
    else:
        literal = st.integers(min_value=0, max_value=99).map(
            lambda v: ("lit", v))
    if depth == 0:
        return literal
    sub = _exprs(depth - 1, float_style)
    return st.one_of(literal,
                     st.tuples(st.sampled_from(_INT_OPS), sub, sub))


def _render(node):
    if node[0] == "lit":
        value = node[1]
        if isinstance(value, float):
            text = repr(value)
            if "." not in text and "e" not in text:
                text += ".0"
        else:
            text = str(value)
        return "(%s)" % text if value < 0 else text
    op, left, right = node
    return "(%s %s %s)" % (_render(left), op, _render(right))


@settings(max_examples=25, deadline=None)
@given(expr=_exprs(3, float_style=False), trip=st.integers(1, 6))
def test_lua_int_loops_match_baseline(expr, trip):
    source = ("local acc = 0\n"
              "for i = 1, %d do acc = acc + %s end\n"
              "print(acc)\n" % (trip, _render(expr)))
    assert_equivalent("lua", source)


@settings(max_examples=25, deadline=None)
@given(expr=_exprs(3, float_style=True), trip=st.integers(1, 6))
def test_lua_float_loops_match_baseline(expr, trip):
    source = ("local acc = 0.0\n"
              "for i = 1, %d do acc = acc + %s end\n"
              "print(acc)\n" % (trip, _render(expr)))
    assert_equivalent("lua", source)


@settings(max_examples=25, deadline=None)
@given(expr=_exprs(3, float_style=False), trip=st.integers(1, 6))
def test_js_int_loops_match_baseline(expr, trip):
    source = ("var acc = 0;\n"
              "for (var i = 0; i < %d; i++) { acc = acc + %s; }\n"
              "print(acc);\n" % (trip, _render(expr)))
    assert_equivalent("js", source)


@settings(max_examples=25, deadline=None)
@given(expr=_exprs(3, float_style=True), trip=st.integers(1, 6))
def test_js_float_loops_match_baseline(expr, trip):
    source = ("var acc = 0.5;\n"
              "for (var i = 0; i < %d; i++) { acc = acc + %s; }\n"
              "print(acc);\n" % (trip, _render(expr)))
    assert_equivalent("js", source)


@settings(max_examples=15, deadline=None)
@given(values=st.lists(st.one_of(st.integers(-99, 99),
                                 st.floats(-8, 8).map(
                                     lambda v: round(v * 4) / 4)),
                       min_size=1, max_size=6))
def test_lua_mixed_tag_programs_match_baseline(values):
    # Tag-unstable accumulators: the analysis must refuse to elide and
    # the fallback path must stay bit-identical.
    stmts = "\n".join("acc = acc + %s" % _render(("lit", v))
                      for v in values)
    source = "local acc = 0\n%s\nprint(acc)\n" % stmts
    assert_equivalent("lua", source)


# -- workload subset ---------------------------------------------------------------

# Small scales keep the suite fast; fannkuch-redux degenerates below
# scale 4 (pre-existing workload limitation), so it runs at 4.
_CELLS = (
    ("fibo", 8),
    ("mandelbrot", 4),
    ("n-body", 5),
    ("spectral-norm", 3),
    ("fannkuch-redux", 4),
    ("k-nucleotide", 30),
)


@pytest.mark.parametrize("engine", ("lua", "js"))
@pytest.mark.parametrize("bench,scale", _CELLS)
def test_workload_elided_matches_baseline(engine, bench, scale):
    source_attr = "lua_source" if engine == "lua" else "js_source"
    source = getattr(workload(bench), source_attr)(scale)
    assert_equivalent(engine, source)


@pytest.mark.parametrize("engine,bench,scale",
                         (("lua", "fibo", 8), ("js", "mandelbrot", 4)))
def test_elision_actually_fires(engine, bench, scale):
    # Guard: if the analysis ever regresses to proving nothing, the
    # differential above becomes vacuously true.  Lua proves fibo's int
    # adds/compares; JS proves mandelbrot's double kernel (JS int
    # arithmetic stays guarded — overflow promotes int32 to double, so
    # int results are only ever "numeric").
    source_attr = "lua_source" if engine == "lua" else "js_source"
    source = getattr(workload(bench), source_attr)(scale)
    base, elided = assert_equivalent(engine, source)
    quick = {name: count
             for name, count in elided.counters.bytecode_counts.items()
             if name in _BY_NAME[engine] and count > 0}
    assert quick, engine
    assert (elided.counters.core_instructions
            < base.counters.core_instructions), engine


# -- cross-engine invariant on elided builds ---------------------------------------

@pytest.mark.parametrize("engine", ("lua", "js"))
def test_elided_blocks_and_traces_bit_identical(engine):
    source_attr = "lua_source" if engine == "lua" else "js_source"
    source = getattr(workload("fibo"), source_attr)(8)
    run = _RUN[engine]
    reference = run(source, config=ELIDED, attribute=False,
                    use_blocks=False, use_traces=False)
    blocks = run(source, config=ELIDED, attribute=False,
                 use_blocks=True, use_traces=False)
    traces = run(source, config=ELIDED, attribute=False,
                 use_blocks=True, use_traces=True)
    for other in (blocks, traces):
        assert other.output == reference.output
        assert (other.counters.core_instructions
                == reference.counters.core_instructions)
        assert (other.counters.host_instructions
                == reference.counters.host_instructions)
