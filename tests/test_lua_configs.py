"""Differential and behavioural tests across the three machine configs.

The architectural claim of the paper is that the typed and Checked Load
machines are *performance* variants only: program output must be
identical, while typed beats chklb beats baseline on type-check-heavy
code.
"""

import pytest

from repro.engines import CONFIGS
from repro.engines.lua import run_lua

PROGRAMS = {
    "int_arith": """
        local s = 0
        for i = 1, 300 do s = s + i * 2 - 1 end
        print(s)
    """,
    "float_arith": """
        local s = 0.0
        local x = 1.5
        for i = 1, 300 do s = s + x * 1.01 - 0.5 x = x + 0.25 end
        print(s)
    """,
    "mixed_arith": """
        local s = 0
        for i = 1, 100 do
            if i % 2 == 0 then s = s + 1.5 else s = s + 2 end
        end
        print(s)
    """,
    "tables": """
        local t = {}
        for i = 1, 200 do t[i] = i end
        local s = 0
        for i = 1, 200 do s = s + t[i] end
        print(s)
    """,
    "string_keys": """
        local t = {}
        t.alpha = 1 t.beta = 2
        local s = 0
        for i = 1, 50 do s = s + t.alpha + t.beta end
        print(s)
    """,
    "recursion": """
        local function ack(m, n)
            if m == 0 then return n + 1 end
            if n == 0 then return ack(m - 1, 1) end
            return ack(m - 1, ack(m, n - 1))
        end
        print(ack(2, 3))
    """,
}


@pytest.fixture(scope="module")
def results():
    collected = {}
    for name, source in PROGRAMS.items():
        collected[name] = {config: run_lua(source, config=config)
                           for config in CONFIGS}
    return collected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_outputs_identical_across_configs(results, name):
    outputs = {cfg: r.output for cfg, r in results[name].items()}
    assert len(set(outputs.values())) == 1, outputs


@pytest.mark.parametrize("name", ["int_arith", "tables"])
def test_typed_executes_fewer_instructions(results, name):
    baseline = results[name]["baseline"].counters
    typed = results[name]["typed"].counters
    assert typed.instructions < baseline.instructions


@pytest.mark.parametrize("name", ["int_arith", "tables"])
def test_typed_is_fastest_on_hot_type_checks(results, name):
    cycles = {cfg: r.counters.cycles for cfg, r in results[name].items()}
    assert cycles["typed"] < cycles["chklb"] < cycles["baseline"]


def test_typed_type_hit_rate_high_on_monomorphic_code(results):
    counters = results["int_arith"]["typed"].counters
    assert counters.type_hits > 0
    assert counters.type_hit_rate > 0.99


def test_typed_handles_float_workloads_without_misses(results):
    """Polymorphic instructions adapt to FP operands (unlike chklb)."""
    counters = results["float_arith"]["typed"].counters
    assert counters.type_misses == 0
    assert counters.type_hits > 0


def test_chklb_misses_on_float_workloads(results):
    """Checked Load is integer-specialised, so FP code leaves the fast
    path (the paper's explanation for its mandelbrot/n-body losses)."""
    counters = results["float_arith"]["chklb"].counters
    assert counters.chk_misses > 0


def test_mixed_types_cause_type_mispredictions(results):
    counters = results["mixed_arith"]["typed"].counters
    assert counters.type_misses > 0


def test_string_keys_go_to_slow_path(results):
    """Table-Int is the only tchk rule; string keys must miss."""
    counters = results["string_keys"]["typed"].counters
    assert counters.type_misses > 0


def test_host_cost_charged_identically(results):
    instructions = {cfg: r.counters.host_instructions
                    for cfg, r in results["recursion"].items()}
    assert len(set(instructions.values())) == 1


def test_bytecode_counts_identical_across_configs(results):
    counts = [r.counters.bytecode_counts
              for r in results["tables"].values()]
    assert counts[0] == counts[1] == counts[2]
    assert counts[0]["SETTABLE"] >= 200
    assert counts[0]["GETTABLE"] >= 200


def test_attribution_covers_hot_bytecodes(results):
    buckets = results["int_arith"]["baseline"].counters.bucket_instructions
    assert buckets.get("dispatch", 0) > 0
    assert any(key.startswith("h_ADD") for key in buckets)
