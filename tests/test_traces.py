"""The superblock trace engine (:mod:`repro.sim.traces`).

The contract mirrors the block engine's, one level up: counters,
cycles and architectural state bit-identical to both the block engine
and the reference per-instruction loop for every program — including
mid-trace guard failures, budget exhaustion inside a trace, and the
adaptive retire/re-record machinery.  A hypothesis differential
drives all three engines over generated branchy loop programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.errors import ExecutionLimitExceeded
from repro.sim.memory import Memory
from repro.sim.traces import (
    TRACE_EVAL_WINDOW,
    TRACE_THRESHOLD,
    trace_table,
)
from repro.uarch.pipeline import DEFAULT_CONFIG, Machine


def _machine(text, **kwargs):
    cpu = Cpu(assemble(text), Memory(size=1 << 16))
    return cpu, Machine(cpu, **kwargs)


_ENGINE_MODES = (
    {"use_blocks": False},                      # reference loop
    {"use_blocks": True, "use_traces": False},  # basic blocks
    {"use_blocks": True, "use_traces": True},   # superblock traces
)


def _run_three(text, max_instructions=1_000_000):
    """Run ``text`` under all three engines; returns [(cpu, counters)]
    (``counters`` is ``None`` when the budget tripped)."""
    outcomes = []
    for mode in _ENGINE_MODES:
        cpu, machine = _machine(text, **mode)
        try:
            counters = machine.run(max_instructions=max_instructions)
        except ExecutionLimitExceeded:
            counters = None
        outcomes.append((cpu, counters))
    return outcomes


def _assert_identical(outcomes):
    (ref_cpu, ref_counters) = outcomes[0]
    for cpu, counters in outcomes[1:]:
        assert (counters is None) == (ref_counters is None)
        if ref_counters is not None:
            assert counters.as_dict() == ref_counters.as_dict()
        assert cpu.instret == ref_cpu.instret
        assert cpu.pc == ref_cpu.pc
        assert cpu.regs.value == ref_cpu.regs.value
        assert cpu.regs.type == ref_cpu.regs.type
        assert cpu.mem.data == ref_cpu.mem.data


_HOT_LOOP = """
    addi a0, zero, 400
    addi a1, zero, 0
loop:
    add a1, a1, a0
    andi a2, a0, 1
    beq a2, zero, even
    addi a1, a1, 3
even:
    addi a0, a0, -1
    bne a0, zero, loop
    ebreak
"""


# -- formation -------------------------------------------------------------------

def test_trace_forms_on_hot_loop():
    cpu, machine = _machine(_HOT_LOOP)
    machine.run(max_instructions=100_000)
    table = trace_table(cpu.program, DEFAULT_CONFIG)
    assert table.traces >= 1
    assert table.trace_instructions > 0
    # The head's installed entry spans more than its basic block.
    head = max(range(len(table.entries)),
               key=lambda i: (table.entries[i] is not None
                              and table.entries[i][1]))
    assert table.entries[head][1] > table.blocks.block_at(head)[1]


def test_trace_tables_keyed_per_workload():
    """Trace state is per guest workload: two CPUs on one program with
    different workload tokens must not share profiles or traces."""
    program = assemble(_HOT_LOOP)
    shared = trace_table(program, DEFAULT_CONFIG)
    assert trace_table(program, DEFAULT_CONFIG) is shared
    a = trace_table(program, DEFAULT_CONFIG, workload="guest-a")
    b = trace_table(program, DEFAULT_CONFIG, workload="guest-b")
    assert a is not b and a is not shared
    assert trace_table(program, DEFAULT_CONFIG, workload="guest-a") is a
    # The expensive predecode layer underneath stays shared.
    assert a.blocks is b.blocks is shared.blocks


def test_trace_counters_identical_on_hot_loop():
    _assert_identical(_run_three(_HOT_LOOP))


# -- guard failure / deopt -------------------------------------------------------

# Phase 1 trains traces on the not-taken side of the phase branch
# (`bne a4`), which sits at the very head of the loop trace; phase 2
# flips it, so the trace's *first* guard fails on every dispatch and
# its per-dispatch execution collapses below the profit bar.  The
# `jal zero, loop` ends the entry block right before the loop (so the
# loop head — not an interior block — trains first), and the
# always-taken `beq` splits the high path into two blocks so a trace
# forms at all (a single-block loop is already covered by its block).
_PHASE_FLIP = """
    addi a0, zero, 400
    addi a3, zero, 200
    addi a1, zero, 0
    addi a2, zero, 0
    jal zero, loop
loop:
    slt a4, a0, a3
    bne a4, zero, low
    addi a1, a1, 1
    beq zero, zero, cont
    addi a1, a1, 50
cont:
    addi a0, a0, -1
    bne a0, zero, loop
    ebreak
low:
    addi a2, a2, 7
    xor a1, a1, a2
    jal zero, cont
"""


def test_guard_failure_deopt_mid_trace():
    outcomes = _run_three(_PHASE_FLIP)
    _assert_identical(outcomes)
    cpu = outcomes[2][0]
    table = trace_table(cpu.program, DEFAULT_CONFIG)
    assert table.traces >= 1  # phase 1 actually compiled a trace


def test_phase_change_adapts_with_new_traces():
    """After a phase flip the phase-1 trace's first guard fails on
    every dispatch; the runtime adapts by compiling a second trace on
    the newly hot path (the stale one keeps deopting through its side
    exit) — without perturbing a single counter."""
    # Flip after 50 of 400 iterations: plenty of phase-2 iterations
    # for the low path to reach the trace threshold.
    text = _PHASE_FLIP.replace("200", "350")
    outcomes = _run_three(text)
    _assert_identical(outcomes)
    cpu = outcomes[2][0]
    table = trace_table(cpu.program, DEFAULT_CONFIG)
    assert table.traces >= 2  # phase-1 trace plus a post-flip trace


def test_evaluator_retires_below_profit_bar():
    """The evaluator's retire path, pinned deterministically: a meter
    reading below ``bar * dispatches`` at the window boundary reverts
    the head to its basic block and schedules re-recording with
    exponential backoff."""
    cpu, machine = _machine(_HOT_LOOP)
    machine.run(max_instructions=100_000)
    table = trace_table(cpu.program, DEFAULT_CONFIG)
    head = next(i for i in range(len(table.entries))
                if table.entries[i] is not None
                and table.entries[i][1] > table.blocks.block_at(i)[1])
    # Rewind graduation and hand evaluate() a window that ran far
    # below the bar, as a phase change that keeps the trace dispatched
    # (but always side-exiting at the first guard) would produce.
    table.meta[head] = [3.5, TRACE_EVAL_WINDOW, TRACE_EVAL_WINDOW, 0]
    table.evaluate(head)
    assert table.retired == 1
    assert table.meta[head] is None
    assert table.entries[head] == table.blocks.block_at(head)
    # Exponential backoff: the head must re-earn hotness from a deficit.
    assert table.counts[head] == -TRACE_THRESHOLD


def test_healthy_trace_graduates_and_never_retires():
    """A trace that runs to completion every dispatch clears the
    profit bar at each evaluation window, graduates after
    TRACE_MATURE_WINDOWS of them (metering stops: its meta slot is
    cleared), and is never retired — the adaptive machinery must cost
    nothing on stable workloads."""
    # The interior branch is always taken, so the loop spans two
    # blocks (a single-block loop never forms a trace — the block
    # already covers it) and the trace's guard never fails.
    cpu, machine = _machine("""
        addi a0, zero, 4000
        addi a1, zero, 0
    loop:
        add a1, a1, a0
        beq zero, zero, mid
        addi a1, a1, 99
    mid:
        addi a2, a2, 1
        xor a3, a1, a2
        addi a0, a0, -1
        bne a0, zero, loop
        ebreak
    """)
    machine.run(max_instructions=100_000)
    table = trace_table(cpu.program, DEFAULT_CONFIG)
    assert table.traces >= 1
    assert table.retired == 0
    # Far past the graduation point: every installed trace has matured
    # out of metering.
    assert all(m is None for m in table.meta)


# -- budget exhaustion inside a trace -------------------------------------------

def test_execution_limit_lands_inside_trace_span():
    """The budget trips at the exact instruction even when the limit
    falls mid-trace: the dispatch loop must degrade to the plain block
    (or a single instruction) rather than overrun."""
    spin = _HOT_LOOP.replace("400", "100000")
    for limit in (777, TRACE_THRESHOLD * 7 * 3 + 5):
        cpus = []
        for mode in _ENGINE_MODES:
            cpu, machine = _machine(spin, **mode)
            with pytest.raises(ExecutionLimitExceeded):
                machine.run(max_instructions=limit)
            cpus.append(cpu)
        assert {c.instret for c in cpus} == {limit}
        assert len({c.pc for c in cpus}) == 1
        assert cpus[0].regs.value == cpus[1].regs.value \
            == cpus[2].regs.value
        # The trace engine had really installed traces by then.
        table = trace_table(cpus[2].program, DEFAULT_CONFIG)
        assert table.traces >= 1


# -- engine selection ------------------------------------------------------------

def test_telemetry_rebound_trt_falls_back_to_blocks(monkeypatch):
    """Traces inline the uninstrumented TRT probe, so a CPU whose
    ``trt.lookup`` was rebound on the instance (telemetry) must select
    the handler-calling block engine instead."""
    cpu, machine = _machine(_HOT_LOOP)
    cpu.trt.lookup = cpu.trt.lookup  # instance shadow, telemetry-style
    monkeypatch.setattr(Machine, "_run_traces", _boom)
    machine.run(max_instructions=100_000)


def test_use_traces_false_selects_blocks(monkeypatch):
    _cpu, machine = _machine(_HOT_LOOP, use_traces=False)
    monkeypatch.setattr(Machine, "_run_traces", _boom)
    machine.run(max_instructions=100_000)


def _boom(*_args, **_kwargs):
    raise AssertionError("wrong engine selected")


# -- hypothesis differential -----------------------------------------------------

_BODY_OPS = (
    "add a1, a1, a0",
    "addi a1, a1, 3",
    "sub a2, a1, a0",
    "xor a2, a2, a1",
    "sltu a3, a0, a1",
    "andi a4, a0, 3",
    "slli a5, a0, 2",
    "srli a5, a1, 1",
)

# A data-dependent diamond: alternates taken/not-taken with the loop
# counter, exercising trace guards on both sides.
_DIAMOND = """    andi a6, a0, 1
    beq a6, zero, d{n}
    addi a2, a2, 5
d{n}:"""


@st.composite
def _loop_programs(draw):
    iters = draw(st.integers(min_value=1, max_value=120))
    body = list(draw(st.lists(st.sampled_from(_BODY_OPS), min_size=1,
                              max_size=10)))
    for n in range(draw(st.integers(min_value=0, max_value=2))):
        body.insert(draw(st.integers(min_value=0, max_value=len(body))),
                    _DIAMOND.format(n=n))
    return "\n".join(
        ["    addi a0, zero, %d" % iters,
         "    addi a1, zero, 0",
         "loop:"] + ["    %s" % op.strip() for op in body] +
        ["    addi a0, a0, -1",
         "    bne a0, zero, loop",
         "    ebreak"])


@settings(max_examples=30, deadline=None)
@given(text=_loop_programs(),
       budget=st.one_of(st.none(), st.integers(min_value=50,
                                               max_value=2_000)))
def test_hypothesis_differential_three_engines(text, budget):
    _assert_identical(
        _run_three(text, max_instructions=budget or 1_000_000))
