"""The repro.api facade: dispatch, schema round-trips and the
keyword-only run_lua/run_js adapters."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro import api
from repro.api import ExecutionRequest, ExecutionResult, run
from repro.bench import cache as result_cache
from repro.bench.runner import clear_cache
from repro.engines.js.vm import run_js
from repro.engines.lua.vm import run_lua
from repro.schema import SCHEMA_VERSION, SchemaError


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    clear_cache()
    with result_cache.temporary(tmp_path):
        yield
    clear_cache()


# -- run(): the single documented entry point --------------------------------

def test_run_source():
    result = run("lua", "print(1 + 2)", config="typed")
    assert result.ok and result.op == "run"
    assert result.output == "3\n"
    assert result.exit_code == 0
    assert result.counters.instructions > 0
    assert result.wall_seconds > 0


def test_run_js_source():
    result = run("js", "print(21 * 2)", config="typed")
    assert result.ok and result.output == "42\n"


def test_run_matches_engine_adapters():
    source = "local t = {1, 2, 3}\nprint(t[1] + t[3])\n"
    facade = run("lua", source, config="typed")
    adapter = run_lua(source, config="typed")
    assert facade.output == adapter.output == "4\n"
    assert facade.counters.as_dict() == adapter.counters.as_dict()


def test_run_dispatches_benchmark_names():
    cold = run("lua", "fibo", scale=5, config="baseline")
    assert cold.op == "bench" and cold.benchmark == "fibo"
    assert cold.scale == 5 and not cold.cached
    warm = run("lua", "fibo", scale=5, config="baseline")
    assert warm.cached
    assert warm.counters.as_dict() == cold.counters.as_dict()


def test_run_rejects_unknown_engine():
    with pytest.raises(SchemaError):
        run("forth", "print(1)")


def test_facade_is_clean_under_deprecation_errors():
    """The acceptance one-liner: no DeprecationWarning on the new path."""
    pkg_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    script = ("from repro.api import run; "
              "result = run('lua', 'print(1+2)', config='typed'); "
              "assert result.output == '3\\n', result.output")
    proc = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", script],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr


# -- ExecutionRequest / ExecutionResult schema -------------------------------

def test_request_round_trip():
    request = ExecutionRequest(op="run", engine="lua",
                               source="print(1)", config="typed")
    payload = json.loads(json.dumps(request.as_dict()))
    assert payload["version"] == SCHEMA_VERSION
    assert ExecutionRequest.from_dict(payload) == request


def test_request_key_ignores_scheduling_metadata():
    base = ExecutionRequest(op="run", engine="lua", source="print(1)")
    hurried = ExecutionRequest(op="run", engine="lua", source="print(1)",
                               deadline=1.5, priority=0)
    other = ExecutionRequest(op="run", engine="lua", source="print(2)")
    assert base.key() == hurried.key()
    assert base.key() != other.key()


def test_request_rejects_version_mismatch():
    payload = ExecutionRequest(op="run", engine="lua",
                               source="print(1)").as_dict()
    payload["version"] = SCHEMA_VERSION + 1
    with pytest.raises(SchemaError):
        ExecutionRequest.from_dict(payload)


def test_request_rejects_unknown_fields():
    payload = ExecutionRequest(op="run", engine="lua",
                               source="print(1)").as_dict()
    payload["shards"] = 4
    with pytest.raises(SchemaError):
        ExecutionRequest.from_dict(payload)


@pytest.mark.parametrize("kwargs", [
    dict(op="teleport"),
    dict(op="run", engine="forth", source="x"),
    dict(op="run", engine="lua"),                       # no source
    dict(op="bench", engine="lua"),                     # no benchmark
    dict(op="run", engine="lua", source="x", config="warp"),
    dict(op="run", engine="lua", source="x", deadline=-1),
    dict(op="run", engine="lua", source="x", priority=11),
])
def test_request_validation_rejects_nonsense(kwargs):
    with pytest.raises(SchemaError):
        ExecutionRequest(**kwargs).validate()


def test_result_round_trip():
    result = run("lua", "print(7)", config="typed")
    payload = json.loads(json.dumps(result.as_dict()))
    assert payload["version"] == SCHEMA_VERSION
    back = ExecutionResult.from_dict(payload)
    assert back.ok and back.output == "7\n"
    assert back.counters.as_dict() == result.counters.as_dict()


def test_execute_payload_is_the_wire_body():
    payload = ExecutionRequest(op="run", engine="lua",
                               source="print(5)", config="typed").as_dict()
    out = api.execute_payload(payload)
    assert out["version"] == SCHEMA_VERSION
    assert out["ok"] and out["output"] == "5\n"
    assert out["counters"]["instructions"] > 0


# -- keyword-only engine adapters --------------------------------------------
#
# The PR-5 warn-once positional/renamed-keyword shims are gone: legacy
# call styles are now hard TypeErrors (see docs/API.md).

def test_positional_config_rejected():
    with pytest.raises(TypeError):
        run_lua("print(1)", "typed")


def test_renamed_keywords_rejected():
    with pytest.raises(TypeError):
        run_lua("print(1 + 1)", mode="typed")
    with pytest.raises(TypeError):
        run_lua("print(1 + 1)", limit=20_000_000)
    with pytest.raises(TypeError):
        run_js("print(1)", machine=None)


def test_js_adapter_rejects_positional_like_lua():
    with pytest.raises(TypeError):
        run_js("print(3)", "typed")


def test_adapter_rejects_unknown_keyword():
    with pytest.raises(TypeError):
        run_lua("print(1)", turbo=True)


def test_keyword_only_call_still_works():
    result = run_lua("print(1 + 1)", config="typed",
                     max_instructions=20_000_000)
    assert result.output == "2\n"
