"""Lexer, parser and compiler tests for the MiniLua front end."""

import pytest

from repro.engines.lua import last as ast
from repro.engines.lua.compiler import CompileError, compile_source
from repro.engines.lua.lexer import LuaSyntaxError, tokenize
from repro.engines.lua.lparser import parse
from repro.engines.lua.opcodes import Op, decode


# -- lexer --------------------------------------------------------------------

def test_tokenize_numbers():
    kinds = [(t.kind, t.value) for t in tokenize("1 2.5 0x10 1e3")[:-1]]
    assert kinds == [("number", 1), ("number", 2.5), ("number", 16),
                     ("number", 1000.0)]
    assert isinstance(tokenize("3")[0].value, int)
    assert isinstance(tokenize("3.0")[0].value, float)


def test_tokenize_strings_and_escapes():
    tokens = tokenize(r'"a\nb" ' + r"'c\td'")
    assert tokens[0].value == "a\nb"
    assert tokens[1].value == "c\td"


def test_tokenize_comments():
    tokens = tokenize("a -- comment\nb --[[ long\ncomment ]] c")
    names = [t.value for t in tokens if t.kind == "name"]
    assert names == ["a", "b", "c"]


def test_tokenize_operators_longest_match():
    values = [t.value for t in tokenize("a==b ~= c <= d .. e // f")[:-1]]
    assert "==" in values and "~=" in values and "<=" in values
    assert ".." in values and "//" in values


def test_tokenize_keywords_vs_names():
    tokens = tokenize("if iffy then end")
    assert tokens[0].kind == "keyword"
    assert tokens[1].kind == "name"


def test_tokenize_error():
    with pytest.raises(LuaSyntaxError):
        tokenize('"unterminated')


# -- parser --------------------------------------------------------------------

def test_parse_precedence():
    block = parse("x = 1 + 2 * 3")
    value = block.statements[0].value
    assert value.op == "+"
    assert value.right.op == "*"


def test_parse_right_assoc_pow():
    value = parse("x = 2 ^ 3 ^ 2").statements[0].value
    assert value.op == "^"
    assert value.right.op == "^"  # 2 ^ (3 ^ 2)


def test_parse_comparison_and_logic():
    value = parse("x = a < b and c or d").statements[0].value
    assert value.op == "or"
    assert value.left.op == "and"


def test_parse_field_sugar():
    value = parse("x = t.field").statements[0].value
    assert isinstance(value, ast.Index)
    assert isinstance(value.key, ast.StringLit)
    assert value.key.value == "field"


def test_parse_calls_and_chains():
    stat = parse("io.write('x')").statements[0]
    assert isinstance(stat, ast.CallStat)
    assert isinstance(stat.call.func, ast.Index)


def test_parse_numeric_for():
    stat = parse("for i = 1, 10, 2 do x = i end").statements[0]
    assert isinstance(stat, ast.NumericFor)
    assert stat.step is not None


def test_parse_if_elseif_else():
    stat = parse("""
    if a then x = 1
    elseif b then x = 2
    else x = 3 end
    """).statements[0]
    assert len(stat.clauses) == 2
    assert stat.orelse is not None


def test_parse_function_decls():
    block = parse("""
    function f(a, b) return a end
    local function g() end
    """)
    assert not block.statements[0].is_local
    assert block.statements[1].is_local


def test_parse_table_ctor():
    value = parse("t = {1, 2, x = 3}").statements[0].value
    assert len(value.items) == 2
    assert value.fields == [("x", ast.NumberLit(3))]


def test_parse_error_on_bad_assignment():
    with pytest.raises(LuaSyntaxError):
        parse("1 = 2")


def test_parse_error_on_unclosed_block():
    with pytest.raises(LuaSyntaxError):
        parse("while true do x = 1")


# -- compiler --------------------------------------------------------------------

def _ops(proto):
    return [decode(word)[0] for word in proto.code]


def test_compile_arithmetic_uses_add():
    chunk = compile_source("x = a + b")
    assert Op.ADD in _ops(chunk.main)


def test_compile_constants_deduplicated():
    chunk = compile_source("x = 1 + 1 + 1")
    numbers = [c for c in chunk.main.constants if c == 1]
    assert len(numbers) == 1


def test_compile_int_float_constants_distinct():
    chunk = compile_source("x = 1 + 1.0")
    values = [(type(c).__name__, c) for c in chunk.main.constants]
    assert ("int", 1) in values
    assert ("float", 1.0) in values


def test_compile_rk_operands():
    chunk = compile_source("x = a + 1")
    add = next(word for word in chunk.main.code
               if decode(word)[0] == Op.ADD)
    _, _, b, c = decode(add)
    assert c & 0x80  # constant operand flagged


def test_compile_numeric_for_shape():
    chunk = compile_source("for i = 1, 10 do x = i end")
    ops = _ops(chunk.main)
    assert Op.FORPREP in ops
    assert Op.FORLOOP in ops
    assert ops.index(Op.FORPREP) < ops.index(Op.FORLOOP)


def test_compile_call_return():
    chunk = compile_source("""
    function f(a) return a end
    x = f(1)
    """)
    assert len(chunk.protos) == 2
    assert Op.CALL in _ops(chunk.main)
    assert Op.RETURN in _ops(chunk.protos[1])


def test_compile_globals_assigned_slots():
    chunk = compile_source("foo = 1 bar = foo")
    assert "foo" in chunk.globals
    assert "bar" in chunk.globals


def test_compile_break_outside_loop_fails():
    with pytest.raises(CompileError):
        compile_source("break")


def test_compile_every_proto_ends_with_return():
    chunk = compile_source("function f() x = 1 end y = 2")
    for proto in chunk.protos:
        assert decode(proto.code[-1])[0] in (Op.RETURN, Op.RETURN0)


def test_compile_comparison_swaps_for_gt():
    chunk = compile_source("x = a > b")
    ops = _ops(chunk.main)
    assert Op.LT in ops  # a > b compiles to b < a


def test_compile_not_equal_negates():
    ops = _ops(compile_source("x = a ~= b").main)
    assert Op.EQ in ops
    assert Op.NOT in ops
