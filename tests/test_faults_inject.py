"""FaultSession mechanics on small hand-assembled programs."""

import pytest

from repro.faults.inject import FaultSession, TagGeometry, tag_geometry
from repro.faults.plan import FaultSpec
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory


def make_cpu(text):
    return Cpu(assemble(text), Memory(size=1 << 16))


COUNT_PROGRAM = """
    li a0, 0
    addi a0, a0, 1
    addi a0, a0, 1
    addi a0, a0, 1
    addi a0, a0, 1
    ebreak
"""


def test_fault_fires_before_exact_instruction():
    cpu = make_cpu(COUNT_PROGRAM)
    # a0 is x10; flip bit 6 (64) just before dynamic instruction 3
    # executes: two increments land before the flip, two after.
    spec = FaultSpec(target="reg_value", index=3, bits=(6,), reg=10)
    session = FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert cpu.regs.value[10] == 2 + 64 + 2
    assert session.applied == [{"target": "reg_value", "kind": "",
                                "index": 3, "bits": [6], "reg": 10,
                                "slot": 0}]


def test_hook_forces_interpreted_loop():
    from repro.uarch.pipeline import Machine

    cpu = make_cpu(COUNT_PROGRAM)
    FaultSession(cpu, []).attach()
    assert "step" in cpu.__dict__  # what Machine.run checks to deopt
    machine = Machine(cpu, use_blocks=True)
    machine.run()
    assert cpu.regs.value[10] == 4


def test_hook_forces_trace_engine_deopt():
    """The superblock trace engine (the default) must also deopt to
    the per-instruction loop when a fault hook rebinds ``step`` —
    otherwise injection indices would be inexact — with counters
    bit-identical to an explicit interpreted run."""
    from repro.uarch.pipeline import Machine

    reference = make_cpu(COUNT_PROGRAM)
    ref_counters = Machine(reference, use_blocks=False).run()

    cpu = make_cpu(COUNT_PROGRAM)
    FaultSession(cpu, []).attach()
    counters = Machine(cpu, use_blocks=True, use_traces=True).run()
    assert cpu.regs.value[10] == reference.regs.value[10] == 4
    assert counters.as_dict() == ref_counters.as_dict()


def test_detach_restores_plain_step():
    cpu = make_cpu(COUNT_PROGRAM)
    session = FaultSession(cpu, []).attach()
    session.detach()
    assert "step" not in cpu.__dict__


def test_x0_fault_is_absorbed():
    cpu = make_cpu(COUNT_PROGRAM)
    spec = FaultSpec(target="reg_value", index=2, bits=(0,), reg=0)
    session = FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert session.applied == []
    assert session.absorbed == 1
    assert cpu.regs.value[10] == 4  # run unaffected


def test_trt_fault_on_empty_table_is_absorbed():
    cpu = make_cpu(COUNT_PROGRAM)
    spec = FaultSpec(target="trt", index=1, bits=(0,), slot=5, kind="out")
    session = FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert session.applied == []
    assert session.absorbed == 1


def test_trt_out_fault_changes_rule():
    from repro.isa.extension import TypeRule
    from repro.sim.trt import TRT_OPCODES

    cpu = make_cpu(COUNT_PROGRAM)
    cpu.trt.load_rules([TypeRule("xadd", 2, 2, 2)])
    spec = FaultSpec(target="trt", index=2, bits=(0,), slot=0, kind="out")
    FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert cpu.trt.lookup(TRT_OPCODES["xadd"], 2, 2) == 3  # 2 ^ 1


def test_extractor_fault_reapplies_width_clamp():
    cpu = make_cpu(COUNT_PROGRAM)
    spec = FaultSpec(target="extractor", index=2, bits=(1,), kind="shift")
    FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert cpu.codec.shift == 2
    assert cpu.codec.shift <= 0x3F


def test_reg_tag_fbit_flip():
    cpu = make_cpu(COUNT_PROGRAM)
    # a1 (x11) is never written by the program, so the flipped F/I bit
    # survives to the end of the run.
    spec = FaultSpec(target="reg_tag", index=2, bits=(), reg=11,
                     kind="fbit")
    FaultSession(cpu, [spec]).attach()
    cpu.run(max_instructions=100)
    assert cpu.regs.fbit[11] == 1


def test_mem_tag_defers_until_a_site_exists():
    cpu = make_cpu("""
        li a0, 0
        addi a0, a0, 1
        li a1, 0x8000
        sd a0, 0(a1)
        addi a0, a0, 1
        ebreak
    """)
    geometry = TagGeometry(displacement=8, shift=0, width=8,
                           slot_base=0x8000, slot_size=16)
    # Scheduled for index 1, but no value-region access has happened
    # yet; it must fire after the first store (instruction 4).
    spec = FaultSpec(target="mem_tag", index=1, bits=(1,))
    session = FaultSession(cpu, [spec], geometry=geometry).attach()
    cpu.run(max_instructions=100)
    assert len(session.applied) == 1
    assert session.applied[0]["index"] >= 4
    assert cpu.mem.load(0x8008, 1) == 0b10  # tag byte of the slot


def test_mem_tag_ignores_out_of_region_accesses():
    cpu = make_cpu("""
        li a1, 0x100
        sd a1, 0(a1)
        addi a0, a0, 1
        ebreak
    """)
    geometry = TagGeometry(displacement=8, shift=0, width=8,
                           slot_base=0x8000, slot_size=16)
    spec = FaultSpec(target="mem_tag", index=1, bits=(0,))
    session = FaultSession(cpu, [spec], geometry=geometry).attach()
    cpu.run(max_instructions=100)
    assert session.applied == []  # never found a tag-plane site


@pytest.mark.parametrize("engine", ["lua", "js"])
def test_tag_geometry_matches_layout(engine):
    geometry = tag_geometry(engine)
    if engine == "lua":
        assert geometry.displacement == 8  # tag byte in the next dword
        assert geometry.slot_size == 16
    else:
        assert geometry.displacement == 0  # NaN-boxed: tag in-place
        assert geometry.slot_size == 8
        assert geometry.shift == 47
    assert geometry.width >= 1
    # The tag address of a slot-interior access is the slot's tag word.
    base = geometry.slot_base
    assert geometry.tag_addr_for(base) == base + geometry.displacement
    assert geometry.tag_addr_for(base + geometry.slot_size - 1) \
        == base + geometry.displacement
    assert geometry.tag_addr_for(base - 1) is None


def test_tag_geometry_unknown_engine():
    with pytest.raises(ValueError):
        tag_geometry("forth")
