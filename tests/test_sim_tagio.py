"""Tag extraction/insertion tests for both paper layouts (Table 4)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.isa.extension import LUA_SPR, SPIDERMONKEY_SPR
from repro.sim import nanbox
from repro.sim.tagio import TagCodec


def lua_codec():
    codec = TagCodec(fp_tags={3})
    codec.set_offset(LUA_SPR.offset)
    codec.set_shift(LUA_SPR.shift)
    codec.set_mask(LUA_SPR.mask)
    return codec


def js_codec():
    codec = TagCodec(double_tag=0, int_tag=1)
    codec.set_offset(SPIDERMONKEY_SPR.offset)
    codec.set_shift(SPIDERMONKEY_SPR.shift)
    codec.set_mask(SPIDERMONKEY_SPR.mask)
    return codec


# -- Lua layout: value dword, tag byte in the next dword ---------------------

def test_lua_displacement_is_next_dword():
    codec = lua_codec()
    assert not codec.nan_detect
    assert codec.tag_displacement == 8


def test_lua_extract():
    codec = lua_codec()
    value, tag, fbit = codec.extract(42, 19)  # int tag 19 in the tag byte
    assert (value, tag, fbit) == (42, 19, 0)
    value, tag, fbit = codec.extract(7, 3)  # float tag 3
    assert fbit == 1


def test_lua_insert_preserves_other_tag_bytes():
    codec = lua_codec()
    old = 0xAABBCCDD_11223344
    value_dword, tag_dword = codec.insert(99, 19, 0, old)
    assert value_dword == 99
    assert tag_dword == (old & ~0xFF) | 19


@given(value=st.integers(0, (1 << 64) - 1), tag=st.integers(0, 255),
       old=st.integers(0, (1 << 64) - 1))
def test_lua_roundtrip(value, tag, old):
    codec = lua_codec()
    value_dword, tag_dword = codec.insert(value, tag, 0, old)
    back_value, back_tag, _ = codec.extract(value_dword, tag_dword)
    assert back_value == value
    assert back_tag == tag


# -- SpiderMonkey layout: NaN boxing ------------------------------------------

def test_js_nan_detect_enabled():
    codec = js_codec()
    assert codec.nan_detect
    assert codec.tag_displacement == 0


def test_js_double_passthrough():
    codec = js_codec()
    bits = nanbox.double_to_bits(3.25)
    value, tag, fbit = codec.extract(bits, bits)
    assert (value, tag, fbit) == (bits, 0, 1)


def test_js_boxed_int_extraction_sign_extends():
    codec = js_codec()
    boxed = nanbox.box_int32(1, -5)
    value, tag, fbit = codec.extract(boxed, boxed)
    assert tag == 1
    assert fbit == 0
    assert value == (-5) & ((1 << 64) - 1)


def test_js_insert_reconstructs_nan_box():
    codec = js_codec()
    value_dword, tag_dword = codec.insert(41, 1, 0, 0)
    assert tag_dword is None  # single-dword store
    assert nanbox.is_boxed(value_dword)
    assert nanbox.boxed_tag(value_dword) == 1
    assert nanbox.unbox_int32(value_dword) == 41


def test_js_insert_double_is_raw_bits():
    codec = js_codec()
    bits = nanbox.double_to_bits(2.5)
    value_dword, tag_dword = codec.insert(bits, 0, 1, 0)
    assert tag_dword is None
    assert value_dword == bits


@given(value=st.integers(-(1 << 31), (1 << 31) - 1))
def test_js_int_roundtrip(value):
    codec = js_codec()
    boxed = nanbox.box_int32(1, value)
    reg_value, tag, fbit = codec.extract(boxed, boxed)
    stored, _ = codec.insert(reg_value, tag, fbit, 0)
    assert nanbox.unbox_int32(stored) == value
    assert nanbox.boxed_tag(stored) == 1


@given(value=st.floats(allow_nan=False))
def test_js_double_roundtrip(value):
    codec = js_codec()
    bits = nanbox.double_to_bits(value)
    reg_value, tag, fbit = codec.extract(bits, bits)
    stored, _ = codec.insert(reg_value, tag, fbit, 0)
    assert nanbox.bits_to_double(stored) == value


@given(tag=st.integers(0, 15), payload=st.integers(0, (1 << 47) - 1))
def test_nanbox_pack_unpack(tag, payload):
    boxed = nanbox.box(tag, payload)
    assert nanbox.is_boxed(boxed)
    assert nanbox.boxed_tag(boxed) == tag
    assert nanbox.boxed_payload(boxed) == payload


def test_real_doubles_are_never_boxed():
    for value in (0.0, -0.0, 1.0, -1.5, 1e308, -1e308, 5e-324):
        assert not nanbox.is_boxed(nanbox.double_to_bits(value))
