"""Uniform CLI flag spellings: --jobs/--cache-dir/--smoke/--json on
every subcommand, with the historical aliases hidden but accepted."""

import json

import pytest

from repro.bench.runner import clear_cache
from repro.cli import build_parser, main
from repro.schema import SCHEMA_VERSION


@pytest.fixture
def parser():
    return build_parser()


@pytest.mark.parametrize("argv,attr,value", [
    (["sweep", "--jobs", "3"], "jobs", 3),
    (["sweep", "--workers", "3"], "jobs", 3),           # hidden alias
    (["sweep", "--cache-dir", "/tmp/c"], "cache_dir", "/tmp/c"),
    (["sweep", "--cache", "/tmp/c"], "cache_dir", "/tmp/c"),
    (["sweep", "--json", "/tmp/o.json"], "json", "/tmp/o.json"),
    (["sweep", "--json-out", "/tmp/o.json"], "json", "/tmp/o.json"),
    (["faults", "--workers", "2"], "jobs", 2),
    (["run", "fibo", "--smoke"], "smoke", True),
    (["run", "fibo", "--jobs", "1"], "jobs", 1),
    (["run", "fibo", "--json-out", "/tmp/r.json"], "json", "/tmp/r.json"),
    (["bench", "check", "--smoke"], "smoke", True),
    (["bench", "check", "--workers", "4"], "jobs", 4),
    (["serve", "--jobs", "0"], "jobs", 0),
    (["serve", "--workers", "0"], "jobs", 0),
    (["submit", "fibo", "--smoke"], "smoke", True),
    (["profile", "fibo", "--smoke"], "smoke", True),
    (["trace", "fibo", "--json", "/tmp/t.json"], "json", "/tmp/t.json"),
    (["tables", "--json", "/tmp/t.json"], "json", "/tmp/t.json"),
])
def test_canonical_and_alias_spellings(parser, argv, attr, value):
    args = parser.parse_args(argv)
    assert getattr(args, attr) == value


@pytest.mark.parametrize("subcommand", ["sweep", "faults", "serve"])
def test_aliases_hidden_from_help(parser, subcommand, capsys):
    with pytest.raises(SystemExit):
        parser.parse_args([subcommand, "--help"])
    out = capsys.readouterr().out
    assert "--jobs" in out and "--cache-dir" in out
    assert "--workers" not in out
    assert "--cache " not in out  # --cache-dir itself must stay visible
    assert "--json-out" not in out


def test_serve_and_submit_registered(parser, capsys):
    with pytest.raises(SystemExit):
        parser.parse_args(["--help"])
    out = capsys.readouterr().out
    assert "serve" in out and "submit" in out


def test_run_smoke_json_end_to_end(tmp_path):
    clear_cache()
    out_path = tmp_path / "run.json"
    code = main(["run", "fibo", "--smoke", "--config", "typed",
                 "--no-disk-cache", "--json", str(out_path)])
    clear_cache()
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["version"] == SCHEMA_VERSION
    assert payload["benchmark"] == "fibo" and payload["scale"] == 2
    assert payload["counters"]["instructions"] > 0


def test_tables_json(tmp_path):
    out_path = tmp_path / "tables.json"
    assert main(["tables", "--json", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert set(payload) >= {"table1", "table6", "table7", "table8"}


def test_bench_check_smoke_validates_committed_baseline():
    assert main(["bench", "check", "--smoke"]) == 0


def test_submit_without_target_is_usage_error(capsys):
    assert main(["submit"]) == 2
    assert "required" in capsys.readouterr().err


def test_submit_without_daemon_fails_cleanly(tmp_path, capsys):
    code = main(["submit", "fibo",
                 "--socket", str(tmp_path / "nope.sock")])
    assert code == 1
    assert "daemon" in capsys.readouterr().err
