"""Shard supervision: dead-shard detection, respawn with exponential
backoff, the crash-loop circuit breaker, probe-confirmed recovery and
hold/release — all deterministic against a fake manager with an
injected clock — plus the real ``ShardManager`` respawn/kill paths
against live shard subprocesses."""

import os
import signal
import time

import pytest

from repro.serve.supervisor import ShardSupervisor


class FakeProc:
    """A subprocess stand-in with a controllable liveness."""

    def __init__(self, alive=True, returncode=-9):
        self.alive = alive
        self.returncode = None if alive else returncode

    def poll(self):
        return self.returncode

    def die(self, returncode=-9):
        self.alive = False
        self.returncode = returncode


class FakeSpec:
    """Shard address whose probe outcome the test scripts."""

    def __init__(self):
        self.shard_id = "unix:/fake.sock"
        self.probe_ok = True

    def client(self, timeout=None):
        spec = self

        class _Client:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def status(self):
                if not spec.probe_ok:
                    raise ConnectionError("not up yet")
                return {"role": "shard"}

        return _Client()


class FakeManager:
    """Duck-typed :class:`ShardManager`: procs, specs, respawn()."""

    def __init__(self, count=1, respawn_error=None):
        self.procs = [FakeProc() for _ in range(count)]
        self.specs = [FakeSpec() for _ in range(count)]
        self.respawn_calls = []
        self.respawn_error = respawn_error

    def respawn(self, index):
        self.respawn_calls.append(index)
        if self.respawn_error is not None:
            raise self.respawn_error
        self.procs[index] = FakeProc(alive=True)
        return self.specs[index]


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_supervisor(manager, clock, **kwargs):
    kwargs.setdefault("backoff", 0.25)
    kwargs.setdefault("max_backoff", 8.0)
    kwargs.setdefault("breaker_threshold", 3)
    kwargs.setdefault("breaker_window", 30.0)
    kwargs.setdefault("breaker_cooldown", 10.0)
    # Never started: tests drive poll_once() deterministically.
    return ShardSupervisor(manager, clock=clock, **kwargs)


def test_dead_shard_is_respawned_and_probe_confirms_recovery():
    manager = FakeManager()
    clock = Clock()
    supervisor = make_supervisor(manager, clock)

    supervisor.poll_once()          # everyone alive: nothing happens
    assert manager.respawn_calls == []

    manager.procs[0].die(returncode=-signal.SIGKILL)
    supervisor.poll_once()
    assert manager.respawn_calls == [0]
    watch = supervisor.watches[0]
    assert watch.respawns == 1 and watch.awaiting_probe

    # Probe fails: still awaiting, failure state untouched.
    manager.specs[0].probe_ok = False
    supervisor.poll_once()
    assert watch.awaiting_probe

    # Probe answers: recovered, backoff state reset.
    manager.specs[0].probe_ok = True
    supervisor.poll_once()
    assert not watch.awaiting_probe
    assert watch.consecutive_failures == 0
    kinds = [event[1] for event in supervisor.events]
    assert kinds == ["died", "respawned", "recovered"]


def test_failed_respawns_back_off_exponentially():
    manager = FakeManager(respawn_error=RuntimeError("no exec"))
    clock = Clock()
    supervisor = make_supervisor(manager, clock)
    manager.procs[0].die()
    watch = supervisor.watches[0]

    delays = []
    for _ in range(5):
        clock.now = watch.next_attempt_at  # jump past the backoff
        before = clock.now
        supervisor.poll_once()
        delays.append(watch.next_attempt_at - before)
    # First attempt is immediate; each failure doubles the delay.
    assert delays == [0.25, 0.5, 1.0, 2.0, 4.0]
    assert watch.consecutive_failures == 5
    # ... and the delay is capped at max_backoff.
    for _ in range(4):
        clock.now = watch.next_attempt_at
        before = clock.now
        supervisor.poll_once()
    assert watch.next_attempt_at - before == 8.0


def test_crash_loop_opens_the_breaker_then_half_opens():
    manager = FakeManager()
    clock = Clock()
    supervisor = make_supervisor(manager, clock, breaker_threshold=3)
    watch = supervisor.watches[0]

    # Each respawn succeeds but the fresh process dies immediately.
    while watch.breaker_open_until is None:
        manager.procs[0].die()
        clock.now = max(clock.now + 0.01, watch.next_attempt_at)
        supervisor.poll_once()
        assert clock.now < 20.0, "breaker never opened"
    trips_respawns = len(manager.respawn_calls)
    assert watch.breaker_trips == 1
    assert len(watch.deaths) > 3

    # While open: deaths are ignored, nothing is respawned.
    clock.now += 1.0
    supervisor.poll_once()
    assert len(manager.respawn_calls) == trips_respawns

    # Past the cooldown: one half-open attempt goes through.
    clock.now = watch.breaker_open_until + 0.1
    supervisor.poll_once()
    assert watch.breaker_open_until is None
    assert len(manager.respawn_calls) == trips_respawns + 1


def test_hold_suppresses_respawn_until_release():
    manager = FakeManager()
    clock = Clock()
    supervisor = make_supervisor(manager, clock)
    supervisor.hold(0)
    manager.procs[0].die()
    supervisor.poll_once()
    assert manager.respawn_calls == []
    supervisor.release(0)
    supervisor.poll_once()
    assert manager.respawn_calls == [0]


def test_stats_shape():
    manager = FakeManager(count=2)
    clock = Clock()
    supervisor = make_supervisor(manager, clock)
    manager.procs[1].die()
    supervisor.poll_once()
    stats = supervisor.stats()
    assert stats["respawns"] == 1
    assert stats["shards"]["1"]["respawns"] == 1
    assert stats["shards"]["0"]["respawns"] == 0
    assert any(event[1] == "respawned" for event in stats["events"])


# -- against real shard subprocesses -----------------------------------------

@pytest.fixture
def manager(tmp_path):
    from repro.serve.router import ShardManager
    instance = ShardManager(1, cache_dir=str(tmp_path / "cache"),
                            log_dir=str(tmp_path))
    instance.start()
    yield instance
    instance.stop()


def test_kill_closes_the_shard_log_handle(manager):
    # Regression: kill() used to leak the shard's log file handle.
    handle = manager._logs[0]
    assert handle is not None and not handle.closed
    manager.kill(0)
    assert handle.closed


def test_respawn_rebinds_the_original_socket(manager):
    spec = manager.specs[0]
    pid = manager.procs[0].pid
    manager.kill(0)
    assert not os.path.exists(spec.socket_path)
    respawned = manager.respawn(0)
    assert respawned is spec                # same ring identity
    assert os.path.exists(spec.socket_path)
    assert manager.procs[0].pid != pid
    with spec.client(timeout=30.0) as client:
        stats = client.status()
    assert stats["role"] == "shard" and stats["pid"] \
        == manager.procs[0].pid


def test_respawn_refuses_a_live_shard(manager):
    with pytest.raises(RuntimeError, match="still running"):
        manager.respawn(0)


def test_supervisor_heals_a_sigkilled_shard(manager):
    supervisor = ShardSupervisor(manager, poll_interval=0.05,
                                 backoff=0.1, probe_timeout=2.0).start()
    try:
        victim = manager.procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait()
        deadline = time.monotonic() + 30
        while True:
            watch = supervisor.watches[0]
            if watch.respawns >= 1 and not watch.awaiting_probe:
                break
            assert time.monotonic() < deadline, "never healed"
            time.sleep(0.05)
        with manager.specs[0].client(timeout=30.0) as client:
            assert client.status()["role"] == "shard"
        assert supervisor.stats()["respawns"] >= 1
    finally:
        supervisor.stop()
