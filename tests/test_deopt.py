"""Section 5 "Deoptimizing the fast path": the thdl path selector."""

import pytest

from repro.engines.lua import vm as lua_vm
from repro.isa.assembler import assemble
from repro.isa.extension import arithmetic_rules
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec
from repro.uarch.pipeline import Machine

# One ADD site fed mixed (int, float) operands: every execution
# mispredicts, the worst case the path selector exists for.
POLYMORPHIC_LUA = """
local t = {}
for i = 1, 100 do
  if i % 2 == 0 then t[i] = i else t[i] = i + 0.5 end
end
local s = 0
for i = 1, 99 do
  s = s + (t[i] + t[i + 1])
end
print(s)
"""


def run_typed(deopt_threshold=None):
    cpu, runtime, _program = lua_vm.prepare(POLYMORPHIC_LUA,
                                            config="typed")
    cpu.deopt_threshold = deopt_threshold
    machine = Machine(cpu)
    counters = machine.run(max_instructions=20_000_000)
    return "".join(runtime.output), counters, cpu


def test_deopt_disabled_by_default():
    output, counters, cpu = run_typed(None)
    assert cpu.deopt_redirects == 0
    assert counters.type_misses > 50  # the site mispredicts constantly


def test_deopt_engages_on_hot_mispredicting_site():
    baseline_output, baseline_counters, _ = run_typed(None)
    output, counters, cpu = run_typed(deopt_threshold=0.5)
    assert output == baseline_output  # semantics unchanged
    assert cpu.deopt_redirects > 0
    # Redirecting at thdl skips the doomed fast-path attempt.
    assert counters.type_misses < baseline_counters.type_misses


def test_deopt_leaves_monomorphic_sites_alone():
    source = """
    local s = 0
    for i = 1, 200 do s = s + i end
    print(s)
    """
    cpu, runtime, _ = lua_vm.prepare(source, config="typed")
    cpu.deopt_threshold = 0.5
    Machine(cpu).run()
    assert cpu.deopt_redirects == 0
    assert "".join(runtime.output) == "20100\n"


def test_deopt_counters_decay_allows_reoptimisation():
    """A site that stops mispredicting must be able to return to the
    fast path (the decay halves both counters every window)."""
    text = """
        li a0, 0x1000
        li a1, 0x1010
        li a2, 0x1020
        li t3, 400
    loop:
        tld t0, 0(a0)
        tld t1, 0(a1)
        thdl slow
        xadd t2, t0, t1
    back:
        addi t3, t3, -1
        bnez t3, loop
        ebreak
    slow:
        j back
    """
    program = assemble(text)
    codec = TagCodec(fp_tags={3})
    codec.set_offset(0b001)
    memory = Memory(size=1 << 16)
    memory.store_u64(0x1000, 1)
    memory.store_u64(0x1008, 19)
    memory.store_u64(0x1010, 2)
    # Phase 1: float tag on the second operand -> (int,float) misses.
    memory.store_u64(0x1018, 3)
    cpu = Cpu(program, memory, tag_codec=codec, deopt_threshold=0.5,
              deopt_window=16)
    cpu.trt.load_rules(arithmetic_rules(19, 3))

    for _ in range(6000):
        cpu.step()
        if cpu.halted:
            break
        if cpu.instret == 2000:
            # Phase 2: operands become (int, int) -> the site is good
            # again, and decayed counters let it re-optimise.
            memory.store_u64(0x1018, 19)
    assert cpu.deopt_redirects > 0
    assert cpu.trt.hits > 0  # fast path resumed after the phase change


def test_deopt_threshold_zero_is_aggressive():
    _, _, lenient = run_typed(deopt_threshold=0.9)
    _, _, aggressive = run_typed(deopt_threshold=0.0)
    assert aggressive.deopt_redirects >= lenient.deopt_redirects


@pytest.mark.parametrize("threshold", [0.25, 0.5, 0.75])
def test_deopt_output_invariant(threshold):
    baseline_output, _, _ = run_typed(None)
    output, _, _ = run_typed(threshold)
    assert output == baseline_output
