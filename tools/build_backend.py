#!/usr/bin/env python3
"""Ahead-of-time build of the generated block/trace units.

Captures the unit set by running a small calibration matrix with the
block and trace engines enabled (every compiled unit's source is
content-addressed and deterministic per ``(interpreter, machine
config)``), then builds the fastest backend the toolchain supports:

1. **cython** — compile a module of the captured units to a native
   extension (needs Cython + a C compiler);
2. **mypyc** — same idea via mypyc (needs mypy);
3. **marshal** — always available: pre-compile each unit once and
   marshal the code object, so a later process pays ``marshal.loads``
   instead of CPython ``compile``.

The build lands in ``build/block_backend/`` (see
``repro.sim.backend.DEFAULT_BUILD_DIR``) and is activated with
``REPRO_BLOCK_BACKEND=auto`` (or a path).  Building is always
optional: when no backend can be built — or none is activated — every
code path falls back to pure-Python ``compile``+``exec`` with
bit-identical counters.

Usage::

    PYTHONPATH=src python tools/build_backend.py [--out DIR]
        [--backend auto|cython|mypyc|marshal] [--configs a,b,...]
"""

import argparse
import importlib.util
import json
import marshal
import os
import re
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import runner  # noqa: E402
from repro.engines import all_configs  # noqa: E402
from repro.sim import backend  # noqa: E402

#: Calibration cells per (engine, config): enough to drive every hot
#: handler through block *and* trace compilation without a full sweep.
CAPTURE_BENCHMARKS = (("fibo", 12), ("n-sieve", 400))


def capture_units(configs):
    """Run the calibration matrix with unit recording on; returns
    ``{key: (source, filename)}`` of every unit compiled."""
    units = {}
    backend.record_units(units)
    try:
        for engine in runner.ENGINES:
            for config in configs:
                for benchmark, scale in CAPTURE_BENCHMARKS:
                    runner.run_benchmark(
                        engine, benchmark, config, scale=scale,
                        use_cache=False, attribute=False,
                        use_blocks=True, use_traces=True)
    finally:
        backend.record_units(None)
    return units


def build_marshal(units, out):
    """Marshal each unit's pre-compiled code object into ``out``."""
    index = {}
    for key, (source, filename) in units.items():
        code = compile(source, filename, "exec")
        name = "%s.bin" % key
        with open(os.path.join(out, name), "wb") as handle:
            handle.write(marshal.dumps(code))
        index[key] = name
    return "marshal", index, {}


def _units_module_source(units):
    """One module holding every captured unit, renamed ``u_<key>``.

    ``BINDINGS = globals()`` lets the runtime adapter
    (:class:`repro.sim.backend._NativeUnits`) inject the emitter's
    namespace (``_h``, ``_i``, the struct packers...) as module
    globals before the first call.
    """
    lines = ["BINDINGS = globals()", ""]
    for key, (source, _filename) in sorted(units.items()):
        lines.append(re.sub(r"^def _block\(", "def u_%s(" % key, source,
                            count=1))
        lines.append("")
    return "\n".join(lines)


def build_cython(units, out):
    """Compile the units module with Cython; raises if unavailable."""
    from Cython.Build import cythonize  # noqa: F401 - availability probe
    from setuptools import Extension
    from setuptools.dist import Distribution

    module_path = os.path.join(out, "repro_block_units.pyx")
    with open(module_path, "w") as handle:
        handle.write(_units_module_source(units))
    extensions = cythonize(
        [Extension("repro_block_units", [module_path])],
        quiet=True, language_level=3)
    dist = Distribution({"ext_modules": extensions})
    cmd = dist.get_command_obj("build_ext")
    cmd.build_lib = out
    cmd.build_temp = os.path.join(out, "tmp")
    dist.run_command("build_ext")
    built = next(name for name in os.listdir(out)
                 if name.startswith("repro_block_units")
                 and name.endswith((".so", ".pyd")))
    index = {key: "u_%s" % key for key in units}
    return "cython", index, {"module": built}


def build_mypyc(units, out):
    """Compile the units module with mypyc; raises if unavailable."""
    from mypyc.build import mypycify
    from setuptools.dist import Distribution

    module_path = os.path.join(out, "repro_block_units.py")
    with open(module_path, "w") as handle:
        handle.write(_units_module_source(units))
    dist = Distribution({"ext_modules": mypycify([module_path])})
    cmd = dist.get_command_obj("build_ext")
    cmd.build_lib = out
    cmd.build_temp = os.path.join(out, "tmp")
    dist.run_command("build_ext")
    built = next(name for name in os.listdir(out)
                 if name.startswith("repro_block_units")
                 and name.endswith((".so", ".pyd")))
    index = {key: "u_%s" % key for key in units}
    return "mypyc", index, {"module": built}


_BUILDERS = {"cython": build_cython, "mypyc": build_mypyc,
             "marshal": build_marshal}


def build(units, out, choice="auto"):
    """Build the requested (or best available) backend into ``out``;
    returns the manifest dict."""
    os.makedirs(out, exist_ok=True)
    order = [choice] if choice != "auto" else ["cython", "mypyc",
                                              "marshal"]
    last_error = None
    for name in order:
        try:
            kind, index, extra = _BUILDERS[name](units, out)
            break
        except Exception as err:  # noqa: BLE001 - fall through the chain
            last_error = "%s: %s: %s" % (name, type(err).__name__, err)
            print("backend %s unavailable (%s)" % (name, last_error),
                  file=sys.stderr)
    else:
        raise SystemExit("no backend could be built: %s" % last_error)
    manifest = {
        "manifest_version": backend.MANIFEST_VERSION,
        "backend": kind,
        "magic": int.from_bytes(importlib.util.MAGIC_NUMBER[:2],
                                "little"),
        "python": "%d.%d" % sys.version_info[:2],
        "units": index,
        **extra,
    }
    with open(os.path.join(out, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return manifest


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=backend.DEFAULT_BUILD_DIR,
                        help="build directory (default: %(default)s)")
    parser.add_argument("--backend", default="auto",
                        choices=("auto", "cython", "mypyc", "marshal"),
                        help="backend to build (auto tries cython, "
                             "mypyc, then marshal)")
    parser.add_argument("--configs", default=None,
                        help="comma-separated tagging configs "
                             "(default: the full registry)")
    args = parser.parse_args(argv)

    configs = args.configs.split(",") if args.configs else all_configs()
    unknown = [c for c in configs if c not in all_configs()]
    if unknown:
        parser.error("unknown config(s): %s" % ", ".join(unknown))

    print("capturing units over %d config(s)..." % len(configs))
    units = capture_units(configs)
    print("captured %d unit(s); building..." % len(units))
    manifest = build(units, args.out, args.backend)
    print("built %s backend: %d unit(s) at %s"
          % (manifest["backend"], len(manifest["units"]), args.out))
    print("activate with %s=auto (or %s=%s)"
          % (backend.BACKEND_ENV, backend.BACKEND_ENV, args.out))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
