#!/usr/bin/env python3
"""Simulator-performance benchmark: reference loop vs block engine vs
superblock trace engine.

Runs the figure-5 sweep cells fresh (attribution off, caches bypassed)
three times — per-instruction reference loop, basic-block
superinstruction engine (``use_traces=False``), and the superblock
trace engine — and reports host wall-clock, simulated MIPS and the
per-cell speedups plus overall and per-config geometric means,
verifying along the way that all three engines produced bit-identical
counters and output.

Writes ``BENCH_simperf.json`` (override with ``--out``), stamped with
the package schema version and the ``simperf`` artifact kind
(:mod:`repro.schema`), so the perf trajectory of the simulator itself
is trackable run over run; CI runs ``--smoke`` (a pinned 6-cell
subset — deliberately *not* derived from the live registry, which can
grow) and uploads the JSON as an artifact.

``--compare PRIOR`` diffs the freshly measured aggregate against a
previously written artifact.  Unstamped or version/kind-mismatched
priors are refused outright: a cross-version comparison would blame
schema drift on the simulator.

Usage:
    PYTHONPATH=src python tools/perfbench.py [--smoke] [--out PATH]
        [--configs A,B,..] [--compare PRIOR] [--min-speedup X]
        [--min-trace-speedup X]

Exit status is non-zero when any cell's counters differ between the
engines, when a ``--min-*`` bound fails, or when ``--compare`` is
given an unusable prior artifact.
"""

import argparse
import json
import math
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import schema  # noqa: E402
from repro.bench.runner import ENGINES, run_benchmark  # noqa: E402
from repro.bench.workloads import BENCHMARK_ORDER  # noqa: E402
from repro.engines import CONFIGS  # noqa: E402

#: Artifact family for ``BENCH_simperf.json`` (see repro.schema).
ARTIFACT_KIND = "simperf"

#: The measured execution engines, in measurement order.
ENGINE_MODES = (
    ("legacy", {"use_blocks": False}),
    ("blocks", {"use_blocks": True, "use_traces": False}),
    ("traces", {"use_blocks": True, "use_traces": True}),
)

#: --smoke subset: small scales, both guest engines, a typed and a
#: baseline config each — a pinned, explicit list so CI timing stays
#: put even as the config registry grows (it has doubled once
#: already).
SMOKE_CELLS = [
    ("lua", "fibo", "baseline", 8),
    ("lua", "fibo", "typed", 8),
    ("lua", "n-sieve", "typed", 200),
    ("js", "fibo", "baseline", 8),
    ("js", "fibo", "typed", 8),
    ("js", "n-sieve", "typed", 200),
]


def full_cells(configs=None):
    """The figure-5 sweep: every engine x benchmark x config at the
    default input scales (optionally restricted to ``configs``)."""
    selected = list(configs) if configs else list(CONFIGS)
    return [(engine, benchmark, config, None)
            for engine in ENGINES
            for benchmark in BENCHMARK_ORDER
            for config in selected]


def _ratio(numerator, denominator):
    return round(numerator / denominator, 3) if denominator else 0.0


#: Warm passes per cell for the trace engine: trace formation is
#: profile-driven and adaptive (record, evaluate, retire, re-record),
#: so peak state is reached after a couple of runs, not one.  Warm-up
#: stops early once a run is within :data:`WARM_CONVERGED` of the
#: previous one.
MAX_WARM_RUNS = 3
WARM_CONVERGED = 0.85


def _measure_cell(engine, benchmark, config, scale):
    """Warm then run one cell under every engine mode.

    The warm passes (JIT-backed engines only — the reference loop
    keeps no cross-run state) pay interpreter assembly and block/trace
    compilation up front, so the measured runs see peak state.  The
    trace engine warms until converged: profile-driven formation
    keeps adapting (retiring unprofitable traces, recording the paths
    hot in later workload phases) for a run or two before its table
    reaches a fixed point.
    """
    runs = {}
    run_benchmark(engine, benchmark, config, scale=scale,
                  use_cache=False, attribute=False,
                  **dict(ENGINE_MODES[1][1]))
    previous = None
    for _warm in range(MAX_WARM_RUNS):
        record = run_benchmark(engine, benchmark, config, scale=scale,
                               use_cache=False, attribute=False,
                               **dict(ENGINE_MODES[2][1]))
        if previous is not None and \
                record.wall_seconds >= WARM_CONVERGED * previous:
            break
        previous = record.wall_seconds
    for name, mode in ENGINE_MODES:
        runs[name] = run_benchmark(engine, benchmark, config, scale=scale,
                                   use_cache=False, attribute=False, **mode)
    reference = runs["legacy"]
    identical = all(
        run.counters.as_dict() == reference.counters.as_dict()
        and run.output == reference.output
        for run in runs.values())
    row = {
        "engine": engine,
        "benchmark": benchmark,
        "config": config,
        "scale": reference.scale,
        "instructions": reference.counters.instructions,
        "identical": identical,
    }
    for name, run in runs.items():
        row["seconds_%s" % name] = round(run.wall_seconds, 4)
        row["mips_%s" % name] = round(run.simulated_mips, 3)
    row["speedup_blocks"] = _ratio(reference.wall_seconds,
                                   runs["blocks"].wall_seconds)
    row["speedup_traces"] = _ratio(reference.wall_seconds,
                                   runs["traces"].wall_seconds)
    row["speedup_traces_vs_blocks"] = _ratio(
        runs["blocks"].wall_seconds, runs["traces"].wall_seconds)
    return row


def measure(cells, echo=print):
    results = []
    for index, (engine, benchmark, config, scale) in enumerate(cells):
        row = _measure_cell(engine, benchmark, config, scale)
        results.append(row)
        echo("[%3d/%d] %-3s %-15s %-12s  %6.2fs -> %6.2fs -> %6.2fs  "
             "blocks %5.2fx traces %5.2fx (vs blocks %5.2fx)  %s"
             % (index + 1, len(cells), engine, benchmark, config,
                row["seconds_legacy"], row["seconds_blocks"],
                row["seconds_traces"], row["speedup_blocks"],
                row["speedup_traces"], row["speedup_traces_vs_blocks"],
                "ok" if row["identical"] else "COUNTER MISMATCH"))
    return results


def _geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def aggregate(results):
    summary = {
        "cells": len(results),
        "identical": all(cell["identical"] for cell in results),
        "total_instructions": sum(c["instructions"] for c in results),
    }
    for metric in ("speedup_blocks", "speedup_traces",
                   "speedup_traces_vs_blocks"):
        summary["geomean_%s" % metric] = round(
            _geomean([c[metric] for c in results]), 3)
    for name, _mode in ENGINE_MODES:
        seconds = sum(c["seconds_%s" % name] for c in results)
        summary["total_seconds_%s" % name] = round(seconds, 2)
        summary["mips_%s" % name] = round(
            summary["total_instructions"] / seconds / 1e6, 3) \
            if seconds else 0.0
    summary["geomean_mips_traces"] = round(
        _geomean([c["mips_traces"] for c in results]), 3)
    # The reference-loop figure anchors the advisory host-throughput
    # floor (repro.bench.gate.check_host_floor): gate sweeps run with
    # attribution, i.e. at reference-loop speed.
    summary["geomean_mips_legacy"] = round(
        _geomean([c["mips_legacy"] for c in results]), 3)
    per_config = {}
    for config in sorted({c["config"] for c in results}):
        rows = [c for c in results if c["config"] == config]
        per_config[config] = {
            "cells": len(rows),
            "geomean_speedup_blocks": round(
                _geomean([c["speedup_blocks"] for c in rows]), 3),
            "geomean_speedup_traces": round(
                _geomean([c["speedup_traces"] for c in rows]), 3),
            "geomean_speedup_traces_vs_blocks": round(
                _geomean([c["speedup_traces_vs_blocks"] for c in rows]),
                3),
        }
    summary["per_config"] = per_config
    return summary


def load_prior(path):
    """Load and validate a prior artifact for --compare.

    Raises :class:`repro.schema.SchemaError` (or ``OSError``/
    ``ValueError`` for unreadable files) when the prior is unstamped
    or from another schema version/artifact family — comparing across
    schema drift would produce garbage deltas, so it is refused, not
    papered over.
    """
    with open(path) as handle:
        payload = json.load(handle)
    return schema.require_artifact(payload, ARTIFACT_KIND)


def compare_with(prior, summary, echo=print):
    """Print aggregate deltas current-vs-prior."""
    base = prior.get("aggregate", {})
    echo("\ncomparison against prior artifact (mode=%s, %s cells):"
         % (prior.get("mode"), base.get("cells")))
    for metric in ("geomean_speedup_blocks", "geomean_speedup_traces",
                   "geomean_speedup_traces_vs_blocks",
                   "geomean_mips_traces", "mips_traces", "mips_blocks",
                   "mips_legacy"):
        old = base.get(metric)
        new = summary.get(metric)
        if old is None or new is None:
            continue
        delta = (new / old - 1.0) * 100.0 if old else float("inf")
        echo("  %-32s %10.3f -> %10.3f  (%+.1f%%)"
             % (metric, old, new, delta))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="reference vs block vs trace simulator benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="pinned 6-cell subset for CI (seconds, "
                             "not minutes)")
    parser.add_argument("--configs", metavar="A,B,..",
                        help="comma-separated config subset for the "
                             "full sweep (default: every registered "
                             "config)")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_simperf.json")
    parser.add_argument("--compare", metavar="PRIOR",
                        help="print aggregate deltas against a prior "
                             "stamped artifact (refused when the prior "
                             "is unstamped or version-mismatched)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the blocks-vs-legacy geomean "
                             "is below this (e.g. 1.5)")
    parser.add_argument("--min-trace-speedup", type=float, default=None,
                        help="fail when the traces-vs-blocks geomean "
                             "is below this (e.g. 1.8)")
    args = parser.parse_args(argv)

    if args.configs:
        selected = [c.strip() for c in args.configs.split(",") if c.strip()]
        unknown = [c for c in selected if c not in CONFIGS]
        if unknown:
            parser.error("unknown config(s): %s (registered: %s)"
                         % (", ".join(unknown), ", ".join(CONFIGS)))
    else:
        selected = None

    prior = None
    if args.compare:
        try:
            prior = load_prior(args.compare)
        except (OSError, ValueError, schema.SchemaError) as err:
            print("perfbench: refusing to compare against %s: %s"
                  % (args.compare, err))
            return 2

    cells = SMOKE_CELLS if args.smoke else full_cells(selected)
    print("perfbench: %d cells (%s mode), warm + 3-engine measure per "
          "cell..." % (len(cells), "smoke" if args.smoke else "full"))
    started = time.time()
    results = measure(cells)
    summary = aggregate(results)

    payload = schema.artifact(ARTIFACT_KIND, {
        "mode": "smoke" if args.smoke else "full",
        "configs": sorted({c["config"] for c in results}),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": int(started),
        "cells": results,
        "aggregate": summary,
    })
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print("\nwrote %s" % args.out)
    print("geomean speedups: blocks %.2fx, traces %.2fx "
          "(traces vs blocks %.2fx) | %.2f -> %.2f -> %.2f MIPS | "
          "counters %s"
          % (summary["geomean_speedup_blocks"],
             summary["geomean_speedup_traces"],
             summary["geomean_speedup_traces_vs_blocks"],
             summary["mips_legacy"], summary["mips_blocks"],
             summary["mips_traces"],
             "identical" if summary["identical"] else "MISMATCH"))
    for config, stats in summary["per_config"].items():
        print("  %-12s blocks %5.2fx  traces %5.2fx  vs blocks %5.2fx  "
              "(%d cells)"
              % (config, stats["geomean_speedup_blocks"],
                 stats["geomean_speedup_traces"],
                 stats["geomean_speedup_traces_vs_blocks"],
                 stats["cells"]))
    if prior is not None:
        compare_with(prior, summary)

    if not summary["identical"]:
        print("perfbench: FAILED (counter mismatch)")
        return 1
    if args.min_speedup is not None \
            and summary["geomean_speedup_blocks"] < args.min_speedup:
        print("perfbench: FAILED (blocks geomean %.2fx < %.2fx)"
              % (summary["geomean_speedup_blocks"], args.min_speedup))
        return 1
    if args.min_trace_speedup is not None \
            and summary["geomean_speedup_traces_vs_blocks"] \
            < args.min_trace_speedup:
        print("perfbench: FAILED (traces-vs-blocks geomean %.2fx < "
              "%.2fx)" % (summary["geomean_speedup_traces_vs_blocks"],
                          args.min_trace_speedup))
        return 1
    print("perfbench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
