#!/usr/bin/env python3
"""Simulator-performance benchmark: block engine vs per-instruction loop.

Runs the figure-5 sweep cells fresh (attribution off, caches bypassed)
twice — once with the basic-block superinstruction engine disabled and
once enabled — and reports host wall-clock, simulated MIPS and the
speedup per cell plus the geometric-mean speedup, verifying along the
way that both engines produced bit-identical counters and output.

Writes ``BENCH_simperf.json`` (override with ``--out``) so the perf
trajectory of the simulator itself is trackable run over run; CI runs
``--smoke`` (a 4-cell subset) and uploads the JSON as an artifact.

Usage:
    PYTHONPATH=src python tools/perfbench.py [--smoke] [--out PATH]
        [--min-speedup X]

Exit status is non-zero when any cell's counters differ between the
engines, or when ``--min-speedup`` is given and the geomean falls
below it.
"""

import argparse
import json
import math
import os
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.runner import ENGINES, run_benchmark  # noqa: E402
from repro.bench.workloads import BENCHMARK_ORDER  # noqa: E402
from repro.engines import CONFIGS  # noqa: E402

#: --smoke subset: small scales, one engine, two configs — a few
#: seconds end to end, still covering typed-extension opcodes.
SMOKE_CELLS = [
    ("lua", "fibo", "baseline", 8),
    ("lua", "fibo", "typed", 8),
    ("lua", "n-sieve", "baseline", 200),
    ("lua", "n-sieve", "typed", 200),
]


def full_cells():
    """The figure-5 sweep: every engine x benchmark x config at the
    default input scales."""
    return [(engine, benchmark, config, None)
            for engine in ENGINES
            for benchmark in BENCHMARK_ORDER
            for config in CONFIGS]


def warm_up(cells):
    """Pay one-time costs (interpreter assembly, block compilation)
    before the measured runs."""
    seen = set()
    for engine, _benchmark, config, _scale in cells:
        if (engine, config) in seen:
            continue
        seen.add((engine, config))
        for use_blocks in (False, True):
            run_benchmark(engine, "fibo", config, scale=4,
                          use_cache=False, attribute=False,
                          use_blocks=use_blocks)


def measure(cells, echo=print):
    results = []
    for index, (engine, benchmark, config, scale) in enumerate(cells):
        legacy = run_benchmark(engine, benchmark, config, scale=scale,
                               use_cache=False, attribute=False,
                               use_blocks=False)
        blocks = run_benchmark(engine, benchmark, config, scale=scale,
                               use_cache=False, attribute=False,
                               use_blocks=True)
        identical = (legacy.counters.as_dict() == blocks.counters.as_dict()
                     and legacy.output == blocks.output)
        speedup = legacy.wall_seconds / blocks.wall_seconds \
            if blocks.wall_seconds else 0.0
        results.append({
            "engine": engine,
            "benchmark": benchmark,
            "config": config,
            "scale": legacy.scale,
            "instructions": legacy.counters.instructions,
            "seconds_legacy": round(legacy.wall_seconds, 4),
            "seconds_blocks": round(blocks.wall_seconds, 4),
            "mips_legacy": round(legacy.simulated_mips, 3),
            "mips_blocks": round(blocks.simulated_mips, 3),
            "speedup": round(speedup, 3),
            "identical": identical,
        })
        echo("[%2d/%d] %-3s %-15s %-8s  %6.2fs -> %6.2fs  %5.2fx  %s"
             % (index + 1, len(cells), engine, benchmark, config,
                legacy.wall_seconds, blocks.wall_seconds, speedup,
                "ok" if identical else "COUNTER MISMATCH"))
    return results


def aggregate(results):
    speedups = [cell["speedup"] for cell in results if cell["speedup"] > 0]
    geomean = math.exp(sum(math.log(s) for s in speedups)
                       / len(speedups)) if speedups else 0.0
    seconds_legacy = sum(cell["seconds_legacy"] for cell in results)
    seconds_blocks = sum(cell["seconds_blocks"] for cell in results)
    instructions = sum(cell["instructions"] for cell in results)
    return {
        "cells": len(results),
        "identical": all(cell["identical"] for cell in results),
        "geomean_speedup": round(geomean, 3),
        "total_seconds_legacy": round(seconds_legacy, 2),
        "total_seconds_blocks": round(seconds_blocks, 2),
        "total_instructions": instructions,
        "mips_legacy": round(instructions / seconds_legacy / 1e6, 3)
        if seconds_legacy else 0.0,
        "mips_blocks": round(instructions / seconds_blocks / 1e6, 3)
        if seconds_blocks else 0.0,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="block-engine vs per-instruction simulator benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="4-cell subset for CI (seconds, not minutes)")
    parser.add_argument("--out", metavar="PATH",
                        default="BENCH_simperf.json")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail when the geomean speedup is below "
                             "this (e.g. 1.5)")
    args = parser.parse_args(argv)

    cells = SMOKE_CELLS if args.smoke else full_cells()
    print("perfbench: %d cells (%s mode), warming up..."
          % (len(cells), "smoke" if args.smoke else "full"))
    warm_up(cells)
    started = time.time()
    results = measure(cells)
    summary = aggregate(results)

    payload = {
        "version": 1,
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timestamp": int(started),
        "cells": results,
        "aggregate": summary,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)

    print("\nwrote %s" % args.out)
    print("geomean speedup: %.2fx | %.2f -> %.2f MIPS | counters %s"
          % (summary["geomean_speedup"], summary["mips_legacy"],
             summary["mips_blocks"],
             "identical" if summary["identical"] else "MISMATCH"))
    if not summary["identical"]:
        print("perfbench: FAILED (counter mismatch)")
        return 1
    if args.min_speedup is not None \
            and summary["geomean_speedup"] < args.min_speedup:
        print("perfbench: FAILED (geomean %.2fx < %.2fx)"
              % (summary["geomean_speedup"], args.min_speedup))
        return 1
    print("perfbench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
