#!/usr/bin/env python
"""Repo linter: run ruff when available, else a built-in subset.

CI installs real ruff (see ``.github/workflows/ci.yml``) and gets the
full ``E``/``F``/``W`` rule set from ``pyproject.toml``.  Offline
environments without ruff still get a high-signal pyflakes subset —
module-level unused imports (F401), unused local assignments (F841)
and syntax errors (E999) — plus the E501 line-length check, from a
small AST walker with no dependencies.  The fallback is deliberately a
*subset* of ruff's findings (scope-aware rules like F811 need real
pyflakes), so a clean ruff run implies a clean fallback run, and any
fallback finding would also fail CI.
"""

import ast
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "tools")
LINE_LENGTH = 88


def run_ruff():
    """Returns ruff's exit code, or None when ruff is unavailable."""
    import importlib.util
    if importlib.util.find_spec("ruff") is None:
        return None
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check"]
        + [str(ROOT / target) for target in TARGETS],
        cwd=str(ROOT))
    return proc.returncode


def _module_level_imports(tree):
    """``{bound_name: (lineno, imported_label)}`` for top-level imports
    (function-scoped imports are skipped: they are usually deliberate
    lazy imports and need scope analysis to judge)."""
    imports = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = (alias.asname or alias.name).split(".")[0]
                imports[bound] = (node.lineno, alias.name)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = (node.lineno, alias.name)
    return imports


def _loaded_names(tree):
    loaded = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.add(node.id)
    return loaded


def _exported_names(tree):
    exported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and target.id == "__all__" \
                        and isinstance(node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant):
                            exported.add(element.value)
    return exported


def _unused_locals(tree):
    """F841: names assigned exactly once and never loaded, per function.

    Conservative (mirrors what pyflakes flags): skips underscore names,
    tuple unpacking and augmented assignment.
    """
    findings = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        assigned = {}
        loaded = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Store):
                    assigned.setdefault(node.id, node.lineno)
                elif isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
            elif isinstance(node, (ast.Tuple, ast.List)) \
                    and isinstance(getattr(node, "ctx", None), ast.Store):
                for element in ast.walk(node):
                    if isinstance(element, ast.Name):
                        loaded.add(element.id)  # unpacking: don't flag
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    loaded.add(node.target.id)
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                loaded.update(node.names)
        for name, lineno in sorted(assigned.items(),
                                   key=lambda kv: kv[1]):
            if name not in loaded and not name.startswith("_"):
                findings.append((lineno, "F841 local variable %r is "
                                 "assigned to but never used" % name))
    return findings


def check_file(path):
    """Built-in checks for one file; returns (lineno, message) pairs."""
    findings = []
    text = path.read_text()
    lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        if len(line) > LINE_LENGTH:
            findings.append((lineno, "E501 line too long (%d > %d)"
                             % (len(line), LINE_LENGTH)))
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        findings.append((error.lineno or 0,
                         "E999 syntax error: %s" % error.msg))
        return findings
    loaded = _loaded_names(tree)
    exported = _exported_names(tree)
    for name, (lineno, label) in sorted(_module_level_imports(tree).items(),
                                        key=lambda kv: kv[1][0]):
        if name not in loaded and name not in exported:
            findings.append((lineno, "F401 %r imported but unused"
                             % label))
    findings.extend(_unused_locals(tree))
    # Honour inline noqa markers the way ruff does, coarsely: any noqa
    # on the offending line silences the fallback too.
    return [(lineno, message) for lineno, message in findings
            if not (0 < lineno <= len(lines)
                    and "noqa" in lines[lineno - 1])]


def run_fallback():
    print("ruff not installed; running the built-in subset "
          "(E501/E999/F401/F841)", file=sys.stderr)
    failures = 0
    for target in TARGETS:
        directory = ROOT / target
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            for lineno, message in check_file(path):
                print("%s:%d: %s"
                      % (path.relative_to(ROOT), lineno, message))
                failures += 1
    if failures:
        print("lint: %d finding(s)" % failures, file=sys.stderr)
        return 1
    print("lint: clean", file=sys.stderr)
    return 0


def main():
    code = run_ruff()
    if code is None:
        return run_fallback()
    return code


if __name__ == "__main__":
    sys.exit(main())
