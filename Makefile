PYTHON ?= python
JOBS ?=

export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint sweep sweep-full analysis-smoke faults-smoke faults \
	serve-smoke serve-load chaos-smoke figures perfbench clean-cache

# Tier-1 verification.
test:
	$(PYTHON) -m pytest -x -q

# Style/correctness lint: ruff when installed, AST fallback otherwise.
lint:
	$(PYTHON) tools/lint.py

# CI smoke: 2-cell cold+warm parallel sweep against a temp disk cache;
# fails unless the warm pass is pure cache hits with identical records.
sweep:
	$(PYTHON) -m repro sweep --smoke $(if $(JOBS),--jobs $(JOBS))

# The full matrix + figures (disk-cached, all cores by default).
sweep-full:
	$(PYTHON) -m repro sweep $(if $(JOBS),--jobs $(JOBS))

# CI smoke for the static-elision axis (docs/ANALYSIS.md): the
# analysis/IR/differential suites, then a sweep smoke whose JSON
# carries the 4-way gradual figure (baseline vs elided vs chklb vs
# typed with the recovered fraction) and a fault smoke that gates the
# elision SDC silent/abort shift.  The elided config stays exempt from
# the committed perf gate (GATE_CONFIGS pins the paper triple).
analysis-smoke:
	$(PYTHON) -m pytest -q tests/test_analysis.py tests/test_ir_views.py \
		tests/test_elided_differential.py
	$(PYTHON) -m repro sweep --smoke $(if $(JOBS),--jobs $(JOBS)) \
		$(if $(GRADUAL_JSON),--json $(GRADUAL_JSON))
	$(PYTHON) -m repro faults --smoke $(if $(JOBS),--jobs $(JOBS))

# CI smoke: tiny fixed-seed fault-injection campaign run at 1 and N
# jobs; fails unless the reports are identical and the typed configs
# detect more tag-plane corruptions than baseline (docs/RELIABILITY.md).
faults-smoke:
	$(PYTHON) -m repro faults --smoke $(if $(JOBS),--jobs $(JOBS)) \
		$(if $(FAULTS_JSON),--json $(FAULTS_JSON))

# Full fault-injection campaign over the matrix (disk-cached goldens).
faults:
	$(PYTHON) -m repro faults $(if $(JOBS),--jobs $(JOBS))

# CI smoke: boot the execution daemon as a subprocess and assert the
# acceptance contract — 3 concurrent clients get counters identical to
# an in-process run, a cache-hit bench never builds the worker pool,
# and SIGTERM drains in-flight requests before exit (docs/API.md).
serve-smoke:
	$(PYTHON) -m repro serve --smoke $(if $(JOBS),--jobs $(JOBS)) \
		$(if $(SERVE_JSON),--json $(SERVE_JSON))

# CI SLO gate: boot a 2-shard consistent-hash routed tier over a
# throwaway shared cache, replay zipf-skewed run/bench/sweep traffic,
# write the BENCH_serve.json artifact (+ router log) and fail on any
# SLO violation — p99 under load, sustained QPS, zero errors, zero
# dropped in-flight requests on drain, byte-identical sampled replies
# (docs/SERVING.md).
serve-load:
	$(PYTHON) -m repro loadgen --smoke $(if $(JOBS),--jobs $(JOBS)) \
		--json $(or $(SERVE_LOAD_JSON),BENCH_serve.json) \
		--router-log $(or $(ROUTER_LOG),router.log)

# CI chaos gate: boot a supervised 2-shard tier, replay the pinned-seed
# fault schedule (shard SIGKILL + SIGSTOP stall mid-load), write the
# BENCH_chaos.json artifact (+ router/shard logs) and fail on any chaos
# SLO violation — zero lost, zero duplicated, bounded MTTR, ring back
# to full strength (docs/RELIABILITY.md).
chaos-smoke:
	$(PYTHON) -m repro chaos --smoke \
		--json $(or $(CHAOS_JSON),BENCH_chaos.json) \
		--router-log $(or $(ROUTER_LOG),router.log) \
		--log-dir $(or $(CHAOS_LOGS),chaos-logs)

# Regenerate benchmarks/results/ (shares the sweep via the disk cache).
figures:
	$(PYTHON) -m pytest -q benchmarks/

# Host-side simulator performance: block engine vs per-instruction loop
# over the figure-5 sweep; writes BENCH_simperf.json.
perfbench:
	$(PYTHON) tools/perfbench.py --out BENCH_simperf.json

clean-cache:
	rm -rf benchmarks/.cache
