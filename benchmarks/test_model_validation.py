"""Timing-model cross-validation over real benchmark kernels.

The evaluation figures come from the fast per-instruction model; this
bench re-times a benchmark subset with the stage-timestamped scoreboard
model and checks that both agree on the quantity the paper's claims rest
on — the relative ordering and rough magnitude of the three machine
configurations.
"""

from repro.bench.report import format_table
from repro.bench.workloads import workload
from repro.engines import CONFIGS
from repro.engines.lua import vm as lua_vm
from repro.uarch.pipeline import Machine
from repro.uarch.scoreboard import ScoreboardMachine

SUBSET = {"fibo": 10, "n-sieve": 300, "spectral-norm": 4}


def _time(source, config, machine_cls):
    cpu, _runtime, _ = lua_vm.prepare(source, config=config)
    return machine_cls(cpu).run(max_instructions=50_000_000).cycles


def test_scoreboard_agrees_with_fast_model(save_result, benchmark):
    rows = []
    for name, scale in sorted(SUBSET.items()):
        source = workload(name).lua_source(scale)
        fast = {c: _time(source, c, Machine) for c in CONFIGS}
        stage = {c: _time(source, c, ScoreboardMachine) for c in CONFIGS}
        fast_speedup = fast["baseline"] / fast["typed"]
        stage_speedup = stage["baseline"] / stage["typed"]
        rows.append((name, fast["baseline"], stage["baseline"],
                     "%.3fx" % fast_speedup, "%.3fx" % stage_speedup))
        # Typed wins under both models; chklb sits at or near baseline
        # (spectral-norm is FP-heavy, where Checked Load gains nothing).
        for cycles in (fast, stage):
            assert cycles["typed"] < cycles["chklb"]
            assert cycles["typed"] < cycles["baseline"]
            assert 0.97 < cycles["chklb"] / cycles["baseline"] < 1.02
        # ...and speedups within a modest band of each other.
        assert abs(fast_speedup - stage_speedup) / stage_speedup < 0.10
        # Absolute cycle counts within ~35% (the scoreboard overlaps
        # penalties the per-instruction model serialises).
        for config in CONFIGS:
            ratio = fast[config] / stage[config]
            assert 0.70 < ratio < 1.35, (name, config, ratio)
    save_result("validation_timing_models", format_table(
        ["benchmark", "fast baseline cyc", "scoreboard baseline cyc",
         "fast speedup", "scoreboard speedup"], rows,
        title="Timing-model cross-validation (Lua, typed vs baseline)"))
    benchmark.pedantic(
        _time, args=(workload("fibo").lua_source(8), "typed",
                     ScoreboardMachine), rounds=1, iterations=1)
