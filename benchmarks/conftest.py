"""Shared fixtures for the figure/table regeneration benchmarks.

The full (engine x benchmark x config) sweep is simulated once per
session; every figure aggregates from it.  Rendered figures are written
to ``benchmarks/results/`` so the regenerated rows can be diffed against
the paper.
"""

import pathlib

import pytest

from repro.bench.runner import run_matrix, verify_outputs_match

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def matrix():
    records = run_matrix()
    mismatches = verify_outputs_match(records)
    assert not mismatches, \
        "configs disagree on program output: %s" % mismatches
    return records


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    def save(name, text):
        (results_dir / ("%s.txt" % name)).write_text(text + "\n")
        print()
        print(text)
    return save
