"""Shared fixtures for the figure/table regeneration benchmarks.

The full (engine x benchmark x config) sweep is simulated once and
shared three ways: per session (the ``matrix`` fixture), across cores
(:func:`repro.bench.experiments.sweep` shards cache misses over a
process pool) and across pytest *processes* (results persist in the
content-addressed disk cache under ``benchmarks/.cache/``, so a repeat
run of this suite re-simulates nothing until the source tree changes).

Environment knobs:

* ``REPRO_JOBS``       — worker count for the sweep (default: all cores),
* ``REPRO_DISK_CACHE`` — set to ``0`` to disable the persistent cache,
* ``REPRO_CACHE_DIR``  — override the cache location.

Rendered figures are written to ``benchmarks/results/`` so the
regenerated rows can be diffed against the paper.
"""

import os
import pathlib

import pytest

from repro.bench import cache as result_cache
from repro.bench import experiments
from repro.bench.runner import verify_outputs_match

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CACHE_DIR = pathlib.Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def matrix():
    if os.environ.get("REPRO_DISK_CACHE", "1") != "0":
        result_cache.configure(
            os.environ.get(result_cache.CACHE_ENV) or CACHE_DIR)
    jobs = int(os.environ.get("REPRO_JOBS", "0")) or None
    records = experiments.sweep(jobs=jobs)
    mismatches = verify_outputs_match(records)
    assert not mismatches, \
        "configs disagree on program output: %s" % mismatches
    return records


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    def save(name, text):
        (results_dir / ("%s.txt" % name)).write_text(text + "\n")
        print()
        print(text)
    return save
