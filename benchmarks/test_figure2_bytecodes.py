"""Figure 2: dynamic bytecode breakdown and instructions per bytecode.

Paper: fewer than 10 of Lua's 47 bytecodes dominate dynamic counts, and
the five polymorphic bytecodes (ADD/SUB/MUL/GETTABLE/SETTABLE) each cost
tens of native instructions, much of it type guards.
"""

from repro.bench.experiments import (
    figure2a,
    figure2b,
    render_figure2a,
    render_figure2b,
)


def test_figure2a_bytecode_breakdown(matrix, save_result, benchmark):
    breakdown = benchmark.pedantic(figure2a, args=(matrix,), rounds=1,
                                   iterations=1)
    save_result("figure2a_bytecodes", render_figure2a(breakdown))

    for name, fractions in breakdown.items():
        # A handful of bytecodes dominates (paper: <10 of 47).
        ranked = sorted(fractions.values(), reverse=True)
        assert sum(ranked[:10]) > 0.80, name
        assert len([f for f in ranked if f > 0.01]) <= 20, name
    # The hot five are prominent on the table-heavy kernels.
    assert breakdown["n-sieve"].get("SETTABLE", 0) > 0.05
    assert breakdown["fannkuch-redux"].get("GETTABLE", 0) > 0.10
    assert breakdown["fibo"].get("ADD", 0) > 0.03


def test_figure2b_instructions_per_bytecode(matrix, save_result,
                                            benchmark):
    data = benchmark.pedantic(figure2b, args=(matrix,), rounds=1,
                              iterations=1)
    save_result("figure2b_instrs_per_bytecode", render_figure2b(data))

    for op in ("ADD", "SUB", "MUL", "GETTABLE", "SETTABLE"):
        entry = data[op]
        assert entry["executions"] > 0
        # Tens of native instructions per bytecode (paper's Figure 2b).
        assert 10 < entry["per_bytecode"] < 80
        assert entry["paths"], "no per-path attribution for %s" % op
