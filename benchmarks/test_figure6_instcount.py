"""Figure 6: reduction of dynamic instruction count.

Paper: 11.2% (Lua) and 4.4% (JS) average reduction for Typed
Architecture.  Claim under test: typed reduces instructions on every
benchmark, more than Checked Load, and table/arithmetic-bound scripts
(fannkuch-redux, n-sieve, pidigits) sit at the high end.
"""

from repro.bench.experiments import figure6, render_figure6
from repro.engines import BASELINE, CHECKED_LOAD, TYPED


def test_figure6_instruction_reduction(matrix, save_result, benchmark):
    reductions = benchmark.pedantic(figure6, args=(matrix,), rounds=1,
                                    iterations=1)
    save_result("figure6_instcount", render_figure6(reductions))

    for engine in ("lua", "js"):
        per_engine = reductions[engine]
        mean = per_engine["mean"]
        assert 0.01 < mean[TYPED] < 0.25
        assert mean[TYPED] > mean[CHECKED_LOAD]
        assert mean[BASELINE] == 0.0
        for name in per_engine:
            assert per_engine[name][TYPED] > 0.0
        # The table-heavy kernels beat the engine's own mean.
        hot = ["fannkuch-redux", "n-sieve", "pidigits"]
        assert sum(per_engine[b][TYPED] for b in hot) / 3 > mean[TYPED]
