"""Table 8: hardware overhead breakdown and EDP.

Paper: +1.6% area and +3.7% power at 40nm, concentrated in the core
module; EDP improves 16.5% (Lua) / 19.3% (JS) when combined with the
measured speedups.
"""

from repro.bench.experiments import table8
from repro.hw.synthesis import synthesize


def test_table8_overheads(matrix, save_result, benchmark):
    summary, text = benchmark.pedantic(table8, args=(matrix,), rounds=1,
                                       iterations=1)
    save_result("table8_area_power", text)

    assert 0.005 < summary["area_overhead"] < 0.03
    assert 0.01 < summary["power_overhead"] < 0.08
    for engine, value in summary["edp_improvement"].items():
        assert value > 0.0, engine
    # JS speedup exceeds Lua's, so its EDP gain does too (as in paper).
    assert summary["edp_improvement"]["js"] > \
        summary["edp_improvement"]["lua"]


def test_overhead_concentrated_in_core(benchmark):
    baseline = synthesize(typed=False)
    typed = benchmark(synthesize, True)
    delta_core = typed.find("Core").area_mm2 \
        - baseline.find("Core").area_mm2
    delta_total = typed.total_area - baseline.total_area
    assert delta_core / delta_total > 0.85
