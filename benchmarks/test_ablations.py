"""Ablations for the design choices DESIGN.md calls out.

* TRT capacity sweep — the 8-entry table exactly fits the rule set of
  Table 5; smaller tables evict rules and turn hits into mispredictions.
* Overflow detection on/off for polymorphic instructions (Section 3.2).
* Native-library (host) cost sensitivity — the Amdahl dilution knob.
"""

import dataclasses

from repro.bench.report import format_table
from repro.bench.workloads import workload
from repro.engines.lua import vm as lua_vm
from repro.sim.trt import TypeRuleTable
from repro.uarch.config import DEFAULT_CONFIG
from repro.uarch.pipeline import Machine

MIXED_LUA = """
local t = {}
for i = 1, 120 do t[i] = i end
local si = 0
local sf = 0.0
for i = 1, 120 do
  si = si + t[i] * 2
  sf = sf + 0.5 * 1.5
end
print(si)
print(sf)
"""


def _run_typed(source, trt_capacity=None, machine_config=None):
    cpu, runtime, program = lua_vm.prepare(source, config="typed")
    if trt_capacity is not None:
        cpu.trt = TypeRuleTable(capacity=trt_capacity)
    machine = Machine(cpu, config=machine_config)
    counters = machine.run(max_instructions=50_000_000)
    return "".join(runtime.output), counters


def test_trt_capacity_sweep(save_result, benchmark):
    """Fewer TRT entries evict Table 5 rules and cost mispredictions."""
    rows = []
    results = {}
    for capacity in (1, 2, 4, 8):
        output, counters = _run_typed(MIXED_LUA, trt_capacity=capacity)
        results[capacity] = counters
        rows.append((capacity, counters.type_hits, counters.type_misses,
                     counters.cycles))
        assert output.splitlines()[0] == "14520"  # semantics preserved
    save_result("ablation_trt_capacity", format_table(
        ["TRT entries", "type hits", "type misses", "cycles"], rows,
        title="Ablation: Type Rule Table capacity"))

    # Mispredictions grow monotonically as the table shrinks...
    assert results[1].type_misses >= results[2].type_misses \
        >= results[4].type_misses >= results[8].type_misses
    # ...and the full 8-entry table (exactly Table 5) never misses here.
    assert results[8].type_misses == 0
    assert results[1].type_misses > 0
    assert results[1].cycles > results[8].cycles
    benchmark.pedantic(_run_typed, args=(MIXED_LUA,),
                       kwargs={"trt_capacity": 8}, rounds=1, iterations=1)


OVERFLOW_LUA = """
local x = 4611686018427387904
local s = 0
for i = 1, 50 do
  s = x + x
end
print(s)
"""


def test_overflow_detection_toggle(save_result, benchmark):
    """Section 3.2: overflow detection can be disabled when the layout
    keeps tags out of the value word (Lua), avoiding slow-path trips."""
    def run(overflow_bits):
        cpu, runtime, program = lua_vm.prepare(OVERFLOW_LUA,
                                               config="typed")
        cpu.overflow_bits = overflow_bits
        machine = Machine(cpu)
        counters = machine.run()
        return "".join(runtime.output), counters

    output_off, counters_off = run(None)
    output_on, counters_on = benchmark.pedantic(
        run, args=(64,), rounds=1, iterations=1)
    # Lua 5.3 integers wrap: with detection off the xadd result wraps in
    # the fast path; with detection on every overflowing add redirects.
    assert counters_off.overflow_traps == 0
    assert counters_on.overflow_traps == 50
    assert counters_on.cycles > counters_off.cycles
    assert output_off == output_on  # the slow path wraps identically
    save_result("ablation_overflow", format_table(
        ["overflow detection", "traps", "cycles"],
        [("off", counters_off.overflow_traps, counters_off.cycles),
         ("on(64b)", counters_on.overflow_traps, counters_on.cycles)],
        title="Ablation: overflow detection for polymorphic ops"))


def test_host_cost_sensitivity(save_result, benchmark):
    """Amdahl dilution: the pricier native-library time is, the smaller
    the typed speedup — reproducing why CALL-heavy scripts gain least."""
    # k-nucleotide leans on native string/table services, so it shows
    # the dilution clearly.
    source = workload("k-nucleotide").lua_source(60)
    rows = []
    speedups = {}
    for host_cpi in (0.5, 1.2, 3.0):
        latency = dataclasses.replace(DEFAULT_CONFIG.latency,
                                      host_cpi=host_cpi)
        config = dataclasses.replace(DEFAULT_CONFIG, latency=latency)
        cycles = {}
        for machine_config in ("baseline", "typed"):
            cpu, runtime, _ = lua_vm.prepare(source, config=machine_config)
            counters = Machine(cpu, config=config).run()
            cycles[machine_config] = counters.cycles
        speedups[host_cpi] = cycles["baseline"] / cycles["typed"]
        rows.append((host_cpi, cycles["baseline"], cycles["typed"],
                     "%.3fx" % speedups[host_cpi]))
    save_result("ablation_host_cost", format_table(
        ["host CPI", "baseline cycles", "typed cycles", "speedup"], rows,
        title="Ablation: native-library cost vs. typed speedup"))
    assert speedups[0.5] > speedups[1.2] > speedups[3.0] > 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


POLYMORPHIC_LUA = """
local t = {}
for i = 1, 200 do
  if i %% 2 == 0 then t[i] = i else t[i] = i + 0.5 end
end
local s = 0
for i = 1, 199 do
  s = s + (t[i] + t[i + 1])
end
print(s)
""" % ()


def test_deopt_path_selector(save_result, benchmark):
    """Section 5: reverting hot mispredicting sites to the slow path
    trades fast-path upside for cheaper slow paths."""
    def run(threshold):
        cpu, runtime, _ = lua_vm.prepare(POLYMORPHIC_LUA, config="typed")
        cpu.deopt_threshold = threshold
        counters = Machine(cpu).run()
        return "".join(runtime.output), counters, cpu.deopt_redirects

    rows = []
    outputs = set()
    by_threshold = {}
    for threshold in (None, 0.75, 0.5, 0.25):
        output, counters, redirects = run(threshold)
        outputs.add(output)
        by_threshold[threshold] = (counters, redirects)
        rows.append((str(threshold), redirects, counters.type_misses,
                     counters.cycles))
    save_result("ablation_deopt", format_table(
        ["deopt threshold", "deopt redirects", "type misses", "cycles"],
        rows, title="Ablation: deoptimizing the fast path (Section 5)"))
    assert len(outputs) == 1  # semantics invariant
    # Engaging the selector removes type mispredictions at the hot site.
    assert by_threshold[0.25][1] > 0
    assert by_threshold[0.25][0].type_misses < \
        by_threshold[None][0].type_misses
    benchmark.pedantic(run, args=(0.5,), rounds=1, iterations=1)


def test_machine_config_sensitivity(save_result, benchmark):
    """The paper targets resource-constrained IoT cores: smaller
    front-end structures raise the pressure type guards put on them, so
    the typed machine's advantage persists (and typically grows) as the
    core shrinks."""
    from repro.uarch.config import (
        BranchConfig, CacheConfig, MachineConfig)

    machine_classes = {
        "small-iot": MachineConfig(
            icache=CacheConfig(size_bytes=4 * 1024, ways=2),
            dcache=CacheConfig(size_bytes=4 * 1024, ways=2),
            branch=BranchConfig(gshare_entries=32, btb_entries=8,
                                ras_entries=1, miss_penalty=2)),
        "default": DEFAULT_CONFIG,
        "big-frontend": MachineConfig(
            icache=CacheConfig(size_bytes=32 * 1024, ways=8),
            dcache=CacheConfig(size_bytes=32 * 1024, ways=8),
            branch=BranchConfig(gshare_entries=1024, btb_entries=128,
                                ras_entries=8, miss_penalty=2)),
    }
    source = workload("n-sieve").lua_source(500)
    rows = []
    speedups = {}
    for label, machine_config in machine_classes.items():
        cycles = {}
        for config in ("baseline", "typed"):
            cpu, _runtime, _ = lua_vm.prepare(source, config=config)
            cycles[config] = Machine(cpu, config=machine_config).run() \
                .cycles
        speedups[label] = cycles["baseline"] / cycles["typed"]
        rows.append((label, cycles["baseline"], cycles["typed"],
                     "%.3fx" % speedups[label]))
    save_result("ablation_machine_config", format_table(
        ["machine", "baseline cycles", "typed cycles", "speedup"], rows,
        title="Ablation: core size vs. typed speedup"))
    # The advantage holds across the whole hardware range.
    assert all(value > 1.0 for value in speedups.values())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
