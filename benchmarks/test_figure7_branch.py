"""Figure 7: branch miss rates (MPKI, lower is better).

Paper: Typed Architecture reduces branch-predictor pressure because the
type-guard compare-and-branch pairs disappear from the fast paths.

Model truth diverges in an instructive way (see EXPERIMENTS.md): the
dominant misprediction source in a bytecode interpreter is the dispatch
indirect jump, whose absolute miss count is configuration-independent —
and since the typed machine executes *fewer* instructions, its MPKI
(a per-instruction rate) can mechanically rise even as execution gets
faster.  The reproducible claims are therefore: (a) conditional-guard
branches disappear from the typed fast paths (fewer branches executed),
and (b) a meaningful subset of benchmarks still shows the paper's MPKI
reduction.
"""

from repro.bench.experiments import figure7, render_figure7
from repro.engines import BASELINE, CHECKED_LOAD, TYPED


def test_figure7_branch_mpki(matrix, save_result, benchmark):
    data = benchmark.pedantic(figure7, args=(matrix,), rounds=1,
                              iterations=1)
    save_result("figure7_branch", render_figure7(data))

    for engine in ("lua", "js"):
        per_engine = data[engine]
        # Sane interpreter-class rates on a 128-entry gshare.
        for values in per_engine.values():
            for config in (BASELINE, CHECKED_LOAD, TYPED):
                assert 1.0 < values[config] < 80.0
        # The paper's effect survives on a subset of benchmarks (code
        # layout shifts the near-ties, so require at least one clear win).
        improved = sum(1 for v in per_engine.values()
                       if v[TYPED] < v[BASELINE])
        assert improved >= 1, engine


def test_typed_executes_fewer_conditional_branches(matrix, benchmark):
    """The guard compare-and-branch pairs vanish from the fast paths, so
    the typed machine resolves fewer conditional branches overall."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for engine in ("lua", "js"):
        for benchmark_name in ("fibo", "n-sieve", "mandelbrot"):
            base = matrix[(engine, benchmark_name, BASELINE)].counters
            typed = matrix[(engine, benchmark_name, TYPED)].counters
            assert typed.branches < base.branches


def test_chklb_also_removes_guard_branches(matrix, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for engine in ("lua", "js"):
        base = matrix[(engine, "fibo", BASELINE)].counters
        chklb = matrix[(engine, "fibo", CHECKED_LOAD)].counters
        assert chklb.branches < base.branches
