"""Figure 5: overall speedups of Typed Architecture and Checked Load.

Paper: geomean speedups 9.9% (Lua) / 11.2% (JS) for Typed Architecture
vs. 7.3% / 5.4% for Checked Load; Checked Load loses on FP-heavy scripts
(mandelbrot, n-body).  The reproduced claim is the *shape*: typed >
chklb > baseline in geomean, with chklb at or below baseline on the
FP-heavy pair.
"""

from repro.bench.experiments import figure5, render_figure5
from repro.bench.runner import run_benchmark
from repro.engines import BASELINE, CHECKED_LOAD, TYPED


def test_figure5_speedups(matrix, save_result, benchmark):
    speedups = benchmark.pedantic(figure5, args=(matrix,), rounds=1,
                                  iterations=1)
    save_result("figure5_speedup", render_figure5(speedups))

    for engine in ("lua", "js"):
        geo = speedups[engine]["geomean"]
        assert geo[TYPED] > geo[CHECKED_LOAD] > geo[BASELINE] == 1.0
        assert 1.02 < geo[TYPED] < 1.35  # modest, paper-like gains
        # Checked Load's integer specialisation loses on FP-heavy code.
        for fp_heavy in ("mandelbrot", "n-body"):
            assert speedups[engine][fp_heavy][CHECKED_LOAD] < \
                speedups[engine][fp_heavy][TYPED]
        assert min(speedups[engine][b][TYPED]
                   for b in speedups[engine]) >= 0.99


def test_representative_run_cost(benchmark):
    """Wall-clock cost of one simulated benchmark (harness throughput)."""
    record = benchmark(run_benchmark, "lua", "fibo", TYPED, 8, False)
    assert record.output == "21\n"
