"""Table 1: IoT device platform survey (motivation data)."""

from repro.bench.experiments import table1


def test_table1_renders(save_result, benchmark):
    text = benchmark(table1)
    save_result("table1_platforms", text)
    for platform in ("SAMA5D3", "Galileo", "Arduino Yun", "LaunchPad",
                     "ARM mbed"):
        assert platform in text
    for row in ("Processor", "ISA", "Clock", "Main Memory", "Power",
                "Price"):
        assert row in text
