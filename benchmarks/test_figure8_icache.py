"""Figure 8: instruction-cache miss rates (MPKI, lower is better).

Paper: the typed handlers are shorter, shrinking the interpreter's hot
footprint (20.7%/11.6%/50.8% I-cache miss reductions on binary-trees /
k-nucleotide / random for SpiderMonkey).  Claim under test: typed I-cache
MPKI never meaningfully exceeds baseline, and the small benchmark set
keeps rates low overall (the 16KB I-cache holds the interpreter loop).
"""

from repro.bench.experiments import figure8, render_figure8
from repro.engines import BASELINE, TYPED


def test_figure8_icache_mpki(matrix, save_result, benchmark):
    data = benchmark.pedantic(figure8, args=(matrix,), rounds=1,
                              iterations=1)
    save_result("figure8_icache", render_figure8(data))

    for engine in ("lua", "js"):
        per_engine = data[engine]
        for name, values in per_engine.items():
            # The interpreter fits the 16KB I-cache: cold misses only.
            assert values[BASELINE] < 5.0
            assert values[TYPED] <= values[BASELINE] + 0.25
        typed_mean = sum(v[TYPED] for v in per_engine.values()) \
            / len(per_engine)
        baseline_mean = sum(v[BASELINE] for v in per_engine.values()) \
            / len(per_engine)
        # Rates are ~0.05 MPKI (cold misses only), so allow layout noise.
        assert typed_mean <= baseline_mean * 1.15 + 0.02
