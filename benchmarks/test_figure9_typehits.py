"""Figure 9: type hit/miss rates normalised to dynamic bytecode count.

Paper: most benchmarks have near-perfect type hit rates; k-nucleotide
and n-body miss frequently (string table keys), and SpiderMonkey's
co-located tags force overflow mispredictions.  Checked Load shows heavy
misses on FP-oriented scripts because its fast-path type is fixed.
"""

from repro.bench.experiments import figure9, render_figure9


def test_figure9_type_hit_rates(matrix, save_result, benchmark):
    data = benchmark.pedantic(figure9, args=(matrix,), rounds=1,
                              iterations=1)
    save_result("figure9_typehits", render_figure9(data))

    for engine in ("lua", "js"):
        per_engine = data[engine]
        # Monomorphic integer kernels: essentially no type misses.
        for name in ("fibo", "n-sieve", "fannkuch-redux"):
            values = per_engine[name]
            hits = values["typed_hit"]
            misses = values["typed_miss"]
            assert hits > 0.1
            assert misses < 0.01 * max(hits, 1.0)
        # String-keyed tables miss the Table-Int tchk rule.
        assert per_engine["k-nucleotide"]["typed_miss"] > 0.01
        # Checked Load misses hard on the FP-heavy kernels.
        for name in ("mandelbrot", "n-body"):
            values = per_engine[name]
            assert values["chklb_miss"] > values["typed_miss"]


def test_js_overflow_mispredictions_exist(benchmark):
    """SpiderMonkey-style co-located tags force an overflow
    misprediction (Section 3.2).  The CLBG kernels only overflow int32
    at paper-scale inputs, so this drives the path with an explicit
    kernel: repeated doubling walks straight past INT32_MAX."""
    from repro.engines.js import run_js

    source = """
    var x = 3;
    for (var i = 0; i < 40; i++) x = x * 2;
    print(x);
    """
    result = benchmark.pedantic(run_js, args=(source,),
                                kwargs={"config": "typed"},
                                rounds=1, iterations=1)
    assert result.counters.overflow_traps > 0
    assert result.output == "3298534883328\n"  # promoted to double
