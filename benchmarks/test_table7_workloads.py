"""Table 7: benchmark catalogue (paper inputs vs. simulated scales)."""

from repro.bench.experiments import table6, table7
from repro.bench.workloads import BENCHMARK_ORDER


def test_table7_renders(save_result, benchmark):
    text = benchmark(table7)
    save_result("table7_workloads", text)
    for name in BENCHMARK_ORDER:
        assert name in text
    assert "250,000" in text  # paper's k-nucleotide input recorded


def test_table6_parameters(save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = table6()
    save_result("table6_parameters", text)
    assert "gshare" in text
    assert "16KB" in text
    assert "DDR3-1066" in text
