-- A tight numeric loop: mostly integer ADD/MUL with a float mix at the
-- end, so the profile shows the ALU bytecodes hot and every type check
-- landing on the int/int and float/float TRT entries.
local acc = 0
local x = 1.5
for i = 1, 400 do
  acc = acc + i * 3
  x = x * 1.000244140625
end
print(acc)
print(x > 1.0)
