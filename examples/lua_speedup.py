"""Run a MiniLua benchmark on every registered machine and compare.

Reproduces one bar of the paper's Figure 5 interactively: the same
program, byte-identical output, one row per registered tagging
scheme (the paper's triple plus selftag and the placement variants).

Run:  python examples/lua_speedup.py [benchmark] [scale]
"""

import sys

from repro.bench.workloads import BENCHMARK_ORDER, workload
from repro.engines import CONFIGS
from repro.engines.lua import run_lua


def main(argv):
    name = argv[0] if argv else "n-sieve"
    if name not in BENCHMARK_ORDER:
        raise SystemExit("unknown benchmark %r; choose from %s"
                         % (name, ", ".join(BENCHMARK_ORDER)))
    scale = int(argv[1]) if len(argv) > 1 else None
    source = workload(name).lua_source(scale)

    results = {config: run_lua(source, config=config)
               for config in CONFIGS}
    outputs = {r.output for r in results.values()}
    assert len(outputs) == 1, "configs must agree on program output"

    print("benchmark:", name)
    print("program output:")
    print("  " + results["baseline"].output.strip().replace("\n", "\n  "))
    print()
    width = max(len("config"), max(len(config) for config in CONFIGS))
    header = "%-*s %12s %12s %9s %9s %9s" % (
        width, "config", "instructions", "cycles", "speedup", "type-hit",
        "br-MPKI")
    print(header)
    print("-" * len(header))
    base_cycles = results["baseline"].counters.cycles
    for config in CONFIGS:
        counters = results[config].counters
        print("%-*s %12d %12d %8.3fx %9.3f %9.2f" % (
            width, config, counters.instructions, counters.cycles,
            base_cycles / counters.cycles, counters.type_hit_rate,
            counters.branch_mpki))


if __name__ == "__main__":
    main(sys.argv[1:])
