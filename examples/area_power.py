"""Hardware cost of the extension: the Table 8 model, interactively.

Prints the module-level area/power breakdown for both configurations,
the overhead summary, and EDP improvements for a range of speedups.

Run:  python examples/area_power.py
"""

from repro.bench.experiments import table8
from repro.hw.synthesis import (
    area_overhead,
    edp_improvement,
    power_overhead,
    synthesize,
)


def main():
    _summary, text = table8()
    print(text)
    print()
    report = synthesize(typed=True)
    core = report.find("Core")
    print("Typed core detail: %.3f mm^2, %.2f mW" % (core.area_mm2,
                                                     core.power_mw))
    print("Total overhead: area %+.2f%%, power %+.2f%%"
          % (100 * area_overhead(), 100 * power_overhead()))
    print()
    print("EDP improvement as a function of speedup (model power ratio):")
    for speedup in (1.00, 1.05, 1.099, 1.112, 1.20, 1.30):
        print("  speedup %.3fx  ->  EDP %+.1f%%"
              % (speedup, 100 * edp_improvement(speedup)))


if __name__ == "__main__":
    main()
