"""NaN boxing under the microscope: MiniJS values and the tag extractor.

Walks through the SpiderMonkey layout of Section 4.2 — how doubles,
int32s and objects share one 64-bit word, how the reconfigurable
extractor pulls the 4-bit tag out, and how an int32 overflow forces a
hardware type misprediction that lands in the double world.

Run:  python examples/js_nanboxing.py
"""

from repro.engines.js import run_js
from repro.isa.extension import SPIDERMONKEY_SPR
from repro.sim import nanbox
from repro.sim.tagio import TagCodec

TAG_NAMES = {0: "double", 1: "int32", 2: "undefined", 3: "boolean",
             5: "string", 6: "null", 7: "object"}


def show_value(codec, label, bits):
    value, tag, fbit = codec.extract(bits, bits)
    print("  %-22s bits=0x%016x  tag=%d (%s)  F/I=%d"
          % (label, bits, tag, TAG_NAMES.get(tag, "?"), fbit))


def main():
    codec = TagCodec(double_tag=0, int_tag=1)
    codec.set_offset(SPIDERMONKEY_SPR.offset)
    codec.set_shift(SPIDERMONKEY_SPR.shift)
    codec.set_mask(SPIDERMONKEY_SPR.mask)
    print("Table 4 settings: R_offset=0b%03d R_shift=%d R_mask=0x%02X"
          % (int(bin(SPIDERMONKEY_SPR.offset)[2:]),
             SPIDERMONKEY_SPR.shift, SPIDERMONKEY_SPR.mask))
    print()
    print("Extractor view of NaN-boxed values:")
    show_value(codec, "double 3.25", nanbox.double_to_bits(3.25))
    show_value(codec, "int32 42", nanbox.box_int32(1, 42))
    show_value(codec, "int32 -7", nanbox.box_int32(1, -7))
    show_value(codec, "boolean true", nanbox.box(3, 1))
    show_value(codec, "undefined", nanbox.box(2, 0))
    show_value(codec, "object @0x300000", nanbox.box(7, 0x300000))
    print()

    source = """
    var x = 2147483647;       // INT32_MAX
    print(x + 0);             // int fast path
    print(x + 1);             // overflow: hardware misprediction
    print(x * 2);             // ditto, multiply
    """
    result = run_js(source, config="typed")
    print("MiniJS on the typed machine:")
    print("  output:", result.output.split())
    print("  TRT hits:", result.counters.type_hits,
          " overflow mispredictions:", result.counters.overflow_traps)
    print()
    print("The overflowing adds left the fast path (Section 3.2: tags")
    print("are co-located with values, so an overflow would corrupt the")
    print("box) and the slow path produced doubles instead.")


if __name__ == "__main__":
    main()
