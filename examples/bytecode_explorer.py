"""Bytecode explorer: what the interpreter actually executes.

Compiles a small MiniLua program, shows its compiled bytecode, then runs
it on the simulated core with both tracers attached — the bytecode
stream the dispatcher follows and the tail of the native instruction
stream, including tagged-register effects on the typed machine.

Run:  python examples/bytecode_explorer.py
"""

from repro.engines.lua import vm as lua_vm
from repro.engines.lua.compiler import compile_source
from repro.engines.lua.opcodes import decode
from repro.sim.trace import BytecodeTracer, InstructionTracer

SOURCE = """
local t = {}
for i = 1, 4 do t[i] = i * i end
print(t[1] + t[2] + t[3] + t[4])
"""


def show_compiled(chunk):
    print("compiled bytecode (main):")
    for index, word in enumerate(chunk.main.code):
        op, a, b, c = decode(word)
        print("  %3d  %-10s A=%-3d B=%-3d C=%d" % (index, op.name, a, b, c))
    print("constants:", chunk.main.constants)
    print()


def trace_bytecodes(config):
    cpu, runtime, program = lua_vm.prepare(SOURCE, config=config)
    _prog, attribution = lua_vm.interpreter_program(config)
    entry_points = {
        program.base + 4 * index: attribution.entry_names[entry_id]
        for index, entry_id in enumerate(attribution.entry_of)
        if entry_id >= 0}
    tracer = BytecodeTracer(cpu, entry_points)
    tracer.run()
    print("dynamic bytecode stream [%s]:" % config)
    print("  " + tracer.format().replace("\n", "\n  "))
    print("  output:", "".join(runtime.output).strip())
    print()
    return tracer.counts


def trace_instructions(config, limit=14):
    cpu, _runtime, _program = lua_vm.prepare(SOURCE, config=config)
    tracer = InstructionTracer(cpu, limit=limit)
    tracer.run(max_instructions=200_000)
    print("last %d native instructions [%s]:" % (limit, config))
    print(tracer.format())
    print()


def main():
    show_compiled(compile_source(SOURCE))
    baseline_counts = trace_bytecodes("baseline")
    typed_counts = trace_bytecodes("typed")
    assert baseline_counts == typed_counts, \
        "the bytecode stream is configuration-independent"
    print("bytecode counts are identical across machines:",
          dict(sorted(baseline_counts.items(), key=lambda kv: -kv[1])))
    print()
    trace_instructions("typed")


if __name__ == "__main__":
    main()
