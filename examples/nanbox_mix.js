// Mixed int32/double arithmetic under NaN boxing: the int32 adds hit
// the TRT until the accumulator overflows 32 bits mid-loop, which
// raises the overflow trap and retypes the value as a double — the
// exact transition Section 3.2 motivates (visible in the profile as
// xadd(int32, int32) misses next to double hits).
var small = 0;
var big = 2000000000;
var d = 0.5;
for (var i = 0; i < 300; i = i + 1) {
  small = small + i;
  big = big + 1000000;
  d = d + 0.25;
}
print(small);
print(big);
print(d);
