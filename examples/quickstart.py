"""Quickstart: assemble and run a Typed Architecture program directly.

Shows the lowest-level public API: hand-written RV64 assembly using the
paper's extension (Figure 3's ``tld``/``thdl``/``xadd``/``tsd`` sequence)
executed on the simulated core, with Lua-layout tag-value pairs placed in
memory by hand.

Run:  python examples/quickstart.py
"""

from repro.isa.assembler import assemble
from repro.isa.extension import LUA_SPR, arithmetic_rules
from repro.sim.cpu import Cpu, to_signed
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec
from repro.uarch.pipeline import Machine

TNUMINT, TNUMFLT = 19, 3  # Lua 5.3 tag encoding (paper, Section 4.1)

PROGRAM = """
    # Configure the tag extractor for Lua's layout (Table 4): the tag
    # byte lives in the double-word after the value.
    li   a0, 0b001
    setoffset a0
    li   a0, 0
    setshift a0
    li   a0, 0xFF
    setmask a0

    # rb at 0x1000, rc at 0x1010, ra at 0x1020 (16-byte TValues).
    li   s10, 0x1000
    li   s9,  0x1010
    li   s11, 0x1020

    # The paper's Figure 3, almost verbatim:
    tld  t0, 0(s10)      # load rb (value + tag)
    tld  t1, 0(s9)       # load rc (value + tag)
    thdl slow            # set the type-misprediction handler
    xadd t0, t0, t1      # polymorphic add, checked by the TRT
    tsd  t0, 0(s11)      # store ra (value + tag)
    li   a6, 1           # fast-path marker
    ebreak
slow:
    li   a7, 99          # slow-path marker (not expected here)
    ebreak
"""


def make_machine(rb, rc):
    """Build a typed machine with two Lua integers in memory."""
    memory = Memory(size=1 << 20)
    for address, value in ((0x1000, rb), (0x1010, rc)):
        memory.store_u64(address, value)
        memory.store_u64(address + 8, TNUMINT)
    codec = TagCodec(fp_tags={TNUMFLT})
    cpu = Cpu(assemble(PROGRAM), memory, tag_codec=codec)
    cpu.trt.load_rules(arithmetic_rules(TNUMINT, TNUMFLT))
    return Machine(cpu)


def main():
    machine = make_machine(30, 12)
    counters = machine.run()
    memory = machine.cpu.mem
    print("result value :", to_signed(memory.load_u64(0x1020)))
    print("result tag   :", memory.load_u8(0x1028),
          "(19 = Lua integer)")
    print("fast path    :", "yes" if machine.cpu.regs.value[16] else "no")
    print("TRT hits     :", counters.type_hits)
    print("instructions :", counters.instructions)
    print("cycles       :", counters.cycles)
    print()
    print("SPR settings match the paper's Table 4:",
          (LUA_SPR.offset, LUA_SPR.shift, LUA_SPR.mask) == (1, 0, 0xFF))


if __name__ == "__main__":
    main()
