"""Section 5, OS interactions: context-switching the extension state.

The Typed Architecture adds per-process state — register type tags and
F/I bits, the special registers (R_offset/R_shift/R_mask/R_hdl) and the
Type Rule Table — that an OS must save and restore across context
switches.  This example interrupts a typed-machine Lua run mid-flight,
simulates another process trampling that state, and resumes it twice:

* with a *correct* OS (save_context/restore_context): execution continues
  on the fast path as if nothing happened;
* with a *naive* OS that restores only the classic register file: the
  program still produces the right answer (type mispredictions fall back
  to the software slow path — the architecture is safe by construction),
  but every type check now misses and the run gets slower.

Run:  python examples/os_context_switch.py
"""

from repro.engines.lua import vm as lua_vm

SCRIPT = """
local t = {}
for i = 1, 300 do t[i] = i end
local s = 0
for i = 1, 300 do s = s + t[i] * 2 end
print(s)
"""

SWITCH_AT = 15_000  # instructions before the "timer interrupt"


def trample_extension_state(cpu):
    """What another process (or a careless kernel) leaves behind."""
    cpu.trt.flush()            # its own rules were flushed on exit
    cpu.codec.set_offset(0)    # different engine, different layout
    cpu.codec.set_shift(13)
    cpu.codec.set_mask(0x3)
    for index in range(1, 32):  # stale tags in the register file
        cpu.regs.set_tag(index, 0xAA, 0)


def run(restore_properly):
    cpu, runtime, _program = lua_vm.prepare(SCRIPT, config="typed")
    while not cpu.halted and cpu.instret < SWITCH_AT:
        cpu.step()
    saved = cpu.save_context()
    trample_extension_state(cpu)
    if restore_properly:
        cpu.restore_context(saved)
    else:
        # The naive OS restores only the classic integer registers.
        cpu.regs.restore(saved["regs"])
    while not cpu.halted:
        cpu.step()
    return "".join(runtime.output), cpu


def main():
    good_output, good_cpu = run(restore_properly=True)
    naive_output, naive_cpu = run(restore_properly=False)

    print("script output (proper OS):", good_output.strip())
    print("script output (naive OS): ", naive_output.strip())
    assert good_output == naive_output, "correctness must never depend " \
        "on the extension state"
    print()
    print("%-28s %12s %12s" % ("", "proper OS", "naive OS"))
    print("%-28s %12d %12d" % ("type-rule-table hits",
                               good_cpu.trt.hits, naive_cpu.trt.hits))
    print("%-28s %12d %12d" % ("type mispredictions",
                               good_cpu.trt.misses, naive_cpu.trt.misses))
    print("%-28s %12d %12d" % ("instructions executed",
                               good_cpu.instret, naive_cpu.instret))
    print()
    print("Saving the tags, special registers and TRT keeps the fast")
    print("path alive across the switch; dropping them is *safe* but")
    print("turns every later type check into a slow-path trip.")


if __name__ == "__main__":
    main()
