"""Compatibility shim: lets ``python setup.py develop`` (and older pip
editable flows) work on machines without the ``wheel`` package; the real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
