"""Interprocedural tag inference over MiniJS stack-VM bytecode.

Same structure as :mod:`repro.analysis.lua`, adapted to the stack
machine: the abstract state is ``(locals, operand stack)`` with one
:class:`~repro.analysis.lattice.AV` per slot.  The compiler emits
balanced stacks, so states meeting at a join always have equal depth;
if a depth mismatch ever appears the proto is conservatively abandoned
(no decisions).

Interprocedural summaries are per-proto *entry-locals* (the calling
convention maps pushed arguments onto local slots 0..nargs-1 and the
``CALL_initloop`` undefined-initialises the rest, so arity mismatches
fall out naturally), per-proto returns, and join-only global slots.
Hoisted function declarations give ``GETGLOBAL`` precise proto sets;
the builtin global slots are ``TOP``.

Global slots accessed by *no proto other than main* are promoted to
flow-sensitive pseudo-locals of main.  Top-level ``var``s compile to
globals in this subset, so without promotion every benchmark-shaped
program (all code at top level) joins the initial ``undefined`` into
each variable and nothing is provably numeric.  Promotion is sound
because main runs exactly once, only main's code reads or writes a
promoted slot, and native builtins never store to user globals.

The crucial JS-specific soundness fact: **int32 arithmetic promotes to
double on overflow**, so an ``ADD_II``-eligible site still produces an
``int ∨ double`` result.  Proven-int operand chains therefore rarely
survive past one operation — the honest consequence of JS number
semantics, and the reason the recovered fraction on integer-heavy JS
benchmarks is near zero while double-heavy ones elide fully.
``+`` with a possible string operand concatenates, so anything outside
``{int32, double}`` degrades an ADD result to ``TOP``.
"""

from repro.analysis.lattice import AV, BOT, TOP, func_av, join, tag_av
from repro.engines.ir import JsView
from repro.engines.js import layout
from repro.engines.js.opcodes import JsOp

_MAX_ROUNDS = 100

_DBL = tag_av(layout.TAG_DOUBLE)
_INT = tag_av(layout.TAG_INT32)
_UNDEF = tag_av(layout.TAG_UNDEFINED)
_BOOL = tag_av(layout.TAG_BOOLEAN)
_STR = tag_av(layout.TAG_STRING)
_NULL = tag_av(layout.TAG_NULL)
_OBJ = tag_av(layout.TAG_OBJECT)
_NUM = AV(tags=(layout.TAG_INT32, layout.TAG_DOUBLE))
_NUM_TAGS = frozenset((layout.TAG_INT32, layout.TAG_DOUBLE))

#: Names install_builtin_globals populates with natives/library objects.
_BUILTIN_NAMES = frozenset(
    ("print", "write", "substring", "charCodeAt", "Math", "String"))

_ARITH = (JsOp.ADD, JsOp.SUB, JsOp.MUL, JsOp.DIV, JsOp.MOD)
_COMPARES = (JsOp.EQ, JsOp.NE, JsOp.LT, JsOp.LE, JsOp.GT, JsOp.GE)


def _const_av(constant):
    # Mirrors JsRuntime.box: bool before int; ints promote to double
    # when they do not fit int32; None boxes as undefined.
    if isinstance(constant, bool):
        return _BOOL
    if isinstance(constant, int):
        return _INT if -(1 << 31) <= constant < (1 << 31) else _DBL
    if isinstance(constant, float):
        return _DBL
    if isinstance(constant, str):
        return _STR
    if constant is None:
        return _UNDEF
    return TOP


def _numeric(av):
    return not av.top and av.tags <= _NUM_TAGS and not av.funcs


class JsInference:
    """Whole-chunk fixpoint; ``run()`` then ``states``/``decide()``."""

    def __init__(self, chunk):
        self.chunk = chunk
        self.views = [JsView(p.code) for p in chunk.protos]
        self.const_avs = [[_const_av(c) for c in p.constants]
                          for p in chunk.protos]
        self.entry_locals = [[BOT] * max(p.num_locals, p.num_params, 1)
                             for p in chunk.protos]
        self.returns = [BOT] * len(chunk.protos)
        self.escaped = set()
        self.reachable = {0}
        self.globals = [self._initial_global(name) for name
                        in chunk.globals]
        # Promote main-exclusive global slots to pseudo-locals of main
        # (appended past its real locals) so they are tracked
        # flow-sensitively instead of through join-only summaries.
        self.promoted = {}
        accessors = self._global_accessors()
        main_entry = self.entry_locals[0]
        self._main_real_locals = len(main_entry)
        for slot, name in enumerate(chunk.globals):
            if accessors.get(slot, set()) <= {0}:
                self.promoted[slot] = len(main_entry)
                main_entry.append(self.globals[slot])
        self.states = {}
        self.bailed = set()
        self._changed = False

    def _global_accessors(self):
        """``{global slot: {proto indices that touch it}}`` over every
        proto's code, reachable or not."""
        accessors = {}
        for proto_index, view in enumerate(self.views):
            for instr in view.instrs:
                if instr.op in (JsOp.GETGLOBAL, JsOp.SETGLOBAL):
                    accessors.setdefault(instr.args[0],
                                         set()).add(proto_index)
        return accessors

    def _initial_global(self, name):
        if name in self.chunk.func_globals:
            return func_av(layout.TAG_OBJECT,
                           self.chunk.func_globals[name])
        if name in _BUILTIN_NAMES:
            return TOP
        return _UNDEF

    # -- summary contributions --------------------------------------------

    def _join_entry_local(self, proto_index, slot, value):
        entry = self.entry_locals[proto_index]
        if slot >= len(entry):
            return  # beyond the frame: dead extra argument
        merged = join(entry[slot], value)
        if merged != entry[slot]:
            entry[slot] = merged
            self._changed = True

    def _join_return(self, proto_index, value):
        merged = join(self.returns[proto_index], value)
        if merged != self.returns[proto_index]:
            self.returns[proto_index] = merged
            self._changed = True

    def _join_global(self, slot, value):
        merged = join(self.globals[slot], value)
        if merged != self.globals[slot]:
            self.globals[slot] = merged
            self._changed = True

    def _mark_reachable(self, proto_index):
        if proto_index not in self.reachable:
            self.reachable.add(proto_index)
            self._changed = True

    def _escape(self, value):
        for proto_index in value.protos():
            if proto_index not in self.escaped:
                self.escaped.add(proto_index)
                self._changed = True
            self._mark_reachable(proto_index)

    # -- per-proto abstract interpretation --------------------------------

    def _entry_state(self, proto_index):
        if proto_index in self.escaped:
            locals_ = [TOP] * len(self.entry_locals[proto_index])
        elif proto_index == 0:
            # startup_initloop undefined-initialises main's real
            # locals; promoted pseudo-locals start at the installed
            # global's initial value (hoisted function, builtin, or
            # undefined).
            locals_ = ([_UNDEF] * self._main_real_locals
                       + self.entry_locals[0][self._main_real_locals:])
        else:
            locals_ = list(self.entry_locals[proto_index])
        return (tuple(locals_), ())

    def analyze_proto(self, proto_index):
        view = self.views[proto_index]
        code_len = len(view)
        states = [None] * code_len
        if code_len == 0:
            return states
        states[0] = self._entry_state(proto_index)
        work = [0]
        while work:
            index = work.pop()
            in_state = states[index]
            for succ, out_state in self._transfer(proto_index, view,
                                                  index, in_state):
                if succ < 0 or succ >= code_len:
                    continue
                if states[succ] is None:
                    states[succ] = out_state
                    work.append(succ)
                    continue
                old_locals, old_stack = states[succ]
                new_locals, new_stack = out_state
                if len(old_stack) != len(new_stack):
                    # Unbalanced merge: give up on this proto.
                    self.bailed.add(proto_index)
                    return [None] * code_len
                merged = (tuple(join(a, b) for a, b
                                in zip(old_locals, new_locals)),
                          tuple(join(a, b) for a, b
                                in zip(old_stack, new_stack)))
                if merged != states[succ]:
                    states[succ] = merged
                    work.append(succ)
        return states

    def _transfer(self, pi, view, index, state):
        instr = view.instrs[index]
        op = JsOp(instr.op)
        imm = instr.args[0]
        locals_, stack = state
        nxt = index + 1

        if op is JsOp.UNDEF:
            return [(nxt, (locals_, stack + (_UNDEF,)))]
        if op is JsOp.NULL:
            return [(nxt, (locals_, stack + (_NULL,)))]
        if op is JsOp.PUSHBOOL:
            return [(nxt, (locals_, stack + (_BOOL,)))]
        if op is JsOp.PUSHK:
            consts = self.const_avs[pi]
            value = consts[imm] if 0 <= imm < len(consts) else TOP
            return [(nxt, (locals_, stack + (value,)))]
        if op is JsOp.GETLOCAL:
            value = locals_[imm] if 0 <= imm < len(locals_) else TOP
            return [(nxt, (locals_, stack + (value,)))]
        if op is JsOp.SETLOCAL:
            value = stack[-1]
            if 0 <= imm < len(locals_):
                locals_ = (locals_[:imm] + (value,) + locals_[imm + 1:])
            return [(nxt, (locals_, stack[:-1]))]
        if op is JsOp.GETGLOBAL:
            if pi == 0 and imm in self.promoted:
                value = locals_[self.promoted[imm]]
            else:
                value = (self.globals[imm]
                         if 0 <= imm < len(self.globals) else TOP)
            return [(nxt, (locals_, stack + (value,)))]
        if op is JsOp.SETGLOBAL:
            if pi == 0 and imm in self.promoted:
                slot = self.promoted[imm]
                locals_ = (locals_[:slot] + (stack[-1],)
                           + locals_[slot + 1:])
            elif 0 <= imm < len(self.globals):
                self._join_global(imm, stack[-1])
            return [(nxt, (locals_, stack[:-1]))]
        if op is JsOp.DUP:
            return [(nxt, (locals_, stack + (stack[-1],)))]
        if op is JsOp.POP:
            return [(nxt, (locals_, stack[:-1]))]
        if op in _ARITH:
            left, right = stack[-2], stack[-1]
            result = self._arith_result(op, left, right)
            return [(nxt, (locals_, stack[:-2] + (result,)))]
        if op is JsOp.NEG:
            value = stack[-1]
            result = _DBL if value.is_only(layout.TAG_DOUBLE) else _NUM
            return [(nxt, (locals_, stack[:-1] + (result,)))]
        if op in _COMPARES or op is JsOp.NOT:
            pops = 1 if op is JsOp.NOT else 2
            return [(nxt, (locals_, stack[:-pops] + (_BOOL,)))]
        if op is JsOp.TYPEOF:
            return [(nxt, (locals_, stack[:-1] + (_STR,)))]
        if op is JsOp.GETELEM:
            return [(nxt, (locals_, stack[:-2] + (TOP,)))]
        if op is JsOp.SETELEM:
            self._escape(stack[-1])
            return [(nxt, (locals_, stack[:-3]))]
        if op is JsOp.NEWARRAY or op is JsOp.NEWOBJ:
            return [(nxt, (locals_, stack + (_OBJ,)))]
        if op is JsOp.JUMP:
            return [(index + 1 + imm, (locals_, stack))]
        if op is JsOp.IFEQ or op is JsOp.IFNE:
            popped = (locals_, stack[:-1])
            return [(nxt, popped), (index + 1 + imm, popped)]
        if op is JsOp.CALL:
            return [(nxt, self._call(locals_, stack, imm))]
        if op is JsOp.RETURN:
            self._join_return(pi, stack[-1])
            return []
        if op is JsOp.RETURN_UNDEF:
            self._join_return(pi, _UNDEF)
            return []
        return [(nxt, (locals_, stack))]

    @staticmethod
    def _arith_result(op, left, right):
        if left.is_bot or right.is_bot:
            return BOT
        # The runtime's slow path computes float(result) unless *both*
        # operands unbox to Python ints, and box() never re-canonicalises
        # an integral double back to int32 — so one proven-double
        # operand forces a double result, whatever the other side is.
        either_dbl = (left.is_only(layout.TAG_DOUBLE)
                      or right.is_only(layout.TAG_DOUBLE))
        if op is JsOp.ADD:
            if not (_numeric(left) and _numeric(right)):
                return TOP  # '+' concatenates when a string is involved
            return _DBL if either_dbl else _NUM
        if op is JsOp.DIV:
            # Float division unconditionally (5/2 is 2.5): the result
            # is a raw double no matter what the operands were.
            return _DBL
        if op is JsOp.MOD:
            # The int32 fast path exists only when both operands are
            # int32-boxed; every other route is fmod -> double.
            return _NUM if (left.may(layout.TAG_INT32)
                            and right.may(layout.TAG_INT32)) else _DBL
        # SUB/MUL coerce everything to numbers; int32 results promote
        # to double on overflow, so int/int is still only "numeric".
        return _DBL if either_dbl else _NUM

    def _call(self, locals_, stack, nargs):
        callee = stack[-1 - nargs]
        args = stack[len(stack) - nargs:]
        if callee.top or callee.has_native:
            for arg in args:
                self._escape(arg)
        result = TOP if callee.top or callee.has_native else BOT
        for q in callee.protos():
            self._mark_reachable(q)
            for slot, arg in enumerate(args):
                self._join_entry_local(q, slot, arg)
            for slot in range(nargs, len(self.entry_locals[q])):
                self._join_entry_local(q, slot, _UNDEF)
            result = join(result, self.returns[q])
        if not callee.top and not callee.has_native and not callee.protos():
            result = TOP  # calling a non-function traps; stay safe
        return (locals_, stack[:-1 - nargs] + (result,))

    # -- driver -----------------------------------------------------------

    def run(self):
        for _ in range(_MAX_ROUNDS):
            self._changed = False
            for proto_index in sorted(self.reachable):
                self.analyze_proto(proto_index)
            if not self._changed:
                break
        self.states = {proto_index: self.analyze_proto(proto_index)
                       for proto_index in sorted(self.reachable)
                       if proto_index not in self.bailed}
        return self

    def decide(self):
        decisions = {}
        for proto_index, states in self.states.items():
            view = self.views[proto_index]
            per_proto = {}
            for index, state in enumerate(states):
                if state is None:
                    continue
                variant = self._decide_one(view, index, state)
                if variant is not None:
                    per_proto[index] = variant
            if per_proto:
                decisions[proto_index] = per_proto
        return decisions

    @staticmethod
    def _decide_one(view, index, state):
        instr = view.instrs[index]
        op = JsOp(instr.op)
        if op not in _ARITH and op not in _COMPARES:
            return None
        _locals, stack = state
        if len(stack) < 2:
            return None
        left, right = stack[-2], stack[-1]
        both_int = (left.is_only(layout.TAG_INT32)
                    and right.is_only(layout.TAG_INT32))
        both_dbl = (left.is_only(layout.TAG_DOUBLE)
                    and right.is_only(layout.TAG_DOUBLE))
        if op is JsOp.DIV:
            return "DIV_DD" if both_dbl else None
        if op is JsOp.MOD:
            return "MOD_II" if both_int else None
        if both_int:
            return "%s_II" % op.name
        if both_dbl:
            return "%s_DD" % op.name
        return None


def infer(chunk):
    """Run the fixpoint and return the :class:`JsInference`."""
    return JsInference(chunk).run()
