"""Quickened opcode assignments and the bytecode rewrite.

The elided family extends each engine's jump table with *quickened*
opcodes: guard-free (or value-check-only) variants of the hot
polymorphic handlers, installed by rewriting the opcode byte of
instructions the inference pass proved tag-stable.  The assignments
live here — one map per engine, opcode number to variant name — so the
analysis, the elided handler modules, the image builders (jump-table
capacity) and handler attribution all share a single source of truth.

Lua numbering starts at ``NUM_OPCODES`` (47) and exactly fills the
64-slot table the elided configuration allocates; the stock
configurations keep their 47-slot table so their image layout — and
therefore the committed perf-gate baseline — is untouched.  JS already
reserves 64 slots, so its quickened opcodes simply occupy free slots
from 34 up.

Naming: ``<BASE>_<KINDS>`` where KINDS is ``II`` (both int), ``FF``
(both Lua floats), ``DD`` (both JS doubles), or ``I``/``F`` for the
FORLOOP control-triple variants.  ``base_name`` recovers the base
bytecode, which attribution uses to fold quickened execution counts
into the base opcode's histogram bucket.
"""

from repro.engines.js.opcodes import NUM_OPCODES as JS_NUM_OPCODES
from repro.engines.lua.opcodes import NUM_OPCODES as LUA_NUM_OPCODES

LUA_QUICKENED = {
    47: "ADD_II", 48: "ADD_FF",
    49: "SUB_II", 50: "SUB_FF",
    51: "MUL_II", 52: "MUL_FF",
    53: "DIV_FF",
    54: "MOD_II", 55: "IDIV_II",
    56: "EQ_II", 57: "EQ_FF",
    58: "LT_II", 59: "LT_FF",
    60: "LE_II", 61: "LE_FF",
    62: "FORLOOP_I", 63: "FORLOOP_F",
}

JS_QUICKENED = {
    34: "ADD_II", 35: "ADD_DD",
    36: "SUB_II", 37: "SUB_DD",
    38: "MUL_II", 39: "MUL_DD",
    40: "DIV_DD",
    41: "MOD_II",
    42: "LT_II", 43: "LT_DD",
    44: "LE_II", 45: "LE_DD",
    46: "GT_II", 47: "GT_DD",
    48: "GE_II", 49: "GE_DD",
    50: "EQ_II", 51: "EQ_DD",
    52: "NE_II", 53: "NE_DD",
}

LUA_BY_NAME = {name: op for op, name in LUA_QUICKENED.items()}
JS_BY_NAME = {name: op for op, name in JS_QUICKENED.items()}

assert min(LUA_QUICKENED) == LUA_NUM_OPCODES
assert max(LUA_QUICKENED) < 64
assert min(JS_QUICKENED) >= 34 and max(JS_QUICKENED) < JS_NUM_OPCODES


def quickened_ops(engine):
    """``{opcode: variant name}`` for ``engine`` (a fresh dict)."""
    if engine == "lua":
        return dict(LUA_QUICKENED)
    if engine == "js":
        return dict(JS_QUICKENED)
    raise ValueError("unknown engine %r" % (engine,))


def base_name(variant):
    """The base bytecode a quickened variant specialises
    (``"ADD_II"`` → ``"ADD"``, ``"FORLOOP_F"`` → ``"FORLOOP"``)."""
    return variant.rsplit("_", 1)[0]


def rewrite(code, decisions, by_name):
    """Rewrite the opcode byte of ``code`` words per ``decisions``
    (``{instr_index: variant name}``); returns the rewrite count."""
    count = 0
    for index, variant in decisions.items():
        word = code[index]
        code[index] = (word & ~0xFF) | by_name[variant]
        count += 1
    return count
