"""The abstract tag lattice shared by both engines' inference passes.

An :class:`AV` (abstract value) describes every concrete value a
register / stack slot may hold at a program point:

* ``BOT`` — no value (unreachable, or never assigned on any path yet);
* a finite set of layout ``tags`` — the engine's type-tag ids (Lua
  ``TNUMINT``/``TNUMFLT``/... or the JS NaN-box tags), any of which the
  value may carry;
* a set of ``funcs`` — for function-typed values, which compiled protos
  (by index) the value may refer to, with :data:`NATIVE` standing for
  any host builtin.  Tracking proto sets is what lets the
  interprocedural pass resolve call targets and join argument tags
  into callee parameter summaries;
* ``TOP`` — any value at all, including any *escaped* function.

Join is set union (``TOP`` absorbing).  The lattice is finite for a
fixed program (tags and proto indices are finite), so the fixpoint
iteration in the engine passes terminates.
"""


#: Pseudo proto index for host builtins inside ``funcs`` sets.
NATIVE = -1


class AV:
    """One immutable abstract value."""

    __slots__ = ("top", "tags", "funcs")

    def __init__(self, tags=(), funcs=(), top=False):
        object.__setattr__(self, "top", bool(top))
        object.__setattr__(self, "tags",
                           frozenset() if top else frozenset(tags))
        object.__setattr__(self, "funcs",
                           frozenset() if top else frozenset(funcs))

    def __setattr__(self, name, value):
        raise AttributeError("AV is immutable")

    def __eq__(self, other):
        return (isinstance(other, AV) and self.top == other.top
                and self.tags == other.tags and self.funcs == other.funcs)

    def __hash__(self):
        return hash((self.top, self.tags, self.funcs))

    def __repr__(self):
        if self.top:
            return "AV(TOP)"
        if not self.tags and not self.funcs:
            return "AV(BOT)"
        parts = [repr(sorted(self.tags))]
        if self.funcs:
            parts.append("funcs=%r" % sorted(self.funcs))
        return "AV(%s)" % ", ".join(parts)

    @property
    def is_bot(self):
        return not self.top and not self.tags and not self.funcs

    def is_only(self, tag):
        """Proven: every concrete value carries exactly ``tag``."""
        return not self.top and self.tags == frozenset((tag,))

    def may(self, tag):
        """Whether some concrete value may carry ``tag``."""
        return self.top or tag in self.tags

    def protos(self):
        """Tracked user protos this value may refer to (excludes
        :data:`NATIVE`; meaningless when ``top``)."""
        return frozenset(f for f in self.funcs if f != NATIVE)

    @property
    def has_native(self):
        return NATIVE in self.funcs


TOP = AV(top=True)
BOT = AV()


def tag_av(tag):
    return AV(tags=(tag,))


def func_av(fun_tag, proto_index):
    return AV(tags=(fun_tag,), funcs=(proto_index,))


def native_av(fun_tag):
    return AV(tags=(fun_tag,), funcs=(NATIVE,))


def join(a, b):
    if a is b:
        return a
    if a.top or b.top:
        return TOP
    if a.is_bot:
        return b
    if b.is_bot:
        return a
    return AV(tags=a.tags | b.tags, funcs=a.funcs | b.funcs)


def join_all(values):
    result = BOT
    for value in values:
        result = join(result, value)
    return result
