"""Static tag inference over predecoded guest bytecode.

The pass proves, per bytecode site, that operand tags are stable —
abstract interpretation on the :mod:`repro.analysis.lattice` AV domain
over the shared :mod:`repro.engines.ir` views, one engine-specific
transfer relation each (:mod:`repro.analysis.lua`,
:mod:`repro.analysis.js`) — and *quickens* proven sites: the opcode
byte is rewritten to a guard-free handler variant from
:mod:`repro.analysis.quickening`.  Unproven sites keep their base
opcode and run the normal software-guarded handler, so the elided
configuration is exactly "software checks minus the ones a static
proof discharges" — the transient-elision point of the gradual-typing
comparison (paper Section 6.4 / Figure 12).

Entry point: :func:`quicken_chunk`, invoked through the elided
family's :class:`~repro.engines.configs.HandlerPolicy` after
compilation (chunks are compiled fresh per ``prepare()``, so the
in-place rewrite never leaks into other configurations).
"""

from repro.analysis import quickening
from repro.analysis.lattice import AV, BOT, NATIVE, TOP, join, join_all

__all__ = ["AV", "BOT", "NATIVE", "TOP", "join", "join_all",
           "quicken_chunk", "quickening"]


def quicken_chunk(engine, chunk):
    """Infer tags for ``chunk`` and rewrite proven sites in place.

    Returns ``{"sites": total rewrites, "per_op": {variant: count}}``
    for attribution/diagnostics.
    """
    if engine == "lua":
        from repro.analysis import lua as engine_pass
        by_name = quickening.LUA_BY_NAME
    elif engine == "js":
        from repro.analysis import js as engine_pass
        by_name = quickening.JS_BY_NAME
    else:
        raise ValueError("unknown engine %r" % (engine,))
    decisions = engine_pass.infer(chunk).decide()
    per_op = {}
    total = 0
    for proto_index, per_proto in decisions.items():
        code = chunk.protos[proto_index].code
        total += quickening.rewrite(code, per_proto, by_name)
        for variant in per_proto.values():
            per_op[variant] = per_op.get(variant, 0) + 1
    return {"sites": total, "per_op": per_op}
