"""Interprocedural tag inference over MiniLua register-VM bytecode.

Per-function abstract interpretation (one :class:`~repro.analysis
.lattice.AV` per register, worklist join at control-flow merges) under
whole-chunk summaries computed to a fixpoint:

* ``params[p]`` — join of argument values over every resolved call
  site of proto ``p`` (``TOP`` for escaped protos);
* ``returns[p]`` — join of ``p``'s returned values;
* ``globals[slot]`` — join of the install-time initial value and every
  ``SETGLOBAL`` store anywhere in the chunk.

Function values are tracked as proto sets (``AV.funcs``), so direct
recursion (``LOADK FunctionConst``), global function declarations and
higher-order locals all resolve; a function value reaching an
untracked sink — a table store, or an argument/callee of an
unresolvable or native call — *escapes* and its parameters degrade to
``TOP``.

The abstract transfer functions mirror ``runtime._arith`` exactly:
integer arithmetic wraps at 64 bits (so int ⊕ int stays ``TNUMINT``
with no overflow escape), ``/`` and ``^`` always produce floats, the
slow path coerces strings to numbers (so an arith result is always a
number — errors halt the VM and have no out-state), ``FORPREP``'s host
path coerces all three control slots to float, and table/property
loads are ``TOP`` (the layout proves nothing about element types).
"""

from repro.analysis.lattice import (
    AV,
    BOT,
    TOP,
    join,
    native_av,
    tag_av,
)
from repro.engines.ir import LuaView
from repro.engines.lua import layout
from repro.engines.lua.compiler import FunctionConst
from repro.engines.lua.opcodes import Op, rk_index, rk_is_constant

_MAX_ROUNDS = 100

_NIL = tag_av(layout.TNIL)
_BOOL = tag_av(layout.TBOOL)
_INT = tag_av(layout.TNUMINT)
_FLT = tag_av(layout.TNUMFLT)
_STR = tag_av(layout.TSTR)
_TAB = tag_av(layout.TTAB)
_NUM = AV(tags=(layout.TNUMINT, layout.TNUMFLT))

#: Builtin globals the image installer populates (runtime.
#: install_builtin_globals): native functions and library tables.
_BUILTIN_FUNCS = ("print", "tostring", "type")
_BUILTIN_TABLES = ("io", "math", "string")

_ARITH = (Op.ADD, Op.SUB, Op.MUL)
_INT_ONLY = (Op.BAND, Op.BOR, Op.BXOR, Op.SHL, Op.SHR)


def _const_av(constant):
    if isinstance(constant, FunctionConst):
        return AV(tags=(layout.TFUN,), funcs=(constant.proto_index,))
    if isinstance(constant, bool):
        return _BOOL
    if isinstance(constant, int):
        return _INT
    if isinstance(constant, float):
        return _FLT
    if isinstance(constant, str):
        return _STR
    if constant is None:
        return _NIL
    return TOP


def _numeric_result(x, y):
    """ADD/SUB/MUL/MOD/IDIV result: int when both proven int (64-bit
    wrap, zero divisors raise host-side), float when both proven
    float; otherwise any number (string coercion included)."""
    if x.is_bot or y.is_bot:
        return BOT
    if x.is_only(layout.TNUMINT) and y.is_only(layout.TNUMINT):
        return _INT
    if x.is_only(layout.TNUMFLT) and y.is_only(layout.TNUMFLT):
        return _FLT
    if x.may(layout.TNUMINT) and y.may(layout.TNUMINT):
        return _NUM
    return _FLT


class LuaInference:
    """Whole-chunk fixpoint; ``run()`` then ``states``/``decide()``."""

    def __init__(self, chunk):
        self.chunk = chunk
        self.views = [LuaView(p.code) for p in chunk.protos]
        self.const_avs = [[_const_av(c) for c in p.constants]
                          for p in chunk.protos]
        self.params = [[BOT] * p.num_params for p in chunk.protos]
        self.returns = [BOT] * len(chunk.protos)
        self.escaped = set()
        self.reachable = {0}
        self.globals = [self._initial_global(name)
                        for name in chunk.globals]
        self.states = {}
        self._changed = False

    @staticmethod
    def _initial_global(name):
        if name in _BUILTIN_FUNCS:
            return native_av(layout.TFUN)
        if name in _BUILTIN_TABLES:
            return _TAB
        return _NIL

    # -- summary contributions (monotone joins) ---------------------------

    def _join_param(self, proto_index, slot, value):
        params = self.params[proto_index]
        if slot >= len(params):
            return  # extra argument: dropped by the calling convention
        merged = join(params[slot], value)
        if merged != params[slot]:
            params[slot] = merged
            self._changed = True

    def _join_return(self, proto_index, value):
        merged = join(self.returns[proto_index], value)
        if merged != self.returns[proto_index]:
            self.returns[proto_index] = merged
            self._changed = True

    def _join_global(self, slot, value):
        merged = join(self.globals[slot], value)
        if merged != self.globals[slot]:
            self.globals[slot] = merged
            self._changed = True

    def _mark_reachable(self, proto_index):
        if proto_index not in self.reachable:
            self.reachable.add(proto_index)
            self._changed = True

    def _escape(self, value):
        """A function value reached an untracked sink."""
        for proto_index in value.protos():
            if proto_index not in self.escaped:
                self.escaped.add(proto_index)
                self._changed = True
            self._mark_reachable(proto_index)

    # -- per-proto abstract interpretation --------------------------------

    def _entry_state(self, proto_index):
        proto = self.chunk.protos[proto_index]
        nregs = max(proto.nregs, proto.num_params)
        if proto_index == 0:
            # Main runs on zero-filled register-stack memory: every
            # slot reads as nil before first assignment.
            state = [_NIL] * nregs
        else:
            # Callee frames overlay the caller's register stack, so
            # unwritten non-param registers hold arbitrary leftovers.
            state = [TOP] * nregs
        params = self.params[proto_index]
        for slot in range(proto.num_params):
            value = TOP if proto_index in self.escaped else params[slot]
            if slot < nregs:
                state[slot] = value
        return state

    def _rk(self, proto_index, state, operand):
        if rk_is_constant(operand):
            consts = self.const_avs[proto_index]
            idx = rk_index(operand)
            return consts[idx] if idx < len(consts) else TOP
        return state[operand] if operand < len(state) else TOP

    def analyze_proto(self, proto_index):
        """In-states per instruction under the current summaries."""
        view = self.views[proto_index]
        code_len = len(view)
        states = [None] * code_len
        if code_len == 0:
            return states
        states[0] = self._entry_state(proto_index)
        work = [0]
        while work:
            index = work.pop()
            in_state = states[index]
            for succ, out_state in self._transfer(proto_index, view,
                                                  index, in_state):
                if succ < 0 or succ >= code_len:
                    continue
                if states[succ] is None:
                    states[succ] = list(out_state)
                    work.append(succ)
                else:
                    merged = [join(a, b)
                              for a, b in zip(states[succ], out_state)]
                    if merged != states[succ]:
                        states[succ] = merged
                        work.append(succ)
        return states

    def _transfer(self, pi, view, index, state):
        """``[(successor, out_state), ...]`` for one instruction; also
        contributes to the interprocedural summaries."""
        instr = view.instrs[index]
        op = Op(instr.op)
        a, b, c = instr.args
        out = list(state)
        nxt = index + 1

        def setreg(slot, value):
            if slot < len(out):
                out[slot] = value

        if op is Op.MOVE:
            setreg(a, state[b] if b < len(state) else TOP)
        elif op is Op.LOADK:
            consts = self.const_avs[pi]
            setreg(a, consts[b] if b < len(consts) else TOP)
        elif op is Op.LOADNIL:
            setreg(a, _NIL)
        elif op is Op.LOADBOOL:
            setreg(a, _BOOL)
        elif op is Op.GETGLOBAL:
            setreg(a, self.globals[b] if b < len(self.globals) else TOP)
        elif op is Op.SETGLOBAL:
            if b < len(self.globals):
                self._join_global(b, state[a] if a < len(state) else TOP)
        elif op in _ARITH or op is Op.MOD or op is Op.IDIV:
            x = self._rk(pi, state, b)
            y = self._rk(pi, state, c)
            setreg(a, _numeric_result(x, y))
        elif op is Op.DIV or op is Op.POW:
            setreg(a, _FLT)
        elif op in _INT_ONLY or op is Op.BNOT or op is Op.LEN:
            setreg(a, _INT)
        elif op is Op.UNM:
            x = state[b] if b < len(state) else TOP
            if x.is_bot:
                setreg(a, BOT)
            elif x.is_only(layout.TNUMINT):
                setreg(a, _INT)
            elif x.is_only(layout.TNUMFLT):
                setreg(a, _FLT)
            else:
                setreg(a, _NUM)
        elif op is Op.CONCAT:
            setreg(a, _STR)
        elif op is Op.NOT or op is Op.EQ or op is Op.LT or op is Op.LE:
            setreg(a, _BOOL)
        elif op is Op.NEWTABLE:
            setreg(a, _TAB)
        elif op is Op.GETTABLE:
            setreg(a, TOP)
        elif op is Op.SETTABLE:
            # The stored value leaves the tracked region.
            self._escape(self._rk(pi, state, c))
        elif op is Op.JMP:
            return [(index + 1 + c, out)]
        elif op is Op.JMPF or op is Op.JMPT:
            return [(nxt, out), (index + 1 + c, out)]
        elif op is Op.CALL:
            return [(nxt, self._call(pi, state, out, a, b))]
        elif op is Op.RETURN:
            self._join_return(pi, state[a] if a < len(state) else TOP)
            return []
        elif op is Op.RETURN0:
            self._join_return(pi, _NIL)
            return []
        elif op is Op.FORPREP:
            return [(index + 1 + c, self._forprep(state, out, a))]
        elif op is Op.FORLOOP:
            return self._forloop(state, out, a, index, c)
        elif not view._implemented(op):
            return []  # traps to the error stub
        return [(nxt, out)]

    def _call(self, pi, state, out, a, nargs):
        callee = state[a] if a < len(state) else TOP
        args = [state[a + 1 + k] if a + 1 + k < len(state) else TOP
                for k in range(nargs)]
        unresolved = callee.top or callee.has_native
        if unresolved:
            # Natives may inspect anything; a TOP callee may be any
            # escaped function.  Functions among the arguments escape.
            for arg in args:
                self._escape(arg)
        result = TOP if unresolved else BOT
        for q in callee.protos():
            self._mark_reachable(q)
            callee_params = self.params[q]
            for slot, arg in enumerate(args):
                self._join_param(q, slot, arg)
            for slot in range(len(args), len(callee_params)):
                # Missing arguments read the callee frame unwritten.
                self._join_param(q, slot, TOP)
            result = join(result, self.returns[q])
        if a < len(out):
            out[a] = result
        # The callee frame overlays every register above the call base.
        for slot in range(a + 1, len(out)):
            out[slot] = TOP
        return out

    def _forprep(self, state, out, a):
        triple = [state[a + k] if a + k < len(state) else TOP
                  for k in range(3)]
        all_int = all(v.is_only(layout.TNUMINT) for v in triple)
        if all_int:
            # Inline priming: idx -= step, all-integer.
            if a < len(out):
                out[a] = _INT
        else:
            # Host priming coerces all three slots to float; if the
            # all-int path is also possible the index may stay int.
            may_int = all(v.may(layout.TNUMINT) for v in triple)
            idx = _NUM if may_int else _FLT
            if a < len(out):
                out[a] = idx
            for k in (1, 2):
                if a + k < len(out):
                    out[a + k] = (join(out[a + k], _FLT) if may_int
                                  else _FLT)
        return out

    def _forloop(self, state, out, a, index, offset):
        triple = [state[a + k] if a + k < len(state) else TOP
                  for k in range(3)]
        all_int = all(v.is_only(layout.TNUMINT) for v in triple)
        all_flt = all(v.is_only(layout.TNUMFLT) for v in triple)
        if all_int:
            kind = _INT
        elif all_flt:
            kind = _FLT
        else:
            kind = _NUM
        # The advanced index is stored on both paths (before the limit
        # compare); the user variable only when the loop continues.
        if a < len(out):
            out[a] = kind
        back = list(out)
        if a + 3 < len(back):
            back[a + 3] = kind
        return [(index + 1, out), (index + 1 + offset, back)]

    # -- driver -----------------------------------------------------------

    def run(self):
        for _ in range(_MAX_ROUNDS):
            self._changed = False
            for proto_index in sorted(self.reachable):
                self.analyze_proto(proto_index)
            if not self._changed:
                break
        # Final pass under the converged summaries: the states any
        # elision decision is justified by.
        self.states = {proto_index: self.analyze_proto(proto_index)
                       for proto_index in sorted(self.reachable)}
        return self

    def decide(self):
        """``{proto_index: {instr_index: variant}}`` — every site whose
        in-state proves the operand tags a quickened handler assumes."""
        decisions = {}
        for proto_index, states in self.states.items():
            view = self.views[proto_index]
            per_proto = {}
            for index, state in enumerate(states):
                if state is None:
                    continue
                variant = self._decide_one(proto_index, view, index, state)
                if variant is not None:
                    per_proto[index] = variant
            if per_proto:
                decisions[proto_index] = per_proto
        return decisions

    def _decide_one(self, pi, view, index, state):
        instr = view.instrs[index]
        op = Op(instr.op)
        a, b, c = instr.args
        int_t, flt_t = layout.TNUMINT, layout.TNUMFLT

        if op in _ARITH or op in (Op.EQ, Op.LT, Op.LE):
            x = self._rk(pi, state, b)
            y = self._rk(pi, state, c)
            if x.is_only(int_t) and y.is_only(int_t):
                return "%s_II" % op.name
            if x.is_only(flt_t) and y.is_only(flt_t):
                return "%s_FF" % op.name
            return None
        if op is Op.DIV:
            x = self._rk(pi, state, b)
            y = self._rk(pi, state, c)
            if x.is_only(flt_t) and y.is_only(flt_t):
                return "DIV_FF"
            return None
        if op is Op.MOD or op is Op.IDIV:
            x = self._rk(pi, state, b)
            y = self._rk(pi, state, c)
            if x.is_only(int_t) and y.is_only(int_t):
                return "%s_II" % op.name
            return None
        if op is Op.FORLOOP:
            triple = [state[a + k] if a + k < len(state) else TOP
                      for k in range(3)]
            if all(v.is_only(int_t) for v in triple):
                return "FORLOOP_I"
            if all(v.is_only(flt_t) for v in triple):
                return "FORLOOP_F"
            return None
        return None


def infer(chunk):
    """Run the fixpoint and return the :class:`LuaInference`."""
    return LuaInference(chunk).run()
