"""Profile builders: turn one telemetry-enabled run into attribution.

This is the evaluation lens of the paper's Sections 6-7 applied to our
own simulator: *where do the cycles go* (per-bytecode flat and
call-inclusive profiles) and *which type checks miss* (Type Rule Table
attribution keyed by the exact ``(opcode, t1, t2)`` tuple that missed —
the same granularity Checked Load and the tagging-scheme comparisons
argue from).

:func:`run_profile` is the engine-agnostic driver behind
``repro profile``; the ``render_*`` helpers produce the plain-text
tables and the Chrome trace/JSONL outputs ride along as sinks.
"""

import pathlib
from dataclasses import dataclass, field

from repro.bench.report import format_table
from repro.sim.trt import attribution_keys
from repro.telemetry.core import PROFILE_CATEGORIES, Telemetry, attach_cpu
from repro.telemetry.sinks import ChromeTraceSink, CollectorSink, JsonlSink

#: Slot name used for instructions retired before the first bytecode
#: handler entry (interpreter startup) — kept explicit so the per-opcode
#: totals reconcile *exactly* with ``Counters.core_instructions``.
STARTUP = "(startup)"

#: Bytecode names opening/closing a guest call frame, per engine.
CALL_OPS = {"lua": frozenset({"CALL", "TFORCALL"}),
            "js": frozenset({"CALL"})}
RETURN_OPS = {"lua": frozenset({"RETURN", "RETURN0", "TAILCALL"}),
              "js": frozenset({"RETURN", "RETURN_UNDEF"})}


def tag_names(engine):
    """Human names for the engine's type-tag encoding."""
    if engine == "lua":
        from repro.engines.lua import layout
        return {layout.TNIL: "nil", layout.TBOOL: "bool",
                layout.TNUMFLT: "float", layout.TSTR: "str",
                layout.TTAB: "table", layout.TFUN: "func",
                layout.TNUMINT: "int"}
    from repro.engines.js import layout
    return {layout.TAG_DOUBLE: "double", layout.TAG_INT32: "int32",
            layout.TAG_UNDEFINED: "undef", layout.TAG_BOOLEAN: "bool",
            layout.TAG_STRING: "str", layout.TAG_NULL: "null",
            layout.TAG_OBJECT: "object"}


@dataclass
class OpcodeRow:
    """One row of the flat per-opcode profile."""

    name: str
    executions: int
    instructions: int
    cycles: int
    type_hits: int = 0
    type_misses: int = 0

    @property
    def instructions_per_execution(self):
        return self.instructions / self.executions if self.executions \
            else 0.0

    @property
    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0


@dataclass
class ProfileResult:
    """Everything ``repro profile`` reports for one run."""

    engine: str
    config: str
    output: str
    counters: object
    telemetry: Telemetry
    rows: list = field(default_factory=list)
    trt_misses: dict = field(default_factory=dict)  # key str -> count
    trt_hits: dict = field(default_factory=dict)
    call_inclusive: dict = field(default_factory=dict)

    @property
    def total_profiled_instructions(self):
        """Sum of every flat row — reconciles exactly with
        ``counters.core_instructions`` (the differential test's
        anchor)."""
        return sum(row.instructions for row in self.rows)

    @property
    def total_profiled_cycles(self):
        return sum(row.cycles for row in self.rows)


def resolve_target(target, engine=None):
    """Resolve a profile target to ``(engine, source, label)``.

    ``target`` is either a benchmark name from Table 7 or a path to a
    ``.lua``/``.js`` script (e.g. ``examples/hot_loop.lua``); for a
    path the engine is inferred from the suffix unless given.
    """
    from repro.bench.workloads import WORKLOADS

    path = pathlib.Path(target)
    if target in WORKLOADS:
        engine = engine or "lua"
        spec = WORKLOADS[target]
        source = spec.lua_source() if engine == "lua" else spec.js_source()
        return engine, source, target
    if path.suffix in (".lua", ".js"):
        if not path.is_file():
            raise FileNotFoundError("no such script: %s" % target)
        engine = engine or ("lua" if path.suffix == ".lua" else "js")
        return engine, path.read_text(), path.name
    raise ValueError(
        "target %r is neither a benchmark (%s) nor a .lua/.js script"
        % (target, ", ".join(sorted(WORKLOADS))))


def build_rows(counters):
    """Flat per-opcode rows from a run's counters.

    The flat cycle/instruction attribution is computed by the timing
    loop at handler-entry boundaries (see ``Machine.run``), so these
    rows are *identical* whether telemetry was enabled or not — the
    property that keeps ``repro profile`` and ``repro trace`` (and the
    cached sweep) in agreement.
    """
    rows = []
    names = set(counters.bytecode_flat_instructions) \
        | set(counters.bytecode_flat_cycles)
    for name in names:
        rows.append(OpcodeRow(
            name=name,
            executions=counters.bytecode_counts.get(name, 0),
            instructions=counters.bytecode_flat_instructions.get(name, 0),
            cycles=counters.bytecode_flat_cycles.get(name, 0),
            type_hits=counters.bytecode_type_hits.get(name, 0),
            type_misses=counters.bytecode_type_misses.get(name, 0)))
    rows.sort(key=lambda row: (-row.cycles, row.name))
    return rows


def call_inclusive_profile(events, engine):
    """Call-inclusive (cumulative) cycles per CALL site.

    Walks the bytecode span stream pairing CALL-like opcodes with their
    matching RETURN-like opcodes to measure guest-call frames: the
    inclusive cost of a CALL is everything from its handler entry to
    the end of the handler that returns to it.  Tail calls unwind the
    frame they replace, so attribution stays bounded; an unmatched
    RETURN (top-level exit) is ignored.

    Returns ``{opcode: {"frames": n, "inclusive_cycles": c}}``.
    """
    call_ops = CALL_OPS.get(engine, frozenset())
    return_ops = RETURN_OPS.get(engine, frozenset())
    stack = []  # (opcode name, entry ts)
    profile = {}
    last_ts = 0
    for event in events:
        if event.get("cat") != "bytecode" or event.get("ph") != "B":
            continue
        name = event["name"]
        ts = event["ts"]
        last_ts = ts
        if name in call_ops:
            stack.append((name, ts))
        elif name in return_ops and stack:
            opener, start = stack.pop()
            entry = profile.setdefault(
                opener, {"frames": 0, "inclusive_cycles": 0})
            entry["frames"] += 1
            entry["inclusive_cycles"] += ts - start
    # Frames still open at program exit extend to the last observed ts.
    while stack:
        opener, start = stack.pop()
        entry = profile.setdefault(
            opener, {"frames": 0, "inclusive_cycles": 0})
        entry["frames"] += 1
        entry["inclusive_cycles"] += last_ts - start
    return profile


def run_profile(target, engine=None, config="typed", scale=None,
                chrome_trace=None, events_path=None,
                max_instructions=200_000_000, collect_events=True):
    """Run one script/benchmark with full telemetry and build the
    profile.  ``chrome_trace``/``events_path`` optionally attach the
    file sinks; ``scale`` only applies to benchmark targets."""
    engine, source, _label = resolve_target(target, engine)
    if engine == "lua":
        from repro.engines.lua import vm as engine_vm
    else:
        from repro.engines.js import vm as engine_vm
    from repro.bench.workloads import WORKLOADS
    from repro.uarch.pipeline import Machine

    if scale is not None and target in WORKLOADS:
        spec = WORKLOADS[target]
        source = spec.lua_source(scale) if engine == "lua" \
            else spec.js_source(scale)

    sinks = []
    collector = None
    if collect_events:
        collector = CollectorSink()
        sinks.append(collector)
    if events_path:
        sinks.append(JsonlSink(events_path))
    if chrome_trace:
        sinks.append(ChromeTraceSink(chrome_trace))
    telemetry = Telemetry(sinks=sinks, categories=PROFILE_CATEGORIES)

    cpu, runtime, _program = engine_vm.prepare(source, config)
    attach_cpu(telemetry, cpu)
    attribution = engine_vm.interpreter_program(config)[1]
    machine = Machine(cpu, attribution=attribution, telemetry=telemetry)
    counters = machine.run(max_instructions=max_instructions)
    telemetry.close()

    result = ProfileResult(
        engine=engine, config=config, output="".join(runtime.output),
        counters=counters, telemetry=telemetry)
    result.rows = build_rows(counters)
    result.trt_misses = dict(counters.trt_miss_keys)
    result.trt_hits = attribution_keys(
        getattr(cpu.trt, "hit_keys", None) or {})
    if collector is not None:
        result.call_inclusive = call_inclusive_profile(
            collector.events, engine)
    return result


# -- rendering ----------------------------------------------------------------

def render_opcode_table(result, top=20):
    """The flat per-opcode hot table, cycle-sorted, with an exact
    reconciliation footer."""
    counters = result.counters
    rows = []
    shown_cycles = shown_instrs = 0
    for row in result.rows[:top]:
        if not row.cycles and not row.instructions:
            break
        shown_cycles += row.cycles
        shown_instrs += row.instructions
        inclusive = result.call_inclusive.get(row.name)
        rows.append((
            row.name, row.executions, row.instructions,
            "%.1f" % row.instructions_per_execution, row.cycles,
            "%.2f" % row.cpi,
            "%.1f%%" % (100.0 * row.cycles / counters.cycles
                        if counters.cycles else 0.0),
            inclusive["inclusive_cycles"] if inclusive else "",
        ))
    rest_cycles = result.total_profiled_cycles - shown_cycles
    rest_instrs = result.total_profiled_instructions - shown_instrs
    if rest_cycles or rest_instrs:
        rows.append(("(other)", "", rest_instrs, "", rest_cycles, "",
                     "%.1f%%" % (100.0 * rest_cycles / counters.cycles
                                 if counters.cycles else 0.0), ""))
    rows.append(("total", sum(counters.bytecode_counts.values()),
                 result.total_profiled_instructions, "",
                 result.total_profiled_cycles, "", "100.0%", ""))
    table = format_table(
        ["bytecode", "execs", "instrs", "i/exec", "cycles", "cpi",
         "cyc%", "incl.cycles"],
        rows,
        title="Per-opcode flat profile [%s/%s] "
              "(flat = handler entry to next entry; incl. = guest "
              "call frame)" % (result.engine, result.config))
    table += ("\nhost (native library): %d charged instructions over "
              "%d calls" % (counters.host_instructions,
                            counters.host_calls))
    return table


def render_trt_table(result, top=20):
    """TRT attribution: which ``(opcode, t1, t2)`` keys hit and missed."""
    names = tag_names(result.engine)

    def pretty(key):
        opcode, t1, t2 = key.split("/")
        return "%s(%s, %s)" % (opcode,
                               names.get(int(t1), "tag%s" % t1),
                               names.get(int(t2), "tag%s" % t2))

    total_misses = sum(result.trt_misses.values()) or 1
    rows = []
    for key, count in sorted(result.trt_misses.items(),
                             key=lambda kv: (-kv[1], kv[0]))[:top]:
        rows.append((pretty(key), "miss", count,
                     "%.1f%%" % (100.0 * count / total_misses)))
    for key, count in sorted(result.trt_hits.items(),
                             key=lambda kv: (-kv[1], kv[0]))[:top]:
        rows.append((pretty(key), "hit", count, ""))
    if not rows:
        rows.append(("(no TRT lookups)", "", 0, ""))
    table = format_table(
        ["(opcode, t1, t2)", "outcome", "count", "miss share"], rows,
        title="Type Rule Table attribution [%s/%s]"
              % (result.engine, result.config))
    table += "\nTRT: %d hits, %d misses (hit rate %.4f)" % (
        result.counters.type_hits, result.counters.type_misses,
        result.counters.type_hit_rate)
    return table
