"""The event bus at the heart of :mod:`repro.telemetry`.

Design constraint (and the reason this module is small): the simulator
retires millions of instructions per second of host time, so telemetry
must cost *nothing* when it is off.  That is achieved structurally, not
with a global flag check in the hot loop:

* components hold a ``telemetry`` reference that is ``None`` by default,
  and every instrumentation point on a *rare* path (type mispredict,
  overflow trap, host call, cache miss, pipeline stall) is guarded by a
  single ``is not None`` test inside that already-rare branch;
* instrumentation on *hot* paths (instruction retire, TRT lookup) is
  attached by **rebinding** — :func:`attach_cpu` shadows ``cpu.step``
  with an emitting wrapper and
  :meth:`~repro.sim.trt.TypeRuleTable.attach_telemetry` shadows
  ``trt.lookup`` — so the disabled path executes the exact same
  bytecode it would without the telemetry layer loaded.

Events are plain dicts with at least ``cat`` (category), ``name`` and
``ts`` (timestamp).  The timestamp comes from the bus's *clock*: the
timing layer installs a cycle-accurate clock
(:meth:`Telemetry.set_clock`), bare functional runs fall back to the
retired-instruction count, and both are monotonic — which is what makes
the Chrome-trace sink's output well-formed.
"""

#: Every event category the instrumentation points emit.
CATEGORIES = frozenset([
    "retire",      # one event per retired instruction (Cpu.step wrapper)
    "bytecode",    # interpreter dispatch: B/E span per bytecode handler
    "trt",         # Type Rule Table hit/miss with the (opcode, t1, t2) key
    "mispredict",  # type misprediction redirect to R_hdl
    "trap",        # integer overflow trap (NaN-boxed layouts)
    "hostcall",    # ecall into a native host service
    "cache",       # I-/D-cache miss
    "stall",       # load-use interlock stall
    "fault",       # fault-injection: one event per applied injection
    "degradation",  # self-healing fallback engaged (e.g. block compile)
])

#: The categories ``repro profile`` enables by default: everything
#: except per-retire events, which multiply event volume by the
#: instruction count and are only needed by the instruction tracer.
PROFILE_CATEGORIES = frozenset(CATEGORIES - {"retire"})


# -- degradation ledger ------------------------------------------------------
#
# Self-healing fallbacks (a basic block that failed to compile, a pool
# worker quarantined to the serial path, a cache entry moved aside) fire
# on paths where no Telemetry bus is attached — the block engine only
# runs when telemetry is *off*.  They report here instead: a bounded
# process-wide ledger plus a one-line ``logging`` warning, so a degraded
# run is never silent but also never crashes or grows without bound.

import logging

_LOG = logging.getLogger("repro.telemetry")

#: Maximum ledger length; older entries are dropped first.
DEGRADATION_LIMIT = 256

_DEGRADATIONS = []


def record_degradation(event):
    """Record one degradation event (a plain dict with at least
    ``name``) in the process-wide ledger and log it once.

    Any attached bus can mirror the ledger by passing ``telemetry`` —
    callers that have a live bus emit there as well.
    """
    event = dict(event)
    event.setdefault("cat", "degradation")
    if len(_DEGRADATIONS) >= DEGRADATION_LIMIT:
        del _DEGRADATIONS[0]
    _DEGRADATIONS.append(event)
    _LOG.warning("degraded: %s (%s)", event.get("name"),
                 ", ".join("%s=%s" % (k, v) for k, v in sorted(event.items())
                           if k not in ("cat", "name")))
    return event


def degradations():
    """Snapshot of the process-wide degradation ledger."""
    return list(_DEGRADATIONS)


def clear_degradations():
    _DEGRADATIONS.clear()


def _zero_clock():
    return 0


class Telemetry:
    """An event bus: a set of enabled categories fanned out to sinks.

    ``categories`` limits what the instrumentation points emit (an
    empty set makes every ``wants`` query false, so nothing is ever
    allocated); ``sinks`` receive each event dict in registration
    order.  The bus never mutates simulated state — removing it from a
    run must not change a single counter (tested by
    ``tests/test_telemetry.py::test_telemetry_changes_no_counters``).
    """

    def __init__(self, sinks=(), categories=PROFILE_CATEGORIES):
        self.sinks = list(sinks)
        self.categories = frozenset(categories)
        self.events_emitted = 0
        self.events_by_category = {}
        self._clock = _zero_clock

    # -- wiring -------------------------------------------------------------
    def wants(self, category):
        """True when ``category`` is enabled (instrumentation points
        check this once at attach/setup time, not per event)."""
        return category in self.categories

    def add_sink(self, sink):
        self.sinks.append(sink)
        return sink

    def set_clock(self, clock):
        """Install the timestamp source (a zero-argument callable).

        The timing layer passes a closure over its cycle counter; the
        functional layer falls back to ``cpu.instret``.  Timestamps
        must be monotonic for the Chrome-trace sink to be loadable.
        """
        self._clock = clock

    def now(self):
        return self._clock()

    # -- emission -----------------------------------------------------------
    def emit(self, event):
        """Dispatch one event dict to every sink.

        The caller only constructs ``event`` when the category is
        enabled, so the disabled path allocates nothing.  ``ts`` is
        stamped from the clock unless the caller already set it.
        """
        if "ts" not in event:
            event["ts"] = self._clock()
        self.events_emitted += 1
        category = event.get("cat", "?")
        self.events_by_category[category] = \
            self.events_by_category.get(category, 0) + 1
        for sink in self.sinks:
            sink.handle(event)

    def close(self):
        """Flush and close every sink (idempotent per sink contract)."""
        for sink in self.sinks:
            sink.close()

    # -- summary ------------------------------------------------------------
    def summary(self):
        """JSON-serialisable digest of what this bus observed — the
        payload :class:`repro.bench.runner.RunRecord` carries into the
        disk cache for telemetry-enabled runs."""
        return {
            "events": self.events_emitted,
            "by_category": dict(self.events_by_category),
            "categories": sorted(self.categories),
        }


def attach_cpu(telemetry, cpu):
    """Wire a functional CPU to the bus.

    Rare-path events (mispredict/trap/hostcall) only need the
    ``cpu.telemetry`` reference; per-retire events additionally rebind
    ``cpu.step`` to an emitting wrapper.  With ``telemetry=None`` or no
    relevant categories this leaves the CPU completely untouched —
    ``cpu.step`` stays the plain class method.
    """
    if telemetry is None:
        return cpu
    if telemetry.categories & {"mispredict", "trap", "hostcall"}:
        cpu.telemetry = telemetry
    if telemetry.wants("trt"):
        cpu.trt.attach_telemetry(telemetry)
    if telemetry.wants("retire"):
        if telemetry._clock is _zero_clock:
            telemetry.set_clock(lambda: cpu.instret)
        base_step = type(cpu).step
        regs = cpu.regs

        def step():
            pc = cpu.pc
            instr = base_step(cpu)
            rd = instr.rd
            telemetry.emit({
                "cat": "retire", "name": instr.mnemonic, "pc": pc,
                "instret": cpu.instret, "instr": instr, "rd": rd,
                "rd_value": regs.value[rd], "rd_tag": regs.type[rd],
                "redirect": cpu.redirect,
            })
            return instr

        cpu.step = step
    return cpu


def detach_cpu(cpu):
    """Undo :func:`attach_cpu` (tracers use this when done)."""
    cpu.telemetry = None
    cpu.__dict__.pop("step", None)
    cpu.trt.detach_telemetry()
    return cpu
