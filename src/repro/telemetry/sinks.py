"""Event sinks: where the telemetry bus delivers its events.

Three concrete sinks cover the observability surface:

* :class:`CollectorSink` — in-memory list, the substrate for the
  profile builders and the reimplemented tracers;
* :class:`JsonlSink` — one JSON object per line, greppable and
  streamable (``repro profile --events out.jsonl``);
* :class:`ChromeTraceSink` — the Chrome ``trace_event`` JSON array
  format, loadable in ``chrome://tracing`` and Perfetto
  (``repro profile --chrome-trace out.json``).

Sinks receive every event the bus emits; a sink that only cares about
some categories filters in ``handle`` (events are cheap dicts and the
bus's category set already bounds the volume).
"""

import json


class Sink:
    """Base sink: ``handle`` one event dict, ``close`` when done."""

    def handle(self, event):
        raise NotImplementedError

    def close(self):
        """Flush/close; must be idempotent."""


class CollectorSink(Sink):
    """Append every event (optionally filtered by category) to a list."""

    def __init__(self, categories=None):
        self.categories = frozenset(categories) if categories else None
        self.events = []

    def handle(self, event):
        if self.categories is None or event.get("cat") in self.categories:
            self.events.append(event)

    def __len__(self):
        return len(self.events)

    def by_category(self, category):
        return [e for e in self.events if e.get("cat") == category]


class JsonlSink(Sink):
    """Write one JSON object per event line.

    Accepts a path or an open text file.  Non-serialisable fields
    (e.g. the decoded instruction object on retire events) degrade to
    ``repr`` so the stream is always valid JSON lines.
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._file = target
            self._owns = False
        else:
            self._file = open(target, "w")
            self._owns = True
        self.lines = 0

    def handle(self, event):
        self._file.write(json.dumps(event, default=repr,
                                    sort_keys=True) + "\n")
        self.lines += 1

    def close(self):
        if self._owns and not self._file.closed:
            self._file.close()


class ChromeTraceSink(Sink):
    """Accumulate Chrome ``trace_event`` records; write on ``close``.

    Mapping from the simulator's event schema:

    * ``bytecode`` span events (``ph`` already ``"B"``/``"E"``) pass
      through — the interpreter's dispatch loop becomes a flame chart
      with one slice per executed bytecode;
    * everything else becomes an instant event (``ph: "i"``).

    Timestamps are simulated cycles reported as microseconds (1 cycle
    = 1us), which keeps Perfetto's zoom levels useful.  Because the
    bus's clock is monotonic and spans are emitted at open/close time
    (``B`` at handler entry, ``E`` at the next handler's entry), the
    ``ts`` sequence in the output array is non-decreasing — a property
    ``tests/test_telemetry.py`` locks in.
    """

    #: pid/tid are synthetic: one simulated core, one thread.
    PID = 1
    TID = 1

    def __init__(self, target, process_name="typedarch-sim",
                 thread_name="core0"):
        self._target = target
        self.events = [
            {"ph": "M", "pid": self.PID, "tid": self.TID, "ts": 0,
             "name": "process_name", "args": {"name": process_name}},
            {"ph": "M", "pid": self.PID, "tid": self.TID, "ts": 0,
             "name": "thread_name", "args": {"name": thread_name}},
        ]
        self._closed = False

    def handle(self, event):
        category = event.get("cat", "?")
        record = {
            "name": event.get("name", category),
            "cat": category,
            "ts": event.get("ts", 0),
            "pid": self.PID,
            "tid": self.TID,
        }
        if category == "bytecode":
            record["ph"] = event.get("ph", "i")
        else:
            record["ph"] = "i"
            record["s"] = "t"  # instant scope: thread
            args = {key: value for key, value in event.items()
                    if key not in ("cat", "name", "ts", "ph", "instr")}
            if args:
                record["args"] = args
        self.events.append(record)

    def close(self):
        if self._closed:
            return
        self._closed = True
        payload = {"traceEvents": self.events,
                   "displayTimeUnit": "ms",
                   "otherData": {"clock": "simulated cycles (1 cycle = 1us)"}}
        if hasattr(self._target, "write"):
            json.dump(payload, self._target)
        else:
            with open(self._target, "w") as handle:
                json.dump(payload, handle)
