"""Structured telemetry for the simulator and both scripting engines.

The paper's evaluation is attribution — where type-check cycles go,
which bytecodes miss in the Type Rule Table, how tag-extraction cost
differs between Lua's struct layout and SpiderMonkey's NaN boxing
(Sections 6-7).  This package is the reproduction's equivalent of the
Rocket prototype's custom performance-counter/trace infrastructure:

* :class:`Telemetry` (``core``) — the event bus: enabled categories,
  sinks, a monotonic clock, and a near-zero disabled path (hot-path
  instrumentation attaches by rebinding, rare-path instrumentation is
  a ``None`` check inside an already-rare branch);
* ``sinks`` — in-memory collector, JSON-lines, and Chrome
  ``trace_event`` output loadable in ``chrome://tracing``/Perfetto;
* ``profile`` — the per-opcode flat/call-inclusive profiles and
  TRT-miss attribution behind ``repro profile``.

See ``docs/OBSERVABILITY.md`` for the event schema and CLI usage.
"""

from repro.telemetry.core import (
    CATEGORIES,
    PROFILE_CATEGORIES,
    Telemetry,
    attach_cpu,
    clear_degradations,
    degradations,
    detach_cpu,
    record_degradation,
)
from repro.telemetry.profile import (
    ProfileResult,
    render_opcode_table,
    render_trt_table,
    run_profile,
)
from repro.telemetry.sinks import (
    ChromeTraceSink,
    CollectorSink,
    JsonlSink,
    Sink,
)

__all__ = [
    "CATEGORIES",
    "PROFILE_CATEGORIES",
    "Telemetry",
    "attach_cpu",
    "detach_cpu",
    "record_degradation",
    "degradations",
    "clear_degradations",
    "ProfileResult",
    "run_profile",
    "render_opcode_table",
    "render_trt_table",
    "Sink",
    "CollectorSink",
    "JsonlSink",
    "ChromeTraceSink",
]
