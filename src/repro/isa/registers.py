"""Register names for the RV64 integer and floating-point register files.

The Typed Architecture unifies the two files at the microarchitecture level
(every integer register additionally carries an 8-bit type tag and an F/I
bit), but the assembly syntax keeps the conventional ``x``/ABI names for
integer registers and ``f`` names for the baseline FP registers.
"""

# ABI names indexed by register number, per the RISC-V psABI.
INT_REGISTER_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

FP_REGISTER_NAMES = tuple("f%d" % i for i in range(32))

NUM_REGISTERS = 32


def _build_int_map():
    mapping = {}
    for index, name in enumerate(INT_REGISTER_NAMES):
        mapping[name] = index
        mapping["x%d" % index] = index
    mapping["fp"] = 8  # alias for s0
    return mapping


def _build_fp_map():
    mapping = {}
    for index in range(NUM_REGISTERS):
        mapping["f%d" % index] = index
    # Common ABI aliases for FP registers.
    for index, name in enumerate(
        ["ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7",
         "fs0", "fs1", "fa0", "fa1", "fa2", "fa3", "fa4", "fa5",
         "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7",
         "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"]
    ):
        mapping[name] = index
    return mapping


INT_REGISTERS = _build_int_map()
FP_REGISTERS = _build_fp_map()


def int_register(name):
    """Return the integer register index for ``name`` (ABI or ``xN``)."""
    try:
        return INT_REGISTERS[name]
    except KeyError:
        raise ValueError("unknown integer register %r" % name) from None


def fp_register(name):
    """Return the FP register index for ``name`` (ABI or ``fN``)."""
    try:
        return FP_REGISTERS[name]
    except KeyError:
        raise ValueError("unknown FP register %r" % name) from None


def int_register_name(index):
    """Return the canonical ABI name for integer register ``index``."""
    return INT_REGISTER_NAMES[index]


def fp_register_name(index):
    """Return the canonical name for FP register ``index``."""
    return FP_REGISTER_NAMES[index]
