"""Instruction specifications and the decoded-instruction container.

The simulator pre-decodes programs into :class:`Instruction` objects, so the
binary encoding is only exercised by :mod:`repro.isa.encoding` round-trips;
execution dispatches on the mnemonic.

The table below covers the RV64 subset needed by the interpreter handlers
(integer ALU, M-extension multiply/divide, D-extension floating point,
loads/stores, branches, jumps, system) plus the Typed Architecture extension
and the Checked Load comparator from Anderson et al. [HPCA'11] that the
paper re-implements as its state-of-the-art baseline.
"""

from dataclasses import dataclass, field

# Major opcodes (RISC-V base and the custom space used by the extension).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_FP_LOAD = 0b0000111
OP_FP_STORE = 0b0100111
OP_FP = 0b1010011
OP_SYSTEM = 0b1110011
OP_CUSTOM0 = 0b0001011  # tld / tsd
OP_CUSTOM1 = 0b0101011  # tagged ALU, tchk, tget/tset, config
OP_CUSTOM2 = 0b1011011  # thdl (J-format displacement)
OP_CUSTOM3 = 0b1111011  # Checked Load (chklb, settype)


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic: format, encoding, syntax.

    ``syntax`` names the assembly operand shape; ``regclasses`` maps the
    operand slots (``rd``/``rs1``/``rs2``) to a register file (``x`` or
    ``f``).  ``fixed_rs2`` pins the rs2 field for encodings such as
    ``fcvt.d.l`` that reuse it as a sub-opcode.
    """

    mnemonic: str
    fmt: str  # 'R', 'I', 'S', 'B', 'U', 'J', 'SYS'
    opcode: int
    funct3: int = 0
    funct7: int = 0
    syntax: str = "r3"  # r3, r2, imm, shamt, load, store, branch, u, jal,
    #                     jalr, one_reg, none, label
    regclasses: dict = field(default_factory=dict)
    fixed_rs2: int = None

    def regclass(self, slot):
        """Register file ('x' or 'f') for operand ``slot``."""
        return self.regclasses.get(slot, "x")


@dataclass
class Instruction:
    """One decoded instruction.

    ``imm`` holds the sign-extended immediate; for branches/jumps it is the
    byte displacement relative to this instruction's PC.  ``label`` keeps
    the symbolic target when assembled from text (for disassembly and
    debugging only; execution uses ``imm``).
    """

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: str = None
    addr: int = None  # byte address assigned by the assembler

    @property
    def spec(self):
        return INSTRUCTION_SPECS[self.mnemonic]


def _r(mn, opcode, funct3, funct7=0, syntax="r3", regclasses=None, fixed_rs2=None):
    return InstrSpec(mn, "R", opcode, funct3, funct7, syntax,
                     regclasses or {}, fixed_rs2)


def _i(mn, opcode, funct3, syntax="imm", regclasses=None, funct7=0):
    return InstrSpec(mn, "I", opcode, funct3, funct7, syntax, regclasses or {})


def _s(mn, opcode, funct3, regclasses=None):
    return InstrSpec(mn, "S", opcode, funct3, 0, "store", regclasses or {})


def _b(mn, funct3):
    return InstrSpec(mn, "B", OP_BRANCH, funct3, 0, "branch", {})


_SPEC_LIST = [
    # --- RV64I -----------------------------------------------------------
    InstrSpec("lui", "U", OP_LUI, syntax="u"),
    InstrSpec("auipc", "U", OP_AUIPC, syntax="u"),
    InstrSpec("jal", "J", OP_JAL, syntax="jal"),
    _i("jalr", OP_JALR, 0, syntax="jalr"),
    _b("beq", 0), _b("bne", 1), _b("blt", 4), _b("bge", 5),
    _b("bltu", 6), _b("bgeu", 7),
    _i("lb", OP_LOAD, 0, "load"), _i("lh", OP_LOAD, 1, "load"),
    _i("lw", OP_LOAD, 2, "load"), _i("ld", OP_LOAD, 3, "load"),
    _i("lbu", OP_LOAD, 4, "load"), _i("lhu", OP_LOAD, 5, "load"),
    _i("lwu", OP_LOAD, 6, "load"),
    _s("sb", OP_STORE, 0), _s("sh", OP_STORE, 1),
    _s("sw", OP_STORE, 2), _s("sd", OP_STORE, 3),
    _i("addi", OP_IMM, 0), _i("slti", OP_IMM, 2), _i("sltiu", OP_IMM, 3),
    _i("xori", OP_IMM, 4), _i("ori", OP_IMM, 6), _i("andi", OP_IMM, 7),
    _i("slli", OP_IMM, 1, syntax="shamt"),
    _i("srli", OP_IMM, 5, syntax="shamt"),
    _i("srai", OP_IMM, 5, syntax="shamt", funct7=0b0100000),
    _r("add", OP_REG, 0), _r("sub", OP_REG, 0, 0b0100000),
    _r("sll", OP_REG, 1), _r("slt", OP_REG, 2), _r("sltu", OP_REG, 3),
    _r("xor", OP_REG, 4), _r("srl", OP_REG, 5),
    _r("sra", OP_REG, 5, 0b0100000), _r("or", OP_REG, 6), _r("and", OP_REG, 7),
    _i("addiw", OP_IMM32, 0),
    _i("slliw", OP_IMM32, 1, syntax="shamt"),
    _i("srliw", OP_IMM32, 5, syntax="shamt"),
    _i("sraiw", OP_IMM32, 5, syntax="shamt", funct7=0b0100000),
    _r("addw", OP_REG32, 0), _r("subw", OP_REG32, 0, 0b0100000),
    _r("sllw", OP_REG32, 1), _r("srlw", OP_REG32, 5),
    _r("sraw", OP_REG32, 5, 0b0100000),
    # --- RV64M -----------------------------------------------------------
    _r("mul", OP_REG, 0, 1), _r("mulh", OP_REG, 1, 1),
    _r("mulhsu", OP_REG, 2, 1), _r("mulhu", OP_REG, 3, 1),
    _r("div", OP_REG, 4, 1), _r("divu", OP_REG, 5, 1),
    _r("rem", OP_REG, 6, 1), _r("remu", OP_REG, 7, 1),
    _r("mulw", OP_REG32, 0, 1), _r("divw", OP_REG32, 4, 1),
    _r("divuw", OP_REG32, 5, 1), _r("remw", OP_REG32, 6, 1),
    _r("remuw", OP_REG32, 7, 1),
    # --- RV64D (double-precision FP) --------------------------------------
    _i("fld", OP_FP_LOAD, 3, "load", {"rd": "f"}),
    _s("fsd", OP_FP_STORE, 3, {"rs2": "f"}),
    _r("fadd.d", OP_FP, 0, 0b0000001, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fsub.d", OP_FP, 0, 0b0000101, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fmul.d", OP_FP, 0, 0b0001001, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fdiv.d", OP_FP, 0, 0b0001101, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fsqrt.d", OP_FP, 0, 0b0101101, syntax="r2",
       regclasses={"rd": "f", "rs1": "f"}, fixed_rs2=0),
    _r("fsgnj.d", OP_FP, 0, 0b0010001, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fsgnjn.d", OP_FP, 1, 0b0010001, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fsgnjx.d", OP_FP, 2, 0b0010001, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fmin.d", OP_FP, 0, 0b0010101, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("fmax.d", OP_FP, 1, 0b0010101, regclasses={"rd": "f", "rs1": "f", "rs2": "f"}),
    _r("feq.d", OP_FP, 2, 0b1010001, regclasses={"rs1": "f", "rs2": "f"}),
    _r("flt.d", OP_FP, 1, 0b1010001, regclasses={"rs1": "f", "rs2": "f"}),
    _r("fle.d", OP_FP, 0, 0b1010001, regclasses={"rs1": "f", "rs2": "f"}),
    _r("fcvt.l.d", OP_FP, 1, 0b1100001, syntax="r2",
       regclasses={"rs1": "f"}, fixed_rs2=2),
    _r("fcvt.w.d", OP_FP, 1, 0b1100001, syntax="r2",
       regclasses={"rs1": "f"}, fixed_rs2=0),
    _r("fcvt.d.l", OP_FP, 0, 0b1101001, syntax="r2",
       regclasses={"rd": "f"}, fixed_rs2=2),
    _r("fcvt.d.w", OP_FP, 0, 0b1101001, syntax="r2",
       regclasses={"rd": "f"}, fixed_rs2=0),
    _r("fmv.x.d", OP_FP, 0, 0b1110001, syntax="r2",
       regclasses={"rs1": "f"}, fixed_rs2=0),
    _r("fmv.d.x", OP_FP, 0, 0b1111001, syntax="r2",
       regclasses={"rd": "f"}, fixed_rs2=0),
    # --- System ----------------------------------------------------------
    InstrSpec("ecall", "SYS", OP_SYSTEM, syntax="none"),
    InstrSpec("ebreak", "SYS", OP_SYSTEM, funct3=0, funct7=1, syntax="none"),
    # --- Typed Architecture extension (Table 2 of the paper) --------------
    _i("tld", OP_CUSTOM0, 0, "load"),
    _s("tsd", OP_CUSTOM0, 1),
    _r("xadd", OP_CUSTOM1, 0), _r("xsub", OP_CUSTOM1, 1),
    _r("xmul", OP_CUSTOM1, 2),
    _r("tchk", OP_CUSTOM1, 3, syntax="rs_pair"),
    _r("tget", OP_CUSTOM1, 4, syntax="r2"),
    _r("tset", OP_CUSTOM1, 5, syntax="rs_pair"),
    _r("setoffset", OP_CUSTOM1, 6, 0, syntax="one_reg"),
    _r("setmask", OP_CUSTOM1, 6, 1, syntax="one_reg"),
    _r("setshift", OP_CUSTOM1, 6, 2, syntax="one_reg"),
    _r("set_trt", OP_CUSTOM1, 6, 3, syntax="one_reg"),
    _r("flush_trt", OP_CUSTOM1, 6, 4, syntax="none"),
    InstrSpec("thdl", "J", OP_CUSTOM2, syntax="label"),
    # --- Checked Load (comparator; Anderson et al. HPCA'11) ---------------
    # chklb fuses a byte load + tag compare + branch (Lua's byte tags);
    # chklw is the word-granularity variant the original paper also
    # proposes, needed for NaN-boxed layouts whose tag is not byte-aligned.
    _i("chklb", OP_CUSTOM3, 0, "load"),
    _i("chklw", OP_CUSTOM3, 2, "load"),
    _r("settype", OP_CUSTOM3, 1, syntax="one_reg"),
]

INSTRUCTION_SPECS = {spec.mnemonic: spec for spec in _SPEC_LIST}

# Mnemonic groups used by the timing model and statistics.
LOAD_MNEMONICS = frozenset(
    ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu", "fld", "tld", "chklb",
     "chklw"])
STORE_MNEMONICS = frozenset(["sb", "sh", "sw", "sd", "fsd", "tsd"])
BRANCH_MNEMONICS = frozenset(["beq", "bne", "blt", "bge", "bltu", "bgeu"])
JUMP_MNEMONICS = frozenset(["jal", "jalr"])
MUL_MNEMONICS = frozenset(["mul", "mulh", "mulhsu", "mulhu", "mulw", "xmul"])
DIV_MNEMONICS = frozenset(["div", "divu", "rem", "remu", "divw", "divuw",
                           "remw", "remuw"])
FP_MNEMONICS = frozenset(mn for mn in INSTRUCTION_SPECS if mn.startswith("f"))
TYPED_MNEMONICS = frozenset(
    ["tld", "tsd", "xadd", "xsub", "xmul", "tchk", "tget", "tset", "thdl",
     "setoffset", "setmask", "setshift", "set_trt", "flush_trt"])
CHECKED_LOAD_MNEMONICS = frozenset(["chklb", "chklw", "settype"])
