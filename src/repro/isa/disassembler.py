"""Render decoded instructions back to assembly text."""

from repro.isa.instructions import INSTRUCTION_SPECS
from repro.isa.registers import fp_register_name, int_register_name


def _reg(spec, slot, index):
    if spec.regclass(slot) == "f":
        return fp_register_name(index)
    return int_register_name(index)


def disassemble(instr):
    """Return the canonical assembly text for ``instr``.

    Branch/jump targets are rendered as relative byte displacements
    (``. + n``) unless the instruction retained a symbolic label.
    """
    spec = INSTRUCTION_SPECS[instr.mnemonic]
    syntax = spec.syntax
    rd = _reg(spec, "rd", instr.rd)
    rs1 = _reg(spec, "rs1", instr.rs1)
    rs2 = _reg(spec, "rs2", instr.rs2)
    target = instr.label if instr.label is not None else ". + %d" % instr.imm

    if syntax == "r3":
        return "%s %s, %s, %s" % (instr.mnemonic, rd, rs1, rs2)
    if syntax == "r2":
        return "%s %s, %s" % (instr.mnemonic, rd, rs1)
    if syntax == "rs_pair":
        return "%s %s, %s" % (instr.mnemonic, rs1, rs2)
    if syntax in ("imm", "shamt"):
        return "%s %s, %s, %d" % (instr.mnemonic, rd, rs1, instr.imm)
    if syntax == "load":
        return "%s %s, %d(%s)" % (instr.mnemonic, rd, instr.imm, rs1)
    if syntax == "store":
        return "%s %s, %d(%s)" % (instr.mnemonic, rs2, instr.imm, rs1)
    if syntax == "branch":
        return "%s %s, %s, %s" % (instr.mnemonic, rs1, rs2, target)
    if syntax == "u":
        return "%s %s, 0x%x" % (instr.mnemonic, rd, instr.imm)
    if syntax == "jal":
        return "%s %s, %s" % (instr.mnemonic, rd, target)
    if syntax == "jalr":
        return "%s %s, %d(%s)" % (instr.mnemonic, rd, instr.imm, rs1)
    if syntax == "one_reg":
        return "%s %s" % (instr.mnemonic, rs1)
    if syntax == "none":
        return instr.mnemonic
    if syntax == "label":
        return "%s %s" % (instr.mnemonic, target)
    raise ValueError("unhandled syntax %r" % syntax)
