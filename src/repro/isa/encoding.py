"""Binary encode/decode for the 32-bit instruction formats.

The simulator executes pre-decoded :class:`~repro.isa.instructions.Instruction`
objects, so these functions exist for fidelity (every instruction in the
extended ISA has a real fixed-width encoding, a design constraint the paper
leans on when criticising Checked Load's variable-length x86 encoding) and
for round-trip testing.
"""

from repro.isa.instructions import (
    INSTRUCTION_SPECS,
    Instruction,
    OP_IMM,
    OP_IMM32,
)


def _sext(value, bits):
    """Sign-extend ``value`` from ``bits`` wide to a Python int."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _check_range(value, bits, what):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError("%s %d out of %d-bit signed range" % (what, value, bits))


def encode(instr):
    """Encode a decoded :class:`Instruction` into a 32-bit word."""
    spec = INSTRUCTION_SPECS[instr.mnemonic]
    opcode, funct3, funct7 = spec.opcode, spec.funct3, spec.funct7
    rd, rs1, rs2, imm = instr.rd, instr.rs1, instr.rs2, instr.imm

    if spec.fmt == "R":
        if spec.fixed_rs2 is not None:
            rs2 = spec.fixed_rs2
        return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (rd << 7) | opcode
    if spec.fmt == "I":
        if spec.syntax == "shamt":
            if not 0 <= imm < 64:
                raise ValueError("shift amount %d out of range" % imm)
            imm12 = ((funct7 >> 1) << 6) | imm  # funct6 in imm[11:6]
        else:
            _check_range(imm, 12, "immediate")
            imm12 = imm & 0xFFF
        return (imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
    if spec.fmt == "S":
        _check_range(imm, 12, "store offset")
        imm12 = imm & 0xFFF
        return ((imm12 >> 5) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (funct3 << 12) | ((imm12 & 0x1F) << 7) | opcode
    if spec.fmt == "B":
        _check_range(imm, 13, "branch displacement")
        if imm & 1:
            raise ValueError("branch displacement must be even")
        b = imm & 0x1FFF
        return (((b >> 12) & 1) << 31) | (((b >> 5) & 0x3F) << 25) \
            | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) \
            | (((b >> 1) & 0xF) << 8) | (((b >> 11) & 1) << 7) | opcode
    if spec.fmt == "U":
        if not 0 <= imm < (1 << 20):
            raise ValueError("U-immediate %d out of 20-bit range" % imm)
        return (imm << 12) | (rd << 7) | opcode
    if spec.fmt == "J":
        _check_range(imm, 21, "jump displacement")
        if imm & 1:
            raise ValueError("jump displacement must be even")
        j = imm & 0x1FFFFF
        return (((j >> 20) & 1) << 31) | (((j >> 1) & 0x3FF) << 21) \
            | (((j >> 11) & 1) << 20) | (((j >> 12) & 0xFF) << 12) \
            | (rd << 7) | opcode
    if spec.fmt == "SYS":
        return (funct7 << 20) | opcode
    raise ValueError("unknown format %r" % spec.fmt)


def _build_decode_index():
    """Group specs by (opcode, funct3) so decode can resolve collisions."""
    index = {}
    for spec in INSTRUCTION_SPECS.values():
        key = (spec.opcode, spec.funct3 if spec.fmt not in ("U", "J") else None)
        index.setdefault(key, []).append(spec)
    return index


_DECODE_INDEX = _build_decode_index()


def _resolve(candidates, funct7, rs2, imm12):
    if len(candidates) == 1:
        return candidates[0]
    for spec in candidates:
        if spec.fmt == "R":
            if spec.funct7 != funct7:
                continue
            if spec.fixed_rs2 is not None and spec.fixed_rs2 != rs2:
                continue
            return spec
        if spec.fmt == "I" and spec.syntax == "shamt":
            if (imm12 >> 6) == (spec.funct7 >> 1):
                return spec
        elif spec.fmt == "I":
            if (imm12 >> 6) == 0 or spec.opcode not in (OP_IMM, OP_IMM32):
                return spec
        elif spec.fmt == "SYS":
            if spec.funct7 == imm12:
                return spec
    # Fall back to an exact funct7 match among R-format entries.
    for spec in candidates:
        if spec.fmt == "R" and spec.funct7 == funct7:
            return spec
    raise ValueError("cannot resolve decode among %r"
                     % [spec.mnemonic for spec in candidates])


def decode(word):
    """Decode a 32-bit instruction ``word`` into an :class:`Instruction`."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    imm12 = (word >> 20) & 0xFFF

    candidates = _DECODE_INDEX.get((opcode, funct3))
    if candidates is None:
        candidates = _DECODE_INDEX.get((opcode, None))
    if candidates is None:
        raise ValueError("unknown opcode 0x%02x (word 0x%08x)" % (opcode, word))
    spec = _resolve(candidates, funct7, rs2, imm12)

    imm = 0
    if spec.fmt == "I":
        imm = imm12 & 0x3F if spec.syntax == "shamt" else _sext(imm12, 12)
    elif spec.fmt == "S":
        imm = _sext((funct7 << 5) | rd, 12)
        rd = 0
    elif spec.fmt == "B":
        imm = _sext((((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
                    | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1), 13)
        rd = 0
    elif spec.fmt == "U":
        imm = (word >> 12) & 0xFFFFF
    elif spec.fmt == "J":
        imm = _sext((((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
                    | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1), 21)
    if spec.fmt in ("U", "J", "SYS"):
        rs1 = rs2 = 0
    if spec.fixed_rs2 is not None:
        rs2 = 0
    if spec.fmt == "SYS":
        rd = 0
    return Instruction(spec.mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
