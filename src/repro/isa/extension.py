"""Architectural constants of the Typed Architecture extension.

This module records the paper's configuration data as machine-readable
constants: the special-purpose registers (Section 3.1), the tag-location
encodings of ``R_offset``, and the per-engine settings of Tables 4 and 5.
The functional behaviour lives in :mod:`repro.sim`.
"""

from dataclasses import dataclass
from enum import Enum


class SpecialRegister(Enum):
    """Special-purpose registers added by the extension."""

    OFFSET = "R_offset"   # 4 bits: tag dword select + NaN-detect + self-tag
    SHIFT = "R_shift"     # 6 bits: tag start bit within the double-word
    MASK = "R_mask"       # 8 bits: tag extraction mask
    HDL = "R_hdl"         # slow-path (type misprediction handler) address
    CTYPE = "R_ctype"     # Checked Load expected-type register (comparator)


# R_offset low two bits: which double-word holds the tag relative to the
# value's double-word (Section 3.1).
OFFSET_SAME_DWORD = 0b00
OFFSET_NEXT_DWORD = 0b01
OFFSET_PREV_DWORD = 0b11
# R_offset bit 2: enable NaN detection for FP-boxed layouts.
OFFSET_NAN_DETECT = 0b100
# R_offset bit 3: Float Self-Tagging — the tag of an FP value lives in
# the float payload itself, so tagged loads/stores of FP values elide
# the tag-plane memory access (Melançon et al.; the ``selftag`` scheme).
OFFSET_SELF_TAG = 0b1000

# Byte displacement of the tag double-word for each R_offset[1:0] encoding.
TAG_DWORD_DISPLACEMENT = {
    OFFSET_SAME_DWORD: 0,
    OFFSET_NEXT_DWORD: 8,
    OFFSET_PREV_DWORD: -8,
}

TYPE_FIELD_BITS = 8      # width of the register type field
TYPE_UNTYPED = 0xFF      # tag written by untyped instructions
TRT_ENTRIES = 8          # Type Rule Table capacity (Section 7.2)


@dataclass(frozen=True)
class SprSettings:
    """One engine's tag extraction configuration (Table 4)."""

    offset: int  # 4 bits
    shift: int   # 6 bits
    mask: int    # 8 bits

    @property
    def nan_detect(self):
        return bool(self.offset & OFFSET_NAN_DETECT)

    @property
    def self_tag(self):
        return bool(self.offset & OFFSET_SELF_TAG)

    @property
    def tag_displacement(self):
        return TAG_DWORD_DISPLACEMENT[self.offset & 0b11]


# Table 4: special-purpose register settings.
# Lua: 8-byte value followed by a 1-byte tag in the next double-word.
LUA_SPR = SprSettings(offset=0b001, shift=0b000000, mask=0xFF)
# SpiderMonkey: NaN boxing -- 4-bit tag at bits [50:47] of the same dword.
SPIDERMONKEY_SPR = SprSettings(offset=0b100, shift=0b101111, mask=0x0F)


@dataclass(frozen=True)
class TypeRule:
    """One Type Rule Table entry: (opcode, in1, in2) -> out."""

    opcode: str
    type_in1: int
    type_in2: int
    type_out: int


def arithmetic_rules(int_tag, float_tag):
    """The six arithmetic rules of Table 5 for a given tag encoding."""
    rules = []
    for opcode in ("xadd", "xsub", "xmul"):
        rules.append(TypeRule(opcode, int_tag, int_tag, int_tag))
        rules.append(TypeRule(opcode, float_tag, float_tag, float_tag))
    return rules


def table_access_rules(table_tag, int_tag):
    """The two ``tchk`` rules of Table 5 (Table-Int in either order)."""
    return [
        TypeRule("tchk", table_tag, int_tag, table_tag),
        TypeRule("tchk", int_tag, table_tag, table_tag),
    ]
