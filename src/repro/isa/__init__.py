"""ISA layer: RV64 base subset plus the Typed Architecture extension.

This package defines the instruction set executed by the simulator in
:mod:`repro.sim`:

* the base 64-bit RISC-V subset (RV64IMFD-ish) used by the interpreter
  handlers,
* the Typed Architecture extension of the paper (``tld``, ``tsd``,
  ``xadd``/``xsub``/``xmul``, ``tchk``, ``thdl``, ``tget``/``tset`` and the
  configuration instructions), and
* the Checked Load comparator instructions (``chklb``, ``settype``).

The main entry points are :func:`repro.isa.assembler.assemble` which turns
assembly text into a :class:`repro.isa.assembler.Program`, and
:func:`repro.isa.encoding.encode` / :func:`repro.isa.encoding.decode` for
binary round-trips.
"""

from repro.isa.assembler import Program, assemble
from repro.isa.disassembler import disassemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import INSTRUCTION_SPECS, Instruction

__all__ = [
    "INSTRUCTION_SPECS",
    "Instruction",
    "Program",
    "assemble",
    "decode",
    "disassemble",
    "encode",
]
