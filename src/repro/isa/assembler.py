"""Two-pass assembler for the extended RV64 ISA.

The interpreter handlers in :mod:`repro.engines` are written as assembly
text (mirroring the paper's Figure 1(c) and Figure 3 listings) and
assembled into a :class:`Program` of pre-decoded instructions.  The
assembler supports:

* labels (``name:``), ``#`` comments, and ``.equ NAME value`` constants,
* the standard pseudo-instructions (``li``, ``la``, ``mv``, ``j``, ``ret``,
  ``beqz``/``bnez``, ``call``, ...), expanded during pass one so label
  addresses stay exact,
* label operands for branches, jumps and ``thdl``.
"""

import re

from repro.isa.instructions import INSTRUCTION_SPECS, Instruction
from repro.isa.registers import fp_register, int_register


class AssemblerError(ValueError):
    """Raised for any syntax or range error, with the offending line."""


_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(.*)\(\s*([\w.$]+)\s*\)$")


class Program:
    """An assembled program: decoded instructions plus symbol metadata.

    Instructions occupy four bytes each starting at ``base``; ``labels``
    maps symbol names to byte addresses.  ``instr_index(pc)`` converts a
    byte PC into an index into ``instructions``.
    """

    def __init__(self, instructions, labels, base=0):
        self.instructions = instructions
        self.labels = dict(labels)
        self.base = base
        for offset, instr in enumerate(instructions):
            instr.addr = base + 4 * offset

    @property
    def size(self):
        """Code size in bytes."""
        return 4 * len(self.instructions)

    @property
    def end(self):
        """First byte address past the program."""
        return self.base + self.size

    def instr_index(self, pc):
        """Index of the instruction at byte address ``pc``."""
        offset = pc - self.base
        if offset % 4 or not 0 <= offset < self.size:
            raise ValueError("PC 0x%x outside program [0x%x, 0x%x)"
                             % (pc, self.base, self.end))
        return offset // 4

    def address_of(self, label):
        """Byte address of ``label``."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError("undefined label %r" % label) from None


def _parse_int(text, equs):
    text = text.strip()
    if text in equs:
        return equs[text]
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("bad immediate %r" % text) from None


def _expand_li(rd, value):
    """Expand ``li rd, value`` into real instructions (RV64 recipe)."""
    if -(1 << 63) > value or value >= (1 << 64):
        raise AssemblerError("li immediate %d out of 64-bit range" % value)
    if value >= (1 << 63):  # accept unsigned 64-bit literals
        value -= 1 << 64
    if -2048 <= value < 2048:
        return [Instruction("addi", rd=rd, rs1=0, imm=value)]
    if -(1 << 31) <= value < (1 << 31):
        hi20 = ((value + 0x800) >> 12) & 0xFFFFF
        lo12 = value & 0xFFF
        if lo12 >= 0x800:
            lo12 -= 0x1000
        out = [Instruction("lui", rd=rd, imm=hi20)]
        if lo12:
            out.append(Instruction("addiw", rd=rd, rs1=rd, imm=lo12))
        return out
    lo12 = value & 0xFFF
    if lo12 >= 0x800:
        lo12 -= 0x1000
    out = _expand_li(rd, (value - lo12) >> 12)
    out.append(Instruction("slli", rd=rd, rs1=rd, imm=12))
    if lo12:
        out.append(Instruction("addi", rd=rd, rs1=rd, imm=lo12))
    return out


def _hi_lo(address):
    hi20 = ((address + 0x800) >> 12) & 0xFFFFF
    lo12 = address & 0xFFF
    if lo12 >= 0x800:
        lo12 -= 0x1000
    return hi20, lo12


# Pseudo-instructions that expand to a fixed shape.  Each handler returns a
# list of Instructions; label operands are carried symbolically and fixed up
# in pass two.
def _pseudo_expansions():
    def one(mn, **kw):
        return [Instruction(mn, **kw)]

    def branch_zero(mn, swap=False):
        def expand(ops, equs):
            rs = int_register(ops[0])
            rs1, rs2 = (0, rs) if swap else (rs, 0)
            return one(mn, rs1=rs1, rs2=rs2, label=ops[1])
        return expand

    def branch_swap(mn):
        def expand(ops, equs):
            return one(mn, rs1=int_register(ops[1]), rs2=int_register(ops[0]),
                       label=ops[2])
        return expand

    def fp_alias(mn):
        def expand(ops, equs):
            rd, rs = fp_register(ops[0]), fp_register(ops[1])
            return one(mn, rd=rd, rs1=rs, rs2=rs)
        return expand

    return {
        "nop": lambda ops, equs: one("addi", rd=0, rs1=0, imm=0),
        "mv": lambda ops, equs: one("addi", rd=int_register(ops[0]),
                                    rs1=int_register(ops[1]), imm=0),
        "li": lambda ops, equs: _expand_li(int_register(ops[0]),
                                           _parse_int(ops[1], equs)),
        "not": lambda ops, equs: one("xori", rd=int_register(ops[0]),
                                     rs1=int_register(ops[1]), imm=-1),
        "neg": lambda ops, equs: one("sub", rd=int_register(ops[0]),
                                     rs1=0, rs2=int_register(ops[1])),
        "seqz": lambda ops, equs: one("sltiu", rd=int_register(ops[0]),
                                      rs1=int_register(ops[1]), imm=1),
        "snez": lambda ops, equs: one("sltu", rd=int_register(ops[0]),
                                      rs1=0, rs2=int_register(ops[1])),
        "sltz": lambda ops, equs: one("slt", rd=int_register(ops[0]),
                                      rs1=int_register(ops[1]), rs2=0),
        "sgtz": lambda ops, equs: one("slt", rd=int_register(ops[0]),
                                      rs1=0, rs2=int_register(ops[1])),
        "sext.w": lambda ops, equs: one("addiw", rd=int_register(ops[0]),
                                        rs1=int_register(ops[1]), imm=0),
        "beqz": branch_zero("beq"),
        "bnez": branch_zero("bne"),
        "bltz": branch_zero("blt"),
        "bgez": branch_zero("bge"),
        "blez": branch_zero("bge", swap=True),
        "bgtz": branch_zero("blt", swap=True),
        "bgt": branch_swap("blt"),
        "ble": branch_swap("bge"),
        "bgtu": branch_swap("bltu"),
        "bleu": branch_swap("bgeu"),
        "j": lambda ops, equs: one("jal", rd=0, label=ops[0]),
        "jr": lambda ops, equs: one("jalr", rd=0, rs1=int_register(ops[0]),
                                    imm=0),
        "ret": lambda ops, equs: one("jalr", rd=0, rs1=1, imm=0),
        "call": lambda ops, equs: one("jal", rd=1, label=ops[0]),
        "fmv.d": fp_alias("fsgnj.d"),
        "fneg.d": fp_alias("fsgnjn.d"),
        "fabs.d": fp_alias("fsgnjx.d"),
    }


_PSEUDOS = _pseudo_expansions()


def _split_operands(text):
    return [part.strip() for part in text.split(",")] if text.strip() else []


def _parse_mem_operand(text, equs):
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblerError("expected imm(reg), got %r" % text)
    offset_text = match.group(1).strip() or "0"
    return _parse_int(offset_text, equs), match.group(2)


def _parse_native(mnemonic, operands, equs):
    """Parse one non-pseudo instruction into an Instruction."""
    spec = INSTRUCTION_SPECS[mnemonic]
    syntax = spec.syntax
    regfile = {"x": int_register, "f": fp_register}

    def reg(slot, text):
        return regfile[spec.regclass(slot)](text)

    def expect(count):
        if len(operands) != count:
            raise AssemblerError("%s expects %d operands, got %d"
                                 % (mnemonic, count, len(operands)))

    instr = Instruction(mnemonic)
    if syntax == "r3":
        expect(3)
        instr.rd = reg("rd", operands[0])
        instr.rs1 = reg("rs1", operands[1])
        instr.rs2 = reg("rs2", operands[2])
    elif syntax == "r2":
        expect(2)
        instr.rd = reg("rd", operands[0])
        instr.rs1 = reg("rs1", operands[1])
    elif syntax == "rs_pair":
        expect(2)
        instr.rs1 = reg("rs1", operands[0])
        instr.rs2 = reg("rs2", operands[1])
    elif syntax in ("imm", "shamt"):
        expect(3)
        instr.rd = reg("rd", operands[0])
        instr.rs1 = reg("rs1", operands[1])
        instr.imm = _parse_int(operands[2], equs)
    elif syntax == "load":
        expect(2)
        instr.rd = reg("rd", operands[0])
        instr.imm, base = _parse_mem_operand(operands[1], equs)
        instr.rs1 = int_register(base)
    elif syntax == "store":
        expect(2)
        instr.rs2 = reg("rs2", operands[0])
        instr.imm, base = _parse_mem_operand(operands[1], equs)
        instr.rs1 = int_register(base)
    elif syntax == "branch":
        expect(3)
        instr.rs1 = reg("rs1", operands[0])
        instr.rs2 = reg("rs2", operands[1])
        instr.label = operands[2]
    elif syntax == "u":
        expect(2)
        instr.rd = reg("rd", operands[0])
        instr.imm = _parse_int(operands[1], equs)
    elif syntax == "jal":
        expect(2)
        instr.rd = reg("rd", operands[0])
        instr.label = operands[1]
    elif syntax == "jalr":
        expect(2)
        instr.rd = reg("rd", operands[0])
        instr.imm, base = _parse_mem_operand(operands[1], equs)
        instr.rs1 = int_register(base)
    elif syntax == "one_reg":
        expect(1)
        instr.rs1 = reg("rs1", operands[0])
    elif syntax == "none":
        expect(0)
    elif syntax == "label":
        expect(1)
        instr.label = operands[0]
    else:
        raise AssemblerError("unhandled syntax %r for %s" % (syntax, mnemonic))
    return instr


def assemble(text, base=0, extra_labels=None):
    """Assemble ``text`` into a :class:`Program` at byte address ``base``.

    ``extra_labels`` maps externally defined symbols (e.g. data addresses)
    usable as branch/``la`` targets.
    """
    labels = dict(extra_labels or {})
    equs = {}
    instructions = []
    pending_la = []  # (index, rd, label) fixed up after labels are known

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match and match.group(1) not in INSTRUCTION_SPECS:
                name = match.group(1)
                if name in labels:
                    raise AssemblerError("line %d: duplicate label %r"
                                         % (lineno, name))
                labels[name] = base + 4 * len(instructions)
                line = match.group(2).strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        try:
            if mnemonic == ".equ":
                equs[operands[0]] = _parse_int(operands[1], equs)
            elif mnemonic == "la":
                # Expands to lui+addiw once the target address is known.
                index = len(instructions)
                instructions.append(Instruction("lui",
                                                rd=int_register(operands[0])))
                instructions.append(Instruction("addiw",
                                                rd=int_register(operands[0]),
                                                rs1=int_register(operands[0])))
                pending_la.append((index, operands[1]))
            elif mnemonic in _PSEUDOS:
                instructions.extend(_PSEUDOS[mnemonic](operands, equs))
            elif mnemonic in INSTRUCTION_SPECS:
                instructions.append(_parse_native(mnemonic, operands, equs))
            else:
                raise AssemblerError("unknown mnemonic %r" % mnemonic)
        except AssemblerError as err:
            raise AssemblerError("line %d: %s" % (lineno, err)) from None
        except (ValueError, IndexError) as err:
            raise AssemblerError("line %d: %s (%r)" % (lineno, err, line)) \
                from None

    # Pass two: resolve label references.
    for index, instr in enumerate(instructions):
        if instr.label is None:
            continue
        if instr.label not in labels:
            raise AssemblerError("undefined label %r" % instr.label)
        target = labels[instr.label]
        pc = base + 4 * index
        spec = INSTRUCTION_SPECS[instr.mnemonic]
        if spec.fmt == "B":
            instr.imm = target - pc
            if not -4096 <= instr.imm < 4096:
                raise AssemblerError("branch to %r out of range (%d bytes)"
                                     % (instr.label, instr.imm))
        elif spec.fmt == "J":  # jal and thdl share J-format displacement
            instr.imm = target - pc
            if not -(1 << 20) <= instr.imm < (1 << 20):
                raise AssemblerError("jump to %r out of range" % instr.label)
        else:
            raise AssemblerError("label operand not allowed for %s"
                                 % instr.mnemonic)
    for index, label in pending_la:
        if label not in labels:
            raise AssemblerError("undefined label %r" % label)
        hi20, lo12 = _hi_lo(labels[label])
        instructions[index].imm = hi20
        instructions[index + 1].imm = lo12

    return Program(instructions, labels, base=base)
