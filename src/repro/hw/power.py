"""Power model at 50MHz / 40nm, companion to :mod:`repro.hw.area`.

Dynamic power is estimated per module as switched capacitance x activity
at 50MHz (folded into per-gate and per-bit constants) plus an
area-proportional leakage term.  Activity factors are calibrated to
reproduce the paper's Table 8 baseline column; the typed deltas follow
from the added structures, with the type-handling path assumed active on
the tagged instructions only (Section 5 argues legacy code keeps it
quiet).
"""

from repro.hw import area as area_model

# mW per unit at 50MHz, typical corner.
GATE_MW_PER_KGATE = 0.062       # random logic at moderate activity
REGFILE_MW_PER_KBIT = 0.155
CAM_MW_PER_KBIT = 0.42          # parallel match lines
SRAM_MW_PER_KB = 0.155          # access-dominated compiler SRAM
LEAKAGE_MW_PER_MM2 = 1.05

# Per-module activity scale factors (relative switching rates).
ACTIVITY = {
    "Core": 1.25,
    "CSR": 1.60,
    "Div": 0.60,
    "FPU": 0.78,
    "ICache": 1.80,
    "DCache": 1.92,
    "Uncore": 2.30,
    "Wrapping": 2.83,
}


def module_power(module, structure):
    """Dynamic + leakage power (mW) for a :class:`ModuleArea`.

    ``structure`` maps the module's area parts to the element class used
    to pick the right power constant ('logic', 'sram', 'regfile', 'cam').
    """
    activity = ACTIVITY[module.name]
    dynamic = 0.0
    for part, part_area in module.parts.items():
        kind = structure.get(part, "logic")
        if kind == "sram":
            kilobytes = part_area / area_model.TECH.sram_mm2_per_kb
            dynamic += kilobytes * SRAM_MW_PER_KB * 0.5
        elif kind == "regfile":
            kilobits = part_area / area_model.TECH.regfile_mm2_per_bit \
                / 1000.0
            dynamic += kilobits * REGFILE_MW_PER_KBIT
        elif kind == "cam":
            kilobits = part_area / area_model.TECH.cam_mm2_per_bit / 1000.0
            dynamic += kilobits * CAM_MW_PER_KBIT
        else:
            kilogates = part_area / area_model.TECH.gate_mm2 / 1000.0
            dynamic += kilogates * GATE_MW_PER_KGATE
    return dynamic * activity + module.total * LEAKAGE_MW_PER_MM2


# Element-class map for the area parts defined in repro.hw.area.
PART_KINDS = {
    "regfile": "regfile",
    "tag_regfile": "regfile",
    "fpu_regfile": "regfile",
    "trt": "cam",
    "trt_data": "regfile",
    "data_sram": "sram",
    "tag_sram": "sram",
}
