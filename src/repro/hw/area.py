"""Structural area model at a 40nm node.

The paper synthesises its RTL with a TSMC CLN40G library (Design Compiler,
SC9 standard cells plus ARM Artisan memory-compiler SRAMs).  Without that
flow, this module estimates module areas from structural parameters —
gate counts for random logic, bit counts for register files and CAMs,
kilobytes for compiler SRAMs — using per-element constants representative
of a 40nm 9-track library.  The constants are calibrated so the *baseline*
core reproduces the paper's Table 8 hierarchy; the Typed Architecture
delta is then derived purely structurally (tagged register file, 8-entry
TRT, extract/insert shifters, type datapath), which is the quantity the
paper's 1.6%-overhead claim rests on.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """40nm per-element area constants (routed, mm^2)."""

    gate_mm2 = 1.40e-6          # NAND2-equivalent incl. routing overhead
    sram_mm2_per_kb = 0.01240   # high-density single-port compiler SRAM
    sram_periphery_mm2 = 0.005  # decoders/sense amps per macro set
    regfile_mm2_per_bit = 2.9e-6   # multi-ported flop-based register file
    cam_mm2_per_bit = 4.2e-6       # content-addressable bit (match logic)


TECH = Technology()


@dataclass
class ModuleArea:
    """One module's area with a named breakdown of its contributors."""

    name: str
    parts: dict

    @property
    def total(self):
        return sum(self.parts.values())


def _logic(gates):
    return gates * TECH.gate_mm2


def _sram(kilobytes, macros=1):
    return kilobytes * TECH.sram_mm2_per_kb \
        + macros * TECH.sram_periphery_mm2


def _regfile(bits):
    return bits * TECH.regfile_mm2_per_bit


def _cam(bits):
    return bits * TECH.cam_mm2_per_bit


# Structural parameters of the baseline Rocket-class core (RV64, 5-stage,
# single issue).  Gate counts are calibrated against Table 8.
BASELINE_STRUCTURE = {
    "core_logic_gates": 23000,        # decode, ALU, bypass, control
    "regfile_bits": 32 * 64,          # integer register file (2R1W)
    "csr_gates": 5700,
    "div_gates": 4300,
    "fpu_gates": 58500,               # double-precision FMA-class unit
    "fpu_regfile_bits": 32 * 64,      # FP register file
    "icache_kb": 16,
    "dcache_kb": 16,
    "cache_tag_kb": 1.75,             # 256 lines x ~56b tag+state, per cache
    "uncore_gates": 33000,            # bus, arbiter, DRAM controller front
    "wrapping_gates": 7800,
}

# Typed Architecture additions (Section 3): these are the *only* inputs
# to the overhead claim, everything else is shared with the baseline.
TYPED_ADDITIONS = {
    "regfile_tag_bits": 32 * 9,       # 8-bit type field + F/I bit
    "trt_cam_bits": 8 * 24,           # 8 entries x (opcode, t1, t2) key
    "trt_data_bits": 8 * 8,           # output tag per entry
    "extract_insert_gates": 3600,     # shared shifter + mask + NaN detect
    "type_datapath_gates": 1900,      # tag pipeline regs, poly-op select
    "spr_gates": 450,                 # R_offset/R_shift/R_mask/R_hdl
}


def core_area(typed):
    """Core module area (register file, datapath, type logic)."""
    parts = {
        "logic": _logic(BASELINE_STRUCTURE["core_logic_gates"]),
        "regfile": _regfile(BASELINE_STRUCTURE["regfile_bits"]),
    }
    if typed:
        additions = TYPED_ADDITIONS
        parts["tag_regfile"] = _regfile(additions["regfile_tag_bits"])
        parts["trt"] = _cam(additions["trt_cam_bits"]) \
            + _regfile(additions["trt_data_bits"])
        parts["extract_insert"] = _logic(
            additions["extract_insert_gates"])
        parts["type_datapath"] = _logic(additions["type_datapath_gates"])
        parts["sprs"] = _logic(additions["spr_gates"])
    return ModuleArea("Core", parts)


def csr_area(typed):
    parts = {"logic": _logic(BASELINE_STRUCTURE["csr_gates"])}
    if typed:
        parts["context_state"] = _logic(600)  # save/restore of SPRs + tags
    return ModuleArea("CSR", parts)


def div_area():
    return ModuleArea("Div", {"logic": _logic(
        BASELINE_STRUCTURE["div_gates"])})


def fpu_area():
    return ModuleArea("FPU", {
        "logic": _logic(BASELINE_STRUCTURE["fpu_gates"]),
        "regfile": _regfile(BASELINE_STRUCTURE["fpu_regfile_bits"]),
    })


def cache_area(name, typed):
    parts = {
        "data_sram": _sram(BASELINE_STRUCTURE["%s_kb" % name], macros=4),
        "tag_sram": _sram(BASELINE_STRUCTURE["cache_tag_kb"], macros=1),
        "logic": _logic(4200),
    }
    if typed and name == "dcache":
        # Tag extraction taps the existing read port; only a small mux.
        parts["tag_tap"] = _logic(350)
    return ModuleArea("ICache" if name == "icache" else "DCache", parts)


def uncore_area():
    return ModuleArea("Uncore", {"logic": _logic(
        BASELINE_STRUCTURE["uncore_gates"])})


def wrapping_area():
    return ModuleArea("Wrapping", {"logic": _logic(
        BASELINE_STRUCTURE["wrapping_gates"])})
