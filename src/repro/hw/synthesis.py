"""Assemble the Table 8 hierarchy and the EDP computation."""

from dataclasses import dataclass, field

from repro.hw import area as area_model
from repro.hw import power as power_model


@dataclass
class ModuleReport:
    name: str
    area_mm2: float
    power_mw: float
    children: list = field(default_factory=list)


@dataclass
class SynthesisReport:
    """Area/power estimate for one machine configuration."""

    typed: bool
    top: ModuleReport

    def find(self, name):
        def walk(node):
            if node.name == name:
                return node
            for child in node.children:
                found = walk(child)
                if found is not None:
                    return found
            return None
        found = walk(self.top)
        if found is None:
            raise KeyError("no module %r" % name)
        return found

    @property
    def total_area(self):
        return self.top.area_mm2

    @property
    def total_power(self):
        return self.top.power_mw

    def rows(self):
        """(indented name, area, area%, power, power%) rows, Table 8
        style."""
        out = []

        def walk(node, depth):
            out.append((("  " * depth) + node.name, node.area_mm2,
                        node.area_mm2 / self.total_area,
                        node.power_mw, node.power_mw / self.total_power))
            for child in node.children:
                walk(child, depth + 1)
        walk(self.top, 0)
        return out


def _module(area_obj):
    power = power_model.module_power(area_obj, power_model.PART_KINDS)
    return ModuleReport(area_obj.name, area_obj.total, power)


def synthesize(typed=False):
    """Estimate the full chip hierarchy (Table 8) for one configuration."""
    core = _module(area_model.core_area(typed))
    csr = _module(area_model.csr_area(typed))
    div = _module(area_model.div_area())
    fpu = _module(area_model.fpu_area())
    icache = _module(area_model.cache_area("icache", typed))
    dcache = _module(area_model.cache_area("dcache", typed))
    core.children = [csr, div]

    tile_children = [core, fpu, icache, dcache]
    tile = ModuleReport(
        "Tile",
        sum(m.area_mm2 for m in [core, csr, div, fpu, icache, dcache]),
        sum(m.power_mw for m in [core, csr, div, fpu, icache, dcache]),
        tile_children)

    uncore = _module(area_model.uncore_area())
    wrapping = _module(area_model.wrapping_area())
    top = ModuleReport(
        "Top",
        tile.area_mm2 + uncore.area_mm2 + wrapping.area_mm2,
        tile.power_mw + uncore.power_mw + wrapping.power_mw,
        [tile, uncore, wrapping])
    return SynthesisReport(typed=typed, top=top)


def area_overhead():
    """Fractional total-area increase of the Typed Architecture."""
    baseline = synthesize(typed=False).total_area
    typed = synthesize(typed=True).total_area
    return typed / baseline - 1.0


def power_overhead():
    """Fractional total-power increase of the Typed Architecture."""
    baseline = synthesize(typed=False).total_power
    typed = synthesize(typed=True).total_power
    return typed / baseline - 1.0


def edp_improvement(speedup, power_ratio=None):
    """Energy-delay-product improvement for a given ``speedup``.

    EDP = P * t^2 with t scaled by 1/speedup and P by ``power_ratio``
    (defaults to the model's typed/baseline power ratio).  Returns the
    fractional improvement (positive is better).
    """
    if power_ratio is None:
        power_ratio = 1.0 + power_overhead()
    return 1.0 - power_ratio / (speedup * speedup)
