"""Structural 40nm area/power model (the synthesis-flow substitute)."""

from repro.hw.synthesis import (
    SynthesisReport,
    edp_improvement,
    synthesize,
)

__all__ = ["SynthesisReport", "edp_improvement", "synthesize"]
