"""The unified public facade: one typed request/response schema for
every way of executing guest code.

Every entry point — the in-process quickstart, the benchmark runner,
the cached sweep and the :mod:`repro.serve` daemon — speaks the same
two dataclasses:

* :class:`ExecutionRequest` — what to run (``op`` is ``"run"`` for
  arbitrary Lua/JS source, ``"bench"`` for one benchmark cell,
  ``"sweep"`` for the full matrix) plus scheduling metadata
  (``deadline``, ``priority``) used by the execution service.
* :class:`ExecutionResult` — the outcome: guest output, the
  :class:`~repro.uarch.counters.Counters` of the run, cache
  provenance and host-side cost.

Both serialise to version-stamped JSON (:mod:`repro.schema`), so a
local call, a cached replay and a served request are literally the
same payload on one code path (:func:`execute`).

Quickstart::

    from repro.api import run

    result = run("lua", "print(1 + 2)", config="typed")
    print(result.output, result.counters.cycles)

    result = run("lua", "fibo", scale=10, config="typed")  # benchmark

:func:`run` is the single documented entry point;
``repro.engines.lua.run_lua`` / ``repro.engines.js.run_js`` remain as
thin keyword-only adapters over it (see docs/API.md).
"""

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, fields

from repro.engines import BASELINE, all_configs, is_registered
from repro.schema import SchemaError, require, stamp
from repro.uarch.config import (
    BranchConfig,
    CacheConfig,
    DramConfig,
    LatencyConfig,
    MachineConfig,
)
from repro.uarch.counters import Counters

#: Request kinds the facade (and the wire protocol) understands.
OPS = ("run", "bench", "sweep")

#: Default instruction budget for one guest program.
DEFAULT_MAX_INSTRUCTIONS = 200_000_000

#: Default service priority (0 = most urgent, 9 = least).
DEFAULT_PRIORITY = 5


def machine_config_as_dict(config):
    """Serialise a :class:`MachineConfig` (``None`` passes through)."""
    return None if config is None else asdict(config)


def machine_config_from_dict(payload):
    """Rebuild a :class:`MachineConfig` from its dict form."""
    if payload is None:
        return None
    if isinstance(payload, MachineConfig):
        return payload
    try:
        return MachineConfig(
            clock_mhz=payload["clock_mhz"],
            pipeline_stages=payload["pipeline_stages"],
            icache=CacheConfig(**payload["icache"]),
            dcache=CacheConfig(**payload["dcache"]),
            branch=BranchConfig(**payload["branch"]),
            dram=DramConfig(**payload["dram"]),
            latency=LatencyConfig(**payload["latency"]))
    except (KeyError, TypeError) as err:
        raise SchemaError("machine_config: %s: %s"
                          % (type(err).__name__, err))


@dataclass(frozen=True)
class ExecutionRequest:
    """One unit of work, local or served.

    ``op="run"`` executes ``source`` on ``engine``; ``op="bench"``
    runs one ``benchmark`` cell (cache-aware); ``op="sweep"`` runs the
    (engines x benchmarks x configs) matrix.  ``deadline`` (seconds)
    and ``priority`` only matter to :mod:`repro.serve`; they are
    excluded from :meth:`key`, so two requests for the same work
    coalesce regardless of their scheduling metadata.
    """

    op: str = "run"
    engine: str = None
    source: str = None
    benchmark: str = None
    config: str = BASELINE
    scale: int = None
    machine_config: object = None
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    attribute: bool = True
    use_blocks: bool = True
    use_traces: bool = True
    use_cache: bool = True
    engines: tuple = None       # sweep
    benchmarks: tuple = None    # sweep
    configs: tuple = None       # sweep
    scales: dict = None         # sweep
    jobs: int = None            # sweep worker count
    deadline: float = None      # serve only
    priority: int = DEFAULT_PRIORITY  # serve only

    def validate(self):
        """Raise :class:`~repro.schema.SchemaError` on nonsense."""
        if self.op not in OPS:
            raise SchemaError("unknown op %r (expected one of %s)"
                              % (self.op, "/".join(OPS)))
        if self.op in ("run", "bench") and self.engine not in ("lua", "js"):
            raise SchemaError("op %r needs engine 'lua' or 'js', got %r"
                              % (self.op, self.engine))
        if self.op == "run" and not isinstance(self.source, str):
            raise SchemaError("op 'run' needs a source string")
        if self.op == "bench" and not isinstance(self.benchmark, str):
            raise SchemaError("op 'bench' needs a benchmark name")
        if self.op in ("run", "bench") \
                and not is_registered(self.config):
            # Checked against the live tagging-scheme registry so
            # late-registered configs are accepted everywhere the
            # request schema is (CLI, serve daemon, API callers).
            raise SchemaError("unknown config %r (expected one of %s)"
                              % (self.config, "/".join(all_configs())))
        if self.deadline is not None and self.deadline <= 0:
            raise SchemaError("deadline must be positive seconds")
        if not 0 <= int(self.priority) <= 9:
            raise SchemaError("priority must be 0..9")
        return self

    def as_dict(self):
        payload = asdict(self)
        payload["machine_config"] = machine_config_as_dict(
            self.machine_config)
        for name in ("engines", "benchmarks", "configs"):
            if payload[name] is not None:
                payload[name] = list(payload[name])
        return stamp(payload)

    @classmethod
    def from_dict(cls, payload):
        require(payload, "ExecutionRequest")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"version"}
        if unknown:
            raise SchemaError("ExecutionRequest: unknown field(s) %s"
                              % ", ".join(sorted(unknown)))
        kwargs = {key: value for key, value in payload.items()
                  if key in known}
        kwargs["machine_config"] = machine_config_from_dict(
            kwargs.get("machine_config"))
        for name in ("engines", "benchmarks", "configs"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs).validate()

    def key(self):
        """Canonical identity of the *work* (scheduling metadata
        excluded) — the service's dedup/coalescing key."""
        payload = self.as_dict()
        for name in ("deadline", "priority", "version"):
            payload.pop(name, None)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class ExecutionResult:
    """Outcome of one :class:`ExecutionRequest`.

    ``ok`` is ``False`` only for abnormal completion (compile error,
    simulation error, sweep output mismatch, service rejection);
    ``error`` then carries ``{"type", "message"}``.  ``cached`` marks
    results served from the persistent result cache without
    simulating; ``coalesced`` marks served results piggybacked on an
    identical in-flight request.
    """

    ok: bool = True
    op: str = "run"
    engine: str = None
    benchmark: str = None
    config: str = None
    scale: int = None
    output: str = ""
    counters: object = None
    exit_code: int = 0
    cached: bool = False
    coalesced: bool = False
    wall_seconds: float = 0.0
    simulated_mips: float = 0.0
    error: dict = None
    cells: dict = field(default_factory=dict)  # sweep: gate metrics

    def as_dict(self):
        payload = asdict(self)
        payload["counters"] = self.counters.as_dict() \
            if self.counters is not None else None
        return stamp(payload)

    @classmethod
    def from_dict(cls, payload):
        require(payload, "ExecutionResult")
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in payload.items()
                  if key in known}
        if kwargs.get("counters") is not None:
            kwargs["counters"] = Counters.from_dict(kwargs["counters"])
        return cls(**kwargs)


# -- the single execution path ----------------------------------------------

def _vm(engine):
    if engine == "lua":
        from repro.engines.lua import vm
        return vm
    if engine == "js":
        from repro.engines.js import vm
        return vm
    raise SchemaError("unknown engine %r" % (engine,))


def _engine_run(engine, source, *, config=BASELINE, machine_config=None,
                max_instructions=DEFAULT_MAX_INSTRUCTIONS, attribute=True,
                telemetry=None, use_blocks=True, use_traces=True):
    """Compile and execute ``source`` on the simulated machine — the
    one implementation behind ``run_lua``, ``run_js``,
    ``run_benchmark`` and the served ``run`` op."""
    from repro.uarch.pipeline import Machine

    vm = _vm(engine)
    started = time.perf_counter()
    cpu, runtime, _program = vm.prepare(source, config)
    attribution = vm.interpreter_program(config)[1] if attribute else None
    if telemetry is not None:
        from repro.telemetry import attach_cpu
        attach_cpu(telemetry, cpu)
    machine = Machine(cpu, config=machine_config, attribution=attribution,
                      telemetry=telemetry, use_blocks=use_blocks,
                      use_traces=use_traces)
    counters = machine.run(max_instructions=max_instructions)
    elapsed = time.perf_counter() - started
    if telemetry is not None:
        telemetry.close()
    mips = counters.instructions / elapsed / 1e6 if elapsed else 0.0
    return ExecutionResult(
        op="run", engine=engine, config=config,
        output="".join(runtime.output), counters=counters,
        exit_code=cpu.exit_code, wall_seconds=elapsed,
        simulated_mips=mips)


def _execute_bench(request, telemetry=None):
    from repro.bench import runner

    scale = runner.resolve_scale(request.benchmark, request.scale)
    cached = request.use_cache and telemetry is None and \
        runner.cached_record(request.engine, request.benchmark,
                             request.config, scale) is not None
    record = runner.run_benchmark(
        request.engine, request.benchmark, request.config, scale=scale,
        use_cache=request.use_cache, telemetry=telemetry,
        use_blocks=request.use_blocks, use_traces=request.use_traces,
        attribute=request.attribute)
    return ExecutionResult(
        op="bench", engine=request.engine, benchmark=request.benchmark,
        config=request.config, scale=record.scale, output=record.output,
        counters=record.counters, cached=cached,
        wall_seconds=record.wall_seconds,
        simulated_mips=record.simulated_mips)


def _execute_sweep(request, progress=None):
    from repro.bench import gate
    from repro.bench.parallel import run_matrix_parallel
    from repro.bench.runner import ENGINES, verify_outputs_match
    from repro.bench.workloads import BENCHMARK_ORDER

    started = time.perf_counter()
    records = run_matrix_parallel(
        engines=request.engines or ENGINES,
        benchmarks=request.benchmarks or BENCHMARK_ORDER,
        configs=request.configs or all_configs(),
        scales=request.scales, max_workers=request.jobs,
        use_cache=request.use_cache, progress=progress)
    mismatches = verify_outputs_match(records)
    result = ExecutionResult(
        op="sweep", ok=not mismatches,
        cells=gate.collect_metrics(records),
        wall_seconds=time.perf_counter() - started)
    if mismatches:
        result.error = {"type": "OutputMismatch",
                        "message": "configs disagree on %s" % (mismatches,)}
    return result


def execute(request, *, telemetry=None, progress=None):
    """Execute one :class:`ExecutionRequest`; returns an
    :class:`ExecutionResult` (exceptions from the guest program or the
    compiler propagate — the service layer is what turns them into
    error frames).

    ``telemetry`` optionally attaches an event bus to ``run``/``bench``
    ops; ``progress`` receives per-cell
    :class:`~repro.bench.parallel.CellProgress` events for ``sweep``.
    """
    request.validate()
    if request.op == "run":
        return _engine_run(
            request.engine, request.source, config=request.config,
            machine_config=request.machine_config,
            max_instructions=request.max_instructions,
            attribute=request.attribute, telemetry=telemetry,
            use_blocks=request.use_blocks, use_traces=request.use_traces)
    if request.op == "bench":
        return _execute_bench(request, telemetry=telemetry)
    return _execute_sweep(request, progress=progress)


def execute_payload(payload):
    """Wire-protocol worker body: dict in, dict out (both
    version-stamped).  Module-level and import-light so it pickles
    into :mod:`repro.serve`'s forked workers."""
    return execute(ExecutionRequest.from_dict(payload)).as_dict()


def request_key(payload):
    """Validate a wire payload and return ``(request, key)``.

    The key is the canonical identity of the *work* — the same value
    the execution service dedups on — and is what the router
    consistent-hashes to place the request on a shard, so a request's
    shard affinity and its coalescing identity can never disagree.
    """
    request = ExecutionRequest.from_dict(payload)
    return request, request.key()


def run(engine, source, *, config=BASELINE, scale=None,
        machine_config=None, max_instructions=DEFAULT_MAX_INSTRUCTIONS,
        attribute=True, telemetry=None, use_blocks=True, use_traces=True,
        use_cache=True):
    """Run ``source`` on ``engine`` — the single documented entry point.

    ``source`` is Lua/JS program text; when it instead names a
    registered benchmark (``"fibo"``, ``"n-sieve"``, ...) the call
    becomes a cache-aware benchmark run at ``scale`` (the cell's
    default scale when ``None``).  Returns an
    :class:`ExecutionResult`; see the class docs for the fields.

    ``machine_config`` overrides the Table 6 machine parameters
    (:class:`~repro.uarch.config.MachineConfig`); ``telemetry``
    attaches an event bus (:mod:`repro.telemetry`); ``use_blocks``
    selects the basic-block superinstruction engine and ``use_traces``
    the superblock trace engine stacked on it (counters are
    bit-identical whichever engine runs).
    """
    from repro.bench.workloads import WORKLOADS

    if source in WORKLOADS:
        request = ExecutionRequest(
            op="bench", engine=engine, benchmark=source, config=config,
            scale=scale, attribute=attribute, use_blocks=use_blocks,
            use_traces=use_traces, use_cache=use_cache)
    else:
        request = ExecutionRequest(
            op="run", engine=engine, source=source, config=config,
            machine_config=machine_config,
            max_instructions=max_instructions, attribute=attribute,
            use_blocks=use_blocks, use_traces=use_traces,
            use_cache=use_cache)
    return execute(request, telemetry=telemetry)

