"""The persistent execution service: an asyncio daemon around the
warm worker pool.

Design (see docs/API.md for the wire protocol):

* **One code path** — every request is a
  :class:`repro.api.ExecutionRequest`; workers run
  :func:`repro.api.execute_payload`, exactly what an in-process call
  runs, so served counters are byte-identical to local ones.
* **Cache first** — ``bench`` requests are probed against the
  persistent result cache *in the parent*; a hit is answered without
  touching (or even building) the worker pool.  Results computed by
  workers are published back to the cache by the parent alone
  (single-writer, like :mod:`repro.bench.parallel`).
* **Dedup + coalescing** — requests are keyed by
  :meth:`~repro.api.ExecutionRequest.key` (the work, not the
  scheduling metadata); an identical queued/running request is joined
  rather than re-executed, and every subscriber gets the one result
  (flagged ``coalesced`` for the joiners).
* **Backpressure** — a bounded priority queue; submits beyond
  ``queue_depth`` are rejected with a ``busy`` error frame carrying a
  ``retry_after`` estimate (the NDJSON analogue of HTTP 429).
* **Deadlines** — per-request wall-clock budgets; a request that
  expires in the queue is rejected, one that expires mid-run has its
  worker pool killed and rebuilt (the hung-worker machinery of
  :mod:`repro.bench.parallel`).
* **Graceful drain** — SIGTERM (or a ``drain`` frame) stops admission,
  finishes queued and in-flight work, flushes every reply, then exits.
"""

import asyncio
import contextlib
import functools
import logging
import os
import signal
import tempfile
import threading
import time

from repro.api import ExecutionRequest, ExecutionResult
from repro.schema import SCHEMA_VERSION, SchemaError
from repro.serve import protocol
from repro.serve.pool import WarmPool

_LOG = logging.getLogger("repro.serve")

#: Environment variable overriding the default unix-socket path.
SOCKET_ENV = "REPRO_SERVE_SOCKET"

#: Fallback estimate of one job's duration before any has finished,
#: used for ``retry_after`` hints.
_DEFAULT_JOB_SECONDS = 2.0


def default_socket_path():
    """``$REPRO_SERVE_SOCKET`` when set, else a per-user path under
    the system temp directory."""
    env = os.environ.get(SOCKET_ENV)
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(),
                        "typedarch-serve-%d.sock" % uid)


def free_socket_path(prefix="typedarch-serve"):
    """A collision-free unix-socket path, picked *atomically*.

    The per-user :func:`default_socket_path` is a fixed name, so two
    daemons started by the same user (parallel CI jobs on one runner)
    would race to bind it.  Here the enclosing directory is created by
    ``mkdtemp`` — an atomic, kernel-arbitrated operation — so every
    caller gets a distinct path with no check-then-bind window.  TCP
    mode gets the same property from ``--port 0`` (the kernel assigns
    a free port at bind time).  ``repro serve --socket auto``,
    ``repro route`` and the load-generation harness all use this.
    """
    directory = tempfile.mkdtemp(prefix=prefix + "-")
    return os.path.join(directory, "serve.sock")


class _Job:
    """One deduplicated unit of queued/running work."""

    __slots__ = ("request", "payload", "key", "priority", "deadline_at",
                 "subscribers", "completed", "final", "started",
                 "enqueued_at")

    def __init__(self, request, key, deadline_at):
        self.request = request
        self.payload = request.as_dict()
        self.key = key
        self.priority = int(request.priority)
        self.deadline_at = deadline_at
        self.subscribers = []   # asyncio.Queue per waiting connection
        self.completed = False
        self.final = None       # ("result", dict) | ("error", code, msg)
        self.started = False
        self.enqueued_at = time.monotonic()


class ExecutionService:
    """The daemon's engine room; owns the queue, the pool and the
    bookkeeping.  All methods must run on the service's event loop
    (single-threaded by construction)."""

    def __init__(self, *, workers=2, queue_depth=32,
                 default_deadline=None, retries=1,
                 warm_engines=("lua", "js"), warm_configs=None,
                 inline_fn=None):
        self.workers = max(0, int(workers))
        self.queue_depth = queue_depth
        self.default_deadline = default_deadline
        self.retries = retries
        self.pool = WarmPool(workers=self.workers,
                             warm_engines=warm_engines,
                             warm_configs=warm_configs,
                             inline_fn=inline_fn)
        self._queue = None          # created on the loop in start()
        self._loop = None
        self._seq = 0
        self._queued = 0
        self._inflight = 0
        self._replies_pending = 0
        self._jobs_by_key = {}
        self._dispatchers = []
        self._sweep_threads = 0
        self._draining = False
        self._stopped = None
        self._durations = []        # recent job seconds, for retry_after
        self.stats_counters = {
            "submitted": 0, "completed": 0, "failed": 0,
            "cache_hits": 0, "coalesced": 0, "deduped": 0,
            "busy_rejected": 0, "deadline_rejected": 0,
            "drain_rejected": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop):
        self._loop = loop
        self._queue = asyncio.PriorityQueue()
        self._stopped = asyncio.Event()
        for _ in range(max(1, self.workers)):
            self._dispatchers.append(
                loop.create_task(self._dispatch_loop()))

    async def stop(self):
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        self._dispatchers.clear()
        self.pool.shutdown()

    def begin_drain(self):
        """Stop admitting work; once everything in flight has been
        answered, :attr:`stopped` fires and the server exits."""
        if self._draining:
            return
        self._draining = True
        _LOG.info("drain requested: %d queued, %d in flight",
                  self._queued, self._inflight)
        self._maybe_finish_drain()

    @property
    def draining(self):
        return self._draining

    @property
    def stopped(self):
        return self._stopped

    def _maybe_finish_drain(self):
        if (self._draining and not self._jobs_by_key
                and self._inflight == 0 and self._queued == 0
                and self._sweep_threads == 0
                and self._replies_pending == 0
                and self._stopped is not None):
            self._stopped.set()

    # -- submission --------------------------------------------------------

    def _deadline_at(self, request):
        deadline = request.deadline or self.default_deadline
        return time.monotonic() + deadline if deadline else None

    def _avg_seconds(self):
        if not self._durations:
            return _DEFAULT_JOB_SECONDS
        return sum(self._durations) / len(self._durations)

    def retry_after(self):
        """Seconds a rejected client should wait before retrying."""
        backlog = self._queued + self._inflight
        return round(max(0.1, backlog * self._avg_seconds()
                         / max(1, self.workers or 1)), 3)

    def submit(self, payload):
        """Admit one request payload.

        Returns ``(job, error_frame_args, immediate_result)`` — exactly
        one of the three is meaningful: an admitted (or joined) job, a
        rejection ``(code, message, extra)`` tuple, or an
        :class:`ExecutionResult` served from the cache.
        """
        if self._draining:
            self.stats_counters["drain_rejected"] += 1
            return None, (protocol.ERR_DRAINING,
                          "service is draining; resubmit elsewhere",
                          {}), None
        try:
            request = ExecutionRequest.from_dict(payload)
        except SchemaError as err:
            return None, (protocol.ERR_INVALID, str(err), {}), None
        self.stats_counters["submitted"] += 1

        cached = self._probe_cache(request)
        if cached is not None:
            self.stats_counters["cache_hits"] += 1
            return None, None, cached

        key = request.key()
        job = self._jobs_by_key.get(key)
        if job is not None and not job.completed:
            self.stats_counters["deduped"] += 1
            return job, None, None

        if self._queued >= self.queue_depth:
            self.stats_counters["busy_rejected"] += 1
            return None, (protocol.ERR_BUSY,
                          "queue full (%d deep); retry later"
                          % self.queue_depth,
                          {"retry_after": self.retry_after()}), None

        job = _Job(request, key, self._deadline_at(request))
        self._jobs_by_key[key] = job
        self._seq += 1
        self._queued += 1
        self._queue.put_nowait((job.priority, self._seq, job))
        return job, None, None

    def _probe_cache(self, request):
        """Parent-side persistent-cache probe for ``bench`` requests;
        returns a cached :class:`ExecutionResult` or ``None`` — never
        touches the worker pool."""
        if request.op != "bench" or not request.use_cache:
            return None
        from repro.bench import runner
        try:
            scale = runner.resolve_scale(request.benchmark, request.scale)
        except KeyError:
            return None  # let the worker raise the real error
        record = runner.cached_record(request.engine, request.benchmark,
                                      request.config, scale)
        if record is None:
            return None
        return ExecutionResult(
            op="bench", engine=request.engine,
            benchmark=request.benchmark, config=request.config,
            scale=record.scale, output=record.output,
            counters=record.counters, cached=True,
            wall_seconds=record.wall_seconds,
            simulated_mips=record.simulated_mips)

    # -- execution ---------------------------------------------------------

    async def _dispatch_loop(self):
        while True:
            _priority, _seq, job = await self._queue.get()
            self._queued -= 1
            self._inflight += 1
            try:
                await self._run_job(job)
            except Exception as err:  # noqa: BLE001 — never kill the loop
                _LOG.exception("dispatcher error for %s", job.key)
                self._finish(job, ("error", protocol.ERR_INTERNAL,
                                   "%s: %s" % (type(err).__name__, err)))
            finally:
                self._inflight -= 1
                self._maybe_finish_drain()

    async def _run_job(self, job):
        if job.deadline_at is not None:
            remaining = job.deadline_at - time.monotonic()
            if remaining <= 0:
                self.stats_counters["deadline_rejected"] += 1
                self._finish(job, ("error", protocol.ERR_DEADLINE,
                                   "deadline expired after %.3fs in queue"
                                   % (time.monotonic() - job.enqueued_at)))
                return
        job.started = True
        self._broadcast_event(job, "started",
                              queue_seconds=round(
                                  time.monotonic() - job.enqueued_at, 4))
        started = time.monotonic()
        if job.request.op == "sweep":
            final = await self._run_sweep(job)
        else:
            final = await self._run_pooled(job)
        if final[0] == "result":
            self._durations.append(time.monotonic() - started)
            del self._durations[:-32]
        self._finish(job, final)

    def _remaining(self, job):
        if job.deadline_at is None:
            return None
        return max(0.001, job.deadline_at - time.monotonic())

    async def _run_pooled(self, job):
        """Run one ``run``/``bench`` request on the warm pool, with
        deadline enforcement and hung-pool rebuild."""
        payload = dict(job.payload)
        publish = False
        if job.request.op == "bench" and job.request.use_cache:
            # Workers never write the caches; the parent is the single
            # writer (mirrors repro.bench.parallel).
            payload["use_cache"] = False
            publish = True
        attempts = 0
        while True:
            attempts += 1
            future = self.pool.submit(payload)
            try:
                result_payload = await asyncio.wait_for(
                    asyncio.wrap_future(future), self._remaining(job))
            except asyncio.TimeoutError:
                self.stats_counters["deadline_rejected"] += 1
                self.pool.kill_rebuild()
                return ("error", protocol.ERR_DEADLINE,
                        "deadline expired mid-run; worker killed")
            except Exception as err:  # noqa: BLE001 — worker outcome
                if "Broken" in type(err).__name__ \
                        and attempts <= self.retries + 1:
                    _LOG.warning("worker pool died (%s); rebuilding "
                                 "(attempt %d)", type(err).__name__,
                                 attempts)
                    self.pool.kill_rebuild()
                    continue
                return ("error", protocol.ERR_EXECUTION,
                        "%s: %s" % (type(err).__name__, err))
            if publish:
                self._publish(result_payload)
            return ("result", result_payload)

    def _publish(self, result_payload):
        """Parent-side cache publication of a worker-computed bench
        cell."""
        from repro.bench import cache as result_cache
        from repro.bench.runner import RunRecord, publish
        from repro.uarch.counters import Counters
        try:
            record = RunRecord(
                engine=result_payload["engine"],
                benchmark=result_payload["benchmark"],
                config=result_payload["config"],
                scale=result_payload["scale"],
                output=result_payload["output"],
                counters=Counters.from_dict(result_payload["counters"]),
                wall_seconds=result_payload.get("wall_seconds", 0.0),
                simulated_mips=result_payload.get("simulated_mips", 0.0))
        except (KeyError, TypeError, ValueError):
            return
        publish(record, disk=result_cache.active_cache())

    async def _run_sweep(self, job):
        """Sweeps run on a parent-side thread (they own their own
        process pool via ``run_matrix_parallel``) so per-cell progress
        can stream back as events."""
        from repro import api
        loop = asyncio.get_running_loop()

        def on_progress(cell):
            # call_soon_threadsafe takes positional args only; bind
            # the event fields with a partial.
            loop.call_soon_threadsafe(functools.partial(
                self._broadcast_event, job, "progress",
                cell="%s/%s/%s" % cell.key, cached=cell.cached,
                completed=cell.completed, total=cell.total))

        def work():
            return api.execute(ExecutionRequest.from_dict(job.payload),
                               progress=on_progress).as_dict()

        self._sweep_threads += 1
        try:
            # One thread per sweep; sweeps are rare and own their
            # parallelism internally.
            thread_result = {}
            done = asyncio.Event()

            def runner():
                try:
                    thread_result["result"] = work()
                except Exception as err:  # noqa: BLE001
                    thread_result["error"] = err
                loop.call_soon_threadsafe(done.set)

            threading.Thread(target=runner, name="repro-serve-sweep",
                             daemon=True).start()
            try:
                await asyncio.wait_for(done.wait(), self._remaining(job))
            except asyncio.TimeoutError:
                self.stats_counters["deadline_rejected"] += 1
                return ("error", protocol.ERR_DEADLINE,
                        "deadline expired mid-sweep")
            if "error" in thread_result:
                err = thread_result["error"]
                return ("error", protocol.ERR_EXECUTION,
                        "%s: %s" % (type(err).__name__, err))
            return ("result", thread_result["result"])
        finally:
            self._sweep_threads -= 1
            self._maybe_finish_drain()

    # -- completion fan-out ------------------------------------------------

    def _broadcast_event(self, job, event, **extra):
        for queue in job.subscribers:
            queue.put_nowait(("event", event, extra))

    def _finish(self, job, final):
        job.completed = True
        job.final = final
        if final[0] == "result":
            self.stats_counters["completed"] += 1
        else:
            self.stats_counters["failed"] += 1
        self._jobs_by_key.pop(job.key, None)
        for queue in job.subscribers:
            self._replies_pending += 1
            queue.put_nowait(final)
        self._maybe_finish_drain()

    def reply_done(self):
        """A connection finished (or abandoned) delivering a final
        frame; drain can complete once all replies are out."""
        self._replies_pending -= 1
        self._maybe_finish_drain()

    # -- introspection -----------------------------------------------------

    def stats(self):
        return {
            "schema_version": SCHEMA_VERSION,
            # Role and pid let the router's health loop and the shard
            # supervisor verify *what* answered a probe: a respawned
            # shard shows a fresh pid, a chaos decoy shows nothing.
            "role": "shard",
            "pid": os.getpid(),
            "draining": self._draining,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "queued": self._queued,
            "inflight": self._inflight,
            "jobs": dict(self.stats_counters),
            "pool": self.pool.stats(),
            "cache": cache_tier_stats(),
            "avg_seconds": round(self._avg_seconds(), 4),
            "retry_after": self.retry_after(),
        }


def cache_tier_stats():
    """Describe this process's view of the shared result-cache tier.

    Every shard of a routed deployment must point at the same
    content-addressed cache root (same ``root`` and ``tree`` here) for
    a hit on any shard to be a hit everywhere; the router's aggregated
    status uses these fields to verify the tier is actually coherent.
    """
    from repro.bench import cache as result_cache
    active = result_cache.active_cache()
    if active is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "root": str(active.root),
        "tree": active.tree_hash,
        "hits": active.hits,
        "misses": active.misses,
        "stores": active.stores,
    }


class ExecutionServer:
    """The socket front end: accepts NDJSON connections and routes
    frames to an :class:`ExecutionService`."""

    def __init__(self, service, *, socket_path=None, host=None,
                 port=None):
        if host is None and socket_path is None:
            socket_path = default_socket_path()
        self.service = service
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.bound_port = None
        self._server = None
        self._connections = set()

    async def start(self):
        loop = asyncio.get_running_loop()
        self.service.start(loop)
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path,
                limit=protocol.MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host or "127.0.0.1",
                port=self.port or 0, limit=protocol.MAX_FRAME_BYTES)
            self.bound_port = \
                self._server.sockets[0].getsockname()[1]
        return self

    def install_signal_handlers(self):
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.service.begin_drain)

    async def serve_until_stopped(self):
        """Serve until a drain completes, then shut down cleanly."""
        await self.service.stopped.wait()
        await self.close()

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._connections.clear()
        await self.service.stop()
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    # -- per-connection protocol -------------------------------------------

    async def _send(self, writer, frame):
        writer.write(protocol.encode(frame))
        await writer.drain()

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break  # oversize or torn frame: drop the connection
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode(line)
                except protocol.ProtocolError as err:
                    await self._send(writer, protocol.error_frame(
                        None, protocol.ERR_MALFORMED, str(err)))
                    continue
                await self._handle_frame(frame, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_frame(self, frame, writer):
        request_id = frame.get("id")
        reason = protocol.version_mismatch(frame)
        if reason is not None:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_VERSION, reason))
            return
        kind = frame.get("kind")
        if kind == "ping":
            await self._send(writer, protocol.pong_frame(request_id))
        elif kind == "status":
            await self._send(writer, protocol.status_frame(
                request_id, self.service.stats()))
        elif kind == "drain":
            self.service.begin_drain()
            await self._send(writer, protocol.status_frame(
                request_id, self.service.stats()))
        elif kind == "submit":
            await self._handle_submit(frame, writer)
        else:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "unknown frame kind %r" % (kind,)))

    async def _handle_submit(self, frame, writer):
        request_id = frame.get("id")
        payload = frame.get("request")
        if not isinstance(payload, dict):
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "submit frame has no request object"))
            return
        job, rejection, cached = self.service.submit(payload)
        if rejection is not None:
            code, message, extra = rejection
            await self._send(writer, protocol.error_frame(
                request_id, code, message, **extra))
            return
        if cached is not None:
            await self._send(writer, protocol.result_frame(
                request_id, cached.as_dict()))
            return

        coalesced = job.started or bool(job.subscribers)
        if coalesced:
            self.service.stats_counters["coalesced"] += 1
        queue = asyncio.Queue()
        job.subscribers.append(queue)
        await self._send(writer, protocol.event_frame(
            request_id, "queued", key=job.key, coalesced=coalesced,
            priority=job.priority))
        if job.completed:
            # Completed between submit() and subscription — impossible
            # on one loop iteration, but cheap to guard.
            self.service._replies_pending += 1
            queue.put_nowait(job.final)
        replied = False
        try:
            while True:
                item = await queue.get()
                if item[0] == "event":
                    _kind, event, extra = item
                    await self._send(writer, protocol.event_frame(
                        request_id, event, **extra))
                    continue
                if item[0] == "result":
                    result = dict(item[1])
                    if coalesced:
                        result["coalesced"] = True
                    await self._send(writer, protocol.result_frame(
                        request_id, result))
                else:
                    _kind, code, message = item
                    await self._send(writer, protocol.error_frame(
                        request_id, code, message))
                replied = True
                self.service.reply_done()
                return
        finally:
            if not job.completed:
                with contextlib.suppress(ValueError):
                    job.subscribers.remove(queue)
            elif not replied and queue in job.subscribers:
                # We were counted at completion but never delivered.
                job.subscribers.remove(queue)
                self.service.reply_done()


async def serve(service=None, *, socket_path=None, host=None, port=None,
                signals=True, ready=None, **service_kwargs):
    """Run the daemon until drained (the ``repro serve`` body).

    ``ready`` is an optional callback invoked with the started
    :class:`ExecutionServer` (tests and the smoke harness use it to
    learn the bound address)."""
    service = service or ExecutionService(**service_kwargs)
    server = ExecutionServer(service, socket_path=socket_path,
                             host=host, port=port)
    await server.start()
    if signals:
        server.install_signal_handlers()
    if ready is not None:
        ready(server)
    _LOG.info("serving on %s",
              server.socket_path or "%s:%s" % (server.host,
                                               server.bound_port))
    await server.serve_until_stopped()
    return service
