"""The persistent execution service: warm workers behind a socket,
and the scale-out tier in front of it.

``repro serve`` keeps a pool of warm forked workers (interpreters
pre-assembled at fork time) behind a localhost unix/TCP socket and
serves :class:`repro.api.ExecutionRequest` payloads over a
newline-delimited JSON protocol — ``run`` (arbitrary Lua/JS source),
``bench`` (one cached benchmark cell) and ``sweep`` (the full matrix,
with streamed per-cell progress).  Requests carry priorities and
wall-clock deadlines; identical in-flight requests are deduplicated
and coalesced; ``bench`` hits in the persistent result cache are
answered without ever building the pool; a full queue pushes back with
a ``busy`` + ``retry_after`` rejection; SIGTERM drains in-flight work
before exit.

* :mod:`repro.serve.server` — the asyncio daemon
  (:class:`ExecutionService` + :class:`ExecutionServer`),
* :mod:`repro.serve.client` — a small blocking client
  (:class:`ServeClient`), used by ``repro submit``,
* :mod:`repro.serve.protocol` — the wire format,
* :mod:`repro.serve.pool` — the lazy warm worker pool,
* :mod:`repro.serve.router` — the ``repro route`` consistent-hash
  front router over N shards (:class:`Router`, :class:`ShardManager`),
* :mod:`repro.serve.hashring` — the deterministic placement ring,
* :mod:`repro.serve.loadgen` — the ``repro loadgen`` traffic harness
  behind ``BENCH_serve.json`` and the CI SLO gate.

See docs/API.md for the protocol specification and docs/SERVING.md
for the sharded tier.
"""

from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.hashring import HashRing
from repro.serve.server import (
    ExecutionServer,
    ExecutionService,
    default_socket_path,
    free_socket_path,
    serve,
)

__all__ = ["ExecutionService", "ExecutionServer", "ServeClient",
           "ServeError", "ServeBusy", "HashRing", "Router",
           "RouterServer", "ShardManager", "ShardSpec",
           "default_socket_path", "free_socket_path", "serve", "route"]


def __getattr__(name):
    # Router machinery is imported lazily: the daemon itself never
    # needs it, and keeping it out of the hot import path keeps forked
    # shard workers lean.
    if name in ("Router", "RouterServer", "ShardManager", "ShardSpec",
                "route"):
        from repro.serve import router as _router
        return getattr(_router, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
