"""The persistent execution service: warm workers behind a socket.

``repro serve`` keeps a pool of warm forked workers (interpreters
pre-assembled at fork time) behind a localhost unix/TCP socket and
serves :class:`repro.api.ExecutionRequest` payloads over a
newline-delimited JSON protocol — ``run`` (arbitrary Lua/JS source),
``bench`` (one cached benchmark cell) and ``sweep`` (the full matrix,
with streamed per-cell progress).  Requests carry priorities and
wall-clock deadlines; identical in-flight requests are deduplicated
and coalesced; ``bench`` hits in the persistent result cache are
answered without ever building the pool; a full queue pushes back with
a ``busy`` + ``retry_after`` rejection; SIGTERM drains in-flight work
before exit.

* :mod:`repro.serve.server` — the asyncio daemon
  (:class:`ExecutionService` + :class:`ExecutionServer`),
* :mod:`repro.serve.client` — a small blocking client
  (:class:`ServeClient`), used by ``repro submit``,
* :mod:`repro.serve.protocol` — the wire format,
* :mod:`repro.serve.pool` — the lazy warm worker pool.

See docs/API.md for the protocol specification.
"""

from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.server import (
    ExecutionServer,
    ExecutionService,
    default_socket_path,
    serve,
)

__all__ = ["ExecutionService", "ExecutionServer", "ServeClient",
           "ServeError", "ServeBusy", "default_socket_path", "serve"]
