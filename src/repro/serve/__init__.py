"""The persistent execution service: warm workers behind a socket,
and the scale-out tier in front of it.

``repro serve`` keeps a pool of warm forked workers (interpreters
pre-assembled at fork time) behind a localhost unix/TCP socket and
serves :class:`repro.api.ExecutionRequest` payloads over a
newline-delimited JSON protocol — ``run`` (arbitrary Lua/JS source),
``bench`` (one cached benchmark cell) and ``sweep`` (the full matrix,
with streamed per-cell progress).  Requests carry priorities and
wall-clock deadlines; identical in-flight requests are deduplicated
and coalesced; ``bench`` hits in the persistent result cache are
answered without ever building the pool; a full queue pushes back with
a ``busy`` + ``retry_after`` rejection; SIGTERM drains in-flight work
before exit.

* :mod:`repro.serve.server` — the asyncio daemon
  (:class:`ExecutionService` + :class:`ExecutionServer`),
* :mod:`repro.serve.client` — a small blocking client
  (:class:`ServeClient`), used by ``repro submit``,
* :mod:`repro.serve.protocol` — the wire format,
* :mod:`repro.serve.pool` — the lazy warm worker pool,
* :mod:`repro.serve.router` — the ``repro route`` consistent-hash
  front router over N shards (:class:`Router`, :class:`ShardManager`),
* :mod:`repro.serve.hashring` — the deterministic placement ring,
* :mod:`repro.serve.loadgen` — the ``repro loadgen`` traffic harness
  behind ``BENCH_serve.json`` and the CI SLO gate,
* :mod:`repro.serve.supervisor` — shard supervision: dead-shard
  detection, backed-off respawn, crash-loop circuit breaker
  (:class:`ShardSupervisor`),
* :mod:`repro.serve.chaos` — the ``repro chaos`` seeded fault-injection
  harness behind ``BENCH_chaos.json`` and the CI chaos SLO gate.

See docs/API.md for the protocol specification, docs/SERVING.md for
the sharded tier and docs/RELIABILITY.md for the chaos harness.
"""

from repro.serve.client import ServeBusy, ServeClient, ServeError, ServeShed
from repro.serve.hashring import HashRing
from repro.serve.server import (
    ExecutionServer,
    ExecutionService,
    default_socket_path,
    free_socket_path,
    serve,
)

__all__ = ["ExecutionService", "ExecutionServer", "ServeClient",
           "ServeError", "ServeBusy", "ServeShed", "HashRing", "Router",
           "RouterServer", "ShardManager", "ShardSpec",
           "ShardSupervisor", "supervised", "ChaosSpec", "run_chaos",
           "default_socket_path", "free_socket_path", "serve", "route"]


def __getattr__(name):
    # Router, supervision and chaos machinery are imported lazily: the
    # daemon itself never needs them, and keeping them out of the hot
    # import path keeps forked shard workers lean.
    if name in ("Router", "RouterServer", "ShardManager", "ShardSpec",
                "route"):
        from repro.serve import router as _router
        return getattr(_router, name)
    if name in ("ShardSupervisor", "supervised"):
        from repro.serve import supervisor as _supervisor
        return getattr(_supervisor, name)
    if name in ("ChaosSpec", "run_chaos"):
        from repro.serve import chaos as _chaos
        return getattr(_chaos, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
