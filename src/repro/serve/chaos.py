"""``repro chaos`` — seeded fault injection against a live serve tier.

The software analogue of PR 4's simulator fault campaigns, aimed at
the process tier: boot a supervised, routed shard tier
(:class:`~repro.serve.loadgen.LocalTier`), replay the *same*
deterministic zipf traffic the loadgen SLO run uses, and — while the
load is in flight — execute a seed-deterministic **fault schedule**:

* ``kill`` — SIGKILL a shard process mid-load.  The supervisor must
  respawn it and the router's health loop re-admit it to the ring.
* ``stall`` — SIGSTOP a shard for a bounded window, then SIGCONT: the
  classic grey failure.  The socket stays connectable but nothing
  answers; the router's per-attempt timeout must re-dispatch.
* ``blackhole`` — kill a shard, *hold* its supervisor slot and squat a
  decoy listener on its socket that accepts and swallows bytes
  forever.  Harsher than ``stall``: the decoy never recovers on its
  own; recovery requires eviction + (after release) a respawn.
* ``cache_corrupt`` — scribble garbage over a shared result-cache
  entry; the cache's verify-on-load quarantine must turn it into a
  miss, never a wrong answer or a crash.

Every request is classified — ``served`` (clean), ``retried`` (the
client saw a ``retried`` event: a shard died or stalled mid-request
and the router transparently re-dispatched), ``shed`` (typed
below-quorum rejection), ``busy`` (ordinary backpressure), ``lost``
(hard error or hang — the thing the tier must never do), and
``duplicated`` (more than one terminal frame for one submit — ditto).
Per fault, **MTTR** is measured as injection → the shard back in the
ring (0 when it never left: no client-visible outage).

The report is a schema-stamped ``chaos`` artifact
(``BENCH_chaos.json``); :func:`repro.bench.gate.check_chaos` holds
the SLO line: zero lost, zero duplicated, MTTR bound, ring full again
at the end.  See docs/RELIABILITY.md.
"""

import contextlib
import json
import logging
import os
import random
import signal
import socket as socket_mod
import threading
import time
from dataclasses import dataclass, field

from repro.schema import artifact
from repro.serve import protocol
from repro.serve.client import (ServeBusy, ServeClient, ServeError,
                                ServeShed)
from repro.serve.loadgen import (LoadSpec, LocalTier, build_population,
                                 build_schedule, percentile)

_LOG = logging.getLogger("repro.serve.chaos")

#: Artifact family of ``BENCH_chaos.json``.
ARTIFACT_KIND = "chaos"

#: Every fault kind the schedule generator knows.
FAULT_KINDS = ("kill", "stall", "blackhole", "cache_corrupt")


@dataclass
class ChaosSpec:
    """One chaos campaign: a load spec plus a fault schedule, all
    deterministic given ``seed``."""

    load: LoadSpec = field(default_factory=LoadSpec)
    shards: int = 2
    seed: int = 4242
    faults: tuple = ("kill", "stall")
    fault_count: int = None          # default: one event per kind
    #: Fraction of the load window the faults land inside.
    window: tuple = (0.2, 0.65)
    stall_seconds: float = 1.2
    blackhole_seconds: float = 2.5
    #: Deterministic slice of traffic demoted to priority 9 — the
    #: first to be shed below quorum (the shedding-order probe).
    low_priority_fraction: float = 0.2
    #: Router/supervisor reaction knobs (tight: chaos runs are short).
    health_interval: float = 0.3
    attempt_timeout: float = 2.0
    probe_timeout: float = 1.0
    recovery_timeout: float = 30.0
    monitor_interval: float = 0.1

    def resolved_fault_count(self):
        return self.fault_count if self.fault_count \
            else len(tuple(self.faults))


def build_fault_schedule(spec):
    """The seed-deterministic fault schedule: ``fault_count`` events,
    kinds cycling through ``spec.faults``, spaced evenly across the
    window so recovery from one fault completes before the next hits,
    target shards drawn from ``random.Random(spec.seed)``."""
    for kind in spec.faults:
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (know: %s)"
                             % (kind, ", ".join(FAULT_KINDS)))
    rng = random.Random(spec.seed)
    count = spec.resolved_fault_count()
    lo, hi = spec.window
    span = spec.load.duration * (hi - lo)
    start = spec.load.duration * lo
    events = []
    for index in range(count):
        kind = spec.faults[index % len(spec.faults)]
        offset = start + (span * index / max(1, count - 1)
                          if count > 1 else span / 2)
        if kind == "stall":
            duration = spec.stall_seconds
        elif kind == "blackhole":
            duration = spec.blackhole_seconds
        else:
            duration = 0.0
        events.append({
            "kind": kind,
            "shard": rng.randrange(spec.shards),
            "at": round(offset, 3),
            "duration": duration,
        })
    return events


class _Decoy:
    """A black-holed socket: accepts connections on a shard's unix
    socket path, reads and discards everything, never replies."""

    def __init__(self, path):
        self.path = path
        with contextlib.suppress(OSError):
            os.unlink(path)
        self._listener = socket_mod.socket(socket_mod.AF_UNIX,
                                           socket_mod.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(16)
        self._listener.settimeout(0.1)
        self._stop = threading.Event()
        self._conns = []
        self._thread = threading.Thread(target=self._loop,
                                        name="chaos-decoy", daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except (socket_mod.timeout, OSError):
                continue
            conn.settimeout(0.1)
            self._conns.append(conn)
            threading.Thread(target=self._swallow, args=(conn,),
                             daemon=True).start()

    def _swallow(self, conn):
        while not self._stop.is_set():
            try:
                if not conn.recv(65536):
                    break
            except socket_mod.timeout:
                continue
            except OSError:
                break

    def close(self):
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        for conn in self._conns:
            with contextlib.suppress(OSError):
                conn.close()
        self._thread.join(2.0)
        with contextlib.suppress(OSError):
            os.unlink(self.path)


def corrupt_cache_entry(cache_dir, rng):
    """Overwrite one shared-cache entry with garbage; returns the
    victim path (or ``None`` when the cache has no entries yet).  The
    cache's verify-on-load must quarantine it — a corrupt entry is a
    miss, never a served wrong answer."""
    import glob
    entries = sorted(glob.glob(os.path.join(str(cache_dir),
                                            "*", "*.json")))
    entries = [path for path in entries
               if os.sep + "corrupt" + os.sep not in path]
    if not entries:
        return None
    victim = entries[rng.randrange(len(entries))]
    with open(victim, "wb") as handle:
        handle.write(b'{"cycles": "NOT A NUMBER", "truncated'
                     b"\xff\xfe garbage")
    return victim


class _FaultInjector:
    """Executes the fault schedule against a live tier on a thread."""

    def __init__(self, spec, tier, cache_dir, start_at):
        self.spec = spec
        self.tier = tier
        self.cache_dir = cache_dir
        self.start_at = start_at
        self.records = []           # schedule + injection bookkeeping
        self._rng = random.Random(spec.seed + 13)
        self._thread = threading.Thread(target=self._run,
                                        name="chaos-inject",
                                        daemon=True)

    def start(self):
        self._thread.start()
        return self

    def join(self, timeout=None):
        self._thread.join(timeout)

    def _run(self):
        for event in build_fault_schedule(self.spec):
            delay = self.start_at + event["at"] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            record = dict(event)
            record["shard_id"] = \
                self.tier.manager.specs[event["shard"]].shard_id
            record["injected_at"] = time.monotonic()
            try:
                self._inject(event, record)
            except Exception as err:  # noqa: BLE001 — recorded
                record["error"] = "%s: %s" % (type(err).__name__, err)
                _LOG.exception("fault injection %s failed", event)
            self.records.append(record)

    def _inject(self, event, record):
        index = event["shard"]
        manager = self.tier.manager
        kind = event["kind"]
        _LOG.info("injecting %s into shard %d", kind, index)
        if kind == "kill":
            proc = manager.procs[index]
            record["pid"] = proc.pid
            os.kill(proc.pid, signal.SIGKILL)
        elif kind == "stall":
            proc = manager.procs[index]
            record["pid"] = proc.pid
            os.kill(proc.pid, signal.SIGSTOP)
            try:
                time.sleep(event["duration"])
            finally:
                with contextlib.suppress(OSError):
                    os.kill(proc.pid, signal.SIGCONT)
        elif kind == "blackhole":
            proc = manager.procs[index]
            record["pid"] = proc.pid
            supervisor = self.tier.supervisor
            if supervisor is not None:
                supervisor.hold(index)
            try:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait()
                decoy = _Decoy(manager.specs[index].socket_path)
                try:
                    time.sleep(event["duration"])
                finally:
                    decoy.close()
            finally:
                if supervisor is not None:
                    supervisor.release(index)
        elif kind == "cache_corrupt":
            record["victim"] = corrupt_cache_entry(self.cache_dir,
                                                   self._rng)
        else:  # pragma: no cover — schedule generator validates
            raise ValueError("unknown fault kind %r" % kind)


class _RingMonitor:
    """Samples the router's ring membership for MTTR measurement."""

    def __init__(self, socket_path, interval):
        self.socket_path = socket_path
        self.interval = interval
        self.samples = []           # (monotonic, frozenset(nodes))
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="chaos-monitor",
                                        daemon=True)

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        self._thread.join(5.0)

    def sample_once(self):
        try:
            with ServeClient(socket_path=self.socket_path,
                             timeout=2.0) as client:
                stats = client.status()
        except (ServeError, ConnectionError, OSError):
            return None
        nodes = frozenset(stats.get("ring", {}).get("nodes", ()))
        self.samples.append((time.monotonic(), nodes))
        return nodes

    def _run(self):
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)


def measure_mttr(samples, shard_id, injected_at):
    """MTTR for one fault from ring-membership samples: time from
    injection until the shard is back in the ring, ``0.0`` when it
    never left (no client-visible outage), ``None`` when it never
    came back (gate failure)."""
    after = [(t, nodes) for t, nodes in samples if t >= injected_at]
    outage_start = None
    for t, nodes in after:
        if outage_start is None:
            if shard_id not in nodes:
                outage_start = t
        elif shard_id in nodes:
            return round(t - injected_at, 3)
    if outage_start is None:
        return 0.0
    return None


def _saw_duplicate_terminal(client):
    """After a terminal frame, peek the connection briefly: any
    *second* terminal frame for the same exchange is a duplicated
    delivery — the invariant the journal exists to prove."""
    try:
        client._sock.settimeout(0.05)
        line = client._file.readline()
        if not line:
            return False
        frame = protocol.decode(line)
        return frame.get("kind") in ("result", "error")
    except (TimeoutError, OSError, ValueError):
        return False


def run_chaos(spec, *, cache_dir=None, log_dir=None, progress=None):
    """Run one chaos campaign; returns the (unstamped) report dict —
    :func:`make_chaos_report` stamps it into ``BENCH_chaos.json``."""
    load = spec.load
    population = build_population(load)
    schedule = build_schedule(load, population)
    prio_rng = random.Random(spec.seed + 7)
    entries = []
    for offset, entry in schedule:
        payload = dict(entry["payload"])
        if prio_rng.random() < spec.low_priority_fraction:
            payload["priority"] = 9
        entries.append((offset, entry, payload))

    tier = LocalTier(
        spec.shards, cache_dir=cache_dir, log_dir=log_dir,
        health_interval=spec.health_interval,
        supervise=True,
        supervisor_kwargs={"poll_interval": 0.1, "backoff": 0.2,
                           "max_backoff": 2.0, "breaker_threshold": 8},
        router_kwargs={"attempt_timeout": spec.attempt_timeout,
                       "probe_timeout": spec.probe_timeout})
    records = [None] * len(entries)
    with tier:
        started = time.monotonic()
        monitor = _RingMonitor(tier.socket_path,
                               spec.monitor_interval).start()
        injector = _FaultInjector(spec, tier, cache_dir,
                                  started).start()
        cursor = {"next": 0}
        cursor_lock = threading.Lock()

        def worker():
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(entries):
                        return
                    cursor["next"] = index + 1
                offset, entry, payload = entries[index]
                delay = started + offset - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                records[index] = _one_request(
                    tier.socket_path, entry, payload, load.timeout)
                if progress is not None:
                    progress(records[index])

        threads = [threading.Thread(target=worker,
                                    name="chaos-load-%d" % i,
                                    daemon=True)
                   for i in range(max(1, min(load.threads,
                                             len(entries))))]
        for thread in threads:
            thread.start()
        injector.join(load.duration + spec.recovery_timeout)
        for thread in threads:
            thread.join(load.timeout + spec.recovery_timeout)

        # Recovery: the ring must be full again — every configured
        # shard back — within the recovery window.
        expected = frozenset(spec_.shard_id
                             for spec_ in tier.manager.specs)
        recovery_deadline = time.monotonic() + spec.recovery_timeout
        ring_full = False
        while time.monotonic() < recovery_deadline:
            nodes = monitor.sample_once()
            if nodes is not None and nodes >= expected:
                ring_full = True
                break
            time.sleep(spec.monitor_interval)
        recovered_at = time.monotonic()
        monitor.stop()

        router_stats = None
        with contextlib.suppress(ServeError, ConnectionError, OSError):
            with ServeClient(socket_path=tier.socket_path,
                             timeout=5.0) as client:
                router_stats = client.status()
        supervisor_stats = tier.supervisor.stats() \
            if tier.supervisor is not None else None
        elapsed = recovered_at - started

    faults = []
    for record in injector.records:
        fault = {key: record[key] for key in
                 ("kind", "shard", "shard_id", "at", "duration")}
        if record["kind"] == "cache_corrupt":
            fault["mttr_seconds"] = 0.0
            fault["recovered"] = True
            fault["victim"] = record.get("victim")
        else:
            mttr = measure_mttr(monitor.samples, record["shard_id"],
                                record["injected_at"])
            fault["mttr_seconds"] = mttr
            fault["recovered"] = mttr is not None
        if "error" in record:
            fault["injection_error"] = record["error"]
        faults.append(fault)

    return _build_report(spec, entries, records, faults, ring_full,
                         sorted(expected), router_stats,
                         supervisor_stats, tier.shard_exit_codes,
                         elapsed)


def _one_request(socket_path, entry, payload, timeout):
    record = {"rank": entry["rank"], "key": entry["key"],
              "priority": payload.get("priority", 5),
              "outcome": None, "retries": 0, "duplicated": False}
    sent = time.monotonic()
    events = []
    try:
        with ServeClient(socket_path=socket_path,
                         timeout=timeout) as client:
            result = client.submit(payload, on_event=events.append)
            record["duplicated"] = _saw_duplicate_terminal(client)
    except ServeShed:
        record["outcome"] = "shed"
    except ServeBusy:
        record["outcome"] = "busy"
    except (ServeError, ConnectionError, OSError) as err:
        record["outcome"] = "lost"
        record["error"] = "%s: %s" % (type(err).__name__, err)
    else:
        record["retries"] = sum(1 for frame in events
                                if frame.get("event") == "retried")
        record["outcome"] = "retried" if record["retries"] \
            else "served"
        record["latency"] = time.monotonic() - sent
        record["cached"] = bool(result.cached)
    return record


def _build_report(spec, entries, records, faults, ring_full, expected,
                  router_stats, supervisor_stats, shard_exit_codes,
                  elapsed):
    records = [record for record in records if record is not None]
    counts = {"served": 0, "retried": 0, "shed": 0, "busy": 0,
              "lost": 0}
    duplicated = 0
    lost_samples = []
    latencies_ms = []
    for record in records:
        counts[record["outcome"]] += 1
        duplicated += bool(record["duplicated"])
        if record["outcome"] == "lost":
            lost_samples.append({"key": record["key"],
                                 "error": record.get("error")})
        if record.get("latency") is not None:
            latencies_ms.append(record["latency"] * 1000.0)
    journal = {}
    if isinstance(router_stats, dict):
        journal = router_stats.get("journal", {}).get("counters", {})
    duplicated += journal.get("duplicated", 0)
    mttrs = [fault["mttr_seconds"] for fault in faults
             if fault["mttr_seconds"] is not None]
    load = spec.load
    return {
        "spec": {
            "shards": spec.shards, "seed": spec.seed,
            "faults": list(spec.faults),
            "fault_count": spec.resolved_fault_count(),
            "window": list(spec.window),
            "stall_seconds": spec.stall_seconds,
            "blackhole_seconds": spec.blackhole_seconds,
            "low_priority_fraction": spec.low_priority_fraction,
            "health_interval": spec.health_interval,
            "attempt_timeout": spec.attempt_timeout,
            "recovery_timeout": spec.recovery_timeout,
            "load": {
                "qps": load.qps, "duration": load.duration,
                "keys": load.keys, "zipf_s": load.zipf_s,
                "seed": load.seed, "threads": load.threads,
                "engines": list(load.engines),
                "configs": list(load.resolved_configs()),
                "benchmark": load.benchmark,
            },
        },
        "traffic": {
            "offered": len(entries),
            "classified": len(records),
            "served": counts["served"],
            "retried": counts["retried"],
            "shed": counts["shed"],
            "busy": counts["busy"],
            "lost": counts["lost"],
            "duplicated": duplicated,
            "lost_samples": lost_samples[:5],
        },
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 2),
            "p95": round(percentile(latencies_ms, 0.95), 2),
            "p99": round(percentile(latencies_ms, 0.99), 2),
            "max": round(max(latencies_ms), 2) if latencies_ms
            else 0.0,
        },
        "faults": faults,
        "recovery": {
            "ring_full": ring_full,
            "expected": expected,
            "max_mttr_seconds": round(max(mttrs), 3) if mttrs
            else 0.0,
            "unrecovered": [fault["shard_id"] for fault in faults
                            if not fault["recovered"]],
        },
        "journal": journal,
        "supervisor": supervisor_stats,
        "shard_exit_codes": shard_exit_codes,
        "elapsed_seconds": round(elapsed, 3),
    }


def make_chaos_report(report):
    """Stamp a :func:`run_chaos` report as the ``BENCH_chaos.json``
    artifact."""
    return artifact(ARTIFACT_KIND, report)


def render_report(report):
    """Human-readable chaos summary (the CLI's stdout)."""
    traffic = report["traffic"]
    recovery = report["recovery"]
    lines = [
        "chaos: %d offered | %d served, %d retried, %d shed, "
        "%d busy, %d lost, %d duplicated"
        % (traffic["offered"], traffic["served"], traffic["retried"],
           traffic["shed"], traffic["busy"], traffic["lost"],
           traffic["duplicated"]),
        "latency: p50 %.1fms p95 %.1fms p99 %.1fms"
        % (report["latency_ms"]["p50"], report["latency_ms"]["p95"],
           report["latency_ms"]["p99"]),
    ]
    for fault in report["faults"]:
        mttr = fault["mttr_seconds"]
        lines.append(
            "fault %-13s shard %d @ %5.1fs  mttr %s"
            % (fault["kind"], fault["shard"], fault["at"],
               "%.2fs" % mttr if mttr is not None
               else "NEVER RECOVERED"))
    lines.append("recovery: ring %s (max mttr %.2fs)"
                 % ("full" if recovery["ring_full"] else
                    "DEGRADED: missing %s"
                    % recovery["unrecovered"],
                    recovery["max_mttr_seconds"]))
    return "\n".join(lines)


def load_report(path):
    """Read a ``BENCH_chaos.json`` back (no gate judgement here)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
