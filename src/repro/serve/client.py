"""A small blocking client for the execution service.

Plain sockets, no asyncio: suitable for scripts, tests and the
``repro submit`` CLI verb.  One request is in flight per connection at
a time (the server multiplexes across connections, not within one).

Usage::

    from repro.serve.client import ServeClient

    with ServeClient(socket_path="/tmp/typedarch.sock") as client:
        result = client.run("lua", "print(1 + 2)", config="typed")
        print(result.output, result.counters.cycles)
"""

import json
import random
import socket
import time

from repro.api import ExecutionRequest, ExecutionResult
from repro.schema import SCHEMA_VERSION, stamp
from repro.serve import protocol
from repro.serve.server import default_socket_path


class ServeError(RuntimeError):
    """Terminal ``error`` frame from the service."""

    def __init__(self, code, message, retry_after=None):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.retry_after = retry_after


class ServeBusy(ServeError):
    """Queue-full rejection; ``retry_after`` suggests when to retry."""


class ServeShed(ServeBusy):
    """Router-side load shedding: the tier is below shard quorum and
    deterministically rejected this request (lowest priority first)
    instead of letting it time out.  Subclasses :class:`ServeBusy`
    because the client-side contract is the same — back off for
    ``retry_after`` and resubmit — but the distinct ``shed`` code lets
    harnesses account for shed traffic separately from backpressure."""


class ServeClient:
    """Blocking NDJSON client; context-manager friendly."""

    def __init__(self, socket_path=None, host=None, port=None,
                 timeout=300.0):
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = None
        self._file = None
        self._ids = 0

    # -- connection --------------------------------------------------------

    def connect(self):
        if self._sock is not None:
            return self
        if self.host is not None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        else:
            path = self.socket_path or default_socket_path()
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(path)
        self._sock = sock
        self._file = sock.makefile("rb")
        return self

    def close(self):
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self):
        return self.connect()

    def __exit__(self, *exc):
        self.close()

    # -- frame plumbing ----------------------------------------------------

    def _next_id(self):
        self._ids += 1
        return self._ids

    def _send(self, frame):
        self.connect()
        stamp(frame)
        self._sock.sendall(json.dumps(frame).encode("utf-8") + b"\n")

    def _recv(self):
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return protocol.decode(line)

    def _transact(self, frame, on_event=None):
        """Send one frame; collect events until the terminal frame."""
        request_id = frame.setdefault("id", self._next_id())
        self._send(frame)
        while True:
            reply = self._recv()
            if reply.get("id") != request_id:
                continue  # stale frame from an aborted exchange
            kind = reply.get("kind")
            if kind == "event":
                if on_event is not None:
                    on_event(reply)
                continue
            if kind == "error":
                code = reply.get("code")
                if code == protocol.ERR_BUSY:
                    cls = ServeBusy
                elif code == protocol.ERR_SHED:
                    cls = ServeShed
                else:
                    cls = ServeError
                raise cls(code, reply.get("message"),
                          retry_after=reply.get("retry_after"))
            return reply

    # -- public API --------------------------------------------------------

    def ping(self):
        reply = self._transact({"kind": "ping"})
        return reply.get("schema_version") == SCHEMA_VERSION

    def status(self):
        return self._transact({"kind": "status"})["stats"]

    def drain(self):
        """Ask the server to drain and exit (the polite SIGTERM)."""
        return self._transact({"kind": "drain"})["stats"]

    def submit(self, request, on_event=None, retries=0, backoff=0.25,
               max_backoff=10.0, rng=None):
        """Submit an :class:`ExecutionRequest` (or its dict form);
        blocks until the terminal frame and returns the
        :class:`ExecutionResult`.  ``on_event`` receives each
        streaming event frame.

        ``retries`` bounds how many *additional* attempts are made
        after a ``busy``/``shed`` rejection.  Each retry sleeps for
        the server's ``retry_after`` hint when one was sent (clamped
        to ``max_backoff``); otherwise it uses **decorrelated
        jitter** — ``uniform(backoff, 3 * previous_delay)``, clamped
        to ``max_backoff`` — so a thousand clients bouncing off one
        saturated shard spread their retries instead of marching back
        in deterministic ``backoff * 2**attempt`` lockstep.  ``rng``
        injects the randomness source (tests); it defaults to the
        module-level :mod:`random` generator.  Only ``busy``-family
        rejections are retried; every other error stays terminal.
        """
        payload = request.as_dict() \
            if isinstance(request, ExecutionRequest) else dict(request)
        draw = (rng or random).uniform
        attempt = 0
        previous = backoff
        while True:
            try:
                reply = self._transact(
                    {"kind": "submit", "request": payload},
                    on_event=on_event)
            except ServeBusy as err:
                if attempt >= retries:
                    raise
                if err.retry_after is not None:
                    delay = float(err.retry_after)
                else:
                    delay = draw(backoff, max(backoff, previous * 3.0))
                delay = min(max(delay, 0.0), max_backoff)
                previous = max(delay, backoff)
                time.sleep(delay)
                attempt += 1
                continue
            return ExecutionResult.from_dict(reply["result"])

    def run(self, engine, source, *, config="baseline", scale=None,
            deadline=None, priority=None, on_event=None, retries=0,
            **fields):
        """Convenience mirror of :func:`repro.api.run` over the wire."""
        from repro.api import DEFAULT_PRIORITY
        from repro.bench.workloads import WORKLOADS
        priority = DEFAULT_PRIORITY if priority is None else priority
        if source in WORKLOADS:
            request = ExecutionRequest(
                op="bench", engine=engine, benchmark=source,
                config=config, scale=scale, deadline=deadline,
                priority=priority, **fields)
        else:
            request = ExecutionRequest(
                op="run", engine=engine, source=source, config=config,
                deadline=deadline, priority=priority, **fields)
        return self.submit(request, on_event=on_event, retries=retries)
