"""A deterministic consistent-hash ring for shard placement.

``repro route`` spreads work across N ``repro serve`` shards by the
request's canonical work key (:meth:`repro.api.ExecutionRequest.key`).
Consistent hashing gives the two properties the serve tier needs:

* **Cache affinity** — a given key always lands on the same shard, so
  the shard's in-memory cache and dedup/coalescing machinery see every
  repeat of a popular request.
* **Minimal remapping** — adding or losing a shard moves only ~1/N of
  the key space; everything else keeps its placement (and its warm
  state).

Every hash is derived from SHA-256 over the key *bytes* — never from
Python's builtin ``hash()``, whose value is randomised per process by
``PYTHONHASHSEED``.  Placement is therefore identical across
processes, hosts and interpreter restarts, which the router relies on
(two router instances in front of the same shard set agree on
placement) and the tests assert by re-deriving the ring in a
subprocess under a different hash seed.

Each node is projected onto the ring at ``replicas`` pseudo-random
points ("virtual nodes"), which bounds per-node load skew; a key is
owned by the first node point clockwise from the key's own hash.
"""

import bisect
import hashlib

#: Virtual nodes per shard.  128 keeps the max/mean load ratio of a
#: small shard set under ~1.3 while the ring stays tiny (a few KB).
DEFAULT_REPLICAS = 128


def stable_hash(key):
    """A 64-bit integer digest of ``key`` (str or bytes) that is
    identical in every process — the ring's only hash function."""
    if isinstance(key, str):
        key = key.encode("utf-8")
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over opaque node-id strings."""

    def __init__(self, nodes=(), replicas=DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points = []   # sorted virtual-node hash points
        self._owners = {}   # point -> node id
        self._nodes = {}    # node id -> its points
        for node in nodes:
            self.add(node)

    def __len__(self):
        return len(self._nodes)

    def __contains__(self, node):
        return node in self._nodes

    @property
    def nodes(self):
        """Node ids, sorted (stable for display and tests)."""
        return sorted(self._nodes)

    def add(self, node):
        """Insert ``node``; returns ``False`` if already present."""
        if node in self._nodes:
            return False
        points = []
        for index in range(self.replicas):
            point = stable_hash("%s#%d" % (node, index))
            while point in self._owners:
                # Astronomically unlikely 64-bit collision; re-derive
                # deterministically rather than silently dropping the
                # virtual node.
                point = stable_hash("%s#%d+%d" % (node, index, point))
            self._owners[point] = node
            bisect.insort(self._points, point)
            points.append(point)
        self._nodes[node] = points
        return True

    def remove(self, node):
        """Remove ``node``; returns ``False`` if absent."""
        points = self._nodes.pop(node, None)
        if points is None:
            return False
        for point in points:
            del self._owners[point]
            del self._points[bisect.bisect_left(self._points, point)]
        return True

    def preference(self, key):
        """Yield the distinct nodes for ``key`` in ring order: the
        owner first, then each successive fallback — the router's
        failover order on shard loss."""
        if not self._points:
            return
        start = bisect.bisect_right(self._points, stable_hash(key))
        seen = set()
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node in seen:
                continue
            seen.add(node)
            yield node
            if len(seen) == len(self._nodes):
                return

    def node_for(self, key, exclude=()):
        """The owning node for ``key``, skipping any node in
        ``exclude`` (down or already-tried shards); ``None`` when no
        eligible node remains."""
        for node in self.preference(key):
            if node not in exclude:
                return node
        return None
