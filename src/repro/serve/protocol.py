"""The execution service's wire protocol: newline-delimited JSON.

One frame per line, UTF-8, ``\\n``-terminated.  Every frame is a JSON
object stamped with the package :data:`~repro.schema.SCHEMA_VERSION`;
a version mismatch in either direction is answered with an ``error``
frame of code ``"version"`` and the connection stays usable.

Client -> server frames (``"kind"`` field):

* ``{"kind": "submit", "id": ..., "request": {ExecutionRequest}}`` —
  enqueue one request; ``id`` is any client-chosen JSON scalar echoed
  on every response frame for that request.
* ``{"kind": "status", "id": ...}`` — service statistics snapshot.
* ``{"kind": "drain", "id": ...}`` — begin graceful drain (same as
  SIGTERM: finish in-flight and queued work, refuse new submits, exit).
* ``{"kind": "ping", "id": ...}`` — liveness probe.

Server -> client frames:

* ``{"kind": "result", "id": ..., "result": {ExecutionResult}}`` —
  terminal success frame for a submit.
* ``{"kind": "event", "id": ..., "event": ..., ...}`` — streaming
  progress (``queued``/``started``/``progress``/telemetry); zero or
  more before the terminal frame.
* ``{"kind": "error", "id": ..., "code": ..., "message": ...}`` —
  terminal failure frame.  Codes: ``version``, ``malformed``,
  ``invalid``, ``busy`` (queue full; carries ``retry_after`` seconds),
  ``shed`` (router-side load shedding below shard quorum; also
  carries ``retry_after``), ``deadline``, ``draining``,
  ``execution``, ``internal``.
* ``{"kind": "pong" | "status", "id": ..., ...}`` — control replies.

The payload schema inside ``request``/``result`` is exactly
:meth:`repro.api.ExecutionRequest.as_dict` /
:meth:`repro.api.ExecutionResult.as_dict` — the service adds no
private format; a cached replay read straight from disk and a served
result are the same JSON.
"""

import json

from repro.schema import SCHEMA_VERSION, mismatch, stamp

#: Hard cap on one frame's encoded size (a whole sweep result with
#: per-cell metrics fits comfortably; a runaway source blob does not).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Error codes carried by ``error`` frames.
ERR_VERSION = "version"
ERR_MALFORMED = "malformed"
ERR_INVALID = "invalid"
ERR_BUSY = "busy"
ERR_SHED = "shed"
ERR_DEADLINE = "deadline"
ERR_DRAINING = "draining"
ERR_EXECUTION = "execution"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A frame that cannot even be answered (oversize, not JSON)."""


def encode(frame):
    """Serialise one frame to its wire form (bytes, newline-terminated)."""
    stamp(frame)
    blob = json.dumps(frame, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    if len(blob) > MAX_FRAME_BYTES:
        raise ProtocolError("frame exceeds %d bytes" % MAX_FRAME_BYTES)
    return blob


def decode(line):
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` for undecodable input and returns
    the frame otherwise; the *caller* is responsible for rejecting
    version mismatches (so it can still echo the frame's ``id``).
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError("frame exceeds %d bytes" % MAX_FRAME_BYTES)
    try:
        frame = json.loads(line.decode("utf-8") if isinstance(line, bytes)
                           else line)
    except (UnicodeDecodeError, ValueError) as err:
        raise ProtocolError("undecodable frame: %s" % err)
    if not isinstance(frame, dict):
        raise ProtocolError("frame is %s, not an object"
                            % type(frame).__name__)
    return frame


def version_mismatch(frame):
    """``None`` when ``frame`` speaks the current schema version, else
    the reason string for the ``version`` error frame."""
    return mismatch(frame)


def result_frame(request_id, result_dict):
    return {"kind": "result", "id": request_id, "result": result_dict}


def event_frame(request_id, event, **extra):
    frame = {"kind": "event", "id": request_id, "event": event}
    frame.update(extra)
    return frame


def error_frame(request_id, code, message, **extra):
    frame = {"kind": "error", "id": request_id, "code": code,
             "message": message}
    frame.update(extra)
    return frame


def status_frame(request_id, stats):
    return {"kind": "status", "id": request_id, "stats": stats}


def pong_frame(request_id):
    return {"kind": "pong", "id": request_id,
            "schema_version": SCHEMA_VERSION}
