"""``repro route`` — the consistent-hash front router of the serve tier.

One router process fronts N ``repro serve`` shards and speaks the
*same* NDJSON protocol as a single daemon, so every existing client
(``repro submit``, :class:`~repro.serve.client.ServeClient`, the load
generator) works against either unchanged.  What the router adds:

* **Placement** — each submit is consistent-hashed by its canonical
  work key (:func:`repro.api.request_key`) onto a shard
  (:mod:`repro.serve.hashring`), so repeats of a popular request
  always meet the same shard's dedup/coalescing machinery and warm
  state, and a shard set change remaps only ~1/N of the key space.
* **Health + rebalancing** — a background loop pings every shard;
  consecutive failures evict it from the ring (its keys flow to the
  ring successors), recovery re-adds it.  A connection error during a
  forward fails over to the next shard in ring order immediately,
  without waiting for the health loop.
* **In-flight recovery** — a :class:`RequestJournal` tracks every
  forwarded request by its canonical work key.  When a shard dies (or
  stalls past ``attempt_timeout``) mid-request, the router re-dispatches
  to the ring-failover shard and the client sees a ``retried`` event
  instead of an error; the work key is already the dedup/coalescing
  identity, so re-dispatch is idempotent.  The journal proves the
  terminal-frame contract: one terminal frame per submit, ever — its
  ``duplicated`` counter must stay zero (the chaos gate asserts it).
* **Quorum + load shedding** — when fewer than ``quorum`` shards are
  healthy the router sheds deterministically, lowest priority first
  (numerically largest ``priority``), with a typed ``shed`` error
  carrying ``retry_after`` — bounded, honest rejection instead of
  letting everything time out.  With zero healthy shards *all* new
  work is shed (still typed, still fast).
* **Backpressure** — per-shard ``busy`` rejections are retried with
  bounded backoff honouring the server's ``retry_after`` hint (the
  :meth:`ServeClient.submit` retry machinery), then failed over once;
  only when every eligible shard is saturated does the client see the
  ``busy`` frame.
* **Shared cache tier** — all shards and the router point at one
  content-addressed result-cache root; the router probes it before
  forwarding, so a ``bench`` cell computed by *any* shard is a router
  cache hit for every later client.  The aggregated ``status`` frame
  reports whether the tier is coherent (every member on the same root
  and source tree).
* **Graceful drain** — a ``drain`` frame (or SIGTERM) stops admission,
  lets every forwarded in-flight request finish and flush its reply
  (zero dropped — the SLO gate asserts this), then exits.

See docs/SERVING.md for topology and operations.
"""

import asyncio
import collections
import contextlib
import logging
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro import api
from repro.schema import SCHEMA_VERSION, SchemaError
from repro.serve import protocol
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.hashring import DEFAULT_REPLICAS, HashRing
from repro.serve.server import cache_tier_stats, free_socket_path

_LOG = logging.getLogger("repro.serve.router")

#: Seconds between health probes of each shard.
DEFAULT_HEALTH_INTERVAL = 2.0

#: Consecutive failed probes before a shard is evicted from the ring.
DEFAULT_FAIL_THRESHOLD = 2

#: Per-shard busy retries (on top of the first attempt) before the
#: router fails the request over to the next shard in ring order.
DEFAULT_BUSY_RETRIES = 2


class RequestJournal:
    """In-flight forward journal keyed by the canonical work key.

    Runs entirely on the router's event loop (no locking).  An entry
    is opened per submit, records every shard attempt and re-dispatch,
    and is closed exactly once with the terminal outcome; closing an
    already-closed entry increments ``duplicated`` — the counter the
    chaos SLO pins to zero, because a nonzero value would mean one
    submit produced two terminal frames.
    """

    def __init__(self, capacity=256):
        self.active = {}            # key -> open entry (refcounted)
        self.recent = collections.deque(maxlen=capacity)
        self.counters = {
            "opened": 0, "completed": 0, "failed": 0,
            "redispatched": 0, "duplicated": 0,
        }

    def open(self, key, priority):
        entry = self.active.get(key)
        if entry is None:
            entry = {"key": key, "priority": priority, "inflight": 0,
                     "attempts": [], "retries": 0}
            self.active[key] = entry
        entry["inflight"] += 1
        self.counters["opened"] += 1
        return entry

    def attempt(self, entry, shard_id):
        entry["attempts"].append(shard_id)

    def redispatch(self, entry, reason):
        entry["retries"] += 1
        self.counters["redispatched"] += 1

    def close(self, entry, ok):
        if entry["inflight"] <= 0:
            self.counters["duplicated"] += 1
            return
        entry["inflight"] -= 1
        self.counters["completed" if ok else "failed"] += 1
        if entry["inflight"] == 0:
            self.active.pop(entry["key"], None)
            if entry["retries"]:
                self.recent.append({"key": entry["key"],
                                    "retries": entry["retries"],
                                    "attempts": list(entry["attempts"])})

    def stats(self):
        return {
            "counters": dict(self.counters),
            "active": len(self.active),
            "recent_retried": list(self.recent)[-8:],
        }


class ShardSpec:
    """Address of one shard: a unix socket path or ``host:port``."""

    __slots__ = ("shard_id", "socket_path", "host", "port")

    def __init__(self, socket_path=None, host=None, port=None):
        if socket_path is None and (host is None or port is None):
            raise ValueError("a shard needs a socket path or host:port")
        self.socket_path = socket_path
        self.host = host
        self.port = int(port) if port is not None else None
        self.shard_id = "unix:%s" % socket_path if socket_path \
            else "%s:%d" % (host, self.port)

    @classmethod
    def parse(cls, text):
        """``unix:/path/to.sock``, a bare ``/path/to.sock``, or
        ``host:port``."""
        if text.startswith("unix:"):
            return cls(socket_path=text[len("unix:"):])
        if text.startswith(("/", ".")):
            return cls(socket_path=text)
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError("unparseable shard address %r (expected "
                             "unix:/path, /path or host:port)" % text)
        return cls(host=host or "127.0.0.1", port=int(port))

    def client(self, timeout=600.0):
        return ServeClient(socket_path=self.socket_path, host=self.host,
                           port=self.port, timeout=timeout)

    def __repr__(self):
        return "ShardSpec(%s)" % self.shard_id


class _ShardState:
    """Router-side bookkeeping for one shard."""

    __slots__ = ("spec", "healthy", "fails", "stats", "last_probe")

    def __init__(self, spec):
        self.spec = spec
        self.healthy = True
        self.fails = 0
        self.stats = None       # last status snapshot from the shard
        self.last_probe = None


class Router:
    """Placement, health and forwarding over a set of shards.

    Forwards run on a dedicated thread pool (the blocking
    :class:`ServeClient` with its busy-retry machinery), bridged back
    to the event loop; everything else is single-threaded asyncio.
    """

    def __init__(self, shards, *, replicas=DEFAULT_REPLICAS,
                 health_interval=DEFAULT_HEALTH_INTERVAL,
                 fail_threshold=DEFAULT_FAIL_THRESHOLD,
                 busy_retries=DEFAULT_BUSY_RETRIES, backoff=0.25,
                 probe_cache=True, forward_timeout=600.0,
                 attempt_timeout=None, probe_timeout=None,
                 quorum=None, shed_priority=None,
                 max_forward_threads=32):
        specs = [shard if isinstance(shard, ShardSpec)
                 else ShardSpec.parse(shard) for shard in shards]
        if not specs:
            raise ValueError("a router needs at least one shard")
        self.shards = {spec.shard_id: _ShardState(spec) for spec in specs}
        self.ring = HashRing(self.shards, replicas=replicas)
        self.health_interval = health_interval
        self.fail_threshold = fail_threshold
        self.busy_retries = busy_retries
        self.backoff = backoff
        self.probe_cache = probe_cache
        self.forward_timeout = forward_timeout
        #: Per-shard-attempt socket timeout: a stalled (SIGSTOPped or
        #: black-holed) shard costs at most this long before the
        #: router marks it down and re-dispatches.  ``None`` falls
        #: back to ``forward_timeout`` (the pre-recovery behaviour).
        self.attempt_timeout = attempt_timeout
        self.probe_timeout = probe_timeout
        #: Below this many healthy shards, new work is shed lowest
        #: priority first.  Default: a majority of the configured set.
        self.quorum = max(1, len(specs) // 2 + 1) if quorum is None \
            else max(1, int(quorum))
        self.shed_priority = api.DEFAULT_PRIORITY if shed_priority is None \
            else int(shed_priority)
        self.journal = RequestJournal()
        self.supervisor = None      # attached by route()/LocalTier
        self.counters = {
            "submitted": 0, "forwarded": 0, "completed": 0, "failed": 0,
            "router_cache_hits": 0, "failovers": 0, "retried": 0,
            "busy_rejected": 0, "shed": 0, "drain_rejected": 0,
            "shards_evicted": 0, "shards_restored": 0,
        }
        self.inflight = 0
        self.draining = False
        self._stopped = None
        self._health_task = None
        self._last_retry_after = 1.0
        self._executor = ThreadPoolExecutor(
            max_workers=max_forward_threads,
            thread_name_prefix="repro-route-fwd")

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop):
        self._stopped = asyncio.Event()
        self._health_task = loop.create_task(self._health_loop())

    async def stop(self):
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        self._executor.shutdown(wait=False)

    @property
    def stopped(self):
        return self._stopped

    def begin_drain(self):
        """Stop admission; :attr:`stopped` fires once every forwarded
        in-flight request has been answered."""
        if self.draining:
            return
        self.draining = True
        _LOG.info("router drain requested: %d forwards in flight",
                  self.inflight)
        self.maybe_finish_drain()

    def maybe_finish_drain(self):
        if self.draining and self.inflight == 0 \
                and self._stopped is not None:
            self._stopped.set()

    # -- health ------------------------------------------------------------

    async def _health_loop(self):
        loop = asyncio.get_running_loop()
        while True:
            for state in list(self.shards.values()):
                try:
                    stats = await loop.run_in_executor(
                        self._executor, self._probe_shard, state.spec)
                except (ServeError, ConnectionError, OSError) as err:
                    self._note_failure(state, err)
                else:
                    self._note_success(state, stats)
            await asyncio.sleep(self.health_interval)

    def _probe_shard(self, spec):
        timeout = self.probe_timeout if self.probe_timeout is not None \
            else max(5.0, self.health_interval * 5)
        with spec.client(timeout=timeout) as client:
            return client.status()

    def _note_failure(self, state, err):
        state.fails += 1
        state.last_probe = time.monotonic()
        if state.healthy and state.fails >= self.fail_threshold:
            state.healthy = False
            self.ring.remove(state.spec.shard_id)
            self.counters["shards_evicted"] += 1
            _LOG.warning("shard %s evicted after %d failed probes (%s); "
                         "ring now %s", state.spec.shard_id, state.fails,
                         err, self.ring.nodes)

    def _note_success(self, state, stats):
        state.fails = 0
        state.stats = stats
        state.last_probe = time.monotonic()
        retry_after = stats.get("retry_after")
        if retry_after:
            self._last_retry_after = float(retry_after)
        if not state.healthy:
            state.healthy = True
            self.ring.add(state.spec.shard_id)
            self.counters["shards_restored"] += 1
            _LOG.info("shard %s restored; ring now %s",
                      state.spec.shard_id, self.ring.nodes)

    def mark_down(self, shard_id):
        """Immediate eviction on a forwarding connection error (the
        health loop restores the shard when it answers again)."""
        state = self.shards.get(shard_id)
        if state is None or not state.healthy:
            return
        state.healthy = False
        state.fails = self.fail_threshold
        self.ring.remove(shard_id)
        self.counters["shards_evicted"] += 1
        _LOG.warning("shard %s marked down mid-forward; ring now %s",
                     shard_id, self.ring.nodes)

    # -- the shared cache tier ---------------------------------------------

    def _probe_cache(self, request):
        """Router-side probe of the shared content-addressed cache —
        a ``bench`` cell computed by *any* shard is a hit here."""
        if not self.probe_cache or request.op != "bench" \
                or not request.use_cache:
            return None
        from repro.bench import runner
        try:
            scale = runner.resolve_scale(request.benchmark, request.scale)
        except KeyError:
            return None
        record = runner.cached_record(request.engine, request.benchmark,
                                      request.config, scale)
        if record is None:
            return None
        return api.ExecutionResult(
            op="bench", engine=request.engine,
            benchmark=request.benchmark, config=request.config,
            scale=record.scale, output=record.output,
            counters=record.counters, cached=True,
            wall_seconds=record.wall_seconds,
            simulated_mips=record.simulated_mips)

    def cache_tier(self):
        """Coherence summary of the shared cache tier: the router and
        every shard must agree on (root, tree) for a hit anywhere to
        be a hit everywhere."""
        members = {"router": cache_tier_stats()}
        for shard_id, state in self.shards.items():
            if isinstance(state.stats, dict):
                members[shard_id] = state.stats.get("cache",
                                                    {"enabled": False})
        identities = {
            (member.get("root"), member.get("tree"))
            for member in members.values() if member.get("enabled")}
        coherent = len(identities) == 1 and all(
            member.get("enabled") for member in members.values())
        return {"coherent": coherent, "members": members}

    # -- forwarding --------------------------------------------------------

    def pick(self, key, exclude=()):
        """The shard for ``key``: ring owner first, unhealthy and
        already-tried shards skipped."""
        down = {shard_id for shard_id, state in self.shards.items()
                if not state.healthy}
        return self.ring.node_for(key, exclude=set(exclude) | down)

    def healthy_count(self):
        return sum(1 for state in self.shards.values() if state.healthy)

    def _shed_retry_after(self):
        """How long a shed client should wait: long enough for the
        supervisor respawn + health-probe restore cycle to complete."""
        return round(max(self.health_interval * 2.0, 0.5), 3)

    def _maybe_shed(self, priority):
        """Deterministic load shedding below shard quorum.

        Shedding order is by priority, numerically largest (= least
        urgent) first: below quorum, requests with ``priority >
        shed_priority`` are shed; at zero healthy shards everything
        is.  Returns the typed error outcome or ``None`` to admit.
        """
        healthy = self.healthy_count()
        if healthy >= self.quorum:
            return None
        if healthy > 0 and priority <= self.shed_priority:
            return None
        self.counters["shed"] += 1
        self.counters["failed"] += 1
        if healthy == 0:
            message = ("no healthy shard available; shedding all new "
                       "work until the tier recovers")
        else:
            message = ("tier below quorum (%d/%d healthy); shedding "
                       "priority > %d" % (healthy, self.quorum,
                                          self.shed_priority))
        return ("error", protocol.ERR_SHED, message,
                {"retry_after": self._shed_retry_after()})

    async def forward(self, payload, emit_event):
        """Place and forward one submit payload.

        Returns ``("result", result_dict)`` or
        ``("error", code, message, extra)``.  ``emit_event`` receives
        each relayed shard event frame (called on the event loop).
        """
        self.counters["submitted"] += 1
        try:
            request, key = api.request_key(payload)
        except SchemaError as err:
            return ("error", protocol.ERR_INVALID, str(err), {})

        shed = self._maybe_shed(request.priority)
        if shed is not None:
            return shed

        cached = self._probe_cache(request)
        if cached is not None:
            self.counters["router_cache_hits"] += 1
            return ("result", cached.as_dict())

        loop = asyncio.get_running_loop()

        def emit_threadsafe(frame):
            loop.call_soon_threadsafe(emit_event, frame)

        entry = self.journal.open(key, request.priority)
        outcome = None
        try:
            outcome = await self._forward_attempts(
                payload, key, entry, emit_event, emit_threadsafe, loop)
            return outcome
        finally:
            self.journal.close(
                entry, outcome is not None and outcome[0] == "result")

    async def _forward_attempts(self, payload, key, entry, emit_event,
                                emit_threadsafe, loop):
        tried = []
        busy = None
        retry_reason = None
        while True:
            shard_id = self.pick(key, exclude=tried)
            if shard_id is None:
                break
            state = self.shards[shard_id]
            if retry_reason is not None:
                # The previous attempt already reached a shard; this
                # re-dispatch is transparent to the client — it sees
                # a ``retried`` event, not an error.
                self.journal.redispatch(entry, retry_reason)
                self.counters["retried"] += 1
                emit_event({"event": "retried", "shard": shard_id,
                            "from": tried[-1], "reason": retry_reason,
                            "key": key})
            emit_event({"event": "routed", "shard": shard_id,
                        "key": key, "attempt": len(tried) + 1})
            self.counters["forwarded"] += 1
            self.journal.attempt(entry, shard_id)
            try:
                result = await loop.run_in_executor(
                    self._executor, self._forward_blocking, state.spec,
                    payload, emit_threadsafe)
            except ServeBusy as err:
                busy = err
                tried.append(shard_id)
                retry_reason = "busy"
                self.counters["failovers"] += 1
                _LOG.info("shard %s saturated for %s; failing over",
                          shard_id, key)
                continue
            except ServeError as err:
                if err.code == protocol.ERR_DRAINING:
                    tried.append(shard_id)
                    retry_reason = "draining"
                    self.counters["failovers"] += 1
                    continue
                self.counters["failed"] += 1
                return ("error", err.code or protocol.ERR_EXECUTION,
                        str(err), {})
            except (ConnectionError, OSError) as err:
                self.mark_down(shard_id)
                tried.append(shard_id)
                retry_reason = "stalled" \
                    if isinstance(err, TimeoutError) else "unreachable"
                self.counters["failovers"] += 1
                _LOG.warning("shard %s %s for %s (%s); re-dispatching",
                             shard_id, retry_reason, key, err)
                continue
            self.counters["completed"] += 1
            return ("result", result)

        self.counters["failed"] += 1
        if busy is not None:
            self.counters["busy_rejected"] += 1
            return ("error", protocol.ERR_BUSY,
                    "every eligible shard is saturated; retry later",
                    {"retry_after": busy.retry_after
                     or self._last_retry_after})
        self.counters["shed"] += 1
        return ("error", protocol.ERR_SHED,
                "no healthy shard available for this request; "
                "retry after the tier recovers",
                {"retry_after": self._shed_retry_after()})

    def _forward_blocking(self, spec, payload, emit):
        """One shard attempt on an executor thread: the blocking
        client with bounded busy-retry honouring ``retry_after``.

        The socket timeout is ``attempt_timeout`` when set, so a
        stalled shard surfaces as :class:`TimeoutError` (an
        ``OSError``) and flows into the re-dispatch path above."""
        timeout = self.attempt_timeout if self.attempt_timeout \
            is not None else self.forward_timeout
        with spec.client(timeout=timeout) as client:
            result = client.submit(payload, on_event=emit,
                                   retries=self.busy_retries,
                                   backoff=self.backoff)
            return result.as_dict()

    # -- introspection -----------------------------------------------------

    def stats(self):
        shard_view = {}
        for shard_id, state in self.shards.items():
            shard_view[shard_id] = {
                "healthy": state.healthy,
                "fails": state.fails,
                "stats": state.stats,
            }
        stats = {
            "schema_version": SCHEMA_VERSION,
            "role": "router",
            "draining": self.draining,
            "inflight": self.inflight,
            "jobs": dict(self.counters),
            "ring": {"nodes": self.ring.nodes,
                     "replicas": self.ring.replicas},
            "shards": shard_view,
            "cache_tier": self.cache_tier(),
            "retry_after": self._last_retry_after,
            "quorum": self.quorum,
            "healthy": self.healthy_count(),
            "journal": self.journal.stats(),
        }
        if self.supervisor is not None:
            stats["supervisor"] = self.supervisor.stats()
        return stats


class RouterServer:
    """The router's socket front end — protocol-compatible with
    :class:`repro.serve.server.ExecutionServer`."""

    def __init__(self, router, *, socket_path=None, host=None, port=None):
        if host is None and socket_path is None:
            socket_path = free_socket_path("typedarch-route")
        self.router = router
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.bound_port = None
        self._server = None
        self._connections = set()

    async def start(self):
        loop = asyncio.get_running_loop()
        self.router.start(loop)
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path,
                limit=protocol.MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host or "127.0.0.1",
                port=self.port or 0, limit=protocol.MAX_FRAME_BYTES)
            self.bound_port = self._server.sockets[0].getsockname()[1]
        return self

    def install_signal_handlers(self):
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.router.begin_drain)

    async def serve_until_stopped(self):
        await self.router.stopped.wait()
        await self.close()

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._connections.clear()
        await self.router.stop()
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    # -- per-connection protocol -------------------------------------------

    async def _send(self, writer, frame):
        writer.write(protocol.encode(frame))
        await writer.drain()

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode(line)
                except protocol.ProtocolError as err:
                    await self._send(writer, protocol.error_frame(
                        None, protocol.ERR_MALFORMED, str(err)))
                    continue
                await self._handle_frame(frame, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_frame(self, frame, writer):
        request_id = frame.get("id")
        reason = protocol.version_mismatch(frame)
        if reason is not None:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_VERSION, reason))
            return
        kind = frame.get("kind")
        if kind == "ping":
            await self._send(writer, protocol.pong_frame(request_id))
        elif kind == "status":
            await self._send(writer, protocol.status_frame(
                request_id, self.router.stats()))
        elif kind == "drain":
            self.router.begin_drain()
            await self._send(writer, protocol.status_frame(
                request_id, self.router.stats()))
        elif kind == "submit":
            await self._handle_submit(frame, writer)
        else:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "unknown frame kind %r" % (kind,)))

    async def _handle_submit(self, frame, writer):
        request_id = frame.get("id")
        payload = frame.get("request")
        if not isinstance(payload, dict):
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "submit frame has no request object"))
            return
        if self.router.draining:
            self.router.counters["drain_rejected"] += 1
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_DRAINING,
                "router is draining; resubmit elsewhere"))
            return

        self.router.inflight += 1
        events = asyncio.Queue()
        forward = asyncio.ensure_future(
            self.router.forward(payload, events.put_nowait))
        try:
            while True:
                getter = asyncio.ensure_future(events.get())
                done, _pending = await asyncio.wait(
                    {getter, forward},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter in done:
                    await self._relay_event(writer, request_id,
                                            getter.result())
                    continue
                getter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await getter
                while not events.empty():
                    await self._relay_event(writer, request_id,
                                            events.get_nowait())
                outcome = forward.result()
                if outcome[0] == "result":
                    await self._send(writer, protocol.result_frame(
                        request_id, outcome[1]))
                else:
                    _kind, code, message, extra = outcome
                    await self._send(writer, protocol.error_frame(
                        request_id, code, message, **extra))
                return
        finally:
            if not forward.done():
                forward.cancel()
                with contextlib.suppress(asyncio.CancelledError,
                                         Exception):
                    await forward
            self.router.inflight -= 1
            self.router.maybe_finish_drain()

    async def _relay_event(self, writer, request_id, frame):
        extra = {key: value for key, value in frame.items()
                 if key not in ("kind", "id", "event", "version")}
        await self._send(writer, protocol.event_frame(
            request_id, frame.get("event"), **extra))


class ShardManager:
    """Spawn and own N ``repro serve`` shard subprocesses.

    Every shard gets a collision-free unix socket under one
    ``mkdtemp`` directory and the same ``REPRO_CACHE_DIR`` (the shared
    cache tier).  Used by ``repro route --shards N``, the loadgen
    smoke harness and the CI ``serve-load`` job.
    """

    def __init__(self, count, *, jobs=1, queue_depth=32, cache_dir=None,
                 warm_engines=("lua",), warm_configs=None, log_dir=None,
                 deadline=None):
        if count < 1:
            raise ValueError("need at least one shard")
        self.count = int(count)
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.cache_dir = cache_dir
        self.warm_engines = tuple(warm_engines)
        self.warm_configs = tuple(warm_configs) if warm_configs else None
        self.log_dir = log_dir
        self.deadline = deadline
        self.base_dir = None
        self.procs = []
        self.specs = []
        self._logs = []
        self._env = None

    def start(self, timeout=90.0):
        import tempfile

        import repro
        self.base_dir = tempfile.mkdtemp(prefix="typedarch-shards-")
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = pkg_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        if self.cache_dir:
            env["REPRO_CACHE_DIR"] = str(self.cache_dir)
        self._env = env
        try:
            for index in range(self.count):
                sock = os.path.join(self.base_dir,
                                    "shard-%d.sock" % index)
                self.specs.append(ShardSpec(socket_path=sock))
                self.procs.append(None)
                self._logs.append(None)
                self._spawn(index)
            deadline_at = time.monotonic() + timeout
            for spec, proc in zip(self.specs, self.procs):
                while not os.path.exists(spec.socket_path):
                    if proc.poll() is not None:
                        raise RuntimeError(
                            "shard %s exited %d before binding its "
                            "socket" % (spec.shard_id, proc.returncode))
                    if time.monotonic() > deadline_at:
                        raise RuntimeError("shard %s never came up"
                                           % spec.shard_id)
                    time.sleep(0.05)
        except Exception:
            # No leaked children or log handles on a failed boot.
            self.stop()
            raise
        return self

    def _argv(self, index):
        argv = [sys.executable, "-m", "repro", "serve",
                "--socket", self.specs[index].socket_path,
                "--jobs", str(self.jobs),
                "--queue-depth", str(self.queue_depth)]
        if self.deadline:
            argv += ["--deadline", str(self.deadline)]
        for engine in self.warm_engines:
            argv += ["--warm-engine", engine]
        for config in self.warm_configs or ():
            argv += ["--warm-config", config]
        return argv

    def _spawn(self, index):
        """(Re)spawn shard ``index``; appends to its log so a respawn
        keeps the crash history in one file."""
        log_path = os.path.join(self.log_dir or self.base_dir,
                                "shard-%d.log" % index)
        log = open(log_path, "ab")
        self._logs[index] = log
        self.procs[index] = subprocess.Popen(
            self._argv(index), env=self._env, stdout=log,
            stderr=subprocess.STDOUT)

    def alive(self):
        return [proc is not None and proc.poll() is None
                for proc in self.procs]

    def kill(self, index):
        """Hard-kill one shard (tests: shard-loss rebalancing)."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        self._close_log(index)
        with contextlib.suppress(OSError):
            os.unlink(self.specs[index].socket_path)

    def respawn(self, index, timeout=30.0):
        """Re-spawn one *dead* shard on its original socket path (so
        its ring identity — and therefore its key ownership — is
        unchanged).  Raises if the shard is still running or the
        respawn never binds its socket.  Used by
        :class:`repro.serve.supervisor.ShardSupervisor`."""
        proc = self.procs[index]
        if proc is not None and proc.poll() is None:
            raise RuntimeError("shard %d is still running" % index)
        spec = self.specs[index]
        self._close_log(index)
        with contextlib.suppress(OSError):
            os.unlink(spec.socket_path)
        self._spawn(index)
        proc = self.procs[index]
        deadline_at = time.monotonic() + timeout
        while not os.path.exists(spec.socket_path):
            if proc.poll() is not None:
                raise RuntimeError(
                    "respawned shard %s exited %d before binding"
                    % (spec.shard_id, proc.returncode))
            if time.monotonic() > deadline_at:
                proc.kill()
                proc.wait()
                raise RuntimeError("respawned shard %s never came up"
                                   % spec.shard_id)
            time.sleep(0.05)
        return spec

    def drain(self, timeout=120.0):
        """Politely drain every live shard; returns their exit codes."""
        for spec, proc in zip(self.specs, self.procs):
            if proc is None or proc.poll() is not None:
                continue
            try:
                with spec.client(timeout=30.0) as client:
                    client.drain()
            except (ServeError, ConnectionError, OSError):
                proc.terminate()
        codes = []
        for proc in self.procs:
            if proc is None:
                codes.append(None)
                continue
            try:
                codes.append(proc.wait(timeout=timeout))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
        self._close_logs()
        return codes

    def stop(self):
        """Hard stop (error paths); prefer :meth:`drain`."""
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()
        self._close_logs()

    def _close_log(self, index):
        log = self._logs[index]
        if log is not None:
            with contextlib.suppress(OSError):
                log.close()
            self._logs[index] = None

    def _close_logs(self):
        for index in range(len(self._logs)):
            self._close_log(index)


async def route(shards, *, socket_path=None, host=None, port=None,
                signals=True, ready=None, supervisor=None,
                **router_kwargs):
    """Run the router until drained (the ``repro route`` body)."""
    router = Router(shards, **router_kwargs)
    router.supervisor = supervisor
    server = RouterServer(router, socket_path=socket_path, host=host,
                          port=port)
    await server.start()
    if signals:
        server.install_signal_handlers()
    if ready is not None:
        ready(server)
    _LOG.info("routing on %s across %d shard(s): %s",
              server.socket_path or "%s:%s" % (server.host,
                                               server.bound_port),
              len(router.shards), ", ".join(router.shards))
    await server.serve_until_stopped()
    return router
