"""``repro route`` — the consistent-hash front router of the serve tier.

One router process fronts N ``repro serve`` shards and speaks the
*same* NDJSON protocol as a single daemon, so every existing client
(``repro submit``, :class:`~repro.serve.client.ServeClient`, the load
generator) works against either unchanged.  What the router adds:

* **Placement** — each submit is consistent-hashed by its canonical
  work key (:func:`repro.api.request_key`) onto a shard
  (:mod:`repro.serve.hashring`), so repeats of a popular request
  always meet the same shard's dedup/coalescing machinery and warm
  state, and a shard set change remaps only ~1/N of the key space.
* **Health + rebalancing** — a background loop pings every shard;
  consecutive failures evict it from the ring (its keys flow to the
  ring successors), recovery re-adds it.  A connection error during a
  forward fails over to the next shard in ring order immediately,
  without waiting for the health loop.
* **Backpressure** — per-shard ``busy`` rejections are retried with
  bounded backoff honouring the server's ``retry_after`` hint (the
  :meth:`ServeClient.submit` retry machinery), then failed over once;
  only when every eligible shard is saturated does the client see the
  ``busy`` frame.
* **Shared cache tier** — all shards and the router point at one
  content-addressed result-cache root; the router probes it before
  forwarding, so a ``bench`` cell computed by *any* shard is a router
  cache hit for every later client.  The aggregated ``status`` frame
  reports whether the tier is coherent (every member on the same root
  and source tree).
* **Graceful drain** — a ``drain`` frame (or SIGTERM) stops admission,
  lets every forwarded in-flight request finish and flush its reply
  (zero dropped — the SLO gate asserts this), then exits.

See docs/SERVING.md for topology and operations.
"""

import asyncio
import contextlib
import logging
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro import api
from repro.schema import SCHEMA_VERSION, SchemaError
from repro.serve import protocol
from repro.serve.client import ServeBusy, ServeClient, ServeError
from repro.serve.hashring import DEFAULT_REPLICAS, HashRing
from repro.serve.server import cache_tier_stats, free_socket_path

_LOG = logging.getLogger("repro.serve.router")

#: Seconds between health probes of each shard.
DEFAULT_HEALTH_INTERVAL = 2.0

#: Consecutive failed probes before a shard is evicted from the ring.
DEFAULT_FAIL_THRESHOLD = 2

#: Per-shard busy retries (on top of the first attempt) before the
#: router fails the request over to the next shard in ring order.
DEFAULT_BUSY_RETRIES = 2


class ShardSpec:
    """Address of one shard: a unix socket path or ``host:port``."""

    __slots__ = ("shard_id", "socket_path", "host", "port")

    def __init__(self, socket_path=None, host=None, port=None):
        if socket_path is None and (host is None or port is None):
            raise ValueError("a shard needs a socket path or host:port")
        self.socket_path = socket_path
        self.host = host
        self.port = int(port) if port is not None else None
        self.shard_id = "unix:%s" % socket_path if socket_path \
            else "%s:%d" % (host, self.port)

    @classmethod
    def parse(cls, text):
        """``unix:/path/to.sock``, a bare ``/path/to.sock``, or
        ``host:port``."""
        if text.startswith("unix:"):
            return cls(socket_path=text[len("unix:"):])
        if text.startswith(("/", ".")):
            return cls(socket_path=text)
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError("unparseable shard address %r (expected "
                             "unix:/path, /path or host:port)" % text)
        return cls(host=host or "127.0.0.1", port=int(port))

    def client(self, timeout=600.0):
        return ServeClient(socket_path=self.socket_path, host=self.host,
                           port=self.port, timeout=timeout)

    def __repr__(self):
        return "ShardSpec(%s)" % self.shard_id


class _ShardState:
    """Router-side bookkeeping for one shard."""

    __slots__ = ("spec", "healthy", "fails", "stats", "last_probe")

    def __init__(self, spec):
        self.spec = spec
        self.healthy = True
        self.fails = 0
        self.stats = None       # last status snapshot from the shard
        self.last_probe = None


class Router:
    """Placement, health and forwarding over a set of shards.

    Forwards run on a dedicated thread pool (the blocking
    :class:`ServeClient` with its busy-retry machinery), bridged back
    to the event loop; everything else is single-threaded asyncio.
    """

    def __init__(self, shards, *, replicas=DEFAULT_REPLICAS,
                 health_interval=DEFAULT_HEALTH_INTERVAL,
                 fail_threshold=DEFAULT_FAIL_THRESHOLD,
                 busy_retries=DEFAULT_BUSY_RETRIES, backoff=0.25,
                 probe_cache=True, forward_timeout=600.0,
                 max_forward_threads=32):
        specs = [shard if isinstance(shard, ShardSpec)
                 else ShardSpec.parse(shard) for shard in shards]
        if not specs:
            raise ValueError("a router needs at least one shard")
        self.shards = {spec.shard_id: _ShardState(spec) for spec in specs}
        self.ring = HashRing(self.shards, replicas=replicas)
        self.health_interval = health_interval
        self.fail_threshold = fail_threshold
        self.busy_retries = busy_retries
        self.backoff = backoff
        self.probe_cache = probe_cache
        self.forward_timeout = forward_timeout
        self.counters = {
            "submitted": 0, "forwarded": 0, "completed": 0, "failed": 0,
            "router_cache_hits": 0, "failovers": 0, "busy_rejected": 0,
            "drain_rejected": 0, "shards_evicted": 0, "shards_restored": 0,
        }
        self.inflight = 0
        self.draining = False
        self._stopped = None
        self._health_task = None
        self._last_retry_after = 1.0
        self._executor = ThreadPoolExecutor(
            max_workers=max_forward_threads,
            thread_name_prefix="repro-route-fwd")

    # -- lifecycle ---------------------------------------------------------

    def start(self, loop):
        self._stopped = asyncio.Event()
        self._health_task = loop.create_task(self._health_loop())

    async def stop(self):
        if self._health_task is not None:
            self._health_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._health_task
            self._health_task = None
        self._executor.shutdown(wait=False)

    @property
    def stopped(self):
        return self._stopped

    def begin_drain(self):
        """Stop admission; :attr:`stopped` fires once every forwarded
        in-flight request has been answered."""
        if self.draining:
            return
        self.draining = True
        _LOG.info("router drain requested: %d forwards in flight",
                  self.inflight)
        self.maybe_finish_drain()

    def maybe_finish_drain(self):
        if self.draining and self.inflight == 0 \
                and self._stopped is not None:
            self._stopped.set()

    # -- health ------------------------------------------------------------

    async def _health_loop(self):
        loop = asyncio.get_running_loop()
        while True:
            for state in list(self.shards.values()):
                try:
                    stats = await loop.run_in_executor(
                        self._executor, self._probe_shard, state.spec)
                except (ServeError, ConnectionError, OSError) as err:
                    self._note_failure(state, err)
                else:
                    self._note_success(state, stats)
            await asyncio.sleep(self.health_interval)

    def _probe_shard(self, spec):
        with spec.client(timeout=max(5.0, self.health_interval * 5)) \
                as client:
            return client.status()

    def _note_failure(self, state, err):
        state.fails += 1
        state.last_probe = time.monotonic()
        if state.healthy and state.fails >= self.fail_threshold:
            state.healthy = False
            self.ring.remove(state.spec.shard_id)
            self.counters["shards_evicted"] += 1
            _LOG.warning("shard %s evicted after %d failed probes (%s); "
                         "ring now %s", state.spec.shard_id, state.fails,
                         err, self.ring.nodes)

    def _note_success(self, state, stats):
        state.fails = 0
        state.stats = stats
        state.last_probe = time.monotonic()
        retry_after = stats.get("retry_after")
        if retry_after:
            self._last_retry_after = float(retry_after)
        if not state.healthy:
            state.healthy = True
            self.ring.add(state.spec.shard_id)
            self.counters["shards_restored"] += 1
            _LOG.info("shard %s restored; ring now %s",
                      state.spec.shard_id, self.ring.nodes)

    def mark_down(self, shard_id):
        """Immediate eviction on a forwarding connection error (the
        health loop restores the shard when it answers again)."""
        state = self.shards.get(shard_id)
        if state is None or not state.healthy:
            return
        state.healthy = False
        state.fails = self.fail_threshold
        self.ring.remove(shard_id)
        self.counters["shards_evicted"] += 1
        _LOG.warning("shard %s marked down mid-forward; ring now %s",
                     shard_id, self.ring.nodes)

    # -- the shared cache tier ---------------------------------------------

    def _probe_cache(self, request):
        """Router-side probe of the shared content-addressed cache —
        a ``bench`` cell computed by *any* shard is a hit here."""
        if not self.probe_cache or request.op != "bench" \
                or not request.use_cache:
            return None
        from repro.bench import runner
        try:
            scale = runner.resolve_scale(request.benchmark, request.scale)
        except KeyError:
            return None
        record = runner.cached_record(request.engine, request.benchmark,
                                      request.config, scale)
        if record is None:
            return None
        return api.ExecutionResult(
            op="bench", engine=request.engine,
            benchmark=request.benchmark, config=request.config,
            scale=record.scale, output=record.output,
            counters=record.counters, cached=True,
            wall_seconds=record.wall_seconds,
            simulated_mips=record.simulated_mips)

    def cache_tier(self):
        """Coherence summary of the shared cache tier: the router and
        every shard must agree on (root, tree) for a hit anywhere to
        be a hit everywhere."""
        members = {"router": cache_tier_stats()}
        for shard_id, state in self.shards.items():
            if isinstance(state.stats, dict):
                members[shard_id] = state.stats.get("cache",
                                                    {"enabled": False})
        identities = {
            (member.get("root"), member.get("tree"))
            for member in members.values() if member.get("enabled")}
        coherent = len(identities) == 1 and all(
            member.get("enabled") for member in members.values())
        return {"coherent": coherent, "members": members}

    # -- forwarding --------------------------------------------------------

    def pick(self, key, exclude=()):
        """The shard for ``key``: ring owner first, unhealthy and
        already-tried shards skipped."""
        down = {shard_id for shard_id, state in self.shards.items()
                if not state.healthy}
        return self.ring.node_for(key, exclude=set(exclude) | down)

    async def forward(self, payload, emit_event):
        """Place and forward one submit payload.

        Returns ``("result", result_dict)`` or
        ``("error", code, message, extra)``.  ``emit_event`` receives
        each relayed shard event frame (called on the event loop).
        """
        self.counters["submitted"] += 1
        try:
            request, key = api.request_key(payload)
        except SchemaError as err:
            return ("error", protocol.ERR_INVALID, str(err), {})

        cached = self._probe_cache(request)
        if cached is not None:
            self.counters["router_cache_hits"] += 1
            return ("result", cached.as_dict())

        loop = asyncio.get_running_loop()

        def emit_threadsafe(frame):
            loop.call_soon_threadsafe(emit_event, frame)

        tried = []
        busy = None
        while True:
            shard_id = self.pick(key, exclude=tried)
            if shard_id is None:
                break
            state = self.shards[shard_id]
            emit_event({"event": "routed", "shard": shard_id,
                        "key": key, "attempt": len(tried) + 1})
            self.counters["forwarded"] += 1
            try:
                result = await loop.run_in_executor(
                    self._executor, self._forward_blocking, state.spec,
                    payload, emit_threadsafe)
            except ServeBusy as err:
                busy = err
                tried.append(shard_id)
                self.counters["failovers"] += 1
                _LOG.info("shard %s saturated for %s; failing over",
                          shard_id, key)
                continue
            except ServeError as err:
                if err.code == protocol.ERR_DRAINING:
                    tried.append(shard_id)
                    self.counters["failovers"] += 1
                    continue
                self.counters["failed"] += 1
                return ("error", err.code or protocol.ERR_EXECUTION,
                        str(err), {})
            except (ConnectionError, OSError) as err:
                self.mark_down(shard_id)
                tried.append(shard_id)
                self.counters["failovers"] += 1
                _LOG.warning("shard %s unreachable for %s (%s); "
                             "failing over", shard_id, key, err)
                continue
            self.counters["completed"] += 1
            return ("result", result)

        self.counters["failed"] += 1
        if busy is not None:
            self.counters["busy_rejected"] += 1
            return ("error", protocol.ERR_BUSY,
                    "every eligible shard is saturated; retry later",
                    {"retry_after": busy.retry_after
                     or self._last_retry_after})
        return ("error", protocol.ERR_EXECUTION,
                "no healthy shard available for this request", {})

    def _forward_blocking(self, spec, payload, emit):
        """One shard attempt on an executor thread: the blocking
        client with bounded busy-retry honouring ``retry_after``."""
        with spec.client(timeout=self.forward_timeout) as client:
            result = client.submit(payload, on_event=emit,
                                   retries=self.busy_retries,
                                   backoff=self.backoff)
            return result.as_dict()

    # -- introspection -----------------------------------------------------

    def stats(self):
        shard_view = {}
        for shard_id, state in self.shards.items():
            shard_view[shard_id] = {
                "healthy": state.healthy,
                "fails": state.fails,
                "stats": state.stats,
            }
        return {
            "schema_version": SCHEMA_VERSION,
            "role": "router",
            "draining": self.draining,
            "inflight": self.inflight,
            "jobs": dict(self.counters),
            "ring": {"nodes": self.ring.nodes,
                     "replicas": self.ring.replicas},
            "shards": shard_view,
            "cache_tier": self.cache_tier(),
            "retry_after": self._last_retry_after,
        }


class RouterServer:
    """The router's socket front end — protocol-compatible with
    :class:`repro.serve.server.ExecutionServer`."""

    def __init__(self, router, *, socket_path=None, host=None, port=None):
        if host is None and socket_path is None:
            socket_path = free_socket_path("typedarch-route")
        self.router = router
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.bound_port = None
        self._server = None
        self._connections = set()

    async def start(self):
        loop = asyncio.get_running_loop()
        self.router.start(loop)
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path,
                limit=protocol.MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host or "127.0.0.1",
                port=self.port or 0, limit=protocol.MAX_FRAME_BYTES)
            self.bound_port = self._server.sockets[0].getsockname()[1]
        return self

    def install_signal_handlers(self):
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.router.begin_drain)

    async def serve_until_stopped(self):
        await self.router.stopped.wait()
        await self.close()

    async def close(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        for task in list(self._connections):
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        self._connections.clear()
        await self.router.stop()
        if self.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)

    # -- per-connection protocol -------------------------------------------

    async def _send(self, writer, frame):
        writer.write(protocol.encode(frame))
        await writer.drain()

    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode(line)
                except protocol.ProtocolError as err:
                    await self._send(writer, protocol.error_frame(
                        None, protocol.ERR_MALFORMED, str(err)))
                    continue
                await self._handle_frame(frame, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_frame(self, frame, writer):
        request_id = frame.get("id")
        reason = protocol.version_mismatch(frame)
        if reason is not None:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_VERSION, reason))
            return
        kind = frame.get("kind")
        if kind == "ping":
            await self._send(writer, protocol.pong_frame(request_id))
        elif kind == "status":
            await self._send(writer, protocol.status_frame(
                request_id, self.router.stats()))
        elif kind == "drain":
            self.router.begin_drain()
            await self._send(writer, protocol.status_frame(
                request_id, self.router.stats()))
        elif kind == "submit":
            await self._handle_submit(frame, writer)
        else:
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "unknown frame kind %r" % (kind,)))

    async def _handle_submit(self, frame, writer):
        request_id = frame.get("id")
        payload = frame.get("request")
        if not isinstance(payload, dict):
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_MALFORMED,
                "submit frame has no request object"))
            return
        if self.router.draining:
            self.router.counters["drain_rejected"] += 1
            await self._send(writer, protocol.error_frame(
                request_id, protocol.ERR_DRAINING,
                "router is draining; resubmit elsewhere"))
            return

        self.router.inflight += 1
        events = asyncio.Queue()
        forward = asyncio.ensure_future(
            self.router.forward(payload, events.put_nowait))
        try:
            while True:
                getter = asyncio.ensure_future(events.get())
                done, _pending = await asyncio.wait(
                    {getter, forward},
                    return_when=asyncio.FIRST_COMPLETED)
                if getter in done:
                    await self._relay_event(writer, request_id,
                                            getter.result())
                    continue
                getter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await getter
                while not events.empty():
                    await self._relay_event(writer, request_id,
                                            events.get_nowait())
                outcome = forward.result()
                if outcome[0] == "result":
                    await self._send(writer, protocol.result_frame(
                        request_id, outcome[1]))
                else:
                    _kind, code, message, extra = outcome
                    await self._send(writer, protocol.error_frame(
                        request_id, code, message, **extra))
                return
        finally:
            if not forward.done():
                forward.cancel()
                with contextlib.suppress(asyncio.CancelledError,
                                         Exception):
                    await forward
            self.router.inflight -= 1
            self.router.maybe_finish_drain()

    async def _relay_event(self, writer, request_id, frame):
        extra = {key: value for key, value in frame.items()
                 if key not in ("kind", "id", "event", "version")}
        await self._send(writer, protocol.event_frame(
            request_id, frame.get("event"), **extra))


class ShardManager:
    """Spawn and own N ``repro serve`` shard subprocesses.

    Every shard gets a collision-free unix socket under one
    ``mkdtemp`` directory and the same ``REPRO_CACHE_DIR`` (the shared
    cache tier).  Used by ``repro route --shards N``, the loadgen
    smoke harness and the CI ``serve-load`` job.
    """

    def __init__(self, count, *, jobs=1, queue_depth=32, cache_dir=None,
                 warm_engines=("lua",), warm_configs=None, log_dir=None,
                 deadline=None):
        if count < 1:
            raise ValueError("need at least one shard")
        self.count = int(count)
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.cache_dir = cache_dir
        self.warm_engines = tuple(warm_engines)
        self.warm_configs = tuple(warm_configs) if warm_configs else None
        self.log_dir = log_dir
        self.deadline = deadline
        self.base_dir = None
        self.procs = []
        self.specs = []
        self._logs = []

    def start(self, timeout=90.0):
        import tempfile

        import repro
        self.base_dir = tempfile.mkdtemp(prefix="typedarch-shards-")
        pkg_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = pkg_root + os.pathsep \
            + env.get("PYTHONPATH", "")
        if self.cache_dir:
            env["REPRO_CACHE_DIR"] = str(self.cache_dir)
        for index in range(self.count):
            sock = os.path.join(self.base_dir, "shard-%d.sock" % index)
            argv = [sys.executable, "-m", "repro", "serve",
                    "--socket", sock, "--jobs", str(self.jobs),
                    "--queue-depth", str(self.queue_depth)]
            if self.deadline:
                argv += ["--deadline", str(self.deadline)]
            for engine in self.warm_engines:
                argv += ["--warm-engine", engine]
            for config in self.warm_configs or ():
                argv += ["--warm-config", config]
            log_path = os.path.join(self.log_dir or self.base_dir,
                                    "shard-%d.log" % index)
            log = open(log_path, "wb")
            self._logs.append(log)
            self.procs.append(subprocess.Popen(
                argv, env=env, stdout=log, stderr=subprocess.STDOUT))
            self.specs.append(ShardSpec(socket_path=sock))
        deadline_at = time.monotonic() + timeout
        for spec, proc in zip(self.specs, self.procs):
            while not os.path.exists(spec.socket_path):
                if proc.poll() is not None:
                    raise RuntimeError(
                        "shard %s exited %d before binding its socket"
                        % (spec.shard_id, proc.returncode))
                if time.monotonic() > deadline_at:
                    raise RuntimeError("shard %s never came up"
                                       % spec.shard_id)
                time.sleep(0.05)
        return self

    def alive(self):
        return [proc.poll() is None for proc in self.procs]

    def kill(self, index):
        """Hard-kill one shard (tests: shard-loss rebalancing)."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        with contextlib.suppress(OSError):
            os.unlink(self.specs[index].socket_path)

    def drain(self, timeout=120.0):
        """Politely drain every live shard; returns their exit codes."""
        for spec, proc in zip(self.specs, self.procs):
            if proc.poll() is not None:
                continue
            try:
                with spec.client(timeout=30.0) as client:
                    client.drain()
            except (ServeError, ConnectionError, OSError):
                proc.terminate()
        codes = []
        for proc in self.procs:
            try:
                codes.append(proc.wait(timeout=timeout))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
        self._close_logs()
        return codes

    def stop(self):
        """Hard stop (error paths); prefer :meth:`drain`."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        self._close_logs()

    def _close_logs(self):
        for log in self._logs:
            with contextlib.suppress(OSError):
                log.close()
        self._logs = []


async def route(shards, *, socket_path=None, host=None, port=None,
                signals=True, ready=None, **router_kwargs):
    """Run the router until drained (the ``repro route`` body)."""
    router = Router(shards, **router_kwargs)
    server = RouterServer(router, socket_path=socket_path, host=host,
                          port=port)
    await server.start()
    if signals:
        server.install_signal_handlers()
    if ready is not None:
        ready(server)
    _LOG.info("routing on %s across %d shard(s): %s",
              server.socket_path or "%s:%s" % (server.host,
                                               server.bound_port),
              len(router.shards), ", ".join(router.shards))
    await server.serve_until_stopped()
    return router
