"""The service's warm worker pool.

A thin lifecycle wrapper around :class:`ProcessPoolExecutor` that
reuses the hardening machinery of :mod:`repro.bench.parallel`: the
same ``_warm_worker`` initializer (fork-time interpreter assembly, so
the first served request doesn't pay it), the same ``_kill_pool``
teardown for hung workers, and the same graceful degradation — when a
process pool cannot be built at all (sandboxed semaphores, missing
``/dev/shm``) the pool falls back to a single *inline* thread that
executes requests in-process with identical results.

The pool is **lazy**: no worker process exists until the first
:meth:`submit`.  A request satisfied from the persistent result cache
therefore never spawns a worker — the acceptance contract of
``repro serve``'s cache path — and ``builds`` in :meth:`stats` stays
at zero until real work arrives.
"""

import logging
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.bench.parallel import _kill_pool, _warm_worker
from repro.engines import all_configs

_LOG = logging.getLogger("repro.serve.pool")


def _shard_worker_init(warm_engines, warm_configs):
    """Worker initializer: warm the interpreters, then drop the disk
    cache the ``fork`` inherited from the parent.

    The shared result-cache tier is strictly single-writer per shard:
    only the shard *parent* publishes records (mirroring
    :mod:`repro.bench.parallel`), so a forked worker must never hold a
    live handle to the shared cache root — with N shards over one
    root, worker-side writes would multiply the writers per cell from
    N to N x pool size for no benefit.
    """
    _warm_worker(warm_engines, warm_configs)
    from repro.bench import cache as result_cache
    result_cache.disable()


class WarmPool:
    """Lazily-built pool of warm forked workers.

    ``workers=0`` selects *inline* mode outright: requests run on one
    background thread in this process (fast to start, fully
    deterministic — used by tests and ``--jobs 0``).  ``inline_fn``
    is the callable run for each submitted payload; it defaults to
    :func:`repro.api.execute_payload` and is swappable in inline mode
    so tests can gate execution.
    """

    def __init__(self, workers=2, warm_engines=("lua", "js"),
                 warm_configs=None, inline_fn=None):
        self.workers = max(0, int(workers))
        self.warm_engines = tuple(warm_engines)
        self.warm_configs = tuple(
            all_configs() if warm_configs is None else warm_configs)
        from repro import api
        self.inline_fn = inline_fn or api.execute_payload
        self._pool = None
        self._lock = threading.Lock()
        self._inline = self.workers == 0
        self.builds = 0      # process-pool constructions (0 = still cold)
        self.executed = 0    # tasks handed to a worker (cache hits skip)

    @property
    def mode(self):
        return "inline" if self._inline else "process"

    def _ensure(self):
        with self._lock:
            if self._pool is not None:
                return self._pool
            if self._inline:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, self.workers),
                    thread_name_prefix="repro-serve-inline")
                return self._pool
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_shard_worker_init,
                    initargs=(self.warm_engines, self.warm_configs))
                self.builds += 1
            except Exception:
                _LOG.warning("process pool unavailable; executing "
                             "requests inline in this process")
                self._inline = True
                self._pool = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-serve-inline")
            return self._pool

    def submit(self, payload):
        """Submit one request payload; returns a
        :class:`concurrent.futures.Future` of the result payload."""
        from repro import api
        pool = self._ensure()
        self.executed += 1
        if self._inline:
            return pool.submit(self.inline_fn, payload)
        try:
            return pool.submit(api.execute_payload, payload)
        except Exception:
            # The pool died between jobs (worker OOM-killed, shutdown
            # race): rebuild once and let the caller's retry logic
            # handle anything further.
            self.kill_rebuild()
            return self._ensure().submit(api.execute_payload, payload)

    def kill_rebuild(self):
        """Tear the current pool down *now* (hung-worker path: reuses
        :func:`repro.bench.parallel._kill_pool`); the next submit
        builds a fresh one."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        if isinstance(pool, ThreadPoolExecutor):
            # Threads cannot be killed; orphan the executor and let
            # any wedged task finish in the background.
            pool.shutdown(wait=False)
        else:
            _kill_pool(pool)

    def shutdown(self):
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            if isinstance(pool, ThreadPoolExecutor):
                pool.shutdown(wait=False)
            else:
                pool.shutdown(wait=False, cancel_futures=True)

    def stats(self):
        return {"mode": self.mode, "workers": self.workers,
                "builds": self.builds, "executed": self.executed,
                "warm": self._pool is not None}
