"""Shard supervision: detect dead shard processes and bring them back.

:class:`ShardSupervisor` watches a :class:`~repro.serve.router
.ShardManager`'s subprocesses from a daemon thread and mirrors
``bench/parallel.run_hardened``'s kill+rebuild semantics at the
process tier:

* **Detect** — a poll loop notices a shard whose process has exited
  (SIGKILLed, OOMed, crashed — the supervisor does not care why).
* **Respawn with exponential backoff** — the shard is respawned on
  its *original* socket path (same ring identity, same key
  ownership).  Consecutive failures back off ``backoff * 2**n`` up to
  ``max_backoff`` so a broken shard binary cannot hot-loop the
  supervisor.
* **Crash-loop circuit breaker** — more than ``breaker_threshold``
  deaths inside ``breaker_window`` seconds opens the breaker for that
  shard: no respawns until ``breaker_cooldown`` has passed (then one
  half-open attempt is allowed).  A tier where one shard's workload
  reliably kills it degrades to N-1 shards instead of burning CPU on
  a respawn storm.
* **Health-probed re-admission** — a respawn only counts as recovered
  once a ``status`` probe answers.  Ring re-admission itself stays
  where it always was: the router's health loop restores a shard
  after a successful probe, so a shard that binds its socket but
  cannot serve never rejoins the ring.

The supervisor deliberately owns *no* ring state — it heals
processes; the router heals membership.  ``hold(index)`` /
``release(index)`` suspend healing for one shard (the chaos harness
uses this to keep a black-holed socket in place).

See docs/SERVING.md (supervision) and docs/RELIABILITY.md (chaos).
"""

import contextlib
import logging
import threading
import time

_LOG = logging.getLogger("repro.serve.supervisor")

#: Seconds between liveness polls of the shard process table.
DEFAULT_POLL_INTERVAL = 0.2

#: First respawn delay; doubles per consecutive failure.
DEFAULT_BACKOFF = 0.25

#: Ceiling on the respawn delay.
DEFAULT_MAX_BACKOFF = 8.0

#: Deaths within ``breaker_window`` that open the circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 5

#: Sliding window (seconds) the breaker counts deaths over.
DEFAULT_BREAKER_WINDOW = 30.0

#: Seconds the breaker stays open before one half-open retry.
DEFAULT_BREAKER_COOLDOWN = 10.0


class _ShardWatch:
    """Supervision state for one shard index."""

    __slots__ = ("index", "deaths", "consecutive_failures", "respawns",
                 "next_attempt_at", "breaker_open_until", "breaker_trips",
                 "held", "awaiting_probe", "last_exit_code")

    def __init__(self, index):
        self.index = index
        self.deaths = []            # monotonic timestamps, pruned
        self.consecutive_failures = 0
        self.respawns = 0
        self.next_attempt_at = 0.0
        self.breaker_open_until = None
        self.breaker_trips = 0
        self.held = False
        self.awaiting_probe = False
        self.last_exit_code = None


class ShardSupervisor:
    """Watch a :class:`ShardManager`'s shards; respawn the dead ones.

    ``manager`` needs ``procs``, ``specs`` and ``respawn(index)`` —
    the real :class:`~repro.serve.router.ShardManager` or a test
    double.  Start/stop from the owning harness; the poll loop runs
    on a daemon thread and never raises.
    """

    def __init__(self, manager, *,
                 poll_interval=DEFAULT_POLL_INTERVAL,
                 backoff=DEFAULT_BACKOFF,
                 max_backoff=DEFAULT_MAX_BACKOFF,
                 breaker_threshold=DEFAULT_BREAKER_THRESHOLD,
                 breaker_window=DEFAULT_BREAKER_WINDOW,
                 breaker_cooldown=DEFAULT_BREAKER_COOLDOWN,
                 probe_timeout=2.0,
                 clock=time.monotonic, sleep=None):
        self.manager = manager
        self.poll_interval = poll_interval
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.breaker_cooldown = breaker_cooldown
        self.probe_timeout = probe_timeout
        self._clock = clock
        self._stop = threading.Event()
        self._sleep = sleep or (lambda s: self._stop.wait(s))
        self._thread = None
        self._lock = threading.Lock()
        self.watches = [_ShardWatch(index)
                        for index in range(len(manager.procs))]
        self.events = []            # (t, kind, index, detail) audit trail

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-shard-supervisor",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout=10.0):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def hold(self, index):
        """Suspend respawns for one shard (chaos: keep a dead socket
        dead while a decoy listener squats on it)."""
        with self._lock:
            self.watches[index].held = True

    def release(self, index):
        with self._lock:
            self.watches[index].held = False
            self.watches[index].next_attempt_at = 0.0

    # -- the poll loop -----------------------------------------------------

    def _loop(self):
        while not self._stop.is_set():
            try:
                self.poll_once()
            except Exception:  # noqa: BLE001 — supervision never dies
                _LOG.exception("supervisor poll failed")
            self._sleep(self.poll_interval)

    def poll_once(self):
        """One supervision pass (exposed for deterministic tests)."""
        now = self._clock()
        for watch in self.watches:
            with self._lock:
                if watch.held:
                    continue
            proc = self.manager.procs[watch.index]
            if proc is None or proc.poll() is not None:
                self._handle_dead(watch, proc, now)
            elif watch.awaiting_probe:
                self._probe(watch, now)

    def _handle_dead(self, watch, proc, now):
        if proc is not None and watch.last_exit_code is None:
            watch.last_exit_code = proc.returncode
            watch.deaths.append(now)
            self._record(now, "died", watch.index,
                         "exit %s" % proc.returncode)
        cutoff = now - self.breaker_window
        watch.deaths = [t for t in watch.deaths if t >= cutoff]
        if watch.breaker_open_until is not None:
            if now < watch.breaker_open_until:
                return
            # Half-open: allow exactly one attempt; re-trips on the
            # next death inside the window.
            watch.breaker_open_until = None
            watch.deaths = []
            self._record(now, "breaker_half_open", watch.index, "")
        if len(watch.deaths) > self.breaker_threshold:
            watch.breaker_open_until = now + self.breaker_cooldown
            watch.breaker_trips += 1
            self._record(now, "breaker_open", watch.index,
                         "%d deaths in %.1fs" % (len(watch.deaths),
                                                 self.breaker_window))
            _LOG.warning("shard %d crash-looping (%d deaths in %.1fs); "
                         "breaker open for %.1fs", watch.index,
                         len(watch.deaths), self.breaker_window,
                         self.breaker_cooldown)
            return
        if now < watch.next_attempt_at:
            return
        # Exponential backoff grows with both failed respawn attempts
        # and rapid re-deaths of successfully respawned processes.
        exponent = watch.consecutive_failures \
            + max(0, len(watch.deaths) - 1)
        delay = min(self.max_backoff, self.backoff * (2 ** exponent))
        try:
            self.manager.respawn(watch.index)
        except Exception as err:  # noqa: BLE001 — retried with backoff
            watch.consecutive_failures += 1
            watch.next_attempt_at = self._clock() + delay
            self._record(now, "respawn_failed", watch.index, str(err))
            _LOG.warning("respawn of shard %d failed (%s); next attempt "
                         "in %.2fs", watch.index, err, delay)
            return
        watch.respawns += 1
        watch.last_exit_code = None
        watch.awaiting_probe = True
        # A fresh death of the respawned process still backs off.
        watch.next_attempt_at = self._clock() + delay
        self._record(now, "respawned", watch.index,
                     "attempt %d" % watch.respawns)
        _LOG.info("shard %d respawned (attempt %d)", watch.index,
                  watch.respawns)

    def _probe(self, watch, now):
        """Confirm a respawned shard actually serves before calling it
        recovered (ring re-admission is the router health loop's call,
        made on the same evidence: an answered status probe)."""
        spec = self.manager.specs[watch.index]
        try:
            with spec.client(timeout=self.probe_timeout) as client:
                client.status()
        except Exception:  # noqa: BLE001 — not up yet; keep polling
            return
        watch.awaiting_probe = False
        watch.consecutive_failures = 0
        watch.next_attempt_at = 0.0
        self._record(now, "recovered", watch.index, "")
        _LOG.info("shard %d answering probes again", watch.index)

    def _record(self, now, kind, index, detail):
        with self._lock:
            self.events.append((round(now, 3), kind, index, detail))
            del self.events[:-256]

    # -- introspection -----------------------------------------------------

    def stats(self):
        with self._lock:
            shards = {}
            for watch in self.watches:
                shards[str(watch.index)] = {
                    "respawns": watch.respawns,
                    "breaker_trips": watch.breaker_trips,
                    "breaker_open": watch.breaker_open_until is not None,
                    "held": watch.held,
                    "awaiting_probe": watch.awaiting_probe,
                }
            return {
                "respawns": sum(w.respawns for w in self.watches),
                "breaker_trips": sum(w.breaker_trips
                                     for w in self.watches),
                "shards": shards,
                "events": [list(event) for event in self.events[-32:]],
            }


@contextlib.contextmanager
def supervised(manager, **kwargs):
    """Context-manager sugar: a running supervisor over ``manager``."""
    supervisor = ShardSupervisor(manager, **kwargs).start()
    try:
        yield supervisor
    finally:
        supervisor.stop()
