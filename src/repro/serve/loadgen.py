"""``repro loadgen`` — synthetic traffic for the serve tier.

Replays a mixed ``run``/``bench``/``sweep`` workload against a router
(or a single ``repro serve`` daemon — same protocol) at a target QPS
and measures what the ROADMAP's serving story needs measured:
sustained QPS, p50/p95/p99 latency, cache hit rate and rejection rate,
written as a schema-stamped ``BENCH_serve.json`` artifact that
``repro.bench.gate``'s SLO mode holds the line on in CI.

Traffic model:

* A fixed *population* of request keys is derived deterministically
  from the seed — little Lua/JS programs, benchmark cells across the
  tagging-scheme registry, and (optionally) tiny sweeps.
* Arrivals are open-loop at ``1/qps`` spacing; each request picks its
  key by **zipf-skewed popularity** (rank ``r`` drawn with probability
  proportional to ``1/(r+1)^s``), the canonical shape of scripting
  traffic — a few hot requests and a long cold tail — which is exactly
  what exercises the tier's dedup/coalescing and the shared cache.
* A ``busy`` rejection is *counted*, not retried: the harness measures
  the tier's backpressure instead of hiding it.

Two acceptance probes ride along:

* **Identity** — a sampled subset of served replies is compared
  byte-for-byte (sorted-JSON counters) against an in-process
  :func:`repro.api.execute` of the same payload.
* **Drain** — with in-flight requests outstanding, the target is asked
  to drain; every one of them must still complete (zero dropped).
"""

import json
import logging
import threading
import time
from dataclasses import dataclass, field

from repro import api
from repro.schema import artifact
from repro.serve.client import (ServeBusy, ServeClient, ServeError,
                                ServeShed)

_LOG = logging.getLogger("repro.serve.loadgen")

#: Artifact family of ``BENCH_serve.json``.
ARTIFACT_KIND = "serve-load"

#: Default op mix (must sum to 1; ``sweep`` is deliberately rare —
#: one sweep costs hundreds of requests' worth of work).
DEFAULT_MIX = {"run": 0.55, "bench": 0.40, "sweep": 0.05}

#: Benchmark cells the ``bench`` slice cycles through (kept tiny so a
#: load run is traffic-bound, not simulation-bound).
BENCH_SCALES = (3, 4, 5, 6)


@dataclass
class LoadSpec:
    """One load run's knobs (all deterministic given ``seed``)."""

    qps: float = 10.0
    duration: float = 8.0
    keys: int = 16
    zipf_s: float = 1.1
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    engines: tuple = ("lua",)
    configs: tuple = None       # default: the live registry
    seed: int = 1234
    threads: int = 16
    timeout: float = 120.0
    sample: int = 3             # identity-checked population entries
    drain_inflight: int = 3     # in-flight requests during the drain
    benchmark: str = "fibo"

    def resolved_configs(self):
        if self.configs:
            return tuple(self.configs)
        from repro.engines import all_configs
        return tuple(all_configs())


class ZipfSampler:
    """Draw ranks ``0..n-1`` with probability ~ ``1/(rank+1)**s``."""

    def __init__(self, n, s=1.1):
        weights = [1.0 / ((rank + 1) ** s) for rank in range(n)]
        total = sum(weights)
        self.cdf = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self.cdf.append(acc)

    def draw(self, uniform):
        """Map one uniform [0,1) draw to a rank."""
        import bisect
        return min(bisect.bisect_right(self.cdf, uniform),
                   len(self.cdf) - 1)


def _run_source(engine, rank):
    """A deterministic little guest program, distinct per rank."""
    iterations = 200 + 97 * rank
    if engine == "js":
        return ("var s = 0;\n"
                "for (var i = 1; i <= %d; i = i + 1) { s = s + i * i; }\n"
                "print(s);\n" % iterations)
    return ("local s = 0\n"
            "for i = 1, %d do s = s + i * i end\n"
            "print(s)\n" % iterations)


def build_population(spec):
    """The request population: ``spec.keys`` distinct payloads, op mix
    and config mix drawn deterministically from the seed.

    Rank 0 is the most popular key under the zipf draw, so the
    ordering here *is* the popularity ordering.
    """
    import random
    rng = random.Random(spec.seed)
    configs = spec.resolved_configs()
    ops = list(spec.mix)
    weights = [spec.mix[op] for op in ops]
    population = []
    for rank in range(spec.keys):
        op = rng.choices(ops, weights=weights)[0]
        engine = spec.engines[rank % len(spec.engines)]
        config = configs[rank % len(configs)]
        if op == "run":
            request = api.ExecutionRequest(
                op="run", engine=engine,
                source=_run_source(engine, rank), config=config)
        elif op == "bench":
            request = api.ExecutionRequest(
                op="bench", engine=engine, benchmark=spec.benchmark,
                config=config,
                scale=BENCH_SCALES[rank % len(BENCH_SCALES)])
        else:
            request = api.ExecutionRequest(
                op="sweep", engines=(engine,),
                benchmarks=(spec.benchmark,), configs=(config,),
                scales={spec.benchmark: BENCH_SCALES[0]}, jobs=1)
        population.append({
            "rank": rank,
            "op": op,
            "payload": request.as_dict(),
            "key": request.key(),
        })
    return population


def build_schedule(spec, population):
    """The open-loop arrival schedule: ``(offset_seconds, entry)``
    pairs, zipf-skewed over the population, deterministic for a seed.
    Shared by :func:`run_load` and the chaos harness
    (:mod:`repro.serve.chaos`), which replays the *same* traffic under
    a fault schedule."""
    import random
    sampler = ZipfSampler(len(population), spec.zipf_s)
    rng = random.Random(spec.seed + 1)
    offered = max(1, int(spec.qps * spec.duration))
    return [(index / spec.qps,
             population[sampler.draw(rng.random())])
            for index in range(offered)]


def percentile(values, q):
    """The ``q``-quantile (0..1) of ``values`` by rank selection;
    0.0 for an empty list."""
    if not values:
        return 0.0
    import math
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1,
                       math.ceil(q * len(ordered)) - 1))
    return ordered[index]


class _Collector:
    """Thread-safe accumulation of per-request outcomes."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies = []
        self.completed = 0
        self.cached = 0
        self.coalesced = 0
        self.rejected = 0
        self.shed = 0
        self.errors = []
        self.first_result = {}   # rank -> result dict (first completion)
        self.first_sent = None
        self.last_done = None

    def note_sent(self, now):
        with self.lock:
            if self.first_sent is None:
                self.first_sent = now

    def note_result(self, rank, result, latency, now):
        with self.lock:
            self.completed += 1
            self.latencies.append(latency)
            self.cached += bool(result.cached)
            self.coalesced += bool(result.coalesced)
            self.first_result.setdefault(rank, result)
            self.last_done = now

    def note_rejected(self, now):
        with self.lock:
            self.rejected += 1
            self.last_done = now

    def note_shed(self, now):
        with self.lock:
            self.shed += 1
            self.last_done = now

    def note_error(self, err, now):
        with self.lock:
            self.errors.append("%s: %s" % (type(err).__name__, err))
            self.last_done = now


def _client_kwargs(socket_path, host, port, timeout):
    if host is not None:
        return {"host": host, "port": port, "timeout": timeout}
    return {"socket_path": socket_path, "timeout": timeout}


def run_load(spec, *, socket_path=None, host=None, port=None,
             drain_check=True, progress=None):
    """Run one load campaign against the tier at the given address;
    returns the (unstamped) report dict — see :func:`make_report` for
    the artifact form."""
    population = build_population(spec)
    schedule = build_schedule(spec, population)
    offered = len(schedule)
    collector = _Collector()
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    start = time.monotonic()

    def worker():
        while True:
            with cursor_lock:
                index = cursor["next"]
                if index >= len(schedule):
                    return
                cursor["next"] = index + 1
            offset, entry = schedule[index]
            delay = start + offset - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            sent = time.monotonic()
            collector.note_sent(sent)
            try:
                with ServeClient(**_client_kwargs(
                        socket_path, host, port, spec.timeout)) as client:
                    result = client.submit(entry["payload"])
            except ServeShed:
                collector.note_shed(time.monotonic())
            except ServeBusy:
                collector.note_rejected(time.monotonic())
            except (ServeError, ConnectionError, OSError) as err:
                collector.note_error(err, time.monotonic())
            else:
                done = time.monotonic()
                collector.note_result(entry["rank"], result,
                                      done - sent, done)
            if progress is not None:
                progress(collector)

    threads = [threading.Thread(target=worker, name="loadgen-%d" % i,
                                daemon=True)
               for i in range(max(1, min(spec.threads, offered)))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    elapsed = (collector.last_done or time.monotonic()) \
        - (collector.first_sent or start)
    identity = check_identity(spec, population, collector.first_result)
    drain = {"checked": False, "inflight_at_drain": 0, "dropped": 0}
    drain_stats = None
    if drain_check:
        drain, drain_stats = run_drain_check(
            spec, socket_path=socket_path, host=host, port=port)

    latencies_ms = [latency * 1000.0 for latency in collector.latencies]
    attempts = collector.completed + collector.rejected \
        + collector.shed + len(collector.errors)
    report = {
        "spec": {
            "qps": spec.qps, "duration": spec.duration,
            "keys": spec.keys, "zipf_s": spec.zipf_s,
            "mix": dict(spec.mix), "engines": list(spec.engines),
            "configs": list(spec.resolved_configs()),
            "seed": spec.seed, "threads": spec.threads,
            "benchmark": spec.benchmark,
        },
        "traffic": {
            "offered": offered,
            "completed": collector.completed,
            "rejected": collector.rejected,
            "shed": collector.shed,
            "errors": len(collector.errors),
            "error_samples": collector.errors[:5],
            "cached": collector.cached,
            "coalesced": collector.coalesced,
        },
        "sustained_qps": round(collector.completed / elapsed, 3)
        if elapsed > 0 else 0.0,
        "elapsed_seconds": round(elapsed, 3),
        "latency_ms": {
            "p50": round(percentile(latencies_ms, 0.50), 2),
            "p95": round(percentile(latencies_ms, 0.95), 2),
            "p99": round(percentile(latencies_ms, 0.99), 2),
            "mean": round(sum(latencies_ms) / len(latencies_ms), 2)
            if latencies_ms else 0.0,
            "max": round(max(latencies_ms), 2) if latencies_ms else 0.0,
        },
        "cache_hit_rate": round(collector.cached
                                / max(1, collector.completed), 4),
        "coalesced_rate": round(collector.coalesced
                                / max(1, collector.completed), 4),
        "rejection_rate": round(collector.rejected / max(1, attempts), 4),
        "shed_rate": round(collector.shed / max(1, attempts), 4),
        "error_rate": round(len(collector.errors) / max(1, attempts), 4),
        "identity": identity,
        "drain": drain,
    }
    if drain_stats is not None:
        report["router"] = drain_stats
    return report


def check_identity(spec, population, first_result):
    """Re-execute a sampled subset in-process and compare counters
    byte-for-byte (sorted JSON) with the served replies."""
    candidates = [entry for entry in population
                  if entry["op"] in ("run", "bench")
                  and entry["rank"] in first_result]
    sampled = candidates[:max(0, spec.sample)]
    matched, mismatched = 0, []
    for entry in sampled:
        payload = dict(entry["payload"])
        if entry["op"] == "bench":
            # Fresh local execution — the point is to cross-check the
            # tier against the simulator, not against its own cache.
            payload["use_cache"] = False
        local = api.execute(api.ExecutionRequest.from_dict(payload))
        served = first_result[entry["rank"]]
        local_blob = json.dumps(local.counters.as_dict(), sort_keys=True)
        served_blob = json.dumps(
            served.counters.as_dict() if served.counters else None,
            sort_keys=True)
        if local_blob == served_blob and served.output == local.output:
            matched += 1
        else:
            mismatched.append(entry["key"])
    return {"sampled": len(sampled), "matched": matched,
            "mismatched_keys": mismatched}


def run_drain_check(spec, *, socket_path=None, host=None, port=None):
    """With ``spec.drain_inflight`` requests in flight, ask the target
    to drain; every in-flight request must still complete.

    Returns ``(drain_section, stats_from_drain_reply)``.  After this
    the target is gone — it's the load run's final act.
    """
    count = max(1, spec.drain_inflight)
    admitted = [threading.Event() for _ in range(count)]
    outcomes = [None] * count

    def one(index):
        # Unique sources so the requests can't coalesce into one job.
        source = ("local s = 0\n"
                  "for i = 1, %d do s = s + i end\n"
                  "print(s)\n" % (40000 + index))

        def on_event(frame):
            if frame.get("event") in ("queued", "routed", "started"):
                admitted[index].set()

        try:
            with ServeClient(**_client_kwargs(
                    socket_path, host, port, spec.timeout)) as client:
                outcomes[index] = client.run("lua", source,
                                             config="baseline",
                                             on_event=on_event)
        except (ServeError, ConnectionError, OSError) as err:
            admitted[index].set()
            outcomes[index] = err

    threads = [threading.Thread(target=one, args=(index,), daemon=True)
               for index in range(count)]
    for thread in threads:
        thread.start()
    for event in admitted:
        event.wait(spec.timeout)
    stats = None
    try:
        with ServeClient(**_client_kwargs(
                socket_path, host, port, spec.timeout)) as client:
            stats = client.drain()
    except (ServeError, ConnectionError, OSError) as err:
        _LOG.warning("drain control request failed: %s", err)
    for thread in threads:
        thread.join(spec.timeout)
    completed = sum(1 for outcome in outcomes
                    if isinstance(outcome, api.ExecutionResult)
                    and outcome.ok)
    return ({"checked": True, "inflight_at_drain": count,
             "dropped": count - completed}, stats)


def make_report(report):
    """Stamp a :func:`run_load` report as the ``BENCH_serve.json``
    artifact."""
    return artifact(ARTIFACT_KIND, report)


class LocalTier:
    """A self-booted routed tier: N subprocess shards sharing one
    cache root, fronted by an in-process router thread.

    The loadgen smoke harness (CI's ``serve-load`` job) and the
    integration tests both drive their traffic through this.  Use as a
    context manager; on a *drained* exit (the load run's drain check
    already stopped the router) :meth:`shutdown` just reaps shards.
    """

    def __init__(self, shards=2, *, jobs=1, queue_depth=16,
                 cache_dir=None, warm_engines=("lua",),
                 warm_configs=None, log_dir=None, socket_path=None,
                 health_interval=1.0, busy_retries=2,
                 supervise=False, supervisor_kwargs=None,
                 router_kwargs=None):
        from repro.serve.router import ShardManager
        from repro.serve.server import free_socket_path
        self.manager = ShardManager(
            shards, jobs=jobs, queue_depth=queue_depth,
            cache_dir=cache_dir, warm_engines=warm_engines,
            warm_configs=warm_configs, log_dir=log_dir)
        self.socket_path = socket_path \
            or free_socket_path("typedarch-route")
        self.health_interval = health_interval
        self.busy_retries = busy_retries
        self.supervise = supervise
        self.supervisor_kwargs = dict(supervisor_kwargs or {})
        self.router_kwargs = dict(router_kwargs or {})
        self.router = None
        self.supervisor = None
        self.shard_exit_codes = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    def start(self, timeout=120.0):
        import asyncio
        self.manager.start()
        if self.supervise:
            from repro.serve.supervisor import ShardSupervisor
            self.supervisor = ShardSupervisor(
                self.manager, **self.supervisor_kwargs).start()

        def main():
            from repro.serve.router import route
            try:
                self.router = asyncio.run(route(
                    self.manager.specs, socket_path=self.socket_path,
                    signals=False,
                    ready=lambda _server: self._ready.set(),
                    health_interval=self.health_interval,
                    busy_retries=self.busy_retries,
                    supervisor=self.supervisor,
                    **self.router_kwargs))
            except Exception as err:  # noqa: BLE001 — surfaced below
                self._error = err
                self._ready.set()
        self._thread = threading.Thread(target=main,
                                        name="repro-route",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout) or self._error is not None:
            if self.supervisor is not None:
                self.supervisor.stop()
            self.manager.stop()
            raise RuntimeError("router never came up: %s" % self._error)
        return self

    def shutdown(self, timeout=120.0):
        """Stop supervision (so the drain is not fought by respawns),
        drain the router (idempotent: a no-op if the load run's drain
        check already stopped it), then drain the shards."""
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._thread is not None and self._thread.is_alive():
            try:
                with ServeClient(socket_path=self.socket_path,
                                 timeout=30.0) as client:
                    client.drain()
            except (ServeError, ConnectionError, OSError):
                pass
            self._thread.join(timeout)
        self.shard_exit_codes = self.manager.drain(timeout=timeout)
        return self.shard_exit_codes

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        try:
            self.shutdown()
        except Exception:  # noqa: BLE001 — teardown must not mask
            if self.supervisor is not None:
                self.supervisor.stop()
            self.manager.stop()
