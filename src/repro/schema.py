"""The single source of truth for every versioned JSON payload.

Three subsystems persist or exchange JSON that must survive across
processes and source revisions — the benchmark result cache
(:mod:`repro.bench.cache`), the perf-gate baseline
(:mod:`repro.bench.gate`), the fault-campaign report
(:mod:`repro.faults.campaign`) — and the execution service
(:mod:`repro.serve`) speaks the same schema over its wire protocol.
They all stamp their payloads with :data:`SCHEMA_VERSION` defined
here, so one bump invalidates every stale artefact at once instead of
three constants drifting independently.

Versioning policy (see docs/API.md):

* Bump :data:`SCHEMA_VERSION` whenever any versioned payload changes
  shape — a new field with a safe default does *not* require a bump
  (readers use ``.get``), a renamed/retyped/removed field does.
* Readers reject mismatched payloads outright (:func:`require`); the
  caches treat a mismatch as a miss, the gate asks for a baseline
  regeneration, the service refuses the request with a ``version``
  error frame.  Nothing ever attempts cross-version migration — every
  payload is cheap to regenerate from the deterministic simulator.

History: versions 1-3 were the result cache's private lineage
(1 initial, 2 telemetry + attribution counters, 3 wall-clock/MIPS
metadata); version 4 unified the cache, the gate baseline, the faults
report and the new ``repro.api`` request/response schema under this
module.
"""

#: The current version of every JSON payload the package emits.
SCHEMA_VERSION = 4

#: Key under which the version is stored in payloads.
VERSION_KEY = "version"


class SchemaError(ValueError):
    """A versioned payload is missing, malformed or from another
    schema version."""


def stamp(payload):
    """Return ``payload`` with the current schema version stamped in
    (mutates and returns the same dict, for expression use)."""
    payload[VERSION_KEY] = SCHEMA_VERSION
    return payload


def mismatch(payload):
    """``None`` when ``payload`` carries the current version, else a
    human-readable reason string (also for non-dict payloads)."""
    if not isinstance(payload, dict):
        return "payload is %s, not an object" % type(payload).__name__
    version = payload.get(VERSION_KEY)
    if version != SCHEMA_VERSION:
        return "schema version %r != %d" % (version, SCHEMA_VERSION)
    return None


def check(payload):
    """``True`` when ``payload`` is a dict stamped with the current
    schema version."""
    return mismatch(payload) is None


def require(payload, kind="payload"):
    """Validate and return ``payload``; raises :class:`SchemaError`
    naming ``kind`` on any version mismatch."""
    reason = mismatch(payload)
    if reason is not None:
        raise SchemaError("%s: %s" % (kind, reason))
    return payload


#: Key naming the artifact family inside stamped benchmark artifacts
#: (``BENCH_serve.json``, ``BENCH_simperf.json``, ...).
ARTIFACT_KEY = "kind"


def artifact(kind, payload):
    """Stamp ``payload`` as a versioned benchmark artifact of family
    ``kind`` (returns a new dict; the original is not mutated)."""
    stamped = dict(payload)
    stamped[ARTIFACT_KEY] = kind
    return stamp(stamped)


def require_artifact(payload, kind):
    """Validate a stamped artifact of family ``kind`` (version *and*
    kind must match); returns the payload."""
    require(payload, "%s artifact" % kind)
    actual = payload.get(ARTIFACT_KEY)
    if actual != kind:
        raise SchemaError("artifact kind %r != %r" % (actual, kind))
    return payload
