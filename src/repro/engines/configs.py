"""The tagging-scheme registry: machine configurations as data.

The paper evaluates exactly three configurations (baseline / chklb /
typed).  This module generalises that triple into a registry of
*tagging schemes*: each entry declares a name, how the tag extractor is
programmed (``R_offset``/``R_shift``/``R_mask`` per engine), which check
instructions the handlers use (the scheme *family*) and whether the
scheme participates in the committed performance gate.

Beyond the paper's triple the registry ships:

* ``selftag`` — Float Self-Tagging (Melançon et al., OOPSLA 2023): the
  tag of an unboxed double lives in the float payload itself, so tagged
  loads/stores of FP values skip the tag-plane memory round-trip.  The
  simulator models this as a timing elision (the architectural tag
  plane stays coherent so software slow paths and fault campaigns see
  identical state).
* ``typed-lowbit`` / ``typed-wide`` — tag-placement variants in the
  spirit of Watt's *Look Before You Leap*, expressed purely through
  extractor geometry (a narrower low-bit window, or a window widened
  past the NaN-box tag field).  Handlers are untouched; only the
  startup SPR programming and the Type Rule Table contents change,
  via :meth:`TaggingScheme.extracted_tag`.

Adding a scheme is a call to :func:`register`; every consumer (sweep,
figures, fault campaigns, serve warm sets, CLI ``--config``) enumerates
the registry dynamically.  The performance gate alone stays pinned to
:data:`GATE_CONFIGS` so committed baselines remain comparable — new
schemes are gate-exempt until a new baseline is committed.
"""

from dataclasses import dataclass
from types import MappingProxyType

from repro.isa.extension import (
    OFFSET_SELF_TAG,
    SprSettings,
)
from repro.sim import nanbox

# Canonical configuration names.  The first three are the paper's triple.
BASELINE = "baseline"
TYPED = "typed"
CHECKED_LOAD = "chklb"
SELF_TAG = "selftag"
TYPED_LOWBIT = "typed-lowbit"
TYPED_WIDE = "typed-wide"
ELIDED = "elided"

#: The paper's triple, in the order the committed gate baseline stores
#: them.  ``bench/gate.py`` pins its metric collection to this tuple so
#: results stay comparable against ``benchmarks/results/baseline.json``;
#: everything else enumerates :func:`all_configs`.
GATE_CONFIGS = (BASELINE, CHECKED_LOAD, TYPED)

# Scheme families: which check instructions the handlers are built with.
FAMILY_SOFTWARE = "software"   # Figure 1(c) software guard chains
FAMILY_TYPED = "typed"         # tld/thdl/xadd/tchk/tsd (Figure 3)
FAMILY_CHECKED = "chklb"       # Checked Load comparator (chklb/chklw)
FAMILY_ELIDED = "elided"       # software guards, statically elided


@dataclass(frozen=True)
class HandlerPolicy:
    """How both engines build an interpreter for one scheme family.

    The engine builders (``engines/*/handlers/build.py``) consult the
    policy instead of switching on ``scheme.family`` directly, so a new
    family registers here once and every engine, sweep, figure and
    fault campaign picks it up without per-engine edits.

    ``check_mode`` / ``startup_mode`` select which of the engines'
    guard flavours and startup fragments the *standard* handlers use
    (one of the paper-triple families).  The optional hooks extend the
    build: ``quicken(engine, chunk)`` runs after compilation and may
    rewrite bytecode in place; ``quickened_ops(engine)`` names the
    extra opcodes the rewrite may emit (``{opcode: name}`` — sizes the
    jump table and extends handler attribution); ``extra_handlers
    (engine, scheme)`` returns assembly text appended to the
    interpreter for those opcodes.
    """

    family: str
    description: str
    check_mode: str = FAMILY_SOFTWARE
    startup_mode: str = FAMILY_SOFTWARE
    quicken: object = None
    quickened_ops: object = None
    extra_handlers: object = None


_POLICIES = {}


def register_family(policy):
    """Add a :class:`HandlerPolicy`.  Duplicate families are rejected."""
    if not isinstance(policy, HandlerPolicy):
        raise TypeError("expected a HandlerPolicy, got %r" % (policy,))
    if policy.family in _POLICIES:
        raise ValueError("scheme family %r is already registered"
                         % policy.family)
    _POLICIES[policy.family] = policy
    return policy


def unregister_family(family):
    """Remove a family policy (test hook; built-ins should stay put)."""
    _POLICIES.pop(family, None)


def family_policy(family):
    """Look up the :class:`HandlerPolicy` for a scheme family."""
    try:
        return _POLICIES[family]
    except KeyError:
        raise ValueError("unknown scheme family %r (registered: %s)"
                         % (family, ", ".join(_POLICIES))) from None


def all_families():
    """Registered family names, in registration order."""
    return tuple(_POLICIES)


register_family(HandlerPolicy(
    family=FAMILY_SOFTWARE,
    description="software guard chains on every dispatch (Figure 1(c))",
))

register_family(HandlerPolicy(
    family=FAMILY_TYPED,
    description="hardware tagged ISA: tld/thdl/xadd/tchk/tsd (Figure 3)",
    check_mode=FAMILY_TYPED,
    startup_mode=FAMILY_TYPED,
))

register_family(HandlerPolicy(
    family=FAMILY_CHECKED,
    description="Checked Load comparator guards (chklb/chklw)",
    check_mode=FAMILY_CHECKED,
    startup_mode=FAMILY_CHECKED,
))


def _elided_quicken(engine, chunk):
    from repro.analysis import quicken_chunk
    return quicken_chunk(engine, chunk)


def _elided_quickened_ops(engine):
    from repro.analysis.quickening import quickened_ops
    return quickened_ops(engine)


def _elided_extra_handlers(engine, scheme):
    if engine == "lua":
        from repro.engines.lua.handlers import elided
    elif engine == "js":
        from repro.engines.js.handlers import elided
    else:
        raise ValueError("unknown engine %r" % (engine,))
    return elided.build(scheme)


register_family(HandlerPolicy(
    family=FAMILY_ELIDED,
    description=("software guards statically elided where the tag-"
                 "inference proof holds (repro.analysis)"),
    quicken=_elided_quicken,
    quickened_ops=_elided_quickened_ops,
    extra_handlers=_elided_extra_handlers,
))


@dataclass(frozen=True)
class TaggingScheme:
    """One registered machine configuration.

    ``geometry`` maps an engine name (``"lua"``/``"js"``) to the
    :class:`SprSettings` the startup code programs instead of the
    engine's Table 4 default; engines absent from the mapping keep the
    default.  A geometry override may only move the tag *window*
    (shift/mask) — the dword-select and NaN-detect bits of ``R_offset``
    are part of the value layout and must match the engine default.
    """

    name: str
    description: str
    family: str
    hardware_checks: bool
    self_tag: bool = False
    geometry: object = None   # optional {engine: SprSettings}
    gate_pinned: bool = False

    def __post_init__(self):
        if self.family not in _POLICIES:
            raise ValueError("unknown scheme family %r (registered: %s)"
                             % (self.family, ", ".join(_POLICIES)))
        if self.geometry is not None:
            object.__setattr__(
                self, "geometry", MappingProxyType(dict(self.geometry)))

    def spr(self, engine, default):
        """Resolve the extractor programming for ``engine``.

        ``default`` is the engine's Table 4 :class:`SprSettings`.  The
        self-tag schemes set the ``OFFSET_SELF_TAG`` bit on top of the
        resolved offset.
        """
        settings = default
        if self.geometry is not None and engine in self.geometry:
            settings = self.geometry[engine]
            if (settings.offset ^ default.offset) & 0b111:
                raise ValueError(
                    "scheme %r geometry for %r changes the tag dword "
                    "select/NaN-detect bits (offset %#o vs default %#o)"
                    % (self.name, engine, settings.offset, default.offset))
        if self.self_tag:
            settings = SprSettings(
                offset=settings.offset | OFFSET_SELF_TAG,
                shift=settings.shift, mask=settings.mask)
        return settings

    def extracted_tag(self, engine, default, tag):
        """Tag value the extractor reports for layout tag ``tag``.

        A placement variant shifts/masks a different window out of the
        same physical bits, so the Type Rule Table (and the codec's
        int/double pseudo-tags) must be loaded with the *transformed*
        tags.  This computes the transform: materialise the physical
        tag bits under the engine's default layout, then extract them
        through this scheme's window.
        """
        spr = self.spr(engine, default)
        if default.nan_detect:
            bits = nanbox.box(tag, 0)
        else:
            bits = (tag & default.mask) << default.shift
        return (bits >> spr.shift) & spr.mask


def transformed_rules(scheme, engine, default, rules):
    """Type Rule Table contents for ``scheme``: every tag field of the
    engine's Table 5 ``rules`` mapped through the scheme's extractor
    window (see :meth:`TaggingScheme.extracted_tag`)."""
    from repro.isa.extension import TypeRule
    tr = scheme.extracted_tag
    return tuple(
        TypeRule(rule.opcode,
                 tr(engine, default, rule.type_in1),
                 tr(engine, default, rule.type_in2),
                 tr(engine, default, rule.type_out))
        for rule in rules)


# -- registry ----------------------------------------------------------------

_REGISTRY = {}


def register(scheme):
    """Add ``scheme`` to the registry.  Duplicate names are rejected."""
    if not isinstance(scheme, TaggingScheme):
        raise TypeError("expected a TaggingScheme, got %r" % (scheme,))
    if scheme.name in _REGISTRY:
        raise ValueError("config %r is already registered" % scheme.name)
    _REGISTRY[scheme.name] = scheme
    return scheme


def unregister(name):
    """Remove a scheme (test hook; the built-ins should stay put)."""
    _REGISTRY.pop(name, None)


def get_scheme(name):
    """Look up a scheme by configuration name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError("unknown config %r (registered: %s)"
                         % (name, ", ".join(_REGISTRY))) from None


def is_registered(name):
    return name in _REGISTRY


def all_configs():
    """Registered configuration names, in registration order."""
    return tuple(_REGISTRY)


def all_schemes():
    return tuple(_REGISTRY.values())


def hardware_check_configs():
    """Configs whose scheme uses hardware type checks (typed or chklb
    families) — the set the fault-campaign detection summary covers."""
    return tuple(s.name for s in _REGISTRY.values() if s.hardware_checks)


# -- built-in schemes --------------------------------------------------------

register(TaggingScheme(
    name=BASELINE,
    description="software type guards (Figure 1(c))",
    family=FAMILY_SOFTWARE,
    hardware_checks=False,
    gate_pinned=True,
))

register(TaggingScheme(
    name=CHECKED_LOAD,
    description="Checked Load comparator (chklb/chklw)",
    family=FAMILY_CHECKED,
    hardware_checks=True,
    gate_pinned=True,
))

register(TaggingScheme(
    name=TYPED,
    description="Typed Architecture extension (Figure 3, Table 4 geometry)",
    family=FAMILY_TYPED,
    hardware_checks=True,
    gate_pinned=True,
))

register(TaggingScheme(
    name=SELF_TAG,
    description=("Float Self-Tagging: unboxed FP skips the tag-plane "
                 "round-trip (Melançon et al.)"),
    family=FAMILY_TYPED,
    hardware_checks=True,
    self_tag=True,
))

# Placement variants: same handlers and check instructions as ``typed``,
# different extractor windows.  Lua tags fit 5 bits (TNUMINT = 19) and
# JS tags fit 3 bits (TAG_OBJECT = 7), so the low-bit windows extract
# the layout tags unchanged; the wide JS window folds the low NaN-prefix
# bits into the tag (0xF0 | tag), exercising the TRT transform path.
register(TaggingScheme(
    name=TYPED_LOWBIT,
    description="typed with minimal low-bit tag windows (5-bit Lua, 3-bit JS)",
    family=FAMILY_TYPED,
    hardware_checks=True,
    geometry={
        "lua": SprSettings(offset=0b001, shift=0, mask=0x1F),
        "js": SprSettings(offset=0b100, shift=47, mask=0x07),
    },
))

register(TaggingScheme(
    name=TYPED_WIDE,
    description="typed with an 8-bit tag window (JS window spans the "
                "NaN-prefix low bits)",
    family=FAMILY_TYPED,
    hardware_checks=True,
    geometry={
        "lua": SprSettings(offset=0b001, shift=0, mask=0xFF),
        "js": SprSettings(offset=0b100, shift=47, mask=0xFF),
    },
))

# The gradual-typing rival (ROADMAP item 4): software guards, but the
# static tag-inference pass (repro/analysis/) quickens proven-stable
# sites to guard-free handler variants.  Gate-exempt like every
# post-baseline scheme.
register(TaggingScheme(
    name=ELIDED,
    description=("software guards with static tag inference eliding "
                 "proven checks (transient gradual typing)"),
    family=FAMILY_ELIDED,
    hardware_checks=False,
))
