"""Scripting-engine substrates: MiniLua (register VM) and MiniJS (stack VM).

Each engine compiles a language subset to bytecode and interprets it with
hand-written RV64 assembly handlers executed on the simulator, under the
machine configurations enumerated by the tagging-scheme registry
(:mod:`repro.engines.configs`): the paper's ``baseline`` (software type
guards, Figure 1(c)), ``typed`` (the Typed Architecture extension,
Figure 3) and ``chklb`` (the Checked Load comparator), plus any
additionally registered schemes (``selftag`` and the tag-placement
variants ship by default).
"""

from repro.engines.configs import (  # noqa: F401
    BASELINE,
    CHECKED_LOAD,
    ELIDED,
    GATE_CONFIGS,
    SELF_TAG,
    TYPED,
    TYPED_LOWBIT,
    TYPED_WIDE,
    all_configs,
    all_families,
    all_schemes,
    family_policy,
    get_scheme,
    hardware_check_configs,
    is_registered,
    register,
    register_family,
    unregister,
    unregister_family,
)


def __getattr__(name):
    # ``CONFIGS`` reflects the live registry so late-registered schemes
    # are picked up by every consumer that enumerates it at call time.
    if name == "CONFIGS":
        return all_configs()
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
