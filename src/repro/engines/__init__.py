"""Scripting-engine substrates: MiniLua (register VM) and MiniJS (stack VM).

Each engine compiles a language subset to bytecode and interprets it with
hand-written RV64 assembly handlers executed on the simulator, in three
machine configurations: ``baseline`` (software type guards, as in the
paper's Figure 1(c)), ``typed`` (the Typed Architecture extension,
Figure 3) and ``chklb`` (the Checked Load comparator).
"""

BASELINE = "baseline"
TYPED = "typed"
CHECKED_LOAD = "chklb"

CONFIGS = (BASELINE, CHECKED_LOAD, TYPED)
