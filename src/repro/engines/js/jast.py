"""AST node types for the MiniJS subset."""

from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base class for all MiniJS AST nodes."""


@dataclass
class NumberLit(Node):
    value: object  # int (int32 range) or float


@dataclass
class StringLit(Node):
    value: str


@dataclass
class BoolLit(Node):
    value: bool


@dataclass
class NullLit(Node):
    pass


@dataclass
class UndefinedLit(Node):
    pass


@dataclass
class Name(Node):
    name: str


@dataclass
class Index(Node):
    """``obj[key]`` and ``obj.field`` sugar."""

    obj: Node
    key: Node


@dataclass
class BinOp(Node):
    op: str
    left: Node
    right: Node


@dataclass
class UnOp(Node):
    op: str  # '-', '!'
    operand: Node


@dataclass
class Call(Node):
    func: Node
    args: list


@dataclass
class ArrayLit(Node):
    items: list


@dataclass
class ObjectLit(Node):
    fields: list  # (name, expr)


@dataclass
class Block(Node):
    statements: list = field(default_factory=list)


@dataclass
class VarDecl(Node):
    name: str
    value: Optional[Node]


@dataclass
class Assign(Node):
    target: Node  # Name or Index
    value: Node
    op: Optional[str] = None  # '+' for '+=' etc.


@dataclass
class ExprStat(Node):
    expr: Node


@dataclass
class If(Node):
    condition: Node
    then: Block
    orelse: Optional[Node]  # Block or If


@dataclass
class While(Node):
    condition: Node
    body: Block


@dataclass
class DoWhile(Node):
    body: Block
    condition: Node


@dataclass
class For(Node):
    init: Optional[Node]
    condition: Optional[Node]
    step: Optional[Node]
    body: Block


@dataclass
class Return(Node):
    value: Optional[Node]


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Conditional(Node):
    """Ternary ``cond ? then : otherwise``."""

    condition: Node
    then: Node
    otherwise: Node


@dataclass
class FunctionDecl(Node):
    name: str
    params: list
    body: Block
