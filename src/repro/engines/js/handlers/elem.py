"""Element-access handlers: GETELEM / SETELEM (retargeted per Table 3)
plus NEWARRAY / NEWOBJ.

The fast path serves dense-array accesses (object tag, int32 key inside
the dense length).  Property names, sparse indices, ``length`` reads and
growth go to the host slow path.  Element copies move whole boxed dwords,
so unlike Lua no separate tag traffic exists here — which is why the
paper sees a smaller dynamic-instruction reduction for SpiderMonkey.
"""

from repro.engines import configs
from repro.engines.js.handlers import common


def _getelem_fast():
    """t1 = unboxed object pointer, t2 = sign-extended int key."""
    return """h_GETELEM__fast:
    ld   t3, 16(t1)
    bgeu t2, t3, GETELEM_slowstub
    ld   t1, 0(t1)
    slli a5, t2, 3
    add  t1, t1, a5
    ld   t3, 0(t1)
    addi s7, s7, -8
    sd   t3, 0(s7)
    j    dispatch
GETELEM_slowstub:
    j    elem_get_slow_common
"""


def _getelem_prologue(mode):
    if mode == configs.FAMILY_SOFTWARE:
        return """h_GETELEM:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    srli t3, t1, 47
    li   a4, SIG_OBJ
    bne  t3, a4, GETELEM_slowstub
    srli t3, t2, 47
    li   a4, SIG_INT
    bne  t3, a4, GETELEM_slowstub
""" + common.unbox_pointer("t1") + "    addiw t2, t2, 0\n"
    if mode == configs.FAMILY_TYPED:
        return """h_GETELEM:
    tld  t1, -8(s7)
    tld  t2, 0(s7)
    thdl GETELEM_slowstub
    tchk t1, t2
"""
    if mode == configs.FAMILY_CHECKED:
        # Single expected-type register (int32 signature): fuse the key
        # check; the object keeps its software guard.
        return """h_GETELEM:
    ld   t1, -8(s7)
    srli t3, t1, 47
    li   a4, SIG_OBJ
    bne  t3, a4, GETELEM_slowstub
    thdl GETELEM_slowstub
    chklw t2, 4(s7)
    ld   t2, 0(s7)
""" + common.unbox_pointer("t1") + "    addiw t2, t2, 0\n"
    return None


def getelem_handler(scheme):
    policy = configs.family_policy(scheme.family)
    prologue = _getelem_prologue(policy.check_mode)
    if prologue is None:
        raise ValueError("no GETELEM prologue for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family))
    return prologue + _getelem_fast()


def _setelem_fast():
    """t1 = unboxed object pointer, t2 = int key; value at TOS."""
    return """h_SETELEM__fast:
    ld   t3, 16(t1)
    bltu t2, t3, SETELEM_store
    bne  t2, t3, SETELEM_slowstub
    ld   a4, 8(t1)
    bgeu t2, a4, SETELEM_slowstub
    addi t3, t3, 1
    sd   t3, 16(t1)
SETELEM_store:
    ld   t1, 0(t1)
    slli a5, t2, 3
    add  t1, t1, a5
    ld   t3, 0(s7)
    sd   t3, 0(t1)
    addi s7, s7, -24
    j    dispatch
SETELEM_slowstub:
    j    elem_set_slow_common
"""


def _setelem_prologue(mode):
    if mode == configs.FAMILY_SOFTWARE:
        return """h_SETELEM:
    ld   t1, -16(s7)
    ld   t2, -8(s7)
    srli t3, t1, 47
    li   a4, SIG_OBJ
    bne  t3, a4, SETELEM_slowstub
    srli t3, t2, 47
    li   a4, SIG_INT
    bne  t3, a4, SETELEM_slowstub
""" + common.unbox_pointer("t1") + "    addiw t2, t2, 0\n"
    if mode == configs.FAMILY_TYPED:
        return """h_SETELEM:
    tld  t1, -16(s7)
    tld  t2, -8(s7)
    thdl SETELEM_slowstub
    tchk t1, t2
"""
    if mode == configs.FAMILY_CHECKED:
        return """h_SETELEM:
    ld   t1, -16(s7)
    srli t3, t1, 47
    li   a4, SIG_OBJ
    bne  t3, a4, SETELEM_slowstub
    thdl SETELEM_slowstub
    chklw t2, -4(s7)
    ld   t2, -8(s7)
""" + common.unbox_pointer("t1") + "    addiw t2, t2, 0\n"
    return None


def setelem_handler(scheme):
    policy = configs.family_policy(scheme.family)
    prologue = _setelem_prologue(policy.check_mode)
    if prologue is None:
        raise ValueError("no SETELEM prologue for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family))
    return prologue + _setelem_fast()


def newarray_handler():
    return """h_NEWARRAY:
    srli a0, t0, 16
    mv   a1, s7
    li   a7, %d
    ecall
    addi s7, s7, 8
    j    dispatch
""" % common.SVC_NEWARRAY


def newobj_handler():
    return """h_NEWOBJ:
    mv   a1, s7
    li   a7, %d
    ecall
    addi s7, s7, 8
    j    dispatch
""" % common.SVC_NEWOBJ


def build(scheme):
    return "\n".join([
        getelem_handler(scheme), setelem_handler(scheme),
        newarray_handler(), newobj_handler(),
    ])
