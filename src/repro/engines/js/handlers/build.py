"""Assemble the full MiniJS interpreter for one configuration."""

from repro.engines import configs
from repro.engines.js import layout
from repro.engines.js.handlers import arith, common, control, elem
from repro.sim.trt import pack_rule


def _software_startup(scheme):
    return []


def _typed_startup(scheme):
    spr = scheme.spr("js", layout.SPR_SETTINGS)
    lines = []
    lines.append("    li a0, %d" % spr.offset)
    lines.append("    setoffset a0")
    lines.append("    li a0, %d" % spr.shift)
    lines.append("    setshift a0")
    lines.append("    li a0, %d" % spr.mask)
    lines.append("    setmask a0")
    rules = configs.transformed_rules(
        scheme, "js", layout.SPR_SETTINGS, layout.TYPE_RULES)
    for rule in rules:
        lines.append("    li a0, %d" % pack_rule(rule))
        lines.append("    set_trt a0")
    return lines


def _chklb_startup(scheme):
    return ["    li a0, %d" % common.CTYPE_INT_UPPER,
            "    settype a0"]


#: Startup tail per HandlerPolicy.startup_mode.
_STARTUP_TAILS = {
    configs.FAMILY_SOFTWARE: _software_startup,
    configs.FAMILY_TYPED: _typed_startup,
    configs.FAMILY_CHECKED: _chklb_startup,
}


def _startup(scheme):
    policy = configs.family_policy(scheme.family)
    try:
        tail = _STARTUP_TAILS[policy.startup_mode]
    except KeyError:
        raise ValueError("no JS startup for mode %r (family %r)"
                         % (policy.startup_mode, scheme.family)) from None
    lines = ["startup:"]
    lines.append("    li a0, %d" % layout.BOOT_BLOCK)
    lines.append("    ld s0, %d(a0)" % layout.BOOT_MAIN_CODE)
    lines.append("    ld s2, %d(a0)" % layout.BOOT_MAIN_CONSTS)
    lines.append("    ld s4, %d(a0)" % layout.BOOT_GLOBALS)
    lines.append("    ld a5, %d(a0)" % layout.BOOT_MAIN_NLOCALS)
    lines.append("    li s1, %d" % layout.STACK_BASE)
    lines.append("    li s3, %d" % layout.JUMP_TABLE_ADDR)
    lines.append("    li s5, %d" % layout.CALL_STACK_BASE)
    lines.append("    li s6, %d" % layout.CALL_STACK_BASE)
    # Operand stack starts empty below the frame; main's locals are
    # pushed as undefined.
    lines.append("    addi s7, s1, -8")
    lines.append("    li a4, %d" % common.SIG_UNDEF)
    lines.append("    slli a4, a4, 47")
    lines.append("startup_initloop:")
    lines.append("    beqz a5, startup_initdone")
    lines.append("    addi s7, s7, 8")
    lines.append("    sd a4, 0(s7)")
    lines.append("    addi a5, a5, -1")
    lines.append("    j startup_initloop")
    lines.append("startup_initdone:")
    lines.extend(tail(scheme))
    lines.append("    j dispatch")
    return "\n".join(lines) + "\n"


def build_interpreter(config):
    """Full interpreter text for ``config`` (program-independent).
    Families whose policy carries ``extra_handlers`` (quickened
    guard-free variants) get that text appended before the shared slow
    stubs."""
    scheme = configs.get_scheme(config)
    policy = configs.family_policy(scheme.family)
    parts = [
        common.equ_block(),
        _startup(scheme),
        common.dispatch_loop(),
        arith.build(scheme),
        elem.build(scheme),
        control.build(),
    ]
    if policy.extra_handlers is not None:
        parts.append(policy.extra_handlers("js", scheme))
    parts += [
        common.slow_stubs(),
        common.error_stub(),
    ]
    return "\n".join(parts)
