"""Shared assembly fragments for the MiniJS stack machine.

Register conventions:

========  =====================================================
``s0``    bytecode program counter
``s1``    frame base (address of local slot 0)
``s2``    constants base (boxed dwords)
``s3``    handler jump table base
``s4``    globals array base (boxed dwords)
``s5``    call-stack top
``s6``    call-stack base (sentinel)
``s7``    operand-stack top-of-stack address (grows upward)
========  =====================================================

``t0`` holds the fetched bytecode word; ``t1``-``t3``, ``t4``, ``a4``,
``a5`` are scratch.  Stack slots and constants are NaN-boxed 64-bit
values.
"""

from repro.engines.js import layout

# Host service ids (shared with repro.engines.js.runtime).
SVC_ARITH = 2
SVC_COMPARE = 3
SVC_ELEM_GET = 4
SVC_ELEM_SET = 5
SVC_NEWARRAY = 6
SVC_NEWOBJ = 7
SVC_BUILTIN = 8
SVC_ERROR = 9
SVC_TYPEOF = 10

ARITH_OPS = {"ADD": 0, "SUB": 1, "MUL": 2, "DIV": 3, "MOD": 4, "NEG": 5}
COMPARE_OPS = {"EQ": 0, "NE": 1, "LT": 2, "LE": 3, "GT": 4, "GE": 5}

# (value >> 47) signatures: 13-bit NaN prefix concatenated with the tag.
SIG_INT = (0x1FFF << 4) | layout.TAG_INT32
SIG_UNDEF = (0x1FFF << 4) | layout.TAG_UNDEFINED
SIG_BOOL = (0x1FFF << 4) | layout.TAG_BOOLEAN
SIG_STR = (0x1FFF << 4) | layout.TAG_STRING
SIG_NULL = (0x1FFF << 4) | layout.TAG_NULL
SIG_OBJ = (0x1FFF << 4) | layout.TAG_OBJECT

# Upper-32-bit patterns for chklw (payload bits [46:32] are zero for
# int32 payloads and for sub-4GB object pointers).
CTYPE_INT_UPPER = ((0x1FFF << 19) | (layout.TAG_INT32 << 15)) & 0xFFFFFFFF
CTYPE_OBJ_UPPER = ((0x1FFF << 19) | (layout.TAG_OBJECT << 15)) & 0xFFFFFFFF


def equ_block():
    return """
    .equ SIG_INT, %d
    .equ SIG_UNDEF, %d
    .equ SIG_BOOL, %d
    .equ SIG_STR, %d
    .equ SIG_NULL, %d
    .equ SIG_OBJ, %d
    .equ NANPFX, 0x1FFF
""" % (SIG_INT, SIG_UNDEF, SIG_BOOL, SIG_STR, SIG_NULL, SIG_OBJ)


def dispatch_loop():
    return """
dispatch:
    lw   t0, 0(s0)
    addi s0, s0, 4
    andi t1, t0, 0xFF
    slli t1, t1, 3
    add  t1, t1, s3
    ld   t1, 0(t1)
    jr   t1
"""


def imm_unsigned(dest):
    """Instruction operand (bits 31:16) as an unsigned value."""
    return "    srli {d}, t0, 16\n".format(d=dest)


def jump_by_offset():
    """Add the signed 16-bit displacement (still in t0) to the PC."""
    return """
    slli a5, t0, 32
    srai a5, a5, 48
    slli a5, a5, 2
    add  s0, s0, a5
"""


def push(reg):
    return """    addi s7, s7, 8
    sd   {r}, 0(s7)
""".format(r=reg)


def pop(reg):
    return """    ld   {r}, 0(s7)
    addi s7, s7, -8
""".format(r=reg)


def box_undefined(reg):
    return """    li   {r}, SIG_UNDEF
    slli {r}, {r}, 47
""".format(r=reg)


def box_bool(value_reg, scratch):
    """Box the 0/1 in ``value_reg`` in place."""
    return """    li   {s}, SIG_BOOL
    slli {s}, {s}, 47
    or   {v}, {v}, {s}
""".format(v=value_reg, s=scratch)


def unbox_pointer(reg):
    """Strip the NaN prefix and tag, leaving the 47-bit payload."""
    return """    slli {r}, {r}, 17
    srli {r}, {r}, 17
""".format(r=reg)


def truthiness(value_reg, result_reg, prefix):
    """Set ``result_reg`` to 1 when the boxed value in ``value_reg`` is
    *falsy* (false, 0, -0, NaN, "", null, undefined).

    Clobbers t2, a4, a5 and f1/f2.
    """
    return """
    srli t2, {v}, 51
    li   a4, NANPFX
    beq  t2, a4, {p}_boxed
    fmv.d.x f1, {v}
    fmv.d.x f2, zero
    feq.d {r}, f1, f2
    feq.d a4, f1, f1
    xori a4, a4, 1
    or   {r}, {r}, a4
    j    {p}_done
{p}_boxed:
    srli t2, {v}, 47
    andi t2, t2, 0xF
    li   a4, {undef}
    beq  t2, a4, {p}_falsy
    li   a4, {null}
    beq  t2, a4, {p}_falsy
    li   a4, {str}
    beq  t2, a4, {p}_str
    slli {r}, {v}, 32
    seqz {r}, {r}
    j    {p}_done
{p}_str:
    slli a5, {v}, 17
    srli a5, a5, 17
    ld   a5, 0(a5)
    seqz {r}, a5
    j    {p}_done
{p}_falsy:
    li   {r}, 1
{p}_done:
""".format(v=value_reg, r=result_reg, p=prefix,
           undef=layout.TAG_UNDEFINED, null=layout.TAG_NULL,
           str=layout.TAG_STRING)


def slow_stubs():
    """Host-call tails.  Each service receives the operand-stack TOS
    address in ``a0`` (plus an operation id in ``a3`` where relevant) and
    manipulates the stack contents in simulated memory; the stub adjusts
    the stack pointer afterwards."""
    return """
arith_slow_common:
    mv   a0, s7
    li   a7, %d
    ecall
    addi s7, s7, -8
    j    dispatch
compare_slow_common:
    mv   a0, s7
    li   a7, %d
    ecall
    addi s7, s7, -8
    j    dispatch
elem_get_slow_common:
    mv   a0, s7
    li   a7, %d
    ecall
    addi s7, s7, -8
    j    dispatch
elem_set_slow_common:
    mv   a0, s7
    li   a7, %d
    ecall
    addi s7, s7, -24
    j    dispatch
""" % (SVC_ARITH, SVC_COMPARE, SVC_ELEM_GET, SVC_ELEM_SET)


def error_stub():
    return """
h_ILLEGAL:
vm_error:
    mv   a0, t0
    li   a7, %d
    ecall
    ebreak
vm_exit:
    ebreak
""" % SVC_ERROR
