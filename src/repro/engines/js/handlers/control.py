"""Stack manipulation, comparison and control-flow handlers (identical
in all machine configurations)."""

from repro.engines.js import layout
from repro.engines.js.handlers import common


def push_constants_handlers():
    return """h_UNDEF:
""" + common.box_undefined("t1") + common.push("t1") + """    j dispatch
h_NULL:
    li   t1, SIG_NULL
    slli t1, t1, 47
""" + common.push("t1") + """    j dispatch
h_PUSHBOOL:
    srli t1, t0, 16
    andi t1, t1, 1
""" + common.box_bool("t1", "t2") + common.push("t1") + """    j dispatch
h_PUSHK:
    srli t1, t0, 16
    slli t1, t1, 3
    add  t1, t1, s2
    ld   t1, 0(t1)
""" + common.push("t1") + """    j dispatch
"""


def locals_globals_handlers():
    def access(name, base, is_store):
        body = """h_{name}:
    srli t1, t0, 16
    slli t1, t1, 3
    add  t1, t1, {base}
""".format(name=name, base=base)
        if is_store:
            body += common.pop("t2") + "    sd   t2, 0(t1)\n"
        else:
            body += "    ld   t2, 0(t1)\n" + common.push("t2")
        return body + "    j dispatch\n"

    return (access("GETLOCAL", "s1", False) + access("SETLOCAL", "s1", True)
            + access("GETGLOBAL", "s4", False)
            + access("SETGLOBAL", "s4", True))


def stack_handlers():
    return """h_DUP:
    ld   t1, 0(s7)
""" + common.push("t1") + """    j dispatch
h_POP:
    addi s7, s7, -8
    j    dispatch
"""


def not_handler():
    return ("h_NOT:\n" + common.pop("t1")
            + common.truthiness("t1", "t3", "NOT")
            + common.box_bool("t3", "t2") + common.push("t3")
            + "    j dispatch\n")


def typeof_handler():
    """typeof: type-name strings live in the host's intern table, so
    this is a (cheap) library call that rewrites the TOS in place."""
    return """h_TYPEOF:
    mv   a0, s7
    li   a7, %d
    ecall
    j    dispatch
""" % common.SVC_TYPEOF


def _jump_conditional(name, branch_if_skip):
    return ("h_%s:\n" % name) + common.pop("t1") \
        + common.truthiness("t1", "t3", name) + """
    {branch} t3, {name}_nojump
""".format(branch=branch_if_skip, name=name) + common.jump_by_offset() + """
{name}_nojump:
    j    dispatch
""".format(name=name)


def jump_handlers():
    return ("h_JUMP:\n" + common.jump_by_offset() + "    j dispatch\n"
            + _jump_conditional("IFEQ", "beqz")   # skip when truthy? no:
            + _jump_conditional("IFNE", "bnez"))


def _compare(name, int_cmp, float_cmp, swap=False):
    """LT/LE/GT/GE: numeric fast paths, strings and others to the host.

    ``swap`` reverses operands (GT/GE reuse the LT/LE comparisons).
    """
    left, right = ("t2", "t1") if swap else ("t1", "t2")
    fleft, fright = ("f2", "f1") if swap else ("f1", "f2")
    return """h_{name}:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    li   a4, SIG_INT
    srli t3, t1, 47
    bne  t3, a4, {name}_notii
    srli t3, t2, 47
    bne  t3, a4, {name}_mixed_id
    addiw t1, t1, 0
    addiw t2, t2, 0
    {int_cmp}
{name}_store:
""".format(name=name, int_cmp=int_cmp.format(l=left, r=right)) \
        + common.box_bool("t3", "a5") + """    addi s7, s7, -8
    sd   t3, 0(s7)
    j    dispatch
{name}_notii:
    srli t3, t1, 51
    li   a5, NANPFX
    beq  t3, a5, {name}_slowstub
    fmv.d.x f1, t1
    srli t3, t2, 47
    beq  t3, a4, {name}_cvt_right
    srli t3, t2, 51
    beq  t3, a5, {name}_slowstub
    fmv.d.x f2, t2
    j    {name}_fcmp
{name}_cvt_right:
    addiw t2, t2, 0
    fcvt.d.w f2, t2
    j    {name}_fcmp
{name}_mixed_id:
    srli t3, t2, 51
    li   a5, NANPFX
    beq  t3, a5, {name}_slowstub
    addiw t1, t1, 0
    fcvt.d.w f1, t1
    fmv.d.x f2, t2
{name}_fcmp:
    {float_cmp} t3, {fl}, {fr}
    j    {name}_store
{name}_slowstub:
    li   a3, {op_id}
    j    compare_slow_common
""".format(name=name, float_cmp=float_cmp, fl=fleft, fr=fright,
           op_id=common.COMPARE_OPS[name])


def compare_handlers():
    parts = [
        _compare("LT", "slt  t3, {l}, {r}", "flt.d"),
        _compare("LE", "slt  t3, {r}, {l}\n    xori t3, t3, 1", "fle.d"),
        _compare("GT", "slt  t3, {l}, {r}", "flt.d", swap=True),
        _compare("GE", "slt  t3, {r}, {l}\n    xori t3, t3, 1", "fle.d",
                 swap=True),
        _equality("EQ", negate=False),
        _equality("NE", negate=True),
    ]
    return "\n".join(parts)


def _equality(name, negate):
    """Strict-style equality: identical boxes are equal (interned strings
    compare by pointer), doubles compare by value (NaN != NaN), int/double
    mixes convert; everything else is unequal."""
    negate_text = "    xori t3, t3, 1\n" if negate else ""
    return """h_{name}:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    srli t3, t1, 51
    li   a5, NANPFX
    beq  t3, a5, {name}_left_boxed
    srli t3, t2, 51
    beq  t3, a5, {name}_right_boxed
h_{name}__dd:
    fmv.d.x f1, t1
    fmv.d.x f2, t2
    feq.d t3, f1, f2
    j    {name}_store
{name}_right_boxed:
    srli t3, t2, 47
    li   a4, SIG_INT
    bne  t3, a4, {name}_false
    fmv.d.x f1, t1
    addiw t2, t2, 0
    fcvt.d.w f2, t2
    feq.d t3, f1, f2
    j    {name}_store
{name}_left_boxed:
    srli t3, t2, 51
    bne  t3, a5, {name}_left_boxed_right_dbl
    xor  t3, t1, t2
    seqz t3, t3
    j    {name}_store
{name}_left_boxed_right_dbl:
    srli t3, t1, 47
    li   a4, SIG_INT
    bne  t3, a4, {name}_false
    addiw t1, t1, 0
    fcvt.d.w f1, t1
    fmv.d.x f2, t2
    feq.d t3, f1, f2
    j    {name}_store
{name}_false:
    li   t3, 0
{name}_store:
{negate}""".format(name=name, negate=negate_text) \
        + common.box_bool("t3", "a5") + """    addi s7, s7, -8
    sd   t3, 0(s7)
    j    dispatch
"""


def call_handler():
    return """h_CALL:
    srli t3, t0, 16
    slli a5, t3, 3
    sub  t4, s7, a5
    ld   t1, 0(t4)
    srli t2, t1, 47
    li   a4, SIG_OBJ
    bne  t2, a4, CALL_err
""" + common.unbox_pointer("t1") + """
    ld   t2, {kind}(t1)
    addi t2, t2, -2
    bnez t2, CALL_err
    ld   t2, {native}(t1)
    bgez t2, CALL_native
    sd   s0, {f_pc}(s5)
    sd   s1, {f_base}(s5)
    sd   s2, {f_consts}(s5)
    sd   t4, {f_dest}(s5)
    addi s5, s5, {f_size}
    ld   s0, {code}(t1)
    ld   s2, {consts}(t1)
    addi s1, t4, 8
    ld   a5, {nlocals}(t1)
    slli a5, a5, 3
    add  a5, s1, a5
    addi a5, a5, -8
    li   a4, SIG_UNDEF
    slli a4, a4, 47
CALL_initloop:
    bge  s7, a5, CALL_initdone
    addi s7, s7, 8
    sd   a4, 0(s7)
    j    CALL_initloop
CALL_initdone:
    j    dispatch
CALL_native:
    mv   a0, t4
    addi a1, t4, 8
    srli a2, t0, 16
    mv   a3, t2
    li   a7, {svc}
    ecall
    mv   s7, t4
    j    dispatch
CALL_err:
    j    vm_error
""".format(kind=layout.OBJ_KIND, native=layout.FUNC_NATIVE_ID,
           f_pc=layout.FRAME_SAVED_PC, f_base=layout.FRAME_SAVED_BASE,
           f_consts=layout.FRAME_SAVED_CONSTS, f_dest=layout.FRAME_DEST_PTR,
           f_size=layout.FRAME_SIZE, code=layout.FUNC_CODE,
           consts=layout.FUNC_CONSTS, nlocals=layout.FUNC_NLOCALS,
           svc=common.SVC_BUILTIN)


def return_handlers():
    return """h_RETURN:
    ld   t1, 0(s7)
    j    JRET_common
h_RETURN_UNDEF:
""" + common.box_undefined("t1") + """JRET_common:
    beq  s5, s6, vm_exit_jump
    addi s5, s5, -{f_size}
    ld   s0, {f_pc}(s5)
    ld   s1, {f_base}(s5)
    ld   s2, {f_consts}(s5)
    ld   s7, {f_dest}(s5)
    sd   t1, 0(s7)
    j    dispatch
vm_exit_jump:
    j    vm_exit
""".format(f_size=layout.FRAME_SIZE, f_pc=layout.FRAME_SAVED_PC,
           f_base=layout.FRAME_SAVED_BASE,
           f_consts=layout.FRAME_SAVED_CONSTS,
           f_dest=layout.FRAME_DEST_PTR)


def build():
    return "\n".join([
        push_constants_handlers(), locals_globals_handlers(),
        stack_handlers(), not_handler(), typeof_handler(),
        jump_handlers(),
        compare_handlers(), call_handler(), return_handlers(),
    ])
