"""Quickened MiniJS handlers for the elided (software-elision) family.

One handler per entry in
:data:`repro.analysis.quickening.JS_QUICKENED`: the software guard
chain's matching case with the NaN-box signature checks deleted.

Checks on *values* remain, because they are part of the operator's
semantics rather than of dynamic typing:

* ``ADD_II``/``SUB_II``/``MUL_II`` keep the int32 overflow test — an
  overflowing result must become a double, so they branch to the base
  handler's ``{name}_ii_ovf`` path (whose global label expects the
  sign-extended operands in ``t1``/``t2``, exactly as left here).
  Because of that promotion an int+int *result* is not statically int,
  so the inference pass can rarely prove downstream int chains — the
  honest price of JS number semantics.
* ``MOD_II`` keeps the zero-divisor and negative-zero tests (both
  produce doubles) on private labels — the base ``MOD_box`` assumes
  the guard preloaded ``a4`` — and bails to ``MOD_slowstub``.
* ``EQ_II``/``NE_II`` compare the full boxed dwords (identical int
  boxes are equal), so they need no sign extension at all.
"""

from repro.engines.js.handlers import common


def _binop_entry(name):
    return """h_{name}:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
""".format(name=name)


def _push_result():
    return """    addi s7, s7, -8
    sd   t3, 0(s7)
    j    dispatch
"""


def _box_int():
    return """    slli t3, t3, 32
    srli t3, t3, 32
    li   a4, SIG_INT
    slli a5, a4, 47
    or   t3, t3, a5
"""


def _arith_ii(name, int_op):
    """Both proven int32; only the overflow promotion check remains."""
    return _binop_entry(name + "_II") + """    addiw t1, t1, 0
    addiw t2, t2, 0
    {int_op}  t3, t1, t2
    addiw a5, t3, 0
    beq  t3, a5, {name}_II_fits
    j    {name}_ii_ovf
{name}_II_fits:
""".format(name=name, int_op=int_op) + _box_int() + _push_result()


def _arith_dd(name, float_op):
    return _binop_entry(name + "_DD") + """    fmv.d.x f1, t1
    fmv.d.x f2, t2
    {float_op} f1, f1, f2
    fmv.x.d t3, f1
""".format(float_op=float_op) + _push_result()


def mod_ii():
    return _binop_entry("MOD_II") + """    addiw t1, t1, 0
    addiw t2, t2, 0
    beqz t2, MOD_II_slow
    rem  t3, t1, t2
    bltz t1, MOD_II_negzero
MOD_II_box:
""" + _box_int() + _push_result() + """MOD_II_negzero:
    beqz t3, MOD_II_slow
    j    MOD_II_box
MOD_II_slow:
    j    MOD_slowstub
"""


def _compare_ii(name, int_cmp):
    return _binop_entry(name + "_II") + """    addiw t1, t1, 0
    addiw t2, t2, 0
    {int_cmp}
""".format(int_cmp=int_cmp) + common.box_bool("t3", "a5") + _push_result()


def _compare_dd(name, float_cmp):
    return _binop_entry(name + "_DD") + """    fmv.d.x f1, t1
    fmv.d.x f2, t2
    {float_cmp}
""".format(float_cmp=float_cmp) + common.box_bool("t3", "a5") \
        + _push_result()


def _equality_ii(name, negate):
    negate_text = "    xori t3, t3, 1\n" if negate else ""
    return _binop_entry(name + "_II") + """    xor  t3, t1, t2
    seqz t3, t3
""" + negate_text + common.box_bool("t3", "a5") + _push_result()


def _equality_dd(name, negate):
    negate_text = "    xori t3, t3, 1\n" if negate else ""
    return _binop_entry(name + "_DD") + """    fmv.d.x f1, t1
    fmv.d.x f2, t2
    feq.d t3, f1, f2
""" + negate_text + common.box_bool("t3", "a5") + _push_result()


def build(scheme):
    """All quickened handler text (appended before the slow stubs)."""
    return "\n".join([
        _arith_ii("ADD", "add"), _arith_dd("ADD", "fadd.d"),
        _arith_ii("SUB", "sub"), _arith_dd("SUB", "fsub.d"),
        _arith_ii("MUL", "mul"), _arith_dd("MUL", "fmul.d"),
        _arith_dd("DIV", "fdiv.d"),
        mod_ii(),
        _compare_ii("LT", "slt  t3, t1, t2"),
        _compare_dd("LT", "flt.d t3, f1, f2"),
        _compare_ii("LE", "slt  t3, t2, t1\n    xori t3, t3, 1"),
        _compare_dd("LE", "fle.d t3, f1, f2"),
        _compare_ii("GT", "slt  t3, t2, t1"),
        _compare_dd("GT", "flt.d t3, f2, f1"),
        _compare_ii("GE", "slt  t3, t1, t2\n    xori t3, t3, 1"),
        _compare_dd("GE", "fle.d t3, f2, f1"),
        _equality_ii("EQ", negate=False),
        _equality_dd("EQ", negate=False),
        _equality_ii("NE", negate=True),
        _equality_dd("NE", negate=True),
    ])
