"""Arithmetic handlers for the MiniJS stack machine.

JavaScript numbers are doubles with an int32 fast representation, so the
guard chain covers four cases: int-int (with an overflow check, since an
overflowing int32 result must become a double), double-double, the two
int/double mixes (converted inline, as SpiderMonkey's interpreter does),
and the slow host path for strings and other coercions.

The typed machine's misprediction handler is exactly that original guard
chain (Section 3.2: "the type misprediction handler is nothing but the
original code with software-based type checking"), which also gives the
hardware overflow misprediction its correct double-producing semantics.
"""

from repro.engines import configs
from repro.engines.js.handlers import common

_POLY = {"ADD": ("add", "fadd.d", "xadd"),
         "SUB": ("sub", "fsub.d", "xsub"),
         "MUL": ("mul", "fmul.d", "xmul")}


def _push_result_and_dispatch():
    """Result in t3; replace SOS, pop one slot."""
    return """    addi s7, s7, -8
    sd   t3, 0(s7)
    j    dispatch
"""


def _guard_chain(name, int_op, float_op):
    """Software guards: entry label {name}_guard; operands at SOS/TOS."""
    return """{name}_guard:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    li   a4, SIG_INT
    srli t3, t1, 47
    bne  t3, a4, {name}_left_notint
    srli t3, t2, 47
    bne  t3, a4, {name}_int_other
h_{name}__ii:
    addiw t1, t1, 0
    addiw t2, t2, 0
    {int_op}  t3, t1, t2
    addiw a5, t3, 0
    bne  t3, a5, {name}_ii_ovf
    slli t3, t3, 32
    srli t3, t3, 32
    slli a5, a4, 47
    or   t3, t3, a5
""" + _push_result_and_dispatch() + """{name}_int_other:
    srli t3, t2, 51
    li   a5, NANPFX
    beq  t3, a5, {name}_slowstub
    addiw t1, t1, 0
    fcvt.d.w f1, t1
    fmv.d.x f2, t2
    j    {name}_dd
{name}_left_notint:
    srli t3, t1, 51
    li   a5, NANPFX
    beq  t3, a5, {name}_slowstub
    srli t3, t2, 47
    beq  t3, a4, {name}_dbl_int
    srli t3, t2, 51
    beq  t3, a5, {name}_slowstub
    fmv.d.x f1, t1
    fmv.d.x f2, t2
h_{name}__dd:
{name}_dd:
    {float_op} f1, f1, f2
    fmv.x.d t3, f1
""" + _push_result_and_dispatch() + """{name}_dbl_int:
    fmv.d.x f1, t1
    addiw t2, t2, 0
    fcvt.d.w f2, t2
    j    {name}_dd
{name}_ii_ovf:
    fcvt.d.w f1, t1
    fcvt.d.w f2, t2
    j    {name}_dd
{name}_slowstub:
    li   a3, {op_id}
    j    arith_slow_common
"""


def _software_entry(name, int_op, tagged_op):
    # The handler entry falls straight into the guard chain.
    return ""


def _typed_entry(name, int_op, tagged_op):
    return """h_{name}:
    tld  t1, -8(s7)
    tld  t2, 0(s7)
    thdl {name}_guard
    {tagged_op} t1, t1, t2
    addi s7, s7, -8
    tsd  t1, 0(s7)
    j    dispatch
""".format(name=name, tagged_op=tagged_op)


def _chklb_entry(name, int_op, tagged_op):
    # Integer-specialised: chklw fuses the (load, compare-upper-word,
    # branch) of each operand; R_ctype holds the int32 signature.
    return """h_{name}:
    thdl {name}_guard
    chklw t1, -4(s7)
    chklw t2, 4(s7)
    ld   t1, -8(s7)
    ld   t2, 0(s7)
h_{name}__chk_ii:
    addiw t1, t1, 0
    addiw t2, t2, 0
    {int_op}  t3, t1, t2
    addiw a5, t3, 0
    bne  t3, a5, {name}_ii_ovf
    slli t3, t3, 32
    srli t3, t3, 32
    li   a5, SIG_INT
    slli a5, a5, 47
    or   t3, t3, a5
""".format(name=name, int_op=int_op) + _push_result_and_dispatch()


#: Fast-path entry per check mode (HandlerPolicy.check_mode); the
#: software guard chain always follows as the fallback body.
_FAST_ENTRIES = {
    configs.FAMILY_SOFTWARE: _software_entry,
    configs.FAMILY_TYPED: _typed_entry,
    configs.FAMILY_CHECKED: _chklb_entry,
}


def polymorphic_handler(name, scheme):
    int_op, float_op, tagged_op = _POLY[name]
    guard = _guard_chain(name, int_op, float_op).format(
        name=name, int_op=int_op, float_op=float_op,
        op_id=common.ARITH_OPS[name])
    policy = configs.family_policy(scheme.family)
    try:
        entry = _FAST_ENTRIES[policy.check_mode]
    except KeyError:
        raise ValueError("no JS arith entry for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family)) from None
    body = entry(name, int_op, tagged_op)
    if not body:
        return "h_%s:\n%s" % (name, guard)
    return body + guard


def div_handler():
    """DIV: JS '/' always produces a double; both operands are converted
    (no int fast path).  Identical in every configuration."""
    return """h_DIV:
DIV_guard:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    li   a4, SIG_INT
    li   a5, NANPFX
    srli t3, t1, 47
    beq  t3, a4, DIV_left_int
    srli t3, t1, 51
    beq  t3, a5, DIV_slowstub
    fmv.d.x f1, t1
    j    DIV_right
DIV_left_int:
    addiw t1, t1, 0
    fcvt.d.w f1, t1
DIV_right:
    srli t3, t2, 47
    beq  t3, a4, DIV_right_int
    srli t3, t2, 51
    beq  t3, a5, DIV_slowstub
    fmv.d.x f2, t2
    j    DIV_op
DIV_right_int:
    addiw t2, t2, 0
    fcvt.d.w f2, t2
h_DIV__dd:
DIV_op:
    fdiv.d f1, f1, f2
    fmv.x.d t3, f1
""" + _push_result_and_dispatch() + """DIV_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["DIV"]


def mod_handler():
    """MOD: int-int fast path (JS '%%' truncates like rem); a zero divisor
    or non-int operands go slow."""
    return """h_MOD:
MOD_guard:
    ld   t1, -8(s7)
    ld   t2, 0(s7)
    li   a4, SIG_INT
    srli t3, t1, 47
    bne  t3, a4, MOD_slowstub
    srli t3, t2, 47
    bne  t3, a4, MOD_slowstub
h_MOD__ii:
    addiw t1, t1, 0
    addiw t2, t2, 0
    beqz t2, MOD_slowstub
    rem  t3, t1, t2
    bltz t1, MOD_negzero
MOD_box:
    slli t3, t3, 32
    srli t3, t3, 32
    slli a5, a4, 47
    or   t3, t3, a5
""" + _push_result_and_dispatch() + """MOD_negzero:
    beqz t3, MOD_slowstub
    j    MOD_box
MOD_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["MOD"]


def neg_handler():
    """NEG: int fast path (0 and INT32_MIN become doubles, so they go
    slow); doubles flip the sign bit."""
    return """h_NEG:
NEG_guard:
    ld   t1, 0(s7)
    li   a4, SIG_INT
    srli t3, t1, 47
    bne  t3, a4, NEG_notint
    addiw t2, t1, 0
    beqz t2, NEG_slowstub
    neg  t2, t2
    addiw t3, t2, 0
    bne  t2, t3, NEG_slowstub
    slli t3, t2, 32
    srli t3, t3, 32
    slli a5, a4, 47
    or   t3, t3, a5
    sd   t3, 0(s7)
    j    dispatch
NEG_notint:
    srli t3, t1, 51
    li   a5, NANPFX
    beq  t3, a5, NEG_slowstub
    fmv.d.x f1, t1
    fneg.d f1, f1
    fmv.x.d t3, f1
    sd   t3, 0(s7)
    j    dispatch
NEG_slowstub:
    li   a3, %d
arith_slow_unary:
    mv   a0, s7
    li   a7, %d
    ecall
    j    dispatch
""" % (common.ARITH_OPS["NEG"], common.SVC_ARITH)


def build(scheme):
    parts = [polymorphic_handler(name, scheme)
             for name in ("ADD", "SUB", "MUL")]
    parts += [div_handler(), mod_handler(), neg_handler()]
    return "\n".join(parts)
