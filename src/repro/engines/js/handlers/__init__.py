"""RV64 assembly bytecode handlers for the MiniJS interpreter."""

from repro.engines.js.handlers.build import build_interpreter

__all__ = ["build_interpreter"]
