"""MiniJS bytecode: a SpiderMonkey-style stack machine.

Each instruction is a 32-bit word: opcode in bits [7:0] and one optional
16-bit signed operand in bits [31:16] (constant index, local slot, global
slot, argument count, or jump displacement in instruction units relative
to the incremented PC).

SpiderMonkey 17 defines 229 bytecodes with variable-length encodings;
this VM implements the ~30 its benchmarks need, fixed-width.  The five
hot bytecodes the paper retargets map to ADD/SUB/MUL/GETELEM/SETELEM
(Table 3).
"""

from enum import IntEnum


class JsOp(IntEnum):
    UNDEF = 0        # push undefined
    NULL = 1
    PUSHBOOL = 2     # imm: 0/1
    PUSHK = 3        # imm: constant index
    GETLOCAL = 4     # imm: slot
    SETLOCAL = 5     # imm: slot (pops)
    GETGLOBAL = 6    # imm: global slot
    SETGLOBAL = 7    # imm: global slot (pops)
    DUP = 8
    POP = 9
    ADD = 10
    SUB = 11
    MUL = 12
    DIV = 13
    MOD = 14
    NEG = 15
    NOT = 16
    EQ = 17
    NE = 18
    LT = 19
    LE = 20
    GT = 21
    GE = 22
    GETELEM = 23     # St[-2] = St[-2][St[-1]], pop 1
    SETELEM = 24     # St[-3][St[-2]] = St[-1], pop 3
    NEWARRAY = 25    # imm: capacity hint
    NEWOBJ = 26
    JUMP = 27        # imm: displacement
    IFEQ = 28        # pop; jump if falsy
    IFNE = 29        # pop; jump if truthy
    CALL = 30        # imm: nargs; callee below the args
    RETURN = 31      # pop result, return it
    RETURN_UNDEF = 32
    TYPEOF = 33      # replace TOS with its type-name string

    @property
    def is_jump(self):
        return self in (JsOp.JUMP, JsOp.IFEQ, JsOp.IFNE)


NUM_OPCODES = 64  # jump-table capacity (unused slots trap)

HOT_BYTECODES = (JsOp.ADD, JsOp.SUB, JsOp.MUL, JsOp.GETELEM, JsOp.SETELEM)


def encode(op, imm=0):
    """Encode one instruction."""
    if not -(1 << 15) <= imm < (1 << 15):
        raise ValueError("operand %d out of 16-bit range" % imm)
    return int(op) | ((imm & 0xFFFF) << 16)


def decode(word):
    """Decode to ``(op, imm)`` with a sign-extended operand."""
    imm = (word >> 16) & 0xFFFF
    if imm >= 1 << 15:
        imm -= 1 << 16
    return JsOp(word & 0xFF), imm
