"""MiniJS: a SpiderMonkey-17-style stack VM with NaN boxing.

The public entry point is :func:`repro.engines.js.vm.run_js`.
"""

from repro.engines.js.vm import JsResult, run_js

__all__ = ["JsResult", "run_js"]
