"""Build the simulated-memory image of a compiled MiniJS chunk."""

from dataclasses import dataclass, field

from repro.engines.js import layout
from repro.engines.js.opcodes import NUM_OPCODES, JsOp
from repro.engines.js.runtime import install_builtin_globals


@dataclass
class JsImage:
    jump_table_addr: int
    globals_addr: int
    main_code_addr: int
    main_consts_addr: int
    main_nlocals: int
    func_addrs: list = field(default_factory=list)
    end: int = 0


class _Cursor:
    def __init__(self, base):
        self.position = base

    def take(self, nbytes, align=16):
        self.position = (self.position + align - 1) & ~(align - 1)
        addr = self.position
        self.position += nbytes
        return addr


def build_image(chunk, runtime):
    """Write ``chunk`` into simulated memory; returns a JsImage."""
    mem = runtime.mem
    cursor = _Cursor(layout.IMAGE_BASE)
    jump_table = cursor.take(NUM_OPCODES * 8)

    code_addrs = []
    const_addrs = []
    for proto in chunk.protos:
        code_addr = cursor.take(len(proto.code) * 4, align=4)
        for offset, word in enumerate(proto.code):
            mem.store(code_addr + offset * 4, 4, word)
        code_addrs.append(code_addr)
        consts_addr = cursor.take(len(proto.constants) * 8)
        for index, constant in enumerate(proto.constants):
            runtime.write_slot(consts_addr + index * 8, constant)
        const_addrs.append(consts_addr)

    func_addrs = [None] * len(chunk.protos)
    for index, proto in enumerate(chunk.protos):
        func_addrs[index] = runtime.make_function(
            code_addrs[index], const_addrs[index], proto.num_params,
            proto.num_locals)

    globals_addr = cursor.take(len(chunk.globals) * 8)
    install_builtin_globals(runtime, globals_addr, chunk.globals,
                            chunk.func_globals, func_addrs)

    if cursor.position > layout.STACK_BASE:
        raise ValueError("program image overflows its region")
    assert jump_table == layout.JUMP_TABLE_ADDR
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_MAIN_CODE, code_addrs[0])
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_MAIN_CONSTS,
                  const_addrs[0])
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_GLOBALS, globals_addr)
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_MAIN_NLOCALS,
                  chunk.main.num_locals)
    return JsImage(
        jump_table_addr=jump_table,
        globals_addr=globals_addr,
        main_code_addr=code_addrs[0],
        main_consts_addr=const_addrs[0],
        main_nlocals=chunk.main.num_locals,
        func_addrs=func_addrs,
        end=cursor.position,
    )


def fill_jump_table(image, program, memory, extra_ops=None):
    """Point every opcode slot at its handler (error stub otherwise).
    ``extra_ops`` maps quickened opcode numbers (free slots above the
    base catalogue) to their handler base names."""
    fallback = program.labels["h_ILLEGAL"]
    extra_ops = extra_ops or {}
    for opcode in range(NUM_OPCODES):
        if opcode in extra_ops:
            label = "h_%s" % extra_ops[opcode]
        else:
            try:
                label = "h_%s" % JsOp(opcode).name
            except ValueError:
                label = None
        target = program.labels.get(label, fallback) if label else fallback
        memory.store_u64(image.jump_table_addr + opcode * 8, target)
