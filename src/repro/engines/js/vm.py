"""Top-level MiniJS runner: compile, image, assemble, simulate."""

from dataclasses import dataclass

from repro.engines import BASELINE, configs
from repro.engines.js import layout
from repro.engines.js.compiler import compile_source
from repro.engines.js.handlers import build_interpreter
from repro.engines.js.image import build_image, fill_jump_table
from repro.engines.js.opcodes import JsOp
from repro.engines.js.runtime import JsHost, JsRuntime
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec
from repro.uarch.pipeline import Attribution

_EXTRA_BUCKETS = ("startup", "dispatch", "arith_slow_common",
                  "arith_slow_unary", "compare_slow_common",
                  "elem_get_slow_common", "elem_set_slow_common",
                  "vm_error", "vm_exit")


@dataclass
class JsResult:
    """Outcome of one MiniJS run."""

    output: str
    counters: object
    config: str
    exit_code: int = 0

    @property
    def lines(self):
        return self.output.splitlines()


def build_attribution(program, extra_ops=None):
    """``extra_ops`` (quickened opcode -> variant name) registers the
    elided family's guard-free handlers so their executions land in the
    bytecode histogram instead of vanishing."""
    marks = []
    for label, addr in program.labels.items():
        if label.startswith("h_") or label in _EXTRA_BUCKETS:
            marks.append((addr, label))
    marks.sort()
    ranges = []
    for index, (addr, label) in enumerate(marks):
        end = marks[index + 1][0] if index + 1 < len(marks) else program.end
        ranges.append((label, addr, end))
    entry_points = {}
    for opcode in JsOp:
        label = "h_%s" % opcode.name
        if label in program.labels:
            entry_points[program.labels[label]] = opcode.name
    for name in (extra_ops or {}).values():
        label = "h_%s" % name
        if label in program.labels:
            entry_points[program.labels[label]] = name
    return Attribution(program, ranges, entry_points)


def _policy(config):
    return configs.family_policy(configs.get_scheme(config).family)


# Cached, program-independent interpreter text per configuration.
_PROGRAM_CACHE = {}

#: Process-wide count of actual interpreter assemblies (cache misses).
#: The batch executor (:mod:`repro.bench.batch`) asserts each
#: ``(engine, config)`` pair assembles exactly once per process.
assembly_count = 0


def interpreter_program(config):
    """The assembled interpreter for ``config`` (cached)."""
    global assembly_count
    cached = _PROGRAM_CACHE.get(config)
    if cached is None:
        assembly_count += 1
        program = assemble(build_interpreter(config),
                           base=layout.CODE_BASE)
        if program.end > layout.BOOT_BLOCK:
            raise ValueError("interpreter text overflows the code region")
        policy = _policy(config)
        extra_ops = (policy.quickened_ops("js")
                     if policy.quickened_ops else None)
        cached = (program, build_attribution(program, extra_ops))
        _PROGRAM_CACHE[config] = cached
    return cached


def prepare(source, config=BASELINE):
    scheme = configs.get_scheme(config)
    policy = configs.family_policy(scheme.family)
    chunk = compile_source(source)
    # Chunks are compiled fresh per prepare(), so the in-place bytecode
    # quickening (elided family) cannot leak into other configurations.
    if policy.quicken is not None:
        policy.quicken("js", chunk)
    extra_ops = policy.quickened_ops("js") if policy.quickened_ops else None
    memory = Memory(size=layout.MEMORY_SIZE)
    runtime = JsRuntime(memory)
    image = build_image(chunk, runtime)
    program, _attribution = interpreter_program(config)
    fill_jump_table(image, program, memory, extra_ops=extra_ops)
    host = JsHost(runtime)
    # NaN boxing: the extractor needs the double pseudo-tag and the int
    # tag for payload sign extension (Section 4.2) — expressed in the
    # scheme's extractor window (e.g. the wide window reports
    # 0xF0 | tag, folding in the low NaN-prefix bits).
    codec = TagCodec(
        double_tag=scheme.extracted_tag(
            "js", layout.SPR_SETTINGS, layout.TAG_DOUBLE),
        int_tag=scheme.extracted_tag(
            "js", layout.SPR_SETTINGS, layout.TAG_INT32))
    # SpiderMonkey co-locates tag and value in one double-word, so integer
    # overflow must trigger a type misprediction (Section 3.2).
    cpu = Cpu(program, memory, host=host.interface, tag_codec=codec,
              overflow_bits=32)
    # Trace profiles are guest-specific (the hot paths through the
    # interpreter depend on the bytecode it runs); the trace engine
    # keys its tables on this token (see repro.sim.traces.trace_table).
    cpu.workload = source
    return cpu, runtime, program


def run_js(source, *, config=BASELINE, machine_config=None,
           max_instructions=None, attribute=True, telemetry=None,
           use_blocks=True, use_traces=True):
    """Compile and execute MiniJS ``source`` on the simulated machine.

    Thin adapter over :func:`repro.api.run` with the same unified
    keyword-only signature as ``run_lua``.  ``telemetry`` optionally
    attaches an event bus (see :mod:`repro.telemetry`) to the CPU and
    timing model.  ``use_blocks`` enables the basic-block
    superinstruction engine (only effective without
    attribution/telemetry; counters are identical either way).
    """
    from repro import api
    result = api._engine_run(
        "js", source, config=config, machine_config=machine_config,
        max_instructions=(api.DEFAULT_MAX_INSTRUCTIONS
                          if max_instructions is None
                          else max_instructions),
        attribute=attribute, telemetry=telemetry,
        use_blocks=use_blocks, use_traces=use_traces)
    return JsResult(output=result.output, counters=result.counters,
                    config=result.config, exit_code=result.exit_code)
