"""MiniJS runtime services (the native-library stand-in).

Same philosophy as :mod:`repro.engines.lua.runtime`: the assembly fast
paths cover int32/double arithmetic and dense-array element access;
string building, property maps, coercions, allocation and builtins run
host-side with calibrated native-instruction costs.
"""

import math

from repro.engines.js import layout
from repro.engines.js.handlers import common
from repro.sim import nanbox
from repro.sim.hostcall import HostInterface

MASK64 = (1 << 64) - 1
CANONICAL_NAN = 0x7FF8000000000000


class JsError(Exception):
    """A MiniJS runtime error (uncaught; aborts the VM)."""


class JsNull:
    """Singleton marker for JavaScript ``null`` (None is undefined)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "null"


NULL = JsNull()


class JsObjectRef:
    """Reference to an object/array/function in simulated memory."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr

    def __eq__(self, other):
        return isinstance(other, JsObjectRef) and other.addr == self.addr

    def __hash__(self):
        return hash(("jsobj", self.addr))


def js_number_string(value):
    """Format a number the way JavaScript's ToString does (simplified)."""
    if isinstance(value, int):
        return "%d" % value
    if value != value:
        return "NaN"
    if value == math.inf:
        return "Infinity"
    if value == -math.inf:
        return "-Infinity"
    if value.is_integer() and abs(value) < (1 << 53):
        return "%d" % int(value)
    return repr(value)


HOST_COSTS = {
    "arith_slow": 55,
    "compare_slow": 70,
    "elem_get": 110,
    "elem_set": 130,
    "newarray": 160,
    "newobj": 170,
    "print": 450,
    "write": 280,
    "math_sqrt": 30,
    "math_floor": 25,
    "math_abs": 20,
    "math_max": 22,
    "math_min": 22,
    "math_pow": 60,
    "substring": 95,
    "charCodeAt": 40,
    "fromCharCode": 60,
}

_BUILTIN_NAMES = ("print", "write", "math_sqrt", "math_floor", "math_abs",
                  "math_max", "math_min", "math_pow", "substring",
                  "charCodeAt", "fromCharCode")
BUILTIN_IDS = {name: index for index, name in enumerate(_BUILTIN_NAMES)}


class JsRuntime:
    """Host-side state: heap, strings, property maps, output buffer."""

    def __init__(self, memory):
        self.mem = memory
        self.heap = layout.HEAP_BASE
        self.strings = {}
        self.string_at = {}
        self.hash_parts = {}  # object addr -> {key: boxed dword}
        self.output = []

    # -- allocation ---------------------------------------------------------
    def alloc(self, nbytes, align=16):
        self.heap = (self.heap + align - 1) & ~(align - 1)
        addr = self.heap
        self.heap += nbytes
        if self.heap > self.mem.size:
            raise JsError("simulated heap exhausted")
        return addr

    def intern(self, text):
        addr = self.strings.get(text)
        if addr is None:
            data = text.encode("latin-1", errors="replace")
            addr = self.alloc(layout.STRING_BYTES + len(data))
            self.mem.store_u64(addr + layout.STRING_LENGTH, len(data))
            self.mem.write_bytes(addr + layout.STRING_BYTES, data)
            self.strings[text] = addr
            self.string_at[addr] = text
        return addr

    def make_array(self, capacity=4, kind=0):
        capacity = max(capacity, 4)
        addr = self.alloc(layout.OBJ_SIZE)
        elems = self.alloc(capacity * layout.VALUE_SIZE)
        undefined = nanbox.box(layout.TAG_UNDEFINED, 0)
        for slot in range(capacity):
            self.mem.store_u64(elems + slot * 8, undefined)
        self.mem.store_u64(addr + layout.OBJ_ELEMS_PTR, elems)
        self.mem.store_u64(addr + layout.OBJ_CAPACITY, capacity)
        self.mem.store_u64(addr + layout.OBJ_LENGTH, 0)
        self.mem.store_u64(addr + layout.OBJ_KIND, kind)
        self.hash_parts[addr] = {}
        return addr

    def make_object(self):
        return self.make_array(capacity=4, kind=1)

    def make_function(self, code_addr, consts_addr, nargs, nlocals,
                      native_id=-1):
        addr = self.alloc(layout.FUNC_SIZE)
        self.mem.store_u64(addr + layout.OBJ_KIND, 2)
        self.mem.store_u64(addr + layout.FUNC_CODE, code_addr)
        self.mem.store_u64(addr + layout.FUNC_CONSTS, consts_addr)
        self.mem.store_u64(addr + layout.FUNC_NARGS, nargs)
        self.mem.store_u64(addr + layout.FUNC_NLOCALS, max(nlocals, 1))
        self.mem.store_u64(addr + layout.FUNC_NATIVE_ID,
                           native_id & MASK64)
        self.hash_parts[addr] = {}
        return addr

    def make_native(self, builtin_name):
        return self.make_function(0, 0, 0, 1,
                                  native_id=BUILTIN_IDS[builtin_name])

    # -- boxing ---------------------------------------------------------------
    def box(self, value):
        if value is None:
            return nanbox.box(layout.TAG_UNDEFINED, 0)
        if value is NULL:
            return nanbox.box(layout.TAG_NULL, 0)
        if value is True or value is False:
            return nanbox.box(layout.TAG_BOOLEAN, int(value))
        if isinstance(value, int):
            if nanbox.fits_int32(value):
                return nanbox.box_int32(layout.TAG_INT32, value)
            return self.box(float(value))
        if isinstance(value, float):
            bits = nanbox.double_to_bits(value)
            return CANONICAL_NAN if nanbox.is_boxed(bits) else bits
        if isinstance(value, str):
            return nanbox.box(layout.TAG_STRING, self.intern(value))
        if isinstance(value, JsObjectRef):
            return nanbox.box(layout.TAG_OBJECT, value.addr)
        raise JsError("cannot box %r" % value)

    def unbox(self, dword):
        if not nanbox.is_boxed(dword):
            return nanbox.bits_to_double(dword)
        tag = nanbox.boxed_tag(dword)
        payload = nanbox.boxed_payload(dword)
        if tag == layout.TAG_INT32:
            return nanbox.unbox_int32(dword)
        if tag == layout.TAG_UNDEFINED:
            return None
        if tag == layout.TAG_NULL:
            return NULL
        if tag == layout.TAG_BOOLEAN:
            return bool(payload)
        if tag == layout.TAG_STRING:
            return self.string_at[payload]
        if tag == layout.TAG_OBJECT:
            return JsObjectRef(payload)
        raise JsError("unknown tag %d in %#x" % (tag, dword))

    def read_slot(self, addr):
        return self.unbox(self.mem.load_u64(addr))

    def write_slot(self, addr, value):
        self.mem.store_u64(addr, self.box(value))

    # -- coercion ----------------------------------------------------------------
    @staticmethod
    def to_number(value):
        """JavaScript ToNumber."""
        if value is None:
            return float("nan")
        if value is NULL:
            return 0
        if value is True:
            return 1
        if value is False:
            return 0
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            text = value.strip()
            if not text:
                return 0
            try:
                return int(text, 0) if not any(c in text for c in ".eE") \
                    or text.startswith("0x") else float(text)
            except ValueError:
                try:
                    return float(text)
                except ValueError:
                    return float("nan")
        return float("nan")

    def to_string(self, value):
        if value is None:
            return "undefined"
        if value is NULL:
            return "null"
        if value is True:
            return "true"
        if value is False:
            return "false"
        if isinstance(value, (int, float)):
            return js_number_string(value)
        if isinstance(value, str):
            return value
        if isinstance(value, JsObjectRef):
            kind = self.mem.load_u64(value.addr + layout.OBJ_KIND)
            if kind == 2:
                return "function"
            if kind == 0:
                length = self.mem.load_u64(value.addr + layout.OBJ_LENGTH)
                return ",".join(
                    self.to_string(self.element_get(value, index))
                    for index in range(length))
            return "[object Object]"
        raise JsError("cannot stringify %r" % value)

    # -- element access -----------------------------------------------------------
    def element_get(self, obj, key):
        if isinstance(obj, str):
            if key == "length":
                return len(obj)
            if isinstance(key, (int, float)) and not isinstance(key, bool):
                index = int(key)
                if 0 <= index < len(obj):
                    return obj[index]
            return None
        if not isinstance(obj, JsObjectRef):
            raise JsError("cannot read property of %r" % (obj,))
        kind = self.mem.load_u64(obj.addr + layout.OBJ_KIND)
        if isinstance(key, float) and key.is_integer():
            key = int(key)
        if kind == 0 and isinstance(key, int) and not isinstance(key, bool):
            length = self.mem.load_u64(obj.addr + layout.OBJ_LENGTH)
            if 0 <= key < length:
                elems = self.mem.load_u64(obj.addr + layout.OBJ_ELEMS_PTR)
                return self.unbox(self.mem.load_u64(elems + key * 8))
            boxed = self.hash_parts[obj.addr].get(key)
            return None if boxed is None else self.unbox(boxed)
        if key == "length" and kind == 0:
            dense = self.mem.load_u64(obj.addr + layout.OBJ_LENGTH)
            sparse = [k for k in self.hash_parts[obj.addr]
                      if isinstance(k, int)]
            return max([dense] + [k + 1 for k in sparse])
        boxed = self.hash_parts[obj.addr].get(key)
        return None if boxed is None else self.unbox(boxed)

    def element_set(self, obj, key, boxed_value):
        if not isinstance(obj, JsObjectRef):
            raise JsError("cannot set property of %r" % (obj,))
        kind = self.mem.load_u64(obj.addr + layout.OBJ_KIND)
        if isinstance(key, float) and key.is_integer():
            key = int(key)
        if kind == 0 and isinstance(key, int) and not isinstance(key, bool) \
                and key >= 0:
            length = self.mem.load_u64(obj.addr + layout.OBJ_LENGTH)
            capacity = self.mem.load_u64(obj.addr + layout.OBJ_CAPACITY)
            elems = self.mem.load_u64(obj.addr + layout.OBJ_ELEMS_PTR)
            if key < length:
                self.mem.store_u64(elems + key * 8, boxed_value)
                return
            if key == length:
                if key >= capacity:
                    elems = self._grow(obj.addr, capacity, length)
                self.mem.store_u64(elems + key * 8, boxed_value)
                self.mem.store_u64(obj.addr + layout.OBJ_LENGTH, length + 1)
                self._migrate(obj.addr)
                return
        self.hash_parts[obj.addr][key] = boxed_value

    def _grow(self, addr, capacity, length):
        new_capacity = max(4, capacity * 2)
        new_elems = self.alloc(new_capacity * layout.VALUE_SIZE)
        old = self.mem.load_u64(addr + layout.OBJ_ELEMS_PTR)
        if length:
            self.mem.write_bytes(new_elems,
                                 self.mem.read_bytes(old, length * 8))
        undefined = nanbox.box(layout.TAG_UNDEFINED, 0)
        for slot in range(length, new_capacity):
            self.mem.store_u64(new_elems + slot * 8, undefined)
        self.mem.store_u64(addr + layout.OBJ_ELEMS_PTR, new_elems)
        self.mem.store_u64(addr + layout.OBJ_CAPACITY, new_capacity)
        return new_elems

    def _migrate(self, addr):
        hashes = self.hash_parts[addr]
        length = self.mem.load_u64(addr + layout.OBJ_LENGTH)
        while length in hashes:
            boxed = hashes.pop(length)
            capacity = self.mem.load_u64(addr + layout.OBJ_CAPACITY)
            elems = self.mem.load_u64(addr + layout.OBJ_ELEMS_PTR)
            if length >= capacity:
                elems = self._grow(addr, capacity, length)
            self.mem.store_u64(elems + length * 8, boxed)
            length += 1
            self.mem.store_u64(addr + layout.OBJ_LENGTH, length)


_ARITH_NAMES = {value: key for key, value in common.ARITH_OPS.items()}
_COMPARE_NAMES = {value: key for key, value in common.COMPARE_OPS.items()}


class JsHost:
    """Binds a :class:`JsRuntime` to the host-call interface."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.interface = HostInterface()
        reg = self.interface.register
        reg(common.SVC_ARITH, "arith_slow", self._svc_arith,
            HOST_COSTS["arith_slow"])
        reg(common.SVC_COMPARE, "compare_slow", self._svc_compare,
            HOST_COSTS["compare_slow"])
        reg(common.SVC_ELEM_GET, "elem_get", self._svc_elem_get,
            HOST_COSTS["elem_get"])
        reg(common.SVC_ELEM_SET, "elem_set", self._svc_elem_set,
            HOST_COSTS["elem_set"])
        reg(common.SVC_NEWARRAY, "newarray", self._svc_newarray,
            HOST_COSTS["newarray"])
        reg(common.SVC_NEWOBJ, "newobj", self._svc_newobj,
            HOST_COSTS["newobj"])
        reg(common.SVC_BUILTIN, "builtin", self._svc_builtin,
            self._builtin_cost)
        reg(common.SVC_ERROR, "error", self._svc_error, 1)
        reg(common.SVC_TYPEOF, "typeof", self._svc_typeof, 30)

    # -- services -------------------------------------------------------------
    def _svc_arith(self, cpu, sp, *rest):
        runtime = self.runtime
        op_id = cpu.regs.value[13]  # a3
        op_name = _ARITH_NAMES[op_id]
        if op_name == "NEG":
            operand = runtime.to_number(runtime.read_slot(sp))
            result = -operand if isinstance(operand, float) \
                else self._neg_int(operand)
            runtime.write_slot(sp, result)
            return
        left = runtime.read_slot(sp - 8)
        right = runtime.read_slot(sp)
        if op_name == "ADD" and (isinstance(left, str)
                                 or isinstance(right, str)):
            result = runtime.to_string(left) + runtime.to_string(right)
        else:
            result = self._numeric(op_name, runtime.to_number(left),
                                   runtime.to_number(right))
        runtime.write_slot(sp - 8, result)

    @staticmethod
    def _neg_int(value):
        result = -value
        return result if nanbox.fits_int32(result) and value != 0 \
            else float(result)

    @staticmethod
    def _numeric(op_name, x, y):
        both_int = isinstance(x, int) and isinstance(y, int)
        if op_name == "ADD":
            result = x + y
        elif op_name == "SUB":
            result = x - y
        elif op_name == "MUL":
            result = x * y
        elif op_name == "DIV":
            fx, fy = float(x), float(y)
            if fy == 0.0:
                if fx == 0.0 or fx != fx:
                    return float("nan")
                return math.inf * math.copysign(1.0, fx) \
                    * math.copysign(1.0, fy)
            return fx / fy
        elif op_name == "MOD":
            fx, fy = float(x), float(y)
            if fy == 0.0 or fx != fx or fy != fy or abs(fx) == math.inf:
                return float("nan")
            return math.fmod(fx, fy)  # JS % truncates like fmod
        else:
            raise JsError("unknown arithmetic op %r" % op_name)
        if both_int and nanbox.fits_int32(result):
            return result
        return float(result)

    def _svc_compare(self, cpu, sp, *rest):
        runtime = self.runtime
        op_name = _COMPARE_NAMES[cpu.regs.value[13]]  # a3
        left = runtime.read_slot(sp - 8)
        right = runtime.read_slot(sp)
        if op_name in ("EQ", "NE"):
            result = self._strict_equal(left, right)
            if op_name == "NE":
                result = not result
        elif isinstance(left, str) and isinstance(right, str):
            result = {"LT": left < right, "LE": left <= right,
                      "GT": left > right, "GE": left >= right}[op_name]
        else:
            x = runtime.to_number(left)
            y = runtime.to_number(right)
            if x != x or y != y:
                result = False
            else:
                result = {"LT": x < y, "LE": x <= y,
                          "GT": x > y, "GE": x >= y}[op_name]
        runtime.write_slot(sp - 8, result)

    @staticmethod
    def _strict_equal(left, right):
        if isinstance(left, bool) or isinstance(right, bool):
            return left is right
        if isinstance(left, (int, float)) and isinstance(right, (int,
                                                                 float)):
            return float(left) == float(right)
        if type(left) is not type(right):
            return False
        return left == right

    def _svc_elem_get(self, cpu, sp, *rest):
        runtime = self.runtime
        obj = runtime.read_slot(sp - 8)
        key = runtime.read_slot(sp)
        runtime.write_slot(sp - 8, runtime.element_get(obj, key))

    def _svc_elem_set(self, cpu, sp, *rest):
        runtime = self.runtime
        obj = runtime.read_slot(sp - 16)
        key = runtime.read_slot(sp - 8)
        runtime.element_set(obj, key, runtime.mem.load_u64(sp))

    def _svc_newarray(self, cpu, hint, sp, *rest):
        addr = self.runtime.make_array(capacity=max(hint, 4))
        self.runtime.write_slot(sp + 8, JsObjectRef(addr))

    def _svc_newobj(self, cpu, _a0, sp, *rest):
        addr = self.runtime.make_object()
        self.runtime.write_slot(sp + 8, JsObjectRef(addr))

    def _svc_typeof(self, cpu, sp, *rest):
        runtime = self.runtime
        value = runtime.read_slot(sp)
        if value is None:
            name = "undefined"
        elif isinstance(value, bool):
            name = "boolean"
        elif isinstance(value, (int, float)):
            name = "number"
        elif isinstance(value, str):
            name = "string"
        elif value is NULL:
            name = "object"  # the JavaScript classic
        elif isinstance(value, JsObjectRef):
            kind = runtime.mem.load_u64(value.addr + layout.OBJ_KIND)
            name = "function" if kind == 2 else "object"
        else:
            name = "object"
        runtime.write_slot(sp, name)

    def _svc_error(self, cpu, code, *rest):
        raise JsError("VM fault: illegal opcode or type error "
                      "(bytecode word 0x%08x at pc 0x%x)" % (code, cpu.pc))

    # -- builtins ---------------------------------------------------------------
    def _builtin_cost(self, args):
        return HOST_COSTS[_BUILTIN_NAMES[args[3]]]

    def _svc_builtin(self, cpu, dest, args_base, nargs, native_id, *rest):
        runtime = self.runtime
        values = [runtime.read_slot(args_base + index * 8)
                  for index in range(nargs)]
        name = _BUILTIN_NAMES[native_id]
        result = getattr(self, "_builtin_" + name)(values)
        runtime.write_slot(dest, result)

    def _builtin_print(self, values):
        self.runtime.output.append(
            " ".join(self.runtime.to_string(v) for v in values) + "\n")

    def _builtin_write(self, values):
        self.runtime.output.append(
            "".join(self.runtime.to_string(v) for v in values))

    def _num(self, values, index, name):
        if index >= len(values):
            raise JsError("missing argument #%d to %s" % (index + 1, name))
        return self.runtime.to_number(values[index])

    def _builtin_math_sqrt(self, values):
        value = self._num(values, 0, "sqrt")
        return math.sqrt(value) if value >= 0 else float("nan")

    def _builtin_math_floor(self, values):
        value = self._num(values, 0, "floor")
        result = math.floor(value)
        return result if nanbox.fits_int32(result) else float(result)

    def _builtin_math_abs(self, values):
        return abs(self._num(values, 0, "abs"))

    def _builtin_math_max(self, values):
        return max(self._num(values, i, "max") for i in range(len(values)))

    def _builtin_math_min(self, values):
        return min(self._num(values, i, "min") for i in range(len(values)))

    def _builtin_math_pow(self, values):
        return float(self._num(values, 0, "pow")) \
            ** float(self._num(values, 1, "pow"))

    def _builtin_substring(self, values):
        text = values[0]
        if not isinstance(text, str):
            raise JsError("substring expects a string")
        start = int(self._num(values, 1, "substring"))
        stop = int(self._num(values, 2, "substring")) \
            if len(values) > 2 else len(text)
        start = max(0, min(start, len(text)))
        stop = max(0, min(stop, len(text)))
        if start > stop:
            start, stop = stop, start
        return text[start:stop]

    def _builtin_charCodeAt(self, values):
        text = values[0]
        index = int(self._num(values, 1, "charCodeAt")) \
            if len(values) > 1 else 0
        if not isinstance(text, str) or not 0 <= index < len(text):
            return float("nan")
        return ord(text[index])

    def _builtin_fromCharCode(self, values):
        return "".join(chr(int(self.runtime.to_number(v))) for v in values)


def install_builtin_globals(runtime, globals_addr, global_names,
                            func_globals, func_addrs):
    """Populate globals: hoisted user functions plus the builtins."""
    def native(name):
        return JsObjectRef(runtime.make_native(name))

    def object_of(entries):
        addr = runtime.make_object()
        for key, value in entries.items():
            runtime.hash_parts[addr][key] = runtime.box(value)
        return JsObjectRef(addr)

    builtins = {
        "print": native("print"),
        "write": native("write"),
        "substring": native("substring"),
        "charCodeAt": native("charCodeAt"),
        "Math": object_of({
            "sqrt": native("math_sqrt"), "floor": native("math_floor"),
            "abs": native("math_abs"), "max": native("math_max"),
            "min": native("math_min"), "pow": native("math_pow"),
            "PI": math.pi, "E": math.e,
        }),
        "String": object_of({"fromCharCode": native("fromCharCode")}),
    }
    for slot, name in enumerate(global_names):
        slot_addr = globals_addr + slot * 8
        if name in func_globals:
            runtime.write_slot(slot_addr,
                               JsObjectRef(func_addrs[func_globals[name]]))
        elif name in builtins:
            runtime.write_slot(slot_addr, builtins[name])
        else:
            runtime.write_slot(slot_addr, None)
