"""MiniJS bytecode compiler: AST to stack-machine code.

``var`` declarations are hoisted to function scope (slots allocated up
front); function declarations are hoisted into global slots by the image
builder.
"""

from dataclasses import dataclass, field

from repro.engines.js import jast as ast
from repro.engines.js.opcodes import JsOp, encode


class JsCompileError(Exception):
    """Unsupported construct or resource overflow."""


@dataclass
class JsProto:
    name: str
    num_params: int
    num_locals: int = 0
    code: list = field(default_factory=list)
    constants: list = field(default_factory=list)


@dataclass
class JsChunk:
    protos: list          # index 0 = top-level code
    globals: list         # slot -> name
    func_globals: dict    # global name -> proto index (hoisted functions)

    @property
    def main(self):
        return self.protos[0]


def _hoisted_vars(block):
    """Names declared with var/let anywhere in ``block`` (JS hoisting)."""
    names = []

    def visit(node):
        if isinstance(node, ast.VarDecl):
            if node.name not in names:
                names.append(node.name)
        elif isinstance(node, ast.Block):
            for statement in node.statements:
                visit(statement)
        elif isinstance(node, ast.If):
            visit(node.then)
            if node.orelse is not None:
                visit(node.orelse)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            visit(node.body)
        elif isinstance(node, ast.For):
            if node.init is not None:
                visit(node.init)
            visit(node.body)
        # FunctionDecl bodies have their own scope: do not descend.

    visit(block)
    return names


class _FunctionState:
    def __init__(self, name, params, body, top_level=False):
        # Top-level `var` declarations are *globals* in JavaScript, so the
        # main program binds no locals; functions hoist their own vars.
        self.locals = {param: slot for slot, param in enumerate(params)}
        if not top_level:
            for var_name in _hoisted_vars(body):
                if var_name not in self.locals:
                    self.locals[var_name] = len(self.locals)
        self.proto = JsProto(name=name, num_params=len(params),
                             num_locals=max(len(self.locals), 1))
        self.const_index = {}
        self.break_jumps = []
        self.continue_jumps = []

    def constant(self, value):
        key = (type(value).__name__, value)
        index = self.const_index.get(key)
        if index is None:
            index = len(self.proto.constants)
            if index > 0x7FFF:
                raise JsCompileError("too many constants")
            self.proto.constants.append(value)
            self.const_index[key] = index
        return index

    def emit(self, op, imm=0):
        self.proto.code.append(encode(op, imm))
        return len(self.proto.code) - 1

    def patch_jump(self, position, target=None):
        if target is None:
            target = len(self.proto.code)
        op = JsOp(self.proto.code[position] & 0xFF)
        self.proto.code[position] = encode(op, target - (position + 1))

    def jump_to(self, op, target):
        self.emit(op, target - (len(self.proto.code) + 1))

    @property
    def here(self):
        return len(self.proto.code)


class JsCompiler:
    """Compiles a parsed program; see :func:`compile_source`."""

    BUILTIN_GLOBALS = ("print", "Math", "String")

    def __init__(self):
        self.protos = []
        self.global_slots = {}
        self.global_names = []
        self.func_globals = {}

    def global_slot(self, name):
        slot = self.global_slots.get(name)
        if slot is None:
            slot = len(self.global_names)
            if slot > 0x7FFF:
                raise JsCompileError("too many globals")
            self.global_slots[name] = slot
            self.global_names.append(name)
        return slot

    def compile(self, program):
        for name in self.BUILTIN_GLOBALS:
            self.global_slot(name)
        # Hoist function declarations first so forward calls resolve.
        top_statements = []
        for statement in program.statements:
            if isinstance(statement, ast.FunctionDecl):
                self.global_slot(statement.name)
                proto_index = len(self.protos) + 1  # main is inserted at 0
                self.func_globals[statement.name] = proto_index
                self.protos.append((statement.name, statement.params,
                                    statement.body))
            else:
                top_statements.append(statement)
        pending = self.protos
        self.protos = [None] * (len(pending) + 1)
        for offset, (name, params, body) in enumerate(pending):
            self.protos[offset + 1] = self._compile_function(name, params,
                                                             body)
        self.protos[0] = self._compile_function(
            "main", [], ast.Block(top_statements), top_level=True)
        return JsChunk(self.protos, list(self.global_names),
                       dict(self.func_globals))

    def _compile_function(self, name, params, body, top_level=False):
        state = _FunctionState(name, params, body, top_level=top_level)
        self._block(state, body)
        state.emit(JsOp.RETURN_UNDEF)
        return state.proto

    # -- statements ---------------------------------------------------------------
    def _block(self, state, block):
        for statement in block.statements:
            self._statement(state, statement)

    def _statement(self, state, node):
        if isinstance(node, ast.VarDecl):
            if node.value is not None:
                self._expr(state, node.value)
                slot = state.locals.get(node.name)
                if slot is not None:
                    state.emit(JsOp.SETLOCAL, slot)
                else:
                    state.emit(JsOp.SETGLOBAL,
                               self.global_slot(node.name))
        elif isinstance(node, ast.Assign):
            self._assign(state, node)
        elif isinstance(node, ast.ExprStat):
            self._expr(state, node.expr)
            state.emit(JsOp.POP)
        elif isinstance(node, ast.If):
            self._expr(state, node.condition)
            skip = state.emit(JsOp.IFEQ)
            self._block(state, node.then)
            if node.orelse is not None:
                to_end = state.emit(JsOp.JUMP)
                state.patch_jump(skip)
                if isinstance(node.orelse, ast.If):
                    self._statement(state, node.orelse)
                else:
                    self._block(state, node.orelse)
                state.patch_jump(to_end)
            else:
                state.patch_jump(skip)
        elif isinstance(node, ast.While):
            top = state.here
            self._expr(state, node.condition)
            exit_jump = state.emit(JsOp.IFEQ)
            state.break_jumps.append([])
            state.continue_jumps.append([])
            self._block(state, node.body)
            for jump in state.continue_jumps.pop():
                state.patch_jump(jump, target=top)
            state.jump_to(JsOp.JUMP, top)
            state.patch_jump(exit_jump)
            for jump in state.break_jumps.pop():
                state.patch_jump(jump)
        elif isinstance(node, ast.DoWhile):
            top = state.here
            state.break_jumps.append([])
            state.continue_jumps.append([])
            self._block(state, node.body)
            # `continue` lands on the condition test.
            for jump in state.continue_jumps.pop():
                state.patch_jump(jump)
            self._expr(state, node.condition)
            state.jump_to(JsOp.IFNE, top)
            for jump in state.break_jumps.pop():
                state.patch_jump(jump)
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._statement(state, node.init)
            top = state.here
            exit_jump = None
            if node.condition is not None:
                self._expr(state, node.condition)
                exit_jump = state.emit(JsOp.IFEQ)
            state.break_jumps.append([])
            state.continue_jumps.append([])
            self._block(state, node.body)
            # `continue` lands on the step, not the condition.
            for jump in state.continue_jumps.pop():
                state.patch_jump(jump)
            if node.step is not None:
                self._statement(state, node.step)
            state.jump_to(JsOp.JUMP, top)
            if exit_jump is not None:
                state.patch_jump(exit_jump)
            for jump in state.break_jumps.pop():
                state.patch_jump(jump)
        elif isinstance(node, ast.Return):
            if node.value is None:
                state.emit(JsOp.RETURN_UNDEF)
            else:
                self._expr(state, node.value)
                state.emit(JsOp.RETURN)
        elif isinstance(node, ast.Break):
            if not state.break_jumps:
                raise JsCompileError("break outside a loop")
            state.break_jumps[-1].append(state.emit(JsOp.JUMP))
        elif isinstance(node, ast.Continue):
            if not state.continue_jumps:
                raise JsCompileError("continue outside a loop")
            state.continue_jumps[-1].append(state.emit(JsOp.JUMP))
        elif isinstance(node, ast.FunctionDecl):
            raise JsCompileError("nested function declarations are not "
                                 "supported")
        elif isinstance(node, ast.Block):
            self._block(state, node)
        else:
            raise JsCompileError("unsupported statement %r" % node)

    def _assign(self, state, node):
        target = node.target
        if isinstance(target, ast.Name):
            slot = state.locals.get(target.name)
            if node.op is not None:
                self._load_name(state, target.name)
                self._expr(state, node.value)
                state.emit(_ARITH_OPS[node.op])
            else:
                self._expr(state, node.value)
            if slot is not None:
                state.emit(JsOp.SETLOCAL, slot)
            else:
                state.emit(JsOp.SETGLOBAL, self.global_slot(target.name))
        else:  # Index
            self._expr(state, target.obj)
            self._expr(state, target.key)
            if node.op is not None:
                # Compound element assignment re-evaluates obj/key; fine
                # for the side-effect-free subscripts the benchmarks use.
                self._expr(state, target.obj)
                self._expr(state, target.key)
                state.emit(JsOp.GETELEM)
                self._expr(state, node.value)
                state.emit(_ARITH_OPS[node.op])
            else:
                self._expr(state, node.value)
            state.emit(JsOp.SETELEM)

    def _load_name(self, state, name):
        slot = state.locals.get(name)
        if slot is not None:
            state.emit(JsOp.GETLOCAL, slot)
        else:
            state.emit(JsOp.GETGLOBAL, self.global_slot(name))

    # -- expressions ----------------------------------------------------------------
    def _expr(self, state, node):
        if isinstance(node, ast.NumberLit):
            state.emit(JsOp.PUSHK, state.constant(node.value))
        elif isinstance(node, ast.StringLit):
            state.emit(JsOp.PUSHK, state.constant(node.value))
        elif isinstance(node, ast.BoolLit):
            state.emit(JsOp.PUSHBOOL, 1 if node.value else 0)
        elif isinstance(node, ast.NullLit):
            state.emit(JsOp.NULL)
        elif isinstance(node, ast.UndefinedLit):
            state.emit(JsOp.UNDEF)
        elif isinstance(node, ast.Name):
            self._load_name(state, node.name)
        elif isinstance(node, ast.Index):
            self._expr(state, node.obj)
            self._expr(state, node.key)
            state.emit(JsOp.GETELEM)
        elif isinstance(node, ast.BinOp):
            self._binop(state, node)
        elif isinstance(node, ast.Conditional):
            self._expr(state, node.condition)
            to_else = state.emit(JsOp.IFEQ)
            self._expr(state, node.then)
            to_end = state.emit(JsOp.JUMP)
            state.patch_jump(to_else)
            self._expr(state, node.otherwise)
            state.patch_jump(to_end)
        elif isinstance(node, ast.UnOp):
            self._expr(state, node.operand)
            state.emit({"-": JsOp.NEG, "!": JsOp.NOT,
                        "typeof": JsOp.TYPEOF}[node.op])
        elif isinstance(node, ast.Call):
            self._expr(state, node.func)
            for argument in node.args:
                self._expr(state, argument)
            state.emit(JsOp.CALL, len(node.args))
        elif isinstance(node, ast.ArrayLit):
            state.emit(JsOp.NEWARRAY, min(len(node.items), 0x7FFF))
            for position, item in enumerate(node.items):
                state.emit(JsOp.DUP)
                state.emit(JsOp.PUSHK, state.constant(position))
                self._expr(state, item)
                state.emit(JsOp.SETELEM)
        elif isinstance(node, ast.ObjectLit):
            state.emit(JsOp.NEWOBJ)
            for name, value in node.fields:
                state.emit(JsOp.DUP)
                state.emit(JsOp.PUSHK, state.constant(name))
                self._expr(state, value)
                state.emit(JsOp.SETELEM)
        else:
            raise JsCompileError("unsupported expression %r" % node)

    def _binop(self, state, node):
        if node.op in ("&&", "||"):
            self._expr(state, node.left)
            state.emit(JsOp.DUP)
            skip = state.emit(JsOp.IFEQ if node.op == "&&" else JsOp.IFNE)
            state.emit(JsOp.POP)
            self._expr(state, node.right)
            state.patch_jump(skip)
            return
        op = _ARITH_OPS.get(node.op) or _COMPARE_OPS.get(node.op)
        if op is None:
            raise JsCompileError("unsupported operator %r" % node.op)
        self._expr(state, node.left)
        self._expr(state, node.right)
        state.emit(op)


_ARITH_OPS = {"+": JsOp.ADD, "-": JsOp.SUB, "*": JsOp.MUL, "/": JsOp.DIV,
              "%": JsOp.MOD}
_COMPARE_OPS = {"==": JsOp.EQ, "!=": JsOp.NE, "<": JsOp.LT, "<=": JsOp.LE,
                ">": JsOp.GT, ">=": JsOp.GE}


def compile_source(source):
    """Parse and compile MiniJS ``source`` into a :class:`JsChunk`."""
    from repro.engines.js.jparser import parse
    return JsCompiler().compile(parse(source))
