"""Recursive-descent parser for the MiniJS subset.

Supported: ``var``/``let`` declarations, function declarations,
assignments (plain and compound), ``if``/``else``, ``while``,
C-style ``for``, ``return``, ``break``, arrays, object literals, member
and index access, calls, and the usual expression operators with
JavaScript precedences.  ``x++``/``x--`` statements desugar to compound
assignments.
"""

from repro.engines.js import jast as ast
from repro.engines.js.lexer import JsSyntaxError, tokenize

_BINARY_PRECEDENCE = {
    "||": 1, "&&": 2,
    "==": 3, "!=": 3, "===": 3, "!==": 3,
    "<": 4, ">": 4, "<=": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}
_UNARY_PRECEDENCE = 7


class Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    @property
    def current(self):
        return self.tokens[self.pos]

    def error(self, message):
        raise JsSyntaxError("line %d: %s (got %r)"
                            % (self.current.line, message,
                               self.current.value))

    def advance(self):
        token = self.current
        self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            self.error("expected %s %r" % (kind, value))
        return token

    # -- program ------------------------------------------------------------
    def parse_program(self):
        statements = []
        while self.current.kind != "eof":
            statements.append(self.parse_statement())
        return ast.Block(statements)

    def parse_block(self):
        self.expect("op", "{")
        statements = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(statements)

    def _block_or_statement(self):
        if self.check("op", "{"):
            return self.parse_block()
        return ast.Block([self.parse_statement()])

    # -- statements -----------------------------------------------------------
    def parse_statement(self):
        token = self.current
        if token.kind == "keyword":
            if token.value in ("var", "let"):
                statement = self._parse_var()
                self.accept("op", ";")
                return statement
            if token.value == "function":
                return self._parse_function()
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "do":
                return self._parse_do_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                self.advance()
                value = None
                if not (self.check("op", ";") or self.check("op", "}")
                        or self.current.kind == "eof"):
                    value = self.parse_expression()
                self.accept("op", ";")
                return ast.Return(value)
            if token.value == "break":
                self.advance()
                self.accept("op", ";")
                return ast.Break()
            if token.value == "continue":
                self.advance()
                self.accept("op", ";")
                return ast.Continue()
        if self.check("op", "{"):
            return self.parse_block()
        statement = self._parse_expr_statement()
        self.accept("op", ";")
        return statement

    def _parse_var(self):
        self.advance()  # var / let
        name = self.expect("name").value
        value = None
        if self.accept("op", "="):
            value = self.parse_expression()
        return ast.VarDecl(name, value)

    def _parse_function(self):
        self.expect("keyword", "function")
        name = self.expect("name").value
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                params.append(self.expect("name").value)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FunctionDecl(name, params, body)

    def _parse_if(self):
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then = self._block_or_statement()
        orelse = None
        if self.accept("keyword", "else"):
            if self.check("keyword", "if"):
                orelse = self._parse_if()
            else:
                orelse = self._block_or_statement()
        return ast.If(condition, then, orelse)

    def _parse_while(self):
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        return ast.While(condition, self._block_or_statement())

    def _parse_do_while(self):
        self.expect("keyword", "do")
        body = self._block_or_statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        self.accept("op", ";")
        return ast.DoWhile(body, condition)

    def _parse_for(self):
        self.expect("keyword", "for")
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self.check("keyword", "var") or self.check("keyword", "let"):
                init = self._parse_var()
            else:
                init = self._parse_expr_statement()
        self.expect("op", ";")
        condition = None
        if not self.check("op", ";"):
            condition = self.parse_expression()
        self.expect("op", ";")
        step = None
        if not self.check("op", ")"):
            step = self._parse_expr_statement()
        self.expect("op", ")")
        return ast.For(init, condition, step, self._block_or_statement())

    _COMPOUND = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}

    def _parse_expr_statement(self):
        expr = self.parse_expression()
        token = self.current
        if token.kind == "op" and token.value == "=":
            self.advance()
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("invalid assignment target")
            return ast.Assign(expr, self.parse_expression())
        if token.kind == "op" and token.value in self._COMPOUND:
            self.advance()
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("invalid assignment target")
            return ast.Assign(expr, self.parse_expression(),
                              op=self._COMPOUND[token.value])
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            if not isinstance(expr, (ast.Name, ast.Index)):
                self.error("invalid increment target")
            return ast.Assign(expr, ast.NumberLit(1),
                              op="+" if token.value == "++" else "-")
        return ast.ExprStat(expr)

    # -- expressions ------------------------------------------------------------
    def parse_expression(self, limit=0):
        expr = self._parse_binary(limit)
        if limit == 0 and self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            otherwise = self.parse_expression()
            return ast.Conditional(expr, then, otherwise)
        return expr

    def _parse_binary(self, limit=0):
        token = self.current
        if token.kind == "op" and token.value in ("-", "!"):
            self.advance()
            operand = self.parse_expression(_UNARY_PRECEDENCE)
            if token.value == "-" and isinstance(operand, ast.NumberLit):
                left = ast.NumberLit(-operand.value)
            else:
                left = ast.UnOp(token.value, operand)
        elif token.kind == "keyword" and token.value == "typeof":
            self.advance()
            left = ast.UnOp("typeof",
                            self.parse_expression(_UNARY_PRECEDENCE))
        else:
            left = self._parse_postfix()
        while True:
            token = self.current
            op = token.value if token.kind == "op" else None
            precedence = _BINARY_PRECEDENCE.get(op)
            if precedence is None or precedence <= limit:
                return left
            self.advance()
            right = self.parse_expression(precedence)
            # Strict operators behave like loose ones in this subset.
            canonical = {"===": "==", "!==": "!="}.get(op, op)
            left = ast.BinOp(canonical, left, right)

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self.accept("op", "."):
                field = self.expect("name").value
                expr = ast.Index(expr, ast.StringLit(field))
            elif self.accept("op", "["):
                key = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, key)
            elif self.check("op", "("):
                self.advance()
                args = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(expr, args)
            else:
                return expr

    def _parse_primary(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return ast.NumberLit(token.value)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(token.value)
        if token.kind == "name":
            self.advance()
            return ast.Name(token.value)
        if token.kind == "keyword":
            if token.value in ("true", "false"):
                self.advance()
                return ast.BoolLit(token.value == "true")
            if token.value == "null":
                self.advance()
                return ast.NullLit()
            if token.value == "undefined":
                self.advance()
                return ast.UndefinedLit()
        if self.accept("op", "("):
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if self.check("op", "["):
            self.advance()
            items = []
            if not self.check("op", "]"):
                while True:
                    items.append(self.parse_expression())
                    if not self.accept("op", ","):
                        break
            self.expect("op", "]")
            return ast.ArrayLit(items)
        if self.check("op", "{"):
            self.advance()
            fields = []
            if not self.check("op", "}"):
                while True:
                    key = self.advance()
                    if key.kind not in ("name", "string"):
                        self.error("expected property name")
                    self.expect("op", ":")
                    fields.append((key.value, self.parse_expression()))
                    if not self.accept("op", ","):
                        break
            self.expect("op", "}")
            return ast.ObjectLit(fields)
        self.error("unexpected token in expression")


def parse(source):
    """Parse MiniJS ``source`` into a Block AST."""
    return Parser(tokenize(source)).parse_program()
