"""Tokenizer for the MiniJS subset."""

from dataclasses import dataclass

KEYWORDS = frozenset(
    ["var", "let", "function", "if", "else", "while", "do", "for",
     "return", "break", "continue", "true", "false", "null", "undefined",
     "new", "typeof"])

OPERATORS = ("===", "!==", "==", "!=", "<=", ">=", "&&", "||", "++", "--",
             "+=", "-=", "*=", "/=", "%=",
             "+", "-", "*", "/", "%", "!", "<", ">", "=", "(", ")",
             "{", "}", "[", "]", ";", ",", ".", ":", "?")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"',
            "'": "'", "0": "\0", "b": "\b", "f": "\f", "v": "\v"}


class JsSyntaxError(SyntaxError):
    """Lexical or syntactic error in MiniJS source."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'name', 'number', 'string', 'keyword', 'op', 'eof'
    value: object
    line: int


INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1


def tokenize(source):
    """Tokenize ``source``; integer literals in int32 range stay ints
    (the engine's int32 fast-path representation), everything else is a
    double."""
    tokens = []
    pos = 0
    line = 1
    length = len(source)

    def error(message):
        raise JsSyntaxError("line %d: %s" % (line, message))

    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            continue
        if char in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end < 0 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end < 0:
                error("unterminated block comment")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            start = pos
            is_float = False
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < length and source[pos] in \
                        "0123456789abcdefABCDEF":
                    pos += 1
                value = int(source[start:pos], 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                if pos < length and source[pos] == ".":
                    is_float = True
                    pos += 1
                    while pos < length and source[pos].isdigit():
                        pos += 1
                if pos < length and source[pos] in "eE":
                    is_float = True
                    pos += 1
                    if pos < length and source[pos] in "+-":
                        pos += 1
                    while pos < length and source[pos].isdigit():
                        pos += 1
                text = source[start:pos]
                value = float(text) if is_float else int(text)
            if isinstance(value, int) and not INT32_MIN <= value <= INT32_MAX:
                value = float(value)
            tokens.append(Token("number", value, line))
            continue
        if char.isalpha() or char in "_$":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] in "_$"):
                pos += 1
            word = source[start:pos]
            tokens.append(Token("keyword" if word in KEYWORDS else "name",
                                word, line))
            continue
        if char in "\"'":
            quote = char
            pos += 1
            parts = []
            while pos < length and source[pos] != quote:
                piece = source[pos]
                if piece == "\\":
                    pos += 1
                    if pos >= length:
                        error("unterminated escape")
                    piece = _ESCAPES.get(source[pos])
                    if piece is None:
                        error("unknown escape \\%s" % source[pos])
                elif piece == "\n":
                    error("unterminated string")
                parts.append(piece)
                pos += 1
            if pos >= length:
                error("unterminated string")
            pos += 1
            tokens.append(Token("string", "".join(parts), line))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line))
                pos += len(operator)
                break
        else:
            error("unexpected character %r" % char)
    tokens.append(Token("eof", None, line))
    return tokens
