"""Memory map, NaN-boxed value tags and object layouts of the MiniJS VM.

Values are single 64-bit double-words: canonical doubles stored as their
own bit pattern, everything else boxed in the NaN space with a 4-bit type
tag at bits [50:47] and a 47-bit payload — the SpiderMonkey layout of
Section 4.2 that Table 4 configures the tag extractor for (``R_offset`` =
0b100: NaN detection, same double-word; shift 47; mask 0x0F).
"""

from repro.isa.extension import (
    SPIDERMONKEY_SPR,
    TypeRule,
    arithmetic_rules,
)

# -- memory map (same regions as the Lua VM) -----------------------------------
CODE_BASE = 0x0001_0000
IMAGE_BASE = 0x0010_0000
STACK_BASE = 0x0020_0000       # operand/locals stack (8-byte slots)
CALL_STACK_BASE = 0x0028_0000
HEAP_BASE = 0x0030_0000
MEMORY_SIZE = 0x0200_0000

VALUE_SIZE = 8

# Boot block: program-specific launch parameters read by the cached,
# program-independent interpreter text.  The jump table sits at
# IMAGE_BASE itself.
BOOT_BLOCK = IMAGE_BASE - 64
BOOT_MAIN_CODE = 0
BOOT_MAIN_CONSTS = 8
BOOT_GLOBALS = 16
BOOT_MAIN_NLOCALS = 24
JUMP_TABLE_ADDR = IMAGE_BASE

# -- 4-bit JSVAL type tags (SpiderMonkey 17 encoding) ----------------------------
TAG_DOUBLE = 0    # pseudo-tag reported by the NaN-detect extractor
TAG_INT32 = 1
TAG_UNDEFINED = 2
TAG_BOOLEAN = 3
TAG_STRING = 5
TAG_NULL = 6
TAG_OBJECT = 7    # objects, arrays and functions

NAN_PREFIX_17 = 0x1FFF1  # (value >> 47) for an int32 box, used by guards

# -- object layouts ---------------------------------------------------------------
# Array/object header.  Arrays keep dense elements in simulated memory;
# plain-object properties and sparse keys live in the host's hash part.
OBJ_ELEMS_PTR = 0
OBJ_CAPACITY = 8
OBJ_LENGTH = 16
OBJ_KIND = 24           # 0 = array, 1 = plain object, 2 = function
OBJ_SIZE = 32

# Function descriptor (kind == 2).
FUNC_CODE = 32
FUNC_CONSTS = 40
FUNC_NARGS = 48
FUNC_NLOCALS = 56
FUNC_NATIVE_ID = 64     # >= 0: native builtin; -1: bytecode function
FUNC_SIZE = 72

# String object.
STRING_LENGTH = 0
STRING_BYTES = 8

# Call-stack activation record.
FRAME_SAVED_PC = 0
FRAME_SAVED_BASE = 8
FRAME_SAVED_CONSTS = 16
FRAME_DEST_PTR = 24     # callee slot in the caller's operand stack
FRAME_SIZE = 32

SPR_SETTINGS = SPIDERMONKEY_SPR

# Table 5: arithmetic rules over Int/Double, plus the Object-Int rule for
# GETELEM/SETELEM's tchk.
TYPE_RULES = (arithmetic_rules(int_tag=TAG_INT32, float_tag=TAG_DOUBLE)
              + [TypeRule("tchk", TAG_OBJECT, TAG_INT32, TAG_OBJECT),
                 TypeRule("tchk", TAG_INT32, TAG_OBJECT, TAG_OBJECT)])
