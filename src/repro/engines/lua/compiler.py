"""MiniLua bytecode compiler: AST to register-machine code.

Produces a :class:`CompiledChunk`: one :class:`Proto` per function (index
0 is the top-level chunk) plus the global-slot table.  Registers are
allocated Lua-style: named locals occupy the low registers of a frame and
expression temporaries a stack above them.
"""

from dataclasses import dataclass, field

from repro.engines.lua import last as ast
from repro.engines.lua.opcodes import (
    Op,
    RK_FLAG,
    encode_abc,
    encode_jump,
)

MAX_REGISTERS = 128


class CompileError(Exception):
    """Raised for resource overflows or unsupported constructs."""


@dataclass(frozen=True)
class FunctionConst:
    """A constant referring to another proto (static function value)."""

    proto_index: int


@dataclass
class Proto:
    """One compiled function."""

    name: str
    num_params: int
    code: list = field(default_factory=list)
    constants: list = field(default_factory=list)
    nregs: int = 0


@dataclass
class CompiledChunk:
    """Compiler output: all protos plus the global name table."""

    protos: list
    globals: list  # slot index -> name

    @property
    def main(self):
        return self.protos[0]


class _FunctionState:
    """Per-function compilation state."""

    def __init__(self, name, params, chunk_compiler):
        self.proto = Proto(name=name, num_params=len(params))
        self.chunk = chunk_compiler
        self.locals = []  # list of (name, reg), innermost last
        self.scope_stack = []
        self.freereg = 0
        self.const_index = {}
        self.break_jumps = []  # stack of lists
        for param in params:
            self._declare_local(param)

    # -- registers ----------------------------------------------------------
    def reserve(self, count=1):
        reg = self.freereg
        self.freereg += count
        if self.freereg > MAX_REGISTERS:
            raise CompileError("function %r needs too many registers"
                               % self.proto.name)
        self.proto.nregs = max(self.proto.nregs, self.freereg)
        return reg

    def _declare_local(self, name):
        reg = self.reserve()
        self.locals.append((name, reg))
        return reg

    def lookup_local(self, name):
        for local_name, reg in reversed(self.locals):
            if local_name == name:
                return reg
        return None

    def enter_scope(self):
        self.scope_stack.append((len(self.locals), self.freereg))

    def exit_scope(self):
        local_count, freereg = self.scope_stack.pop()
        del self.locals[local_count:]
        self.freereg = freereg

    # -- constants ------------------------------------------------------------
    def constant(self, value):
        key = (type(value).__name__, value)
        index = self.const_index.get(key)
        if index is None:
            index = len(self.proto.constants)
            self.proto.constants.append(value)
            self.const_index[key] = index
        return index

    # -- emission ----------------------------------------------------------------
    def emit(self, op, a, b=0, c=0):
        self.proto.code.append(encode_abc(op, a, b, c))
        return len(self.proto.code) - 1

    def emit_jump(self, op, a=0):
        """Emit a jump with a placeholder offset; returns its position."""
        self.proto.code.append(encode_jump(op, a, 0))
        return len(self.proto.code) - 1

    def patch_jump(self, position, target=None):
        """Point the jump at ``position`` to ``target`` (default: here)."""
        if target is None:
            target = len(self.proto.code)
        op = Op(self.proto.code[position] & 0xFF)
        a = (self.proto.code[position] >> 8) & 0xFF
        self.proto.code[position] = encode_jump(op, a,
                                                target - (position + 1))

    def emit_jump_to(self, op, target, a=0):
        offset = target - (len(self.proto.code) + 1)
        self.proto.code.append(encode_jump(op, a, offset))

    @property
    def here(self):
        return len(self.proto.code)


class Compiler:
    """Compiles a parsed chunk; see :func:`compile_chunk`."""

    BUILTIN_GLOBALS = ("print", "io", "math", "string", "tostring", "type")

    def __init__(self):
        self.protos = []
        self.global_slots = {}
        self.global_names = []
        # `local function f` has no upvalue support here; since function
        # values are static constants, references to an enclosing local
        # function resolve to its constant instead (recursion works).
        self.function_consts = {}

    def global_slot(self, name):
        slot = self.global_slots.get(name)
        if slot is None:
            slot = len(self.global_names)
            if slot > 0xFF:
                raise CompileError("too many globals")
            self.global_slots[name] = slot
            self.global_names.append(name)
        return slot

    def compile(self, block):
        for name in self.BUILTIN_GLOBALS:
            self.global_slot(name)
        self.protos.append(None)  # reserve index 0 for main
        main = self._compile_function("main", [], block, proto_index=0)
        self.protos[0] = main
        return CompiledChunk(self.protos, list(self.global_names))

    def _compile_function(self, name, params, block, proto_index=None):
        state = _FunctionState(name, params, self)
        self._block(state, block)
        state.emit(Op.RETURN0, 0)
        state.proto.nregs = max(state.proto.nregs, 1)
        return state.proto

    def _add_proto(self, proto):
        self.protos.append(proto)
        return len(self.protos) - 1

    # -- statements -----------------------------------------------------------
    def _block(self, state, block):
        state.enter_scope()
        for statement in block.statements:
            self._statement(state, statement)
        state.exit_scope()

    def _statement(self, state, node):
        if isinstance(node, ast.LocalAssign):
            if node.value is None:
                reg = state._declare_local(node.name)
                state.emit(Op.LOADNIL, reg)
            else:
                # Evaluate before declaring so `local x = x` sees the outer x.
                temp = state.freereg
                self._expr_to_reg(state, node.value, temp)
                reg = state._declare_local(node.name)
                if reg != temp:
                    state.emit(Op.MOVE, reg, temp)
        elif isinstance(node, ast.Assign):
            self._assign(state, node)
        elif isinstance(node, ast.MultiLocal):
            self._multi_local(state, node)
        elif isinstance(node, ast.MultiAssign):
            self._multi_assign(state, node)
        elif isinstance(node, ast.CallStat):
            mark = state.freereg
            self._expr_to_reg(state, node.call, state.freereg)
            state.freereg = mark
        elif isinstance(node, ast.If):
            self._if(state, node)
        elif isinstance(node, ast.While):
            self._while(state, node)
        elif isinstance(node, ast.Repeat):
            self._repeat(state, node)
        elif isinstance(node, ast.NumericFor):
            self._numeric_for(state, node)
        elif isinstance(node, ast.GenericFor):
            self._generic_for(state, node)
        elif isinstance(node, ast.Return):
            if node.value is None:
                state.emit(Op.RETURN0, 0)
            else:
                mark = state.freereg
                reg = self._expr_any_reg(state, node.value)
                state.emit(Op.RETURN, reg)
                state.freereg = mark
        elif isinstance(node, ast.Break):
            if not state.break_jumps:
                raise CompileError("break outside a loop")
            state.break_jumps[-1].append(state.emit_jump(Op.JMP))
        elif isinstance(node, ast.FunctionDecl):
            self._function_decl(state, node)
        elif isinstance(node, ast.Block):
            self._block(state, node)
        else:
            raise CompileError("unsupported statement %r" % node)

    def _assign(self, state, node):
        mark = state.freereg
        target = node.target
        if isinstance(target, ast.Name):
            reg = state.lookup_local(target.name)
            if reg is not None:
                self._expr_to_reg(state, node.value, reg)
            else:
                value = self._expr_any_reg(state, node.value)
                state.emit(Op.SETGLOBAL, value,
                           self.global_slot(target.name))
        else:  # Index
            table = self._expr_any_reg(state, target.obj)
            key = self._expr_rk(state, target.key)
            value = self._expr_rk(state, node.value)
            state.emit(Op.SETTABLE, table, key, value)
        state.freereg = mark

    def _multi_local(self, state, node):
        """All values evaluate into fresh consecutive registers, which
        then *become* the declared locals (Lua's values-first rule)."""
        base = state.freereg
        for value in node.values:
            reg = state.reserve()
            self._expr_to_reg(state, value, reg)
        for _ in range(len(node.values), len(node.names)):
            reg = state.reserve()
            state.emit(Op.LOADNIL, reg)
        # Extra values were evaluated (for side effects) and are dropped.
        state.freereg = base + len(node.names)
        for offset, name in enumerate(node.names):
            state.locals.append((name, base + offset))

    def _multi_assign(self, state, node):
        """``a, b = b, a``: values land in temporaries before any store."""
        mark = state.freereg
        temps = []
        for value in node.values:
            reg = state.reserve()
            self._expr_to_reg(state, value, reg)
            temps.append(reg)
        for _ in range(len(node.values), len(node.targets)):
            reg = state.reserve()
            state.emit(Op.LOADNIL, reg)
            temps.append(reg)
        for target, temp in zip(node.targets, temps):
            if isinstance(target, ast.Name):
                local = state.lookup_local(target.name)
                if local is not None:
                    state.emit(Op.MOVE, local, temp)
                else:
                    state.emit(Op.SETGLOBAL, temp,
                               self.global_slot(target.name))
            else:
                table = self._expr_any_reg(state, target.obj)
                key = self._expr_rk(state, target.key)
                state.emit(Op.SETTABLE, table, key, temp)
        state.freereg = mark

    def _function_decl(self, state, node):
        proto_index = self._add_proto(None)
        if node.is_local:
            self.function_consts[node.name] = proto_index
        proto = self._compile_function(node.name, node.func.params,
                                       node.func.body)
        self.protos[proto_index] = proto
        const = state.constant(FunctionConst(proto_index))
        if node.is_local:
            reg = state._declare_local(node.name)
            state.emit(Op.LOADK, reg, const)
        else:
            mark = state.freereg
            reg = state.reserve()
            state.emit(Op.LOADK, reg, const)
            state.emit(Op.SETGLOBAL, reg, self.global_slot(node.name))
            state.freereg = mark

    def _if(self, state, node):
        end_jumps = []
        for index, (condition, body) in enumerate(node.clauses):
            mark = state.freereg
            cond_reg = self._expr_any_reg(state, condition)
            state.freereg = mark
            skip = state.emit_jump(Op.JMPF, cond_reg)
            self._block(state, body)
            is_last = index == len(node.clauses) - 1 and node.orelse is None
            if not is_last:
                end_jumps.append(state.emit_jump(Op.JMP))
            state.patch_jump(skip)
        if node.orelse is not None:
            self._block(state, node.orelse)
        for jump in end_jumps:
            state.patch_jump(jump)

    def _while(self, state, node):
        top = state.here
        mark = state.freereg
        cond_reg = self._expr_any_reg(state, node.condition)
        state.freereg = mark
        exit_jump = state.emit_jump(Op.JMPF, cond_reg)
        state.break_jumps.append([])
        self._block(state, node.body)
        state.emit_jump_to(Op.JMP, top)
        state.patch_jump(exit_jump)
        for jump in state.break_jumps.pop():
            state.patch_jump(jump)

    def _repeat(self, state, node):
        top = state.here
        state.break_jumps.append([])
        self._block(state, node.body)
        mark = state.freereg
        cond_reg = self._expr_any_reg(state, node.condition)
        state.freereg = mark
        state.emit_jump_to(Op.JMPF, top, a=cond_reg)
        for jump in state.break_jumps.pop():
            state.patch_jump(jump)

    def _numeric_for(self, state, node):
        state.enter_scope()
        base = state.reserve(4)  # idx, limit, step, user variable
        self._expr_to_reg(state, node.start, base)
        self._expr_to_reg(state, node.stop, base + 1)
        if node.step is None:
            state.emit(Op.LOADK, base + 2, state.constant(1))
        else:
            self._expr_to_reg(state, node.step, base + 2)
        state.locals.append((node.var, base + 3))
        prep = state.emit_jump(Op.FORPREP, base)
        body_top = state.here
        state.break_jumps.append([])
        self._block(state, node.body)
        state.patch_jump(prep)  # FORPREP jumps here, to the FORLOOP
        state.emit_jump_to(Op.FORLOOP, body_top, a=base)
        for jump in state.break_jumps.pop():
            state.patch_jump(jump)
        state.exit_scope()

    def _generic_for(self, state, node):
        """Desugar ``for i, v in ipairs(t)`` into an index-and-test loop
        (the only generic-for iterator supported; true ``pairs`` needs an
        iterator protocol this VM does not model)."""
        iterator = node.iterator
        if not (isinstance(iterator, ast.Call)
                and isinstance(iterator.func, ast.Name)
                and iterator.func.name == "ipairs"
                and len(iterator.args) == 1):
            raise CompileError("generic for supports only 'ipairs(t)'")
        if not 1 <= len(node.names) <= 2:
            raise CompileError("ipairs loop takes one or two variables")
        index_name = node.names[0]
        value_name = node.names[1] if len(node.names) > 1 else None

        state.enter_scope()
        table_reg = state.reserve()
        self._expr_to_reg(state, iterator.args[0], table_reg)
        index_reg = state._declare_local(index_name)
        state.emit(Op.LOADK, index_reg, state.constant(1))
        value_reg = state._declare_local(value_name) if value_name \
            else state.reserve()

        top = state.here
        state.emit(Op.GETTABLE, value_reg, table_reg, index_reg)
        # Stop at the first nil value (Lua's ipairs contract).
        nil_reg = state.reserve()
        state.emit(Op.LOADNIL, nil_reg)
        state.emit(Op.EQ, nil_reg, value_reg, nil_reg)
        exit_jump = state.emit_jump(Op.JMPT, nil_reg)
        state.freereg = nil_reg  # free the temporary
        state.break_jumps.append([])
        self._block(state, node.body)
        state.emit(Op.ADD, index_reg, index_reg,
                   0x80 | state.constant(1))
        state.emit_jump_to(Op.JMP, top)
        state.patch_jump(exit_jump)
        for jump in state.break_jumps.pop():
            state.patch_jump(jump)
        state.exit_scope()

    # -- expressions ----------------------------------------------------------
    _BINOPS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV,
               "%": Op.MOD, "//": Op.IDIV, "^": Op.POW, "..": Op.CONCAT,
               "&": Op.BAND, "|": Op.BOR, "~": Op.BXOR,
               "<<": Op.SHL, ">>": Op.SHR}
    _COMPARISONS = {"==": (Op.EQ, False), "~=": (Op.EQ, True),
                    "<": (Op.LT, False), "<=": (Op.LE, False),
                    ">": (Op.LT, False), ">=": (Op.LE, False)}

    def _expr_any_reg(self, state, node):
        """Compile into any register (an existing local if possible)."""
        if isinstance(node, ast.Name):
            reg = state.lookup_local(node.name)
            if reg is not None:
                return reg
        reg = state.reserve()
        self._expr_to_reg(state, node, reg)
        return reg

    def _expr_rk(self, state, node):
        """Compile to an RK operand: constant when it fits, else register."""
        const = self._constant_value(node)
        if const is not _NOT_CONST:
            index = state.constant(const)
            if index < RK_FLAG:
                return RK_FLAG | index
        return self._expr_any_reg(state, node)

    @staticmethod
    def _constant_value(node):
        if isinstance(node, ast.NumberLit):
            return node.value
        if isinstance(node, ast.StringLit):
            return node.value
        return _NOT_CONST

    def _expr_to_reg(self, state, node, dest):
        mark = max(state.freereg, dest + 1)
        if isinstance(node, ast.NilLit):
            state.emit(Op.LOADNIL, dest)
        elif isinstance(node, ast.BoolLit):
            state.emit(Op.LOADBOOL, dest, 1 if node.value else 0)
        elif isinstance(node, (ast.NumberLit, ast.StringLit)):
            state.emit(Op.LOADK, dest, self._load_constant(state, node.value))
        elif isinstance(node, ast.Name):
            reg = state.lookup_local(node.name)
            if reg is not None:
                if reg != dest:
                    state.emit(Op.MOVE, dest, reg)
            elif node.name in self.function_consts:
                state.emit(Op.LOADK, dest, self._load_constant(
                    state,
                    FunctionConst(self.function_consts[node.name])))
            else:
                state.emit(Op.GETGLOBAL, dest, self.global_slot(node.name))
        elif isinstance(node, ast.Index):
            table = self._expr_any_reg(state, node.obj)
            key = self._expr_rk(state, node.key)
            state.emit(Op.GETTABLE, dest, table, key)
        elif isinstance(node, ast.BinOp):
            self._binop(state, node, dest)
        elif isinstance(node, ast.UnOp):
            operand = self._expr_any_reg(state, node.operand)
            op = {"-": Op.UNM, "not": Op.NOT, "#": Op.LEN,
                  "~": Op.BNOT}[node.op]
            state.emit(op, dest, operand)
        elif isinstance(node, ast.Call):
            self._call(state, node, dest)
        elif isinstance(node, ast.TableCtor):
            self._table_ctor(state, node, dest)
        elif isinstance(node, ast.FunctionExpr):
            proto_index = self._add_proto(None)
            proto = self._compile_function(node.name or "anonymous",
                                           node.params, node.body)
            self.protos[proto_index] = proto
            state.emit(Op.LOADK, dest,
                       state.constant(FunctionConst(proto_index)))
        else:
            raise CompileError("unsupported expression %r" % node)
        state.freereg = mark

    def _load_constant(self, state, value):
        index = state.constant(value)
        if index > 0xFF:
            raise CompileError("too many constants in %r"
                               % state.proto.name)
        return index

    def _binop(self, state, node, dest):
        if node.op in ("and", "or"):
            self._expr_to_reg(state, node.left, dest)
            jump_op = Op.JMPF if node.op == "and" else Op.JMPT
            skip = state.emit_jump(jump_op, dest)
            self._expr_to_reg(state, node.right, dest)
            state.patch_jump(skip)
            return
        comparison = self._COMPARISONS.get(node.op)
        if comparison is not None:
            op, negate = comparison
            left, right = node.left, node.right
            if node.op in (">", ">="):
                left, right = right, left
            b = self._expr_rk(state, left)
            c = self._expr_rk(state, right)
            state.emit(op, dest, b, c)
            if negate:
                state.emit(Op.NOT, dest, dest)
            return
        op = self._BINOPS.get(node.op)
        if op is None:
            raise CompileError("unsupported operator %r" % node.op)
        b = self._expr_rk(state, node.left)
        c = self._expr_rk(state, node.right)
        state.emit(op, dest, b, c)

    def _call(self, state, node, dest):
        base = state.reserve(1)
        self._expr_to_reg(state, node.func, base)
        for argument in node.args:
            reg = state.reserve()
            self._expr_to_reg(state, argument, reg)
        state.emit(Op.CALL, base, len(node.args))
        if base != dest:
            state.emit(Op.MOVE, dest, base)

    def _table_ctor(self, state, node, dest):
        state.emit(Op.NEWTABLE, dest, min(len(node.items), 0xFF))
        for position, item in enumerate(node.items, start=1):
            mark = state.freereg
            key = self._expr_rk(state, ast.NumberLit(position))
            value = self._expr_rk(state, item)
            state.emit(Op.SETTABLE, dest, key, value)
            state.freereg = mark
        for name, value_node in node.fields:
            mark = state.freereg
            key = self._expr_rk(state, ast.StringLit(name))
            value = self._expr_rk(state, value_node)
            state.emit(Op.SETTABLE, dest, key, value)
            state.freereg = mark


_NOT_CONST = object()


def compile_chunk(block):
    """Compile a parsed block into a :class:`CompiledChunk`."""
    return Compiler().compile(block)


def compile_source(source):
    """Parse and compile MiniLua ``source``."""
    from repro.engines.lua.lparser import parse
    return compile_chunk(parse(source))
