"""Tokenizer for the MiniLua subset."""

from dataclasses import dataclass

KEYWORDS = frozenset(
    ["and", "break", "do", "else", "elseif", "end", "false", "for",
     "function", "if", "in", "local", "nil", "not", "or", "repeat",
     "return", "then", "true", "until", "while"])

# Multi-character operators, longest first.
OPERATORS = ("...", "..", "==", "~=", "<=", ">=", "//", "::", "<<", ">>",
             "+", "-", "*", "/", "%", "^", "#", "&", "~", "|", "<", ">",
             "=", "(", ")", "{", "}", "[", "]", ";", ":", ",", ".")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "a": "\a", "b": "\b",
            "f": "\f", "v": "\v", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


class LuaSyntaxError(SyntaxError):
    """Lexical or syntactic error in MiniLua source."""


@dataclass(frozen=True)
class Token:
    """One token: ``kind`` is 'name', 'number', 'string', 'keyword',
    'op', or 'eof'; ``value`` carries the payload."""

    kind: str
    value: object
    line: int


def tokenize(source):
    """Tokenize ``source`` into a list ending with an EOF token."""
    tokens = []
    pos = 0
    line = 1
    length = len(source)

    def error(message):
        raise LuaSyntaxError("line %d: %s" % (line, message))

    while pos < length:
        char = source[pos]
        if char == "\n":
            line += 1
            pos += 1
            continue
        if char in " \t\r":
            pos += 1
            continue
        if source.startswith("--", pos):
            if source.startswith("--[[", pos):
                end = source.find("]]", pos + 4)
                if end < 0:
                    error("unterminated long comment")
                line += source.count("\n", pos, end)
                pos = end + 2
            else:
                end = source.find("\n", pos)
                pos = length if end < 0 else end
            continue
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            start = pos
            is_float = False
            if source.startswith("0x", pos) or source.startswith("0X", pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                tokens.append(Token("number", int(source[start:pos], 16),
                                    line))
                continue
            while pos < length and source[pos].isdigit():
                pos += 1
            if pos < length and source[pos] == ".":
                is_float = True
                pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            if pos < length and source[pos] in "eE":
                is_float = True
                pos += 1
                if pos < length and source[pos] in "+-":
                    pos += 1
                while pos < length and source[pos].isdigit():
                    pos += 1
            text = source[start:pos]
            tokens.append(Token("number",
                                float(text) if is_float else int(text), line))
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == "_"):
                pos += 1
            word = source[start:pos]
            kind = "keyword" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line))
            continue
        if char in "\"'":
            quote = char
            pos += 1
            parts = []
            while pos < length and source[pos] != quote:
                piece = source[pos]
                if piece == "\\":
                    pos += 1
                    if pos >= length:
                        error("unterminated string escape")
                    escape = source[pos]
                    piece = _ESCAPES.get(escape)
                    if piece is None:
                        error("unknown escape \\%s" % escape)
                elif piece == "\n":
                    error("unterminated string")
                parts.append(piece)
                pos += 1
            if pos >= length:
                error("unterminated string")
            pos += 1
            tokens.append(Token("string", "".join(parts), line))
            continue
        for operator in OPERATORS:
            if source.startswith(operator, pos):
                tokens.append(Token("op", operator, line))
                pos += len(operator)
                break
        else:
            error("unexpected character %r" % char)
    tokens.append(Token("eof", None, line))
    return tokens
