"""MiniLua runtime services: the stand-in for native C library code.

The assembly fast paths cover the hot cases; everything the real Lua VM
delegates to C — string interning and building, table hash parts and
growth, number/string conversion, builtins like ``print`` and
``math.sqrt``, and the mixed-type arithmetic slow path — is implemented
here and invoked through ``ecall``.  Every service charges a calibrated
native-instruction cost (see :data:`HOST_COSTS`), identical across
machine configurations, so library-bound benchmarks dilute the speedup
exactly as the paper's Amdahl's-law discussion predicts.
"""

import math
import struct

from repro.engines.lua import layout
from repro.engines.lua.handlers import common
from repro.sim.hostcall import HostInterface

MASK64 = (1 << 64) - 1


class LuaError(Exception):
    """A MiniLua runtime error (uncaught; aborts the VM)."""


def _wrap_int(value):
    """Lua 5.3 integer arithmetic wraps at 64 bits."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def _float_bits(value):
    try:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError):
        return 0xFFF0000000000000 if value < 0 else 0x7FF0000000000000


def _bits_float(bits):
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


class TableRef:
    """Opaque reference to a table object in simulated memory."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr

    def __eq__(self, other):
        return isinstance(other, TableRef) and other.addr == self.addr

    def __hash__(self):
        return hash(("table", self.addr))


class FuncRef:
    """Opaque reference to a function prototype in simulated memory."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr


def lua_number_string(value):
    """Format a number the way Lua 5.3 does."""
    if isinstance(value, int):
        return "%d" % value
    if value != value:
        return "nan"
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    text = "%.14g" % value
    if not any(mark in text for mark in ".eni"):
        text += ".0"
    return text


def lua_tostring(value):
    """``tostring`` semantics for every MiniLua value."""
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, (int, float)):
        return lua_number_string(value)
    if isinstance(value, str):
        return value
    if isinstance(value, TableRef):
        return "table: 0x%08x" % value.addr
    if isinstance(value, FuncRef):
        return "function: 0x%08x" % value.addr
    raise LuaError("cannot convert %r" % value)


# Calibrated native-instruction costs per host service / builtin.  These
# approximate what the corresponding C routines cost on the paper's
# in-order core; the absolute values only shift the Amdahl dilution, not
# who wins.
HOST_COSTS = {
    "arith_slow": 45,
    "table_get": 90,
    "table_set": 110,
    "newtable": 150,
    "concat": 260,
    "compare_slow": 70,
    "forprep": 35,
    "print": 420,
    "io_write": 260,
    "math_floor": 25,
    "math_sqrt": 30,
    "math_abs": 20,
    "math_max": 22,
    "math_min": 22,
    "string_sub": 90,
    "string_char": 60,
    "string_byte": 35,
    "string_rep": 120,
    "tostring": 80,
    "type": 25,
    "string_format": 180,
    "math_ceil": 25,
    "string_upper": 60,
    "string_lower": 60,
    "string_len": 25,
}

_BUILTIN_NAMES = (
    "print", "io_write", "math_floor", "math_sqrt", "math_abs",
    "math_max", "math_min", "string_sub", "string_char", "string_byte",
    "string_rep", "tostring", "type", "string_format", "math_ceil",
    "string_upper", "string_lower", "string_len",
)
BUILTIN_IDS = {name: index for index, name in enumerate(_BUILTIN_NAMES)}


class LuaRuntime:
    """Host-side state: heap, interned strings, table hash parts, output."""

    def __init__(self, memory):
        self.mem = memory
        self.heap = layout.HEAP_BASE
        self.strings = {}
        self.string_at = {}
        self.hash_parts = {}
        self.output = []
        self.native_protos = {}

    # -- allocation -----------------------------------------------------------
    def alloc(self, nbytes, align=16):
        self.heap = (self.heap + align - 1) & ~(align - 1)
        addr = self.heap
        self.heap += nbytes
        if self.heap > self.mem.size:
            raise LuaError("simulated heap exhausted")
        return addr

    def intern(self, text):
        """Intern ``text``; returns the string object's address."""
        addr = self.strings.get(text)
        if addr is None:
            data = text.encode("latin-1", errors="replace")
            addr = self.alloc(layout.STRING_BYTES + len(data))
            self.mem.store_u64(addr + layout.STRING_LENGTH, len(data))
            self.mem.write_bytes(addr + layout.STRING_BYTES, data)
            self.strings[text] = addr
            self.string_at[addr] = text
        return addr

    def make_table(self, capacity=4):
        """Allocate a table object with an array part of ``capacity``."""
        capacity = max(capacity, 4)
        addr = self.alloc(layout.TABLE_SIZE)
        array = self.alloc(capacity * layout.TVALUE_SIZE)
        self.mem.store_u64(addr + layout.TABLE_ARRAY_PTR, array)
        self.mem.store_u64(addr + layout.TABLE_CAPACITY, capacity)
        self.mem.store_u64(addr + layout.TABLE_LENGTH, 0)
        self.hash_parts[addr] = {}
        return addr

    def make_native_proto(self, builtin_name):
        """Prototype descriptor for a native builtin (kind = 1)."""
        addr = self.native_protos.get(builtin_name)
        if addr is None:
            addr = self.alloc(layout.PROTO_SIZE)
            self.mem.store_u64(addr + layout.PROTO_KIND, 1)
            self.mem.store_u64(addr + layout.PROTO_BUILTIN_ID,
                               BUILTIN_IDS[builtin_name])
            self.native_protos[builtin_name] = addr
        return addr

    # -- TValue conversion -------------------------------------------------------
    def read_tvalue(self, addr):
        return self.mem.load_u8(addr + layout.TAG_OFFSET), \
            self.mem.load_u64(addr + layout.VALUE_OFFSET)

    def write_tvalue(self, addr, tag, bits):
        self.mem.store_u64(addr + layout.VALUE_OFFSET, bits & MASK64)
        self.mem.store_u64(addr + layout.TAG_OFFSET, tag & 0xFF)

    def to_python(self, tag, bits):
        if tag == layout.TNIL:
            return None
        if tag == layout.TBOOL:
            return bool(bits)
        if tag == layout.TNUMINT:
            return bits - (1 << 64) if bits >= (1 << 63) else bits
        if tag == layout.TNUMFLT:
            return _bits_float(bits)
        if tag == layout.TSTR:
            return self.string_at[bits]
        if tag == layout.TTAB:
            return TableRef(bits)
        if tag == layout.TFUN:
            return FuncRef(bits)
        raise LuaError("unknown tag %d" % tag)

    def from_python(self, value):
        if value is None:
            return layout.TNIL, 0
        if value is True or value is False:
            return layout.TBOOL, int(value)
        if isinstance(value, int):
            return layout.TNUMINT, value & MASK64
        if isinstance(value, float):
            return layout.TNUMFLT, _float_bits(value)
        if isinstance(value, str):
            return layout.TSTR, self.intern(value)
        if isinstance(value, TableRef):
            return layout.TTAB, value.addr
        if isinstance(value, FuncRef):
            return layout.TFUN, value.addr
        raise LuaError("cannot box %r" % value)

    def read_value(self, addr):
        return self.to_python(*self.read_tvalue(addr))

    def write_value(self, addr, value):
        self.write_tvalue(addr, *self.from_python(value))

    # -- coercions ---------------------------------------------------------------
    @staticmethod
    def as_number(value):
        """Lua's implicit string-to-number coercion; None if impossible."""
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return value
        if isinstance(value, str):
            text = value.strip()
            try:
                return int(text, 0)
            except ValueError:
                try:
                    return float(text)
                except ValueError:
                    return None
        return None

    @staticmethod
    def normalize_key(key):
        """Float keys with integral values index like integers (Lua 5.3)."""
        if isinstance(key, float) and key.is_integer():
            return int(key)
        return key

    # -- table operations (slow paths) -----------------------------------------------
    def _array_slot(self, table_addr, index):
        array = self.mem.load_u64(table_addr + layout.TABLE_ARRAY_PTR)
        return array + (index - 1) * layout.TVALUE_SIZE

    def table_get(self, table, key):
        if not isinstance(table, TableRef):
            raise LuaError("attempt to index a %s value"
                           % lua_type_name(table))
        key = self.normalize_key(key)
        if key is None:
            raise LuaError("table index is nil")
        length = self.mem.load_u64(table.addr + layout.TABLE_LENGTH)
        if isinstance(key, int) and not isinstance(key, bool) \
                and 1 <= key <= length:
            return self.read_value(self._array_slot(table.addr, key))
        entry = self.hash_parts[table.addr].get(key)
        if entry is None:
            return None
        return self.to_python(*entry)

    def table_set(self, table, key, tag_bits):
        if not isinstance(table, TableRef):
            raise LuaError("attempt to index a %s value"
                           % lua_type_name(table))
        key = self.normalize_key(key)
        if key is None:
            raise LuaError("table index is nil")
        addr = table.addr
        length = self.mem.load_u64(addr + layout.TABLE_LENGTH)
        if isinstance(key, int) and not isinstance(key, bool):
            if 1 <= key <= length:
                slot = self._array_slot(addr, key)
                self.write_tvalue(slot, *tag_bits)
                return
            if key == length + 1:
                self._append(addr, length, tag_bits)
                return
        self.hash_parts[addr][key] = tag_bits

    def _append(self, addr, length, tag_bits):
        capacity = self.mem.load_u64(addr + layout.TABLE_CAPACITY)
        if length + 1 > capacity:
            self._grow_array(addr, capacity, length)
        slot = self._array_slot(addr, length + 1)
        self.write_tvalue(slot, *tag_bits)
        self.mem.store_u64(addr + layout.TABLE_LENGTH, length + 1)
        # Migrate any now-contiguous hash entries into the array part.
        hashes = self.hash_parts[addr]
        next_key = length + 2
        while next_key in hashes:
            entry = hashes.pop(next_key)
            current = self.mem.load_u64(addr + layout.TABLE_LENGTH)
            capacity = self.mem.load_u64(addr + layout.TABLE_CAPACITY)
            if current + 1 > capacity:
                self._grow_array(addr, capacity, current)
            self.write_tvalue(self._array_slot(addr, next_key), *entry)
            self.mem.store_u64(addr + layout.TABLE_LENGTH, next_key)
            next_key += 1

    def _grow_array(self, addr, capacity, length):
        new_capacity = max(4, capacity * 2)
        new_array = self.alloc(new_capacity * layout.TVALUE_SIZE)
        old_array = self.mem.load_u64(addr + layout.TABLE_ARRAY_PTR)
        if length:
            payload = self.mem.read_bytes(old_array,
                                          length * layout.TVALUE_SIZE)
            self.mem.write_bytes(new_array, payload)
        self.mem.store_u64(addr + layout.TABLE_ARRAY_PTR, new_array)
        self.mem.store_u64(addr + layout.TABLE_CAPACITY, new_capacity)


def lua_type_name(value):
    """Lua ``type()`` name for a Python-side value."""
    if value is None:
        return "nil"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, TableRef):
        return "table"
    if isinstance(value, FuncRef):
        return "function"
    return "unknown"


# -- host service handlers ------------------------------------------------------

_ARITH_NAMES = {value: key for key, value in common.ARITH_OPS.items()}


def _arith(op_name, x, y):
    both_int = isinstance(x, int) and isinstance(y, int)
    if op_name == "ADD":
        return _wrap_int(x + y) if both_int else float(x) + float(y)
    if op_name == "SUB":
        return _wrap_int(x - y) if both_int else float(x) - float(y)
    if op_name == "MUL":
        return _wrap_int(x * y) if both_int else float(x) * float(y)
    if op_name == "DIV":
        fx, fy = float(x), float(y)
        if fy == 0.0:
            if fx == 0.0 or fx != fx:
                return float("nan")
            return math.inf * math.copysign(1.0, fx) \
                * math.copysign(1.0, fy)
        return fx / fy
    if op_name == "MOD":
        if both_int:
            if y == 0:
                raise LuaError("attempt to perform 'n%%0'")
            return _wrap_int(x % y)
        fx, fy = float(x), float(y)
        if fy == 0.0:
            return float("nan")
        return fx % fy  # Python float % is Lua's floor-modulo
    if op_name == "IDIV":
        if both_int:
            if y == 0:
                raise LuaError("attempt to perform 'n//0'")
            return _wrap_int(x // y)
        fx, fy = float(x), float(y)
        if fy == 0.0:
            if fx == 0.0 or fx != fx:
                return float("nan")
            return math.inf * math.copysign(1.0, fx) \
                * math.copysign(1.0, fy)
        return float(math.floor(fx / fy))
    if op_name == "POW":
        return float(x) ** float(y)
    if op_name == "UNM":
        return _wrap_int(-x) if isinstance(x, int) else -x
    if op_name in ("BAND", "BOR", "BXOR", "SHL", "SHR", "BNOT"):
        xi = _to_integer(x)
        if op_name == "BNOT":
            return _wrap_int(~xi)
        yi = _to_integer(y)
        if op_name == "BAND":
            return _wrap_int(xi & yi)
        if op_name == "BOR":
            return _wrap_int(xi | yi)
        if op_name == "BXOR":
            return _wrap_int(xi ^ yi)
        # Lua shifts are logical; negative amounts shift the other way
        # and anything >= 64 bits produces zero.
        if op_name == "SHR":
            yi = -yi
        if yi <= -64 or yi >= 64:
            return 0
        if yi >= 0:
            return _wrap_int((xi & MASK64) << yi)
        return _wrap_int((xi & MASK64) >> -yi)
    raise LuaError("unknown arithmetic op %r" % op_name)


def _to_integer(value):
    """Lua's ToInteger for bitwise operands."""
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise LuaError("number has no integer representation")


class LuaHost:
    """Binds a :class:`LuaRuntime` to the simulator's host-call interface."""

    def __init__(self, runtime):
        self.runtime = runtime
        self.interface = HostInterface()
        reg = self.interface.register
        reg(common.SVC_ARITH, "arith_slow", self._svc_arith,
            HOST_COSTS["arith_slow"])
        reg(common.SVC_TABLE_GET, "table_get", self._svc_table_get,
            HOST_COSTS["table_get"])
        reg(common.SVC_TABLE_SET, "table_set", self._svc_table_set,
            HOST_COSTS["table_set"])
        reg(common.SVC_NEWTABLE, "newtable", self._svc_newtable,
            HOST_COSTS["newtable"])
        reg(common.SVC_CONCAT, "concat", self._svc_concat,
            HOST_COSTS["concat"])
        reg(common.SVC_COMPARE, "compare_slow", self._svc_compare,
            HOST_COSTS["compare_slow"])
        reg(common.SVC_BUILTIN, "builtin", self._svc_builtin,
            self._builtin_cost)
        reg(common.SVC_ERROR, "error", self._svc_error, 1)
        reg(common.SVC_FORPREP, "forprep", self._svc_forprep,
            HOST_COSTS["forprep"])

    # -- services ----------------------------------------------------------------
    def _svc_arith(self, cpu, ra, rb, rc, op_id, *_):
        runtime = self.runtime
        op_name = _ARITH_NAMES[op_id]
        x = runtime.as_number(runtime.read_value(rb))
        y = x if op_name in ("UNM", "BNOT") \
            else runtime.as_number(runtime.read_value(rc))
        if x is None or y is None:
            raise LuaError("attempt to perform arithmetic (%s) on "
                           "non-numbers" % op_name)
        runtime.write_value(ra, _arith(op_name, x, y))

    def _svc_table_get(self, cpu, table_tv, key_tv, dest, *_):
        runtime = self.runtime
        table = runtime.read_value(table_tv)
        key = runtime.read_value(key_tv)
        runtime.write_value(dest, runtime.table_get(table, key))

    def _svc_table_set(self, cpu, table_tv, key_tv, value_tv, *_):
        runtime = self.runtime
        table = runtime.read_value(table_tv)
        key = runtime.read_value(key_tv)
        runtime.table_set(table, key, runtime.read_tvalue(value_tv))

    def _svc_newtable(self, cpu, hint, dest, *_):
        addr = self.runtime.make_table(capacity=max(hint, 4))
        self.runtime.write_tvalue(dest, layout.TTAB, addr)

    def _svc_concat(self, cpu, ra, rb, rc, *_):
        runtime = self.runtime
        left = runtime.read_value(rb)
        right = runtime.read_value(rc)
        for operand in (left, right):
            if not isinstance(operand, (str, int, float)) \
                    or isinstance(operand, bool):
                raise LuaError("attempt to concatenate a %s value"
                               % lua_type_name(operand))
        runtime.write_value(ra, lua_tostring(left) + lua_tostring(right))

    def _svc_compare(self, cpu, ra, rb, rc, op_id, *_):
        runtime = self.runtime
        left = runtime.read_value(rb)
        right = runtime.read_value(rc)
        if op_id == common.COMPARE_OPS["EQ"]:
            if isinstance(left, bool) or isinstance(right, bool):
                result = left is right
            else:
                result = left == right
        else:
            comparable = (isinstance(left, str) and isinstance(right, str)) \
                or (isinstance(left, (int, float))
                    and isinstance(right, (int, float))
                    and not isinstance(left, bool)
                    and not isinstance(right, bool))
            if not comparable:
                raise LuaError("attempt to compare %s with %s"
                               % (lua_type_name(left), lua_type_name(right)))
            result = left < right if op_id == common.COMPARE_OPS["LT"] \
                else left <= right
        runtime.write_value(ra, bool(result))

    def _svc_forprep(self, cpu, base, *_):
        runtime = self.runtime
        values = []
        for slot in range(3):
            value = runtime.as_number(
                runtime.read_value(base + slot * layout.TVALUE_SIZE))
            if value is None:
                raise LuaError("'for' initial value must be a number")
            values.append(float(value))
        values[0] -= values[2]
        for slot, value in enumerate(values):
            runtime.write_value(base + slot * layout.TVALUE_SIZE, value)

    def _svc_error(self, cpu, code, *_):
        raise LuaError("VM fault: illegal opcode or type error "
                       "(bytecode word 0x%08x at pc 0x%x)" % (code, cpu.pc))

    # -- builtins ------------------------------------------------------------------
    def _builtin_cost(self, args):
        builtin_id = args[3]
        return HOST_COSTS[_BUILTIN_NAMES[builtin_id]]

    def _svc_builtin(self, cpu, args_ptr, nargs, dest, builtin_id, *_):
        runtime = self.runtime
        values = [runtime.read_value(args_ptr + index * layout.TVALUE_SIZE)
                  for index in range(nargs)]
        name = _BUILTIN_NAMES[builtin_id]
        result = getattr(self, "_builtin_" + name)(values)
        runtime.write_value(dest, result)

    def _builtin_print(self, values):
        self.runtime.output.append(
            "\t".join(lua_tostring(value) for value in values) + "\n")

    def _builtin_io_write(self, values):
        self.runtime.output.append(
            "".join(lua_tostring(value) for value in values))

    @staticmethod
    def _number_arg(values, index, name):
        value = LuaRuntime.as_number(values[index]) \
            if index < len(values) else None
        if value is None:
            raise LuaError("bad argument #%d to '%s'" % (index + 1, name))
        return value

    def _builtin_math_floor(self, values):
        return int(math.floor(self._number_arg(values, 0, "floor")))

    def _builtin_math_sqrt(self, values):
        return math.sqrt(self._number_arg(values, 0, "sqrt"))

    def _builtin_math_abs(self, values):
        value = self._number_arg(values, 0, "abs")
        return abs(value)

    def _builtin_math_max(self, values):
        return max(self._number_arg(values, i, "max")
                   for i in range(len(values)))

    def _builtin_math_min(self, values):
        return min(self._number_arg(values, i, "min")
                   for i in range(len(values)))

    def _builtin_string_sub(self, values):
        text = values[0]
        if not isinstance(text, str):
            raise LuaError("bad argument #1 to 'sub'")
        start = int(self._number_arg(values, 1, "sub"))
        stop = int(self._number_arg(values, 2, "sub")) \
            if len(values) > 2 else -1
        length = len(text)
        if start < 0:
            start = max(length + start + 1, 1)
        elif start == 0:
            start = 1
        if stop < 0:
            stop = length + stop + 1
        stop = min(stop, length)
        if start > stop:
            return ""
        return text[start - 1:stop]

    def _builtin_string_char(self, values):
        return "".join(chr(int(v)) for v in values)

    def _builtin_string_byte(self, values):
        text = values[0]
        index = int(values[1]) if len(values) > 1 else 1
        if not isinstance(text, str) or not 1 <= index <= len(text):
            raise LuaError("bad argument to 'byte'")
        return ord(text[index - 1])

    def _builtin_string_rep(self, values):
        return values[0] * int(values[1])

    def _builtin_string_format(self, values):
        """``string.format`` for the common conversions (d/i/u/s/q/f/g/
        e/x/X/o/c and %%), with flags, width and precision."""
        if not values or not isinstance(values[0], str):
            raise LuaError("bad argument #1 to 'format'")
        spec = values[0]
        args = values[1:]
        out = []
        arg_index = 0
        position = 0
        length = len(spec)
        while position < length:
            char = spec[position]
            if char != "%":
                out.append(char)
                position += 1
                continue
            position += 1
            if position < length and spec[position] == "%":
                out.append("%")
                position += 1
                continue
            start = position
            while position < length and spec[position] in "-+ #0":
                position += 1
            while position < length and spec[position].isdigit():
                position += 1
            if position < length and spec[position] == ".":
                position += 1
                while position < length and spec[position].isdigit():
                    position += 1
            if position >= length:
                raise LuaError("invalid format string to 'format'")
            conversion = spec[position]
            position += 1
            directive = "%" + spec[start:position - 1]
            if arg_index >= len(args):
                raise LuaError("bad argument #%d to 'format' (no value)"
                               % (arg_index + 2))
            value = args[arg_index]
            arg_index += 1
            if conversion in "diu":
                number = LuaRuntime.as_number(value)
                if number is None:
                    raise LuaError("bad argument to 'format'")
                out.append((directive + "d") % int(number))
            elif conversion in "fFgGeE":
                number = LuaRuntime.as_number(value)
                if number is None:
                    raise LuaError("bad argument to 'format'")
                out.append((directive + conversion) % float(number))
            elif conversion in "xXo":
                out.append((directive + conversion) % int(value))
            elif conversion == "c":
                out.append(chr(int(value)))
            elif conversion == "s":
                out.append((directive + "s") % lua_tostring(value))
            elif conversion == "q":
                out.append('"%s"' % lua_tostring(value)
                           .replace("\\", "\\\\").replace('"', '\\"')
                           .replace("\n", "\\n"))
            else:
                raise LuaError("invalid conversion '%%%s' to 'format'"
                               % conversion)
        return "".join(out)

    def _builtin_math_ceil(self, values):
        import math as _math
        return int(_math.ceil(self._number_arg(values, 0, "ceil")))

    def _builtin_string_upper(self, values):
        if not values or not isinstance(values[0], str):
            raise LuaError("bad argument #1 to 'upper'")
        return values[0].upper()

    def _builtin_string_lower(self, values):
        if not values or not isinstance(values[0], str):
            raise LuaError("bad argument #1 to 'lower'")
        return values[0].lower()

    def _builtin_string_len(self, values):
        if not values or not isinstance(values[0], str):
            raise LuaError("bad argument #1 to 'len'")
        return len(values[0])

    def _builtin_tostring(self, values):
        return lua_tostring(values[0] if values else None)

    def _builtin_type(self, values):
        return lua_type_name(values[0] if values else None)


def install_builtin_globals(runtime, globals_addr, global_names):
    """Populate the builtin globals (print, io, math, string, ...)."""
    def native(name):
        return FuncRef(runtime.make_native_proto(name))

    def table_of(entries):
        addr = runtime.make_table(capacity=4)
        ref = TableRef(addr)
        for key, value in entries.items():
            runtime.table_set(ref, key, runtime.from_python(value))
        return ref

    builtins = {
        "print": native("print"),
        "tostring": native("tostring"),
        "type": native("type"),
        "io": table_of({"write": native("io_write")}),
        "math": table_of({
            "floor": native("math_floor"), "ceil": native("math_ceil"),
            "sqrt": native("math_sqrt"),
            "abs": native("math_abs"), "max": native("math_max"),
            "min": native("math_min"), "huge": math.inf, "pi": math.pi,
            "maxinteger": (1 << 63) - 1, "mininteger": -(1 << 63),
        }),
        "string": table_of({
            "sub": native("string_sub"), "char": native("string_char"),
            "byte": native("string_byte"), "rep": native("string_rep"),
            "format": native("string_format"),
            "upper": native("string_upper"),
            "lower": native("string_lower"), "len": native("string_len"),
        }),
    }
    for slot, name in enumerate(global_names):
        value = builtins.get(name)
        if value is not None:
            runtime.write_value(globals_addr + slot * layout.TVALUE_SIZE,
                                value)
