"""Build the simulated-memory image of a compiled MiniLua chunk.

Lays out the handler jump table, one descriptor + bytecode array +
constants array per prototype, and the globals TValue array, then installs
the builtin globals.
"""

from dataclasses import dataclass, field

from repro.engines.lua import layout
from repro.engines.lua.compiler import FunctionConst
from repro.engines.lua.opcodes import NUM_OPCODES
from repro.engines.lua.runtime import install_builtin_globals


@dataclass
class LuaImage:
    """Addresses the interpreter prologue and runner need."""

    jump_table_addr: int
    globals_addr: int
    main_code_addr: int
    main_consts_addr: int
    proto_addrs: list = field(default_factory=list)
    end: int = 0


class _Cursor:
    def __init__(self, base):
        self.position = base

    def take(self, nbytes, align=16):
        self.position = (self.position + align - 1) & ~(align - 1)
        addr = self.position
        self.position += nbytes
        return addr


def build_image(chunk, runtime, slots=NUM_OPCODES):
    """Write ``chunk`` into ``runtime``'s memory; returns a LuaImage.

    ``slots`` sizes the handler jump table.  The stock configurations
    keep the 47-entry Lua table (so their image layout — and the
    committed perf-gate baseline — is untouched); the elided family
    asks for 64 to cover its quickened opcodes.
    """
    mem = runtime.mem
    cursor = _Cursor(layout.IMAGE_BASE)

    jump_table = cursor.take(slots * 8)
    proto_addrs = [cursor.take(layout.PROTO_SIZE) for _ in chunk.protos]

    code_addrs = []
    const_addrs = []
    for proto in chunk.protos:
        code_addr = cursor.take(len(proto.code) * 4, align=4)
        for offset, word in enumerate(proto.code):
            mem.store(code_addr + offset * 4, 4, word)
        code_addrs.append(code_addr)

        consts_addr = cursor.take(len(proto.constants) * layout.TVALUE_SIZE)
        for index, constant in enumerate(proto.constants):
            slot = consts_addr + index * layout.TVALUE_SIZE
            if isinstance(constant, FunctionConst):
                mem.store_u64(slot, proto_addrs[constant.proto_index])
                mem.store_u64(slot + layout.TAG_OFFSET, layout.TFUN)
            else:
                runtime.write_value(slot, constant)
        const_addrs.append(consts_addr)

    for index, proto in enumerate(chunk.protos):
        descriptor = proto_addrs[index]
        mem.store_u64(descriptor + layout.PROTO_CODE, code_addrs[index])
        mem.store_u64(descriptor + layout.PROTO_CONSTS, const_addrs[index])
        mem.store_u64(descriptor + layout.PROTO_NREGS, proto.nregs)
        mem.store_u64(descriptor + layout.PROTO_KIND, 0)
        mem.store_u64(descriptor + layout.PROTO_NPARAMS, proto.num_params)

    globals_addr = cursor.take(len(chunk.globals) * layout.TVALUE_SIZE)
    install_builtin_globals(runtime, globals_addr, chunk.globals)

    if cursor.position > layout.REG_STACK_BASE:
        raise ValueError("program image overflows its region "
                         "(%d bytes)" % (cursor.position - layout.IMAGE_BASE))
    assert jump_table == layout.JUMP_TABLE_ADDR
    # Boot block: launch parameters for the cached interpreter text.
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_MAIN_CODE, code_addrs[0])
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_MAIN_CONSTS,
                  const_addrs[0])
    mem.store_u64(layout.BOOT_BLOCK + layout.BOOT_GLOBALS, globals_addr)
    return LuaImage(
        jump_table_addr=jump_table,
        globals_addr=globals_addr,
        main_code_addr=code_addrs[0],
        main_consts_addr=const_addrs[0],
        proto_addrs=proto_addrs,
        end=cursor.position,
    )


def fill_jump_table(image, program, memory, extra_ops=None):
    """Point every opcode's jump-table slot at its handler (or the error
    stub for unimplemented opcodes).  ``extra_ops`` maps quickened
    opcode numbers (>= NUM_OPCODES) to their handler base names."""
    from repro.engines.lua.opcodes import Op
    fallback = program.labels["h_ILLEGAL"]
    names = {opcode: Op(opcode).name for opcode in range(NUM_OPCODES)}
    if extra_ops:
        names.update(extra_ops)
    for opcode, name in names.items():
        target = program.labels.get("h_%s" % name, fallback)
        memory.store_u64(image.jump_table_addr + opcode * 8, target)
