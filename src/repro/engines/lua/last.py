"""AST node types for the MiniLua subset.

Plain dataclasses; the compiler pattern-matches on the node class.
"""

from dataclasses import dataclass, field
from typing import Optional


class Node:
    """Base class for all AST nodes."""


# -- expressions -------------------------------------------------------------

@dataclass
class NilLit(Node):
    pass


@dataclass
class BoolLit(Node):
    value: bool


@dataclass
class NumberLit(Node):
    value: object  # int or float


@dataclass
class StringLit(Node):
    value: str


@dataclass
class Name(Node):
    name: str


@dataclass
class Index(Node):
    """``obj[key]`` (and ``obj.field`` sugar)."""

    obj: Node
    key: Node


@dataclass
class BinOp(Node):
    op: str
    left: Node
    right: Node


@dataclass
class UnOp(Node):
    op: str  # '-', 'not', '#'
    operand: Node


@dataclass
class Call(Node):
    func: Node
    args: list


@dataclass
class TableCtor(Node):
    """``{a, b, key = v}``: positional items plus named fields."""

    items: list
    fields: list  # (name, expr) pairs


@dataclass
class FunctionExpr(Node):
    params: list
    body: "Block"
    name: Optional[str] = None


# -- statements ---------------------------------------------------------------

@dataclass
class Block(Node):
    statements: list = field(default_factory=list)


@dataclass
class LocalAssign(Node):
    name: str
    value: Optional[Node]


@dataclass
class Assign(Node):
    target: Node  # Name or Index
    value: Node


@dataclass
class MultiLocal(Node):
    """``local a, b, c = x, y`` (values first, then bind; missing values
    are nil, extra values are evaluated and dropped)."""

    names: list
    values: list


@dataclass
class MultiAssign(Node):
    """``a, b = b, a``: all values evaluate before any store."""

    targets: list  # Name or Index nodes
    values: list


@dataclass
class CallStat(Node):
    call: Call


@dataclass
class If(Node):
    """``clauses`` is a list of (condition, Block); ``orelse`` the final
    else Block or None."""

    clauses: list
    orelse: Optional[Block]


@dataclass
class While(Node):
    condition: Node
    body: Block


@dataclass
class NumericFor(Node):
    var: str
    start: Node
    stop: Node
    step: Optional[Node]
    body: Block


@dataclass
class GenericFor(Node):
    """``for k, v in ipairs(t) do ... end`` (ipairs only; desugared by
    the compiler into an index-and-test loop)."""

    names: list
    iterator: Node  # a Call expression
    body: Block


@dataclass
class Repeat(Node):
    body: Block
    condition: Node


@dataclass
class Return(Node):
    value: Optional[Node]


@dataclass
class Break(Node):
    pass


@dataclass
class FunctionDecl(Node):
    """``function name(...) ... end`` (global) or
    ``local function name(...) ... end``."""

    name: str
    func: FunctionExpr
    is_local: bool
