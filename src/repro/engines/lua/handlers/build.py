"""Assemble the full MiniLua interpreter text for one configuration."""

from repro.engines import configs
from repro.engines.lua import layout
from repro.engines.lua.handlers import arith, common, control, table
from repro.sim.trt import pack_rule


def _startup(scheme):
    """Interpreter prologue: load the VM registers (program-specific
    addresses come from the boot block) and, for the typed-family
    machines, program the tag extractor and Type Rule Table exactly once
    at launch (Section 3.1) — with the scheme's own extractor geometry
    and correspondingly transformed rule tags."""
    lines = ["startup:"]
    lines.append("    li a0, %d" % layout.BOOT_BLOCK)
    lines.append("    ld s0, %d(a0)" % layout.BOOT_MAIN_CODE)
    lines.append("    ld s2, %d(a0)" % layout.BOOT_MAIN_CONSTS)
    lines.append("    ld s4, %d(a0)" % layout.BOOT_GLOBALS)
    lines.append("    li s1, %d" % layout.REG_STACK_BASE)
    lines.append("    li s3, %d" % layout.JUMP_TABLE_ADDR)
    lines.append("    li s5, %d" % layout.CALL_STACK_BASE)
    lines.append("    li s6, %d" % layout.CALL_STACK_BASE)
    if scheme.family == configs.FAMILY_TYPED:
        spr = scheme.spr("lua", layout.SPR_SETTINGS)
        lines.append("    li a0, %d" % spr.offset)
        lines.append("    setoffset a0")
        lines.append("    li a0, %d" % spr.shift)
        lines.append("    setshift a0")
        lines.append("    li a0, %d" % spr.mask)
        lines.append("    setmask a0")
        rules = configs.transformed_rules(
            scheme, "lua", layout.SPR_SETTINGS, layout.TYPE_RULES)
        for rule in rules:
            lines.append("    li a0, %d" % pack_rule(rule))
            lines.append("    set_trt a0")
    elif scheme.family == configs.FAMILY_CHECKED:
        lines.append("    li a0, %d" % layout.TNUMINT)
        lines.append("    settype a0")
    lines.append("    j dispatch")
    return "\n".join(lines) + "\n"


def build_interpreter(config):
    """Full interpreter assembly text for ``config``.

    The text is program-independent: launch addresses are read from the
    boot block the image builder fills, so callers may cache the
    assembled program per configuration.
    """
    scheme = configs.get_scheme(config)
    parts = [
        common.equ_block(),
        _startup(scheme),
        common.dispatch_loop(),
        arith.build(scheme),
        table.build(scheme),
        control.build(),
        common.slow_stubs(),
        common.error_stub(),
    ]
    return "\n".join(parts)
