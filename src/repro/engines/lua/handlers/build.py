"""Assemble the full MiniLua interpreter text for one configuration."""

from repro.engines import configs
from repro.engines.lua import layout
from repro.engines.lua.handlers import arith, common, control, table
from repro.sim.trt import pack_rule


def _software_startup(scheme):
    return []


def _typed_startup(scheme):
    """Program the tag extractor and Type Rule Table exactly once at
    launch (Section 3.1) — with the scheme's own extractor geometry and
    correspondingly transformed rule tags."""
    spr = scheme.spr("lua", layout.SPR_SETTINGS)
    lines = []
    lines.append("    li a0, %d" % spr.offset)
    lines.append("    setoffset a0")
    lines.append("    li a0, %d" % spr.shift)
    lines.append("    setshift a0")
    lines.append("    li a0, %d" % spr.mask)
    lines.append("    setmask a0")
    rules = configs.transformed_rules(
        scheme, "lua", layout.SPR_SETTINGS, layout.TYPE_RULES)
    for rule in rules:
        lines.append("    li a0, %d" % pack_rule(rule))
        lines.append("    set_trt a0")
    return lines


def _chklb_startup(scheme):
    return ["    li a0, %d" % layout.TNUMINT,
            "    settype a0"]


#: Startup tail per HandlerPolicy.startup_mode.
_STARTUP_TAILS = {
    configs.FAMILY_SOFTWARE: _software_startup,
    configs.FAMILY_TYPED: _typed_startup,
    configs.FAMILY_CHECKED: _chklb_startup,
}


def _startup(scheme):
    """Interpreter prologue: load the VM registers (program-specific
    addresses come from the boot block), then the scheme family's
    machine programming (tag extractor / TRT / expected-type register)
    selected by its :class:`~repro.engines.configs.HandlerPolicy`."""
    policy = configs.family_policy(scheme.family)
    try:
        tail = _STARTUP_TAILS[policy.startup_mode]
    except KeyError:
        raise ValueError("no Lua startup for mode %r (family %r)"
                         % (policy.startup_mode, scheme.family)) from None
    lines = ["startup:"]
    lines.append("    li a0, %d" % layout.BOOT_BLOCK)
    lines.append("    ld s0, %d(a0)" % layout.BOOT_MAIN_CODE)
    lines.append("    ld s2, %d(a0)" % layout.BOOT_MAIN_CONSTS)
    lines.append("    ld s4, %d(a0)" % layout.BOOT_GLOBALS)
    lines.append("    li s1, %d" % layout.REG_STACK_BASE)
    lines.append("    li s3, %d" % layout.JUMP_TABLE_ADDR)
    lines.append("    li s5, %d" % layout.CALL_STACK_BASE)
    lines.append("    li s6, %d" % layout.CALL_STACK_BASE)
    lines.extend(tail(scheme))
    lines.append("    j dispatch")
    return "\n".join(lines) + "\n"


def build_interpreter(config):
    """Full interpreter assembly text for ``config``.

    The text is program-independent: launch addresses are read from the
    boot block the image builder fills, so callers may cache the
    assembled program per configuration.  Families whose policy carries
    ``extra_handlers`` (quickened guard-free variants) get that text
    appended before the shared slow stubs.
    """
    scheme = configs.get_scheme(config)
    policy = configs.family_policy(scheme.family)
    parts = [
        common.equ_block(),
        _startup(scheme),
        common.dispatch_loop(),
        arith.build(scheme),
        table.build(scheme),
        control.build(),
    ]
    if policy.extra_handlers is not None:
        parts.append(policy.extra_handlers("lua", scheme))
    parts += [
        common.slow_stubs(),
        common.error_stub(),
    ]
    return "\n".join(parts)
