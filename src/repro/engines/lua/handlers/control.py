"""Data-movement and control-flow handlers (identical in all configs).

These bytecodes are not retargeted by the paper (Table 3 lists only
ADD/SUB/MUL/GETTABLE/SETTABLE), so baseline, typed and chklb machines all
run the same code here.
"""

from repro.engines.lua import layout
from repro.engines.lua.handlers import common


def move_handler():
    return ("h_MOVE:\n" + common.decode_a("t4")
            + common.decode_plain("b", "t5")
            + common.copy_tvalue("t5", "t4")
            + "    j dispatch\n")


def loadk_handler():
    """LOADK A, B: copy constant B (plain 8-bit index) into R(A)."""
    return ("h_LOADK:\n" + common.decode_a("t4") + """
    srli t5, t0, 16
    andi t5, t5, 0xFF
    slli t5, t5, 4
    add  t5, t5, s2
""" + common.copy_tvalue("t5", "t4") + "    j dispatch\n")


def loadnil_handler():
    return "h_LOADNIL:\n" + common.decode_a("t4") + """
    sd   zero, 0(t4)
    sd   zero, 8(t4)
    j    dispatch
"""


def loadbool_handler():
    return "h_LOADBOOL:\n" + common.decode_a("t4") + """
    srli t1, t0, 16
    andi t1, t1, 1
    sd   t1, 0(t4)
    li   t2, TBOOL
    sb   t2, 8(t4)
    j    dispatch
"""


def getglobal_handler():
    return ("h_GETGLOBAL:\n" + common.decode_a("t4") + """
    srli t5, t0, 16
    andi t5, t5, 0xFF
    slli t5, t5, 4
    add  t5, t5, s4
""" + common.copy_tvalue("t5", "t4") + "    j dispatch\n")


def setglobal_handler():
    """SETGLOBAL A, B: store R(A) into global slot B."""
    return ("h_SETGLOBAL:\n" + common.decode_a("t4") + """
    srli t5, t0, 16
    andi t5, t5, 0xFF
    slli t5, t5, 4
    add  t5, t5, s4
""" + common.copy_tvalue("t4", "t5") + "    j dispatch\n")


def jmp_handler():
    return "h_JMP:\n" + common.jump_by_offset() + "    j dispatch\n"


def _conditional_jump(name, take_when_false):
    """JMPF/JMPT A, offset."""
    # The branch skips the jump: JMPF skips when truthy (is_false == 0),
    # JMPT skips when false (is_false == 1).
    branch = "beqz" if take_when_false else "bnez"
    return ("h_%s:\n" % name) + common.decode_a("t4") + """
    lbu  t1, 8(t4)
    ld   t2, 0(t4)
""" + common.truthiness("t1", "t2", "t3", "a4") + """
    {branch} t3, {name}_nojump
""".format(branch=branch, name=name) + common.jump_by_offset() + """
{name}_nojump:
    j    dispatch
""".format(name=name)


def not_handler():
    return ("h_NOT:\n" + common.decode_a("t4")
            + common.decode_plain("b", "t5") + """
    lbu  t1, 8(t5)
    ld   t2, 0(t5)
""" + common.truthiness("t1", "t2", "t3", "a4") + """
    sd   t3, 0(t4)
    li   t2, TBOOL
    sb   t2, 8(t4)
    j    dispatch
""")


def eq_handler():
    """EQ A, B, C: R(A) = RK(B) == RK(C), as a boolean.

    Same-tag values compare by payload (interned strings and reference
    types compare by pointer); int/float mixes convert; anything else is
    unequal.
    """
    return ("h_EQ:\n" + common.decode_a("t4") + common.decode_rk("b", "t5")
            + common.decode_rk("c", "t6") + """
    lbu  t1, 8(t5)
    lbu  t2, 8(t6)
    bne  t1, t2, EQ_mixed
    li   t3, TNUMFLT
    beq  t1, t3, EQ_float
    ld   t1, 0(t5)
    ld   t2, 0(t6)
    xor  t1, t1, t2
    seqz t1, t1
EQ_store:
    sd   t1, 0(t4)
    li   t2, TBOOL
    sb   t2, 8(t4)
    j    dispatch
EQ_float:
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    feq.d t1, f1, f2
    j    EQ_store
EQ_mixed:
    li   t3, TNUMINT
    li   a4, TNUMFLT
    bne  t1, t3, EQ_mixed2
    bne  t2, a4, EQ_false
    ld   t1, 0(t5)
    fcvt.d.l f1, t1
    fld  f2, 0(t6)
    feq.d t1, f1, f2
    j    EQ_store
EQ_mixed2:
    bne  t1, a4, EQ_false
    bne  t2, t3, EQ_false
    fld  f1, 0(t5)
    ld   t1, 0(t6)
    fcvt.d.l f2, t1
    feq.d t1, f1, f2
    j    EQ_store
EQ_false:
    li   t1, 0
    j    EQ_store
""")


def _order_handler(name, int_cmp, float_cmp):
    """LT/LE A, B, C with numeric fast paths; strings go to the host."""
    return ("h_%s:\n" % name) + common.decode_a("t4") \
        + common.decode_rk("b", "t5") + common.decode_rk("c", "t6") + """
    lbu  t1, 8(t5)
    lbu  t2, 8(t6)
    li   t3, TNUMINT
    bne  t1, t3, {name}_notii
    bne  t2, t3, {name}_mixed
    ld   t1, 0(t5)
    ld   t2, 0(t6)
    {int_cmp}
{name}_store:
    sd   t1, 0(t4)
    li   t2, TBOOL
    sb   t2, 8(t4)
    j    dispatch
{name}_notii:
    li   a4, TNUMFLT
    bne  t1, a4, {name}_slowstub
    bne  t2, a4, {name}_mixed2
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    {float_cmp} t1, f1, f2
    j    {name}_store
{name}_mixed:
    li   a4, TNUMFLT
    bne  t2, a4, {name}_slowstub
    ld   t1, 0(t5)
    fcvt.d.l f1, t1
    fld  f2, 0(t6)
    {float_cmp} t1, f1, f2
    j    {name}_store
{name}_mixed2:
    bne  t2, t3, {name}_slowstub
    fld  f1, 0(t5)
    ld   t1, 0(t6)
    fcvt.d.l f2, t1
    {float_cmp} t1, f1, f2
    j    {name}_store
{name}_slowstub:
    li   a3, {op_id}
    j    compare_slow_common
""".format(name=name, int_cmp=int_cmp, float_cmp=float_cmp,
           op_id=common.COMPARE_OPS[name])


def call_handler():
    """CALL A, nargs: bytecode functions push an activation record;
    native builtins are a host (library) call."""
    return "h_CALL:\n" + common.decode_a("t4") + """
    lbu  t1, 8(t4)
    li   t2, TFUN
    bne  t1, t2, CALL_err
    ld   t2, 0(t4)
    ld   t1, %d(t2)
    bnez t1, CALL_native
    sd   s0, %d(s5)
    sd   s1, %d(s5)
    sd   s2, %d(s5)
    sd   t4, %d(s5)
    addi s5, s5, %d
    ld   s0, %d(t2)
    ld   s2, %d(t2)
    addi s1, t4, 16
    j    dispatch
CALL_native:
    addi a0, t4, 16
    srli a1, t0, 16
    andi a1, a1, 0xFF
    mv   a2, t4
    ld   a3, %d(t2)
    li   a7, %d
    ecall
    j    dispatch
CALL_err:
    j    vm_error
""" % (layout.PROTO_KIND, layout.FRAME_SAVED_PC, layout.FRAME_SAVED_BASE,
       layout.FRAME_SAVED_CONSTS, layout.FRAME_DEST_PTR, layout.FRAME_SIZE,
       layout.PROTO_CODE, layout.PROTO_CONSTS, layout.PROTO_BUILTIN_ID,
       common.SVC_BUILTIN)


def return_handlers():
    """RETURN A (one value) and RETURN0 (nil)."""
    return "h_RETURN:\n" + common.decode_a("t4") + """
    ld   t1, 0(t4)
    ld   t2, 8(t4)
    j    RET_common
h_RETURN0:
    li   t1, 0
    li   t2, 0
RET_common:
    beq  s5, s6, vm_exit_jump
    addi s5, s5, -%d
    ld   s0, %d(s5)
    ld   s1, %d(s5)
    ld   s2, %d(s5)
    ld   t3, %d(s5)
    sd   t1, 0(t3)
    sd   t2, 8(t3)
    j    dispatch
vm_exit_jump:
    j    vm_exit
""" % (layout.FRAME_SIZE, layout.FRAME_SAVED_PC, layout.FRAME_SAVED_BASE,
       layout.FRAME_SAVED_CONSTS, layout.FRAME_DEST_PTR)


def forprep_handler():
    """FORPREP A, offset: prime the loop (idx -= step) and jump to the
    matching FORLOOP.  All-integer state runs inline; anything else is
    coerced to floats by the host."""
    return "h_FORPREP:\n" + common.decode_a("t4") + """
    lbu  t1, 8(t4)
    lbu  t2, 24(t4)
    lbu  t3, 40(t4)
    li   a4, TNUMINT
    xor  t1, t1, a4
    xor  t2, t2, a4
    xor  t3, t3, a4
    or   t1, t1, t2
    or   t1, t1, t3
    bnez t1, FORPREP_slow
    ld   t1, 0(t4)
    ld   t2, 32(t4)
    sub  t1, t1, t2
    sd   t1, 0(t4)
FORPREP_jump:
""" + common.jump_by_offset() + """
    j    dispatch
FORPREP_slow:
    mv   a0, t4
    li   a7, %d
    ecall
    j    FORPREP_jump
""" % common.SVC_FORPREP


def forloop_handler():
    """FORLOOP A, offset: advance, test against the limit, copy the user
    variable and loop.  Integer and float paths are both inline."""
    return "h_FORLOOP:\n" + common.decode_a("t4") + """
    lbu  t1, 8(t4)
    li   t2, TNUMINT
    bne  t1, t2, FORLOOP_float
    ld   t1, 0(t4)
    ld   t3, 32(t4)
    add  t1, t1, t3
    ld   a4, 16(t4)
    sd   t1, 0(t4)
    bltz t3, FORLOOP_negstep
    blt  a4, t1, FORLOOP_exit
FORLOOP_cont:
    sd   t1, 48(t4)
    sb   t2, 56(t4)
""" + common.jump_by_offset() + """
    j    dispatch
FORLOOP_negstep:
    blt  t1, a4, FORLOOP_exit
    j    FORLOOP_cont
FORLOOP_exit:
    j    dispatch
FORLOOP_float:
    fld  f1, 0(t4)
    fld  f3, 32(t4)
    fadd.d f1, f1, f3
    fld  f2, 16(t4)
    fsd  f1, 0(t4)
    fmv.d.x f4, zero
    flt.d t3, f3, f4
    bnez t3, FORLOOP_fneg
    fle.d t3, f1, f2
    beqz t3, FORLOOP_exit
FORLOOP_fcont:
    fsd  f1, 48(t4)
    li   t2, TNUMFLT
    sb   t2, 56(t4)
""" + common.jump_by_offset() + """
    j    dispatch
FORLOOP_fneg:
    fle.d t3, f2, f1
    beqz t3, FORLOOP_exit
    j    FORLOOP_fcont
"""


def build():
    """All shared handlers."""
    return "\n".join([
        move_handler(), loadk_handler(), loadnil_handler(),
        loadbool_handler(), getglobal_handler(), setglobal_handler(),
        jmp_handler(),
        _conditional_jump("JMPF", take_when_false=True),
        _conditional_jump("JMPT", take_when_false=False),
        not_handler(), eq_handler(),
        _order_handler("LT", "slt  t1, t1, t2", "flt.d"),
        _order_handler("LE", "slt  t1, t2, t1\n    xori t1, t1, 1",
                       "fle.d"),
        call_handler(), return_handlers(), forprep_handler(),
        forloop_handler(),
    ])
