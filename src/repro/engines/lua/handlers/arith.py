"""Arithmetic bytecode handlers (ADD/SUB/MUL retargeted per Table 3).

The three machine configurations differ exactly as in the paper:

* ``baseline`` — software type guards (Figure 1(c)): check int/int, then
  float/float, else fall into the conversion slow path.
* ``typed`` — the Figure 3 sequence: ``tld``/``thdl``/``xadd``/``tsd``.
* ``chklb`` — Checked Load: the fast path is specialised for the
  *integer* type pair at build time (as the paper's Checked Load Lua VM
  is); a tag mismatch falls back to the original software guards.
"""

from repro.engines import configs
from repro.engines.lua.handlers import common


_POLY = {"ADD": ("add", "fadd.d", "xadd"),
         "SUB": ("sub", "fsub.d", "xsub"),
         "MUL": ("mul", "fmul.d", "xmul")}


def _decode_abc():
    return (common.decode_a("t4") + common.decode_rk("b", "t5")
            + common.decode_rk("c", "t6"))


def _software_guards(name, int_op, float_op):
    """The Figure 1(c) guard chain used by the baseline configuration."""
    return """
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, {name}_isflt_b
    lbu  t3, 8(t6)
    bne  t3, t2, {name}_slowstub
h_{name}__ii:
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    {int_op} t1, t1, t3
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
{name}_isflt_b:
    li   t2, TNUMFLT
    bne  t1, t2, {name}_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, {name}_slowstub
h_{name}__ff:
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    {float_op} f1, f1, f2
    sb   t2, 8(t4)
    fsd  f1, 0(t4)
    j    dispatch
""".format(name=name, int_op=int_op, float_op=float_op)


def _typed_body(name, int_op, float_op, tagged_op):
    return """
    tld  t1, 0(t5)
    tld  t2, 0(t6)
    thdl {name}_slowstub
    {tagged_op} t1, t1, t2
    tsd  t1, 0(t4)
    j    dispatch
""".format(name=name, tagged_op=tagged_op)


def _chklb_body(name, int_op, float_op, tagged_op):
    # Integer-specialised fast path; a chklb miss re-runs the original
    # software guards starting at the float check.  R_ctype holds the
    # integer tag as a VM-wide invariant (set at startup and restored
    # by the table handlers), so no settype is needed here.
    return """
    thdl {name}_guard_float
    chklb t1, 8(t5)
    chklb t2, 8(t6)
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    {int_op} t1, t1, t3
    li   t2, TNUMINT
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
{guards}
""".format(name=name, int_op=int_op,
           guards=_fallback_guards(name, float_op))


#: Fast-path body per check mode (HandlerPolicy.check_mode).
_FAST_BODIES = {
    configs.FAMILY_SOFTWARE:
        lambda name, int_op, float_op, tagged_op:
            _software_guards(name, int_op, float_op),
    configs.FAMILY_TYPED: _typed_body,
    configs.FAMILY_CHECKED: _chklb_body,
}


def polymorphic_handler(name, scheme):
    """ADD/SUB/MUL handler for one scheme family."""
    int_op, float_op, tagged_op = _POLY[name]
    slow = """{name}_slowstub:
    li   a3, {op_id}
    j    arith_slow_common
""".format(name=name, op_id=common.ARITH_OPS[name])

    policy = configs.family_policy(scheme.family)
    try:
        builder = _FAST_BODIES[policy.check_mode]
    except KeyError:
        raise ValueError("no Lua arith body for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family)) from None
    body = builder(name, int_op, float_op, tagged_op)
    return "h_%s:\n%s%s%s" % (name, _decode_abc(), body, slow)


def _fallback_guards(name, float_op):
    """Float-pair check used as the chklb slow path."""
    return """{name}_guard_float:
    lbu  t1, 8(t5)
    li   t2, TNUMFLT
    bne  t1, t2, {name}_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, {name}_slowstub
h_{name}__ff:
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    {float_op} f1, f1, f2
    sb   t2, 8(t4)
    fsd  f1, 0(t4)
    j    dispatch
""".format(name=name, float_op=float_op)


def div_handler():
    """DIV: Lua '/' is float division; float/float inline, else slow.

    Identical in every configuration (not one of the paper's retargeted
    bytecodes).
    """
    return "h_DIV:\n" + _decode_abc() + """
    lbu  t1, 8(t5)
    li   t2, TNUMFLT
    bne  t1, t2, DIV_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, DIV_slowstub
h_DIV__ff:
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    fdiv.d f1, f1, f2
    sb   t2, 8(t4)
    fsd  f1, 0(t4)
    j    dispatch
DIV_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["DIV"]


def mod_handler():
    """MOD: integer floor-modulo inline (rem plus sign fixup), else slow."""
    return "h_MOD:\n" + _decode_abc() + """
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, MOD_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, MOD_slowstub
h_MOD__ii:
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    beqz t3, MOD_slowstub
    rem  t1, t1, t3
    beqz t1, MOD_store
    xor  a4, t1, t3
    bgez a4, MOD_store
    add  t1, t1, t3
MOD_store:
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
MOD_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["MOD"]


def idiv_handler():
    """IDIV: integer floor-division inline, else slow."""
    return "h_IDIV:\n" + _decode_abc() + """
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, IDIV_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, IDIV_slowstub
h_IDIV__ii:
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    beqz t3, IDIV_slowstub
    div  a4, t1, t3
    mul  a5, a4, t3
    beq  a5, t1, IDIV_store
    xor  a5, t1, t3
    bgez a5, IDIV_store
    addi a4, a4, -1
IDIV_store:
    sb   t2, 8(t4)
    sd   a4, 0(t4)
    j    dispatch
IDIV_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["IDIV"]


def pow_handler():
    """POW: always the slow path (Lua's '^' is float exponentiation)."""
    return "h_POW:\n" + _decode_abc() + """
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["POW"]


def unm_handler():
    """UNM: unary minus; int and float inline, else slow (B operand)."""
    return ("h_UNM:\n" + common.decode_a("t4")
            + common.decode_plain("b", "t5") + """
    mv   t6, t5
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, UNM_isflt
    ld   t1, 0(t5)
    neg  t1, t1
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
UNM_isflt:
    li   t2, TNUMFLT
    bne  t1, t2, UNM_slowstub
    fld  f1, 0(t5)
    fneg.d f1, f1
    sb   t2, 8(t4)
    fsd  f1, 0(t4)
    j    dispatch
UNM_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["UNM"])


def _bitwise_handler(name, op):
    """BAND/BOR/BXOR: integer-only, with float-coercion via the host."""
    return ("h_%s:\n" % name) + _decode_abc() + """
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, {name}_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, {name}_slowstub
h_{name}__ii:
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    {op}  t1, t1, t3
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
{name}_slowstub:
    li   a3, {op_id}
    j    arith_slow_common
""".format(name=name, op=op, op_id=common.ARITH_OPS[name])


def _shift_handler(name, op):
    """SHL/SHR: logical shifts; shift amounts outside [0, 64) (including
    Lua's negative-means-opposite-direction rule) go to the host."""
    return ("h_%s:\n" % name) + _decode_abc() + """
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, {name}_slowstub
    lbu  t3, 8(t6)
    bne  t3, t2, {name}_slowstub
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    li   a4, 64
    bgeu t3, a4, {name}_slowstub
h_{name}__ii:
    {op}  t1, t1, t3
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
{name}_slowstub:
    li   a3, {op_id}
    j    arith_slow_common
""".format(name=name, op=op, op_id=common.ARITH_OPS[name])


def bnot_handler():
    """BNOT: unary bitwise-not on integers; floats coerce via the host."""
    return ("h_BNOT:\n" + common.decode_a("t4")
            + common.decode_plain("b", "t5") + """
    mv   t6, t5
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, BNOT_slowstub
    ld   t1, 0(t5)
    not  t1, t1
    sb   t2, 8(t4)
    sd   t1, 0(t4)
    j    dispatch
BNOT_slowstub:
    li   a3, %d
    j    arith_slow_common
""" % common.ARITH_OPS["BNOT"])


def build(scheme):
    """All arithmetic handlers for ``scheme``."""
    parts = [polymorphic_handler(name, scheme)
             for name in ("ADD", "SUB", "MUL")]
    parts += [div_handler(), mod_handler(), idiv_handler(), pow_handler(),
              unm_handler(),
              _bitwise_handler("BAND", "and"),
              _bitwise_handler("BOR", "or"),
              _bitwise_handler("BXOR", "xor"),
              _shift_handler("SHL", "sll"),
              _shift_handler("SHR", "srl"),
              bnot_handler()]
    return "\n".join(parts)
