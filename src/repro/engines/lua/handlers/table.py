"""Table-access bytecode handlers (GETTABLE/SETTABLE retargeted per
Table 3) plus NEWTABLE, LEN and CONCAT.

The fast path covers the common Table-Int case: the key indexes the
table's array part (keys 1..length, plus append for SETTABLE).  String
keys, out-of-range integers and growth go through the slow path, which is
the host-backed hash-table code — exactly the split the paper describes
in Section 4.1.
"""

from repro.engines import configs
from repro.engines.lua.handlers import common


def _gettable_fast_body(copy_typed):
    """Bounds check + array-element copy.  ``t1`` holds the table pointer
    and ``t2`` the integer key on entry."""
    copy = """
    tld  t2, 0(t1)
    tsd  t2, 0(t4)
""" if copy_typed else """
    ld   t2, 0(t1)
    ld   t3, 8(t1)
    sd   t2, 0(t4)
    sd   t3, 8(t4)
"""
    return """
h_GETTABLE__fast:
    ld   t3, 16(t1)
    addi t2, t2, -1
    bgeu t2, t3, GETTABLE_slowstub
    ld   t1, 0(t1)
    slli t2, t2, 4
    add  t1, t1, t2
%s    j    dispatch
""" % copy


#: GETTABLE guard prologue per check mode (HandlerPolicy.check_mode).
#: The chklb variant fuses only the key check: the single expected-type
#: register holds the integer tag as a VM-wide invariant, so the table
#: tag keeps its software guard (Checked Load's narrow coverage,
#: Section 8).
_GETTABLE_GUARDS = {
    configs.FAMILY_SOFTWARE: ("""
    lbu  t1, 8(t5)
    li   t2, TTAB
    bne  t1, t2, GETTABLE_slowstub
    lbu  t1, 8(t6)
    li   t2, TNUMINT
    bne  t1, t2, GETTABLE_slowstub
    ld   t1, 0(t5)
    ld   t2, 0(t6)
""", False),
    configs.FAMILY_TYPED: ("""
    tld  t1, 0(t5)
    tld  t2, 0(t6)
    thdl GETTABLE_slowstub
    tchk t1, t2
""", True),
    configs.FAMILY_CHECKED: ("""
    lbu  t1, 8(t5)
    li   t2, TTAB
    bne  t1, t2, GETTABLE_slowstub
    thdl GETTABLE_slowstub
    chklb t1, 8(t6)
    ld   t1, 0(t5)
    ld   t2, 0(t6)
""", False),
}


def gettable_handler(scheme):
    decode = (common.decode_a("t4") + common.decode_rk("b", "t5")
              + common.decode_rk("c", "t6"))
    policy = configs.family_policy(scheme.family)
    try:
        guards, copy_typed = _GETTABLE_GUARDS[policy.check_mode]
    except KeyError:
        raise ValueError("no GETTABLE guards for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family)) from None
    body = guards + _gettable_fast_body(copy_typed=copy_typed)
    return "h_GETTABLE:\n%s%sGETTABLE_slowstub:\n    j table_get_slow_common\n" \
        % (decode, body)


def _settable_fast_body(copy_typed):
    """Array store with append support.  ``t1`` = table pointer, ``t2`` =
    key; the value operand pointer is in ``t6``."""
    copy = """
    tld  t2, 0(t6)
    tsd  t2, 0(t1)
""" if copy_typed else """
    ld   t2, 0(t6)
    ld   t3, 8(t6)
    sd   t2, 0(t1)
    sd   t3, 8(t1)
"""
    return """
h_SETTABLE__fast:
    ld   t3, 16(t1)
    addi t2, t2, -1
    bltu t2, t3, SETTABLE_store
    bne  t2, t3, SETTABLE_slowstub
    ld   a4, 8(t1)
    bgeu t2, a4, SETTABLE_slowstub
    addi t3, t3, 1
    sd   t3, 16(t1)
SETTABLE_store:
    ld   t1, 0(t1)
    slli t2, t2, 4
    add  t1, t1, t2
%s    j    dispatch
""" % copy


#: SETTABLE guard prologue per check mode (same shape as GETTABLE).
_SETTABLE_GUARDS = {
    configs.FAMILY_SOFTWARE: ("""
    lbu  t1, 8(t4)
    li   t2, TTAB
    bne  t1, t2, SETTABLE_slowstub
    lbu  t1, 8(t5)
    li   t2, TNUMINT
    bne  t1, t2, SETTABLE_slowstub
    ld   t1, 0(t4)
    ld   t2, 0(t5)
""", False),
    configs.FAMILY_TYPED: ("""
    tld  t1, 0(t4)
    tld  t2, 0(t5)
    thdl SETTABLE_slowstub
    tchk t1, t2
""", True),
    configs.FAMILY_CHECKED: ("""
    lbu  t1, 8(t4)
    li   t2, TTAB
    bne  t1, t2, SETTABLE_slowstub
    thdl SETTABLE_slowstub
    chklb t1, 8(t5)
    ld   t1, 0(t4)
    ld   t2, 0(t5)
""", False),
}


def settable_handler(scheme):
    decode = (common.decode_a("t4") + common.decode_rk("b", "t5")
              + common.decode_rk("c", "t6"))
    policy = configs.family_policy(scheme.family)
    try:
        guards, copy_typed = _SETTABLE_GUARDS[policy.check_mode]
    except KeyError:
        raise ValueError("no SETTABLE guards for check mode %r (family %r)"
                         % (policy.check_mode, scheme.family)) from None
    body = guards + _settable_fast_body(copy_typed=copy_typed)
    return "h_SETTABLE:\n%s%sSETTABLE_slowstub:\n    j table_set_slow_common\n" \
        % (decode, body)


def newtable_handler():
    """NEWTABLE A, hint: allocation is a host (library) call."""
    return "h_NEWTABLE:\n" + common.decode_a("t4") + """
    srli a0, t0, 16
    andi a0, a0, 0xFF
    mv   a1, t4
    li   a7, %d
    ecall
    j    dispatch
""" % common.SVC_NEWTABLE


def len_handler():
    """LEN A, B: string length or table array length, inline."""
    return ("h_LEN:\n" + common.decode_a("t4")
            + common.decode_plain("b", "t5") + """
    lbu  t1, 8(t5)
    li   t2, TSTR
    bne  t1, t2, LEN_table
    ld   t3, 0(t5)
    ld   t3, 0(t3)
    j    LEN_store
LEN_table:
    li   t2, TTAB
    bne  t1, t2, LEN_err
    ld   t3, 0(t5)
    ld   t3, 16(t3)
LEN_store:
    sd   t3, 0(t4)
    li   t2, TNUMINT
    sb   t2, 8(t4)
    j    dispatch
LEN_err:
    j    vm_error
""")


def concat_handler():
    """CONCAT A, B, C: string building is a host (library) call."""
    return ("h_CONCAT:\n" + common.decode_a("t4")
            + common.decode_rk("b", "t5") + common.decode_rk("c", "t6") + """
    mv   a0, t4
    mv   a1, t5
    mv   a2, t6
    li   a7, %d
    ecall
    j    dispatch
""" % common.SVC_CONCAT)


def build(scheme):
    """All table-access handlers for ``scheme``."""
    return "\n".join([
        gettable_handler(scheme),
        settable_handler(scheme),
        newtable_handler(),
        len_handler(),
        concat_handler(),
    ])
