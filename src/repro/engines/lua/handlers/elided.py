"""Quickened MiniLua handlers for the elided (software-elision) family.

One handler per entry in
:data:`repro.analysis.quickening.LUA_QUICKENED`: the software handler's
fast path with the tag guards deleted, installed only at bytecode sites
where the inference pass proved the operand tags.  Instructions whose
proof failed keep their base opcode and run the normal guarded handler,
so the full software handler set is always present alongside these.

Guards that check *values* rather than tags stay: MOD_II/IDIV_II keep
the zero-divisor test (a zero divisor raises a Lua error host-side) and
branch to the base handler's ``MOD_slowstub``/``IDIV_slowstub`` — the
labels are global and the operand pointers are in ``t4``/``t5``/``t6``
exactly as the base handler's own fast path leaves them.

FORLOOP variants preserve the base handler's store discipline: the
advanced index is written to R(A) on *every* path (including loop
exit), the user variable R(A+3) only when the loop continues.
"""

from repro.engines.lua.handlers import common


def _decode_abc():
    return (common.decode_a("t4") + common.decode_rk("b", "t5")
            + common.decode_rk("c", "t6"))


def _store_tagged(tag, store="sd   t1, 0(t4)"):
    return """    li   t2, {tag}
    sb   t2, 8(t4)
    {store}
    j    dispatch
""".format(tag=tag, store=store)


def _arith_ii(name, int_op):
    """ADD/SUB/MUL both-int: wraps at 64 bits, so no overflow guard is
    needed either — the result tag is statically TNUMINT."""
    return "h_{name}_II:\n".format(name=name) + _decode_abc() + """
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    {int_op} t1, t1, t3
""".format(name=name, int_op=int_op) + _store_tagged("TNUMINT")


def _arith_ff(name, float_op):
    return "h_{name}_FF:\n".format(name=name) + _decode_abc() + """
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    {float_op} f1, f1, f2
""".format(name=name, float_op=float_op) \
        + _store_tagged("TNUMFLT", store="fsd  f1, 0(t4)")


def mod_ii():
    """Floor modulo, both int proven; the zero-divisor *value* check
    stays and reuses the base handler's slow stub."""
    return "h_MOD_II:\n" + _decode_abc() + """
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    bnez t3, MOD_II_div
    j    MOD_slowstub
MOD_II_div:
    rem  t1, t1, t3
    beqz t1, MOD_II_store
    xor  a4, t1, t3
    bgez a4, MOD_II_store
    add  t1, t1, t3
MOD_II_store:
""" + _store_tagged("TNUMINT")


def idiv_ii():
    return "h_IDIV_II:\n" + _decode_abc() + """
    ld   t1, 0(t5)
    ld   t3, 0(t6)
    bnez t3, IDIV_II_div
    j    IDIV_slowstub
IDIV_II_div:
    div  a4, t1, t3
    mul  a5, a4, t3
    beq  a5, t1, IDIV_II_store
    xor  a5, t1, t3
    bgez a5, IDIV_II_store
    addi a4, a4, -1
IDIV_II_store:
""" + _store_tagged("TNUMINT", store="sd   a4, 0(t4)")


def _compare_ii(name, int_cmp):
    return "h_{name}_II:\n".format(name=name) + _decode_abc() + """
    ld   t1, 0(t5)
    ld   t2, 0(t6)
    {int_cmp}
""".format(int_cmp=int_cmp) + _store_tagged("TBOOL")


def _compare_ff(name, float_cmp):
    return "h_{name}_FF:\n".format(name=name) + _decode_abc() + """
    fld  f1, 0(t5)
    fld  f2, 0(t6)
    {float_cmp} t1, f1, f2
""".format(float_cmp=float_cmp) + _store_tagged("TBOOL")


def eq_ii():
    """Same-tag ints compare by payload — one xor/seqz on the dwords."""
    return _compare_ii("EQ", "xor  t1, t1, t2\n    seqz t1, t1")


def forloop_i():
    return "h_FORLOOP_I:\n" + common.decode_a("t4") + """
    ld   t1, 0(t4)
    ld   t3, 32(t4)
    add  t1, t1, t3
    ld   a4, 16(t4)
    sd   t1, 0(t4)
    bltz t3, FORLOOP_I_negstep
    blt  a4, t1, FORLOOP_I_exit
FORLOOP_I_cont:
    li   t2, TNUMINT
    sd   t1, 48(t4)
    sb   t2, 56(t4)
""" + common.jump_by_offset() + """
    j    dispatch
FORLOOP_I_negstep:
    blt  t1, a4, FORLOOP_I_exit
    j    FORLOOP_I_cont
FORLOOP_I_exit:
    j    dispatch
"""


def forloop_f():
    return "h_FORLOOP_F:\n" + common.decode_a("t4") + """
    fld  f1, 0(t4)
    fld  f3, 32(t4)
    fadd.d f1, f1, f3
    fld  f2, 16(t4)
    fsd  f1, 0(t4)
    fmv.d.x f4, zero
    flt.d t3, f3, f4
    bnez t3, FORLOOP_F_neg
    fle.d t3, f1, f2
    beqz t3, FORLOOP_F_exit
FORLOOP_F_cont:
    fsd  f1, 48(t4)
    li   t2, TNUMFLT
    sb   t2, 56(t4)
""" + common.jump_by_offset() + """
    j    dispatch
FORLOOP_F_neg:
    fle.d t3, f2, f1
    beqz t3, FORLOOP_F_exit
    j    FORLOOP_F_cont
FORLOOP_F_exit:
    j    dispatch
"""


def build(scheme):
    """All quickened handler text (appended before the slow stubs)."""
    return "\n".join([
        _arith_ii("ADD", "add "), _arith_ff("ADD", "fadd.d"),
        _arith_ii("SUB", "sub "), _arith_ff("SUB", "fsub.d"),
        _arith_ii("MUL", "mul "), _arith_ff("MUL", "fmul.d"),
        _arith_ff("DIV", "fdiv.d"),
        mod_ii(), idiv_ii(),
        eq_ii(), _compare_ff("EQ", "feq.d"),
        _compare_ii("LT", "slt  t1, t1, t2"),
        _compare_ff("LT", "flt.d"),
        _compare_ii("LE", "slt  t1, t2, t1\n    xori t1, t1, 1"),
        _compare_ff("LE", "fle.d"),
        forloop_i(), forloop_f(),
    ])
