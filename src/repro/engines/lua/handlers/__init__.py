"""RV64 assembly bytecode handlers for the MiniLua interpreter.

:func:`build_interpreter` returns the complete interpreter text for one
machine configuration (baseline / typed / chklb).  Only the five hot
bytecodes of the paper's Table 3 differ between configurations (ADD, SUB,
MUL, GETTABLE, SETTABLE); everything else is shared.
"""

from repro.engines.lua.handlers.build import build_interpreter

__all__ = ["build_interpreter"]
