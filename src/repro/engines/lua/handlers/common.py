"""Shared assembly fragments: dispatch, operand decode, slow-path stubs.

Register conventions of the MiniLua interpreter (persistent across
handlers):

========  =====================================================
``s0``    bytecode program counter
``s1``    current frame base (address of R(0))
``s2``    current constants base (TValue array)
``s3``    handler jump table base
``s4``    globals TValue array base
``s5``    call-stack top
``s6``    call-stack base (empty-stack sentinel for RETURN)
========  =====================================================

Scratch registers: ``t0`` holds the fetched bytecode word (must be
preserved until jump-offset extraction in jump handlers), ``t1``-``t3``
are free, ``t4``/``t5``/``t6`` hold the decoded ``&R(A)``/``&RK(B)``/
``&RK(C)`` pointers, and ``a0``-``a7`` are host-call arguments.
"""

from repro.engines.lua import layout

# Host service ids (shared with repro.engines.lua.runtime).
SVC_ARITH = 2
SVC_TABLE_GET = 3
SVC_TABLE_SET = 4
SVC_NEWTABLE = 5
SVC_CONCAT = 6
SVC_COMPARE = 7
SVC_BUILTIN = 8
SVC_ERROR = 9
SVC_FORPREP = 10

# arith_slow / compare_slow operation ids.
ARITH_OPS = {"ADD": 0, "SUB": 1, "MUL": 2, "DIV": 3, "MOD": 4, "IDIV": 5,
             "POW": 6, "UNM": 7, "BAND": 8, "BOR": 9, "BXOR": 10,
             "SHL": 11, "SHR": 12, "BNOT": 13}
COMPARE_OPS = {"EQ": 0, "LT": 1, "LE": 2}


def equ_block():
    """.equ constants shared by every handler."""
    return """
    .equ TNIL, %d
    .equ TBOOL, %d
    .equ TNUMFLT, %d
    .equ TSTR, %d
    .equ TTAB, %d
    .equ TFUN, %d
    .equ TNUMINT, %d
""" % (layout.TNIL, layout.TBOOL, layout.TNUMFLT, layout.TSTR,
       layout.TTAB, layout.TFUN, layout.TNUMINT)


def dispatch_loop():
    """Fetch the next 32-bit bytecode and jump through the handler table."""
    return """
dispatch:
    lw   t0, 0(s0)
    addi s0, s0, 4
    andi t1, t0, 0xFF
    slli t1, t1, 3
    add  t1, t1, s3
    ld   t1, 0(t1)
    jr   t1
"""


def decode_a(dest="t4"):
    """&R(A) into ``dest``."""
    return """
    srli {d}, t0, 8
    andi {d}, {d}, 0xFF
    slli {d}, {d}, 4
    add  {d}, {d}, s1
""".format(d=dest)


def decode_plain(operand, dest):
    """&R(B) or &R(C) (register operand, no RK flag) into ``dest``."""
    shift = {"b": 16, "c": 24}[operand]
    text = "    srli {d}, t0, {shift}\n".format(d=dest, shift=shift)
    if shift == 16:
        text += "    andi {d}, {d}, 0xFF\n".format(d=dest)
    text += """    slli {d}, {d}, 4
    add  {d}, {d}, s1
""".format(d=dest)
    return text


def decode_field(operand, dest):
    """Raw 8-bit field value (e.g. an immediate count) into ``dest``."""
    shift = {"b": 16, "c": 24}[operand]
    text = "    srli {d}, t0, {shift}\n".format(d=dest, shift=shift)
    if shift == 16:
        text += "    andi {d}, {d}, 0xFF\n".format(d=dest)
    return text


_RK_SEQUENCE = 0


def decode_rk(operand, dest, scratch="a5"):
    """&RK(B) / &RK(C) into ``dest``.

    Mirrors what gcc -O3 emits for Lua's RK macros: test the constant
    flag and branch, with the register path laid out as the fall-through
    (the common case).
    """
    global _RK_SEQUENCE
    _RK_SEQUENCE += 1
    prefix = "RK%d" % _RK_SEQUENCE
    shift = {"b": 16, "c": 24}[operand]
    text = "    srli {d}, t0, {shift}\n".format(d=dest, shift=shift)
    if shift == 16:
        text += "    andi {d}, {d}, 0xFF\n".format(d=dest)
    return text + """    andi {s}, {d}, 0x80
    bnez {s}, {p}_konst
    slli {d}, {d}, 4
    add  {d}, {d}, s1
    j    {p}_done
{p}_konst:
    andi {d}, {d}, 0x7F
    slli {d}, {d}, 4
    add  {d}, {d}, s2
{p}_done:
""".format(d=dest, s=scratch, p=prefix)


def jump_by_offset():
    """Add the instruction's signed 16-bit offset (in t0) to the PC."""
    return """
    slli a5, t0, 32
    srai a5, a5, 48
    slli a5, a5, 2
    add  s0, s0, a5
"""


def truthiness(tag_reg, value_reg, result_reg, scratch):
    """Set ``result_reg`` to 1 when the value is *false* (nil or false)."""
    return """
    seqz {r}, {tag}
    addi {s}, {tag}, -1
    seqz {s}, {s}
    seqz {v}, {v}
    and  {s}, {s}, {v}
    or   {r}, {r}, {s}
""".format(r=result_reg, tag=tag_reg, v=value_reg, s=scratch)


def copy_tvalue(src_ptr, dst_ptr, scratch1="t1", scratch2="t2"):
    """Copy a 16-byte TValue (value dword + tag dword)."""
    return """
    ld   {s1}, 0({src})
    ld   {s2}, 8({src})
    sd   {s1}, 0({dst})
    sd   {s2}, 8({dst})
""".format(s1=scratch1, s2=scratch2, src=src_ptr, dst=dst_ptr)


def slow_stubs():
    """Common tails that marshal host-call arguments.

    Individual handlers load an operation id into ``a3`` (arith/compare)
    and jump here; the decoded pointers are still in t4/t5/t6.
    """
    return """
arith_slow_common:
    mv   a0, t4
    mv   a1, t5
    mv   a2, t6
    li   a7, %d
    ecall
    j    dispatch
compare_slow_common:
    mv   a0, t4
    mv   a1, t5
    mv   a2, t6
    li   a7, %d
    ecall
    j    dispatch
table_get_slow_common:
    mv   a0, t5
    mv   a1, t6
    mv   a2, t4
    li   a7, %d
    ecall
    j    dispatch
table_set_slow_common:
    mv   a0, t4
    mv   a1, t5
    mv   a2, t6
    li   a7, %d
    ecall
    j    dispatch
""" % (SVC_ARITH, SVC_COMPARE, SVC_TABLE_GET, SVC_TABLE_SET)


def error_stub():
    """Unimplemented opcode / runtime type error: abort via the host."""
    return """
h_ILLEGAL:
vm_error:
    mv   a0, t0
    li   a7, %d
    ecall
    ebreak
vm_exit:
    ebreak
""" % SVC_ERROR
