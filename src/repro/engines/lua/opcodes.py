"""MiniLua bytecode: opcodes and the 32-bit instruction encoding.

The VM is register-based like Lua 5.3.  Each instruction is one 32-bit
word::

    [7:0]   opcode
    [15:8]  A       (always a register index)
    [23:16] B       (register, or constant when bit 7 is set)
    [31:24] C       (register, or constant when bit 7 is set)

Jump-style instructions (JMP/JMPF/JMPT/FORPREP/FORLOOP) reuse bits
[31:16] as a signed 16-bit displacement in instruction units, relative to
the already-incremented PC.

Lua 5.3 defines 47 distinct bytecodes; the catalogue below keeps that
count (the unimplemented ones map to the VM's error stub) so the dynamic
bytecode-breakdown experiment (Figure 2a) is computed over the same
opcode space.
"""

from enum import IntEnum

RK_FLAG = 0x80  # operand bit 7: constant index instead of register
RK_MASK = 0x7F


class Op(IntEnum):
    """MiniLua opcodes.  The first block is implemented by the assembly
    interpreter; the trailing block exists for catalogue parity with
    Lua 5.3 and traps to the error stub if ever executed."""

    MOVE = 0
    LOADK = 1
    LOADBOOL = 2
    LOADNIL = 3
    GETGLOBAL = 4
    SETGLOBAL = 5
    GETTABLE = 6
    SETTABLE = 7
    NEWTABLE = 8
    ADD = 9
    SUB = 10
    MUL = 11
    DIV = 12
    MOD = 13
    IDIV = 14
    POW = 15
    UNM = 16
    NOT = 17
    LEN = 18
    CONCAT = 19
    JMP = 20
    JMPF = 21
    JMPT = 22
    EQ = 23
    LT = 24
    LE = 25
    CALL = 26
    RETURN = 27
    RETURN0 = 28
    FORPREP = 29
    FORLOOP = 30
    # -- Lua 5.3 bitwise operators (implemented) ---------------------------
    BAND = 35
    BOR = 36
    BXOR = 37
    SHL = 38
    SHR = 39
    BNOT = 40
    # -- catalogue parity with Lua 5.3 (unimplemented; trap) ----------------
    LOADKX = 31
    GETUPVAL = 32
    SETUPVAL = 33
    SELF = 34
    TEST = 41
    TESTSET = 42
    TAILCALL = 43
    TFORCALL = 44
    TFORLOOP = 45
    SETLIST = 46

    @property
    def is_jump(self):
        return self in _JUMP_OPS


_JUMP_OPS = frozenset(
    [Op.JMP, Op.JMPF, Op.JMPT, Op.FORPREP, Op.FORLOOP])

NUM_OPCODES = 47

# The five hot bytecodes the paper retargets (Table 3).
HOT_BYTECODES = (Op.ADD, Op.SUB, Op.MUL, Op.GETTABLE, Op.SETTABLE)


def encode_abc(op, a, b=0, c=0):
    """Encode an ABC-format instruction."""
    for name, operand in (("A", a), ("B", b), ("C", c)):
        if not 0 <= operand <= 0xFF:
            raise ValueError("operand %s=%d out of byte range" % (name,
                                                                  operand))
    return int(op) | (a << 8) | (b << 16) | (c << 24)


def encode_jump(op, a, offset):
    """Encode a jump-format instruction with a signed 16-bit offset."""
    if not -(1 << 15) <= offset < (1 << 15):
        raise ValueError("jump offset %d out of 16-bit range" % offset)
    return int(op) | ((a & 0xFF) << 8) | ((offset & 0xFFFF) << 16)


def decode(word):
    """Decode to ``(op, a, b, c)``; for jumps C holds the signed offset."""
    op = Op(word & 0xFF)
    a = (word >> 8) & 0xFF
    if op.is_jump:
        offset = (word >> 16) & 0xFFFF
        if offset >= 1 << 15:
            offset -= 1 << 16
        return op, a, 0, offset
    return op, a, (word >> 16) & 0xFF, (word >> 24) & 0xFF


def rk_is_constant(operand):
    return bool(operand & RK_FLAG)


def rk_index(operand):
    return operand & RK_MASK
