"""Top-level MiniLua runner: compile, image, assemble, simulate.

:func:`run_lua` is the engine's public API.  It returns a
:class:`LuaResult` with the program's textual output and the timing
model's performance counters.
"""

from dataclasses import dataclass

from repro.engines import BASELINE, configs
from repro.engines.lua import layout
from repro.engines.lua.compiler import compile_source
from repro.engines.lua.handlers import build_interpreter
from repro.engines.lua.image import build_image, fill_jump_table
from repro.engines.lua.opcodes import NUM_OPCODES, Op
from repro.engines.lua.runtime import LuaHost, LuaRuntime
from repro.isa.assembler import assemble
from repro.sim.cpu import Cpu
from repro.sim.memory import Memory
from repro.sim.tagio import TagCodec
from repro.uarch.pipeline import Attribution

# Labels that delimit attribution buckets besides the h_* handlers.
_EXTRA_BUCKETS = ("startup", "dispatch", "arith_slow_common",
                  "compare_slow_common", "table_get_slow_common",
                  "table_set_slow_common", "vm_error", "vm_exit")


@dataclass
class LuaResult:
    """Outcome of one MiniLua run."""

    output: str
    counters: object
    config: str
    exit_code: int = 0

    @property
    def lines(self):
        return self.output.splitlines()


def build_attribution(program, extra_ops=None):
    """Bucket ranges (per handler label) and bytecode entry points.
    ``extra_ops`` (quickened opcode -> variant name) registers the
    elided family's guard-free handlers so their executions land in the
    bytecode histogram instead of vanishing."""
    marks = []
    for label, addr in program.labels.items():
        if label.startswith("h_") or label in _EXTRA_BUCKETS:
            marks.append((addr, label))
    marks.sort()
    ranges = []
    for index, (addr, label) in enumerate(marks):
        end = marks[index + 1][0] if index + 1 < len(marks) else program.end
        ranges.append((label, addr, end))
    entry_points = {}
    for opcode in Op:
        label = "h_%s" % opcode.name
        if label in program.labels:
            entry_points[program.labels[label]] = opcode.name
    for name in (extra_ops or {}).values():
        label = "h_%s" % name
        if label in program.labels:
            entry_points[program.labels[label]] = name
    return Attribution(program, ranges, entry_points)


def _policy(config):
    return configs.family_policy(configs.get_scheme(config).family)


# The interpreter text is program-independent, so the assembled program
# and its attribution map are cached per configuration.
_PROGRAM_CACHE = {}

#: Process-wide count of actual interpreter assemblies (cache misses).
#: The batch executor (:mod:`repro.bench.batch`) asserts each
#: ``(engine, config)`` pair assembles exactly once per process.
assembly_count = 0


def interpreter_program(config):
    """The assembled interpreter for ``config`` (cached)."""
    global assembly_count
    cached = _PROGRAM_CACHE.get(config)
    if cached is None:
        assembly_count += 1
        program = assemble(build_interpreter(config),
                           base=layout.CODE_BASE)
        if program.end > layout.BOOT_BLOCK:
            raise ValueError("interpreter text overflows the code region")
        policy = _policy(config)
        extra_ops = (policy.quickened_ops("lua")
                     if policy.quickened_ops else None)
        cached = (program, build_attribution(program, extra_ops))
        _PROGRAM_CACHE[config] = cached
    return cached


def prepare(source, config=BASELINE):
    """Compile + image + assemble; returns (cpu, runtime, program)."""
    scheme = configs.get_scheme(config)
    policy = configs.family_policy(scheme.family)
    chunk = compile_source(source)
    # Chunks are compiled fresh per prepare(), so the in-place bytecode
    # quickening (elided family) cannot leak into other configurations.
    if policy.quicken is not None:
        policy.quicken("lua", chunk)
    extra_ops = policy.quickened_ops("lua") if policy.quickened_ops else None
    slots = (max(NUM_OPCODES, max(extra_ops) + 1) if extra_ops
             else NUM_OPCODES)
    memory = Memory(size=layout.MEMORY_SIZE)
    runtime = LuaRuntime(memory)
    image = build_image(chunk, runtime, slots=slots)
    program, _attribution = interpreter_program(config)
    fill_jump_table(image, program, memory, extra_ops=extra_ops)
    host = LuaHost(runtime)
    # The F/I-bit table must hold the tags as this scheme's extractor
    # window reports them (identical to the layout tags for every
    # shipped Lua geometry, but kept symmetric with the TRT transform).
    codec = TagCodec(fp_tags=frozenset(
        scheme.extracted_tag("lua", layout.SPR_SETTINGS, tag)
        for tag in layout.FP_TAGS))
    cpu = Cpu(program, memory, host=host.interface, tag_codec=codec,
              overflow_bits=None)
    # Trace profiles are guest-specific (the hot paths through the
    # interpreter depend on the bytecode it runs); the trace engine
    # keys its tables on this token (see repro.sim.traces.trace_table).
    cpu.workload = source
    return cpu, runtime, program


def run_lua(source, *, config=BASELINE, machine_config=None,
            max_instructions=None, attribute=True, telemetry=None,
            use_blocks=True, use_traces=True):
    """Compile and execute MiniLua ``source`` on the simulated machine.

    Thin adapter over :func:`repro.api.run` — the unified signature is
    keyword-only after ``source``.  ``config`` selects the interpreter
    build (any registered scheme: ``"baseline"``, ``"typed"``,
    ``"chklb"``, ``"elided"``, ...).  ``telemetry`` optionally attaches
    an event bus (see :mod:`repro.telemetry`) to the CPU and timing
    model.  ``use_blocks`` enables the basic-block superinstruction
    engine (only effective without attribution/telemetry; counters are
    identical either way).
    """
    from repro import api
    result = api._engine_run(
        "lua", source, config=config, machine_config=machine_config,
        max_instructions=(api.DEFAULT_MAX_INSTRUCTIONS
                          if max_instructions is None
                          else max_instructions),
        attribute=attribute, telemetry=telemetry,
        use_blocks=use_blocks, use_traces=use_traces)
    return LuaResult(output=result.output, counters=result.counters,
                     config=result.config, exit_code=result.exit_code)
