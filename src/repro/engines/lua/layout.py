"""Memory map and object layouts of the MiniLua VM.

Values are 16-byte Lua-5.3-style TValues: the 8-byte payload at offset 0
followed by a one-byte type tag at offset 8 (the remaining 7 bytes pad to
alignment), exactly the layout the paper's Table 4 configures the tag
extractor for (``R_offset`` = next double-word, shift 0, mask 0xFF).
"""

from repro.isa.extension import LUA_SPR, arithmetic_rules, table_access_rules

# -- memory map ---------------------------------------------------------------
CODE_BASE = 0x0001_0000        # interpreter text
IMAGE_BASE = 0x0010_0000       # bytecode, constants, protos, strings, globals
REG_STACK_BASE = 0x0020_0000   # TValue register frames
CALL_STACK_BASE = 0x0028_0000  # activation records
HEAP_BASE = 0x0030_0000        # tables and runtime strings (bump allocated)
MEMORY_SIZE = 0x0200_0000      # 32 MiB

# Boot block: program-specific launch parameters the (program-independent,
# cacheable) interpreter text reads at startup.  The handler jump table
# always sits at IMAGE_BASE itself.
BOOT_BLOCK = IMAGE_BASE - 64
BOOT_MAIN_CODE = 0     # address of main's bytecode
BOOT_MAIN_CONSTS = 8   # address of main's constants
BOOT_GLOBALS = 16      # address of the globals TValue array
JUMP_TABLE_ADDR = IMAGE_BASE

TVALUE_SIZE = 16
VALUE_OFFSET = 0
TAG_OFFSET = 8

# -- type tags (Lua 5.3 encoding: subtype in bit 4) ----------------------------
TNIL = 0
TBOOL = 1
TNUMFLT = 3          # float subtype of NUMBER
TSTR = 4
TTAB = 5
TFUN = 6
TNUMINT = 19         # 3 | (1 << 4): integer subtype of NUMBER

FP_TAGS = frozenset({TNUMFLT})

# -- aggregate object layouts ---------------------------------------------------
# Table object: array part is a TValue vector holding keys 1..length.
TABLE_ARRAY_PTR = 0
TABLE_CAPACITY = 8
TABLE_LENGTH = 16
TABLE_SIZE = 32

# String object: interned; equality is pointer equality.
STRING_LENGTH = 0
STRING_BYTES = 8

# Function prototype descriptor.
PROTO_CODE = 0
PROTO_CONSTS = 8
PROTO_NREGS = 16
PROTO_KIND = 24        # 0 = bytecode function, 1 = native builtin
PROTO_BUILTIN_ID = 32
PROTO_NPARAMS = 40
PROTO_SIZE = 48

# Call-stack activation record.
FRAME_SAVED_PC = 0
FRAME_SAVED_BASE = 8
FRAME_SAVED_CONSTS = 16
FRAME_DEST_PTR = 24
FRAME_SIZE = 32

SPR_SETTINGS = LUA_SPR

TYPE_RULES = (arithmetic_rules(int_tag=TNUMINT, float_tag=TNUMFLT)
              + table_access_rules(table_tag=TTAB, int_tag=TNUMINT))
